"""The ``simulate()`` facade: one call from specs to a full QoS report.

This replaces the six-object chain every experiment used to hand-wire
(chip preset -> device model -> model config -> scheduler limits ->
request generator -> engine -> QoS/utilization calculators) with::

    from repro.api import DeploymentSpec, WorkloadSpec, simulate

    report = simulate(DeploymentSpec(chip="ador"),
                      WorkloadSpec(rate_per_s=15.0, num_requests=200))
    print(report.qos.ttft_p95_s)

Everything stays deterministic: the workload seed fully determines the
request stream, so a spec serialized to JSON and reloaded elsewhere
reproduces the identical :class:`ServingReport`.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass

from repro.api.specs import (
    CapacitySpec,
    DeploymentSpec,
    Experiment,
    WorkloadSpec,
)
from repro.cluster.engine import ClusterEngine
from repro.cluster.report import ClusterResult, LoadImbalanceStats
from repro.core.scheduling import device_model_for
from repro.hardware.chip import ChipSpec
from repro.models.config import ModelConfig
from repro.models.zoo import get_model
from repro.perf.cache import CachedDeviceModel
from repro.serving.capacity import CapacityResult, FleetCapacityResult
from repro.serving.engine import SimulationResult
from repro.serving.policies import get_policy
from repro.serving.qos import QoSReport, compute_qos, goodput_per_s
from repro.serving.utilization import UtilizationReport, utilization_report


class EndpointOverloaded(RuntimeError):
    """No request finished inside the horizon: the load is unsustainable."""


def _prefix_cache_lines(stats) -> list[str]:
    """Summary lines for a run's prefix-cache stats ([] when it ran cold)."""
    if stats is None:
        return []
    return [
        f"  prefix cache  : {stats.hit_rate:.0%} hit rate "
        f"({stats.hits}/{stats.eligible} prefix-bearing turns), "
        f"{stats.saved_prefill_tokens:,} prefill tokens saved",
        f"                  {stats.stashed} prefixes stashed, "
        f"{stats.evictions} evicted "
        f"({stats.reclaimed_blocks:,} blocks reclaimed), "
        f"{stats.preemptions} preemptions",
    ]


def _device_for(chip: ChipSpec, sim_cache: bool,
                context_bucket: int):
    """The device model for one run: fast path (memoized + compiled
    decode plans) or the uncompiled reference implementation."""
    from repro.hardware.chip import ChipKind

    if not sim_cache:
        if context_bucket != 1:
            # a silently ignored bucket would make a bucketing-error
            # study compare the reference against itself
            raise ValueError(
                "context_bucket requires the sim cache; drop "
                "sim_cache=False / --no-sim-cache or use context_bucket=1")
        if chip.kind == ChipKind.ADOR_HDA:
            return device_model_for(chip, compiled_decode=False)
        return device_model_for(chip)
    return CachedDeviceModel(device_model_for(chip),
                             context_bucket=context_bucket)


def build_cluster_engine(deployment: DeploymentSpec, *,
                         sim_cache: bool = True,
                         context_bucket: int = 1) -> ClusterEngine:
    """The :class:`ClusterEngine` a deployment spec describes.

    The one place deployment specs turn into engine fleets: the legacy
    ``replicas=N`` form takes the exact single-spec construction it
    always had, and an explicit ``fleet`` resolves each
    :class:`~repro.api.specs.ReplicaGroupSpec` to its own device model
    / model config / scheduler limits and builds the engine from
    groups.  Shared by :func:`simulate_cluster`, the sharded runner and
    the mixed-fleet capacity search, so every path sizes a fleet the
    same way.
    """
    if deployment.fleet is None:
        device = _device_for(deployment.chip_spec(), sim_cache,
                             context_bucket)
        return ClusterEngine(
            device, get_model(deployment.model),
            deployment.scheduler_limits(),
            num_devices=deployment.num_devices,
            replicas=deployment.replicas,
            router=deployment.router,
            fast_forward=sim_cache,
            autoscale=deployment.autoscale,
            prefix_cache=deployment.prefix_cache,
            faults=deployment.faults,
        )
    from repro.cluster.engine import EngineGroup

    groups = []
    for index, group in enumerate(deployment.fleet.groups):
        chip = group.chip_spec()
        groups.append(EngineGroup(
            index, group.label, chip.name,
            _device_for(chip, sim_cache, context_bucket),
            get_model(group.model), group.scheduler_limits(),
            num_devices=group.num_devices, count=group.count,
            cost_per_replica_s=group.cost_per_replica_s,
            min_count=group.min_count, max_count=group.max_count,
            provision_latency_s=group.provision_latency_s))
    return ClusterEngine.from_groups(
        groups,
        router=deployment.router,
        fast_forward=sim_cache,
        autoscale=deployment.autoscale,
        prefix_cache=deployment.prefix_cache,
        faults=deployment.faults,
    )


@dataclass(frozen=True)
class ServingReport:
    """Unified outcome of one serving experiment.

    Bundles the raw :class:`SimulationResult`, the QoS percentiles and
    the vendor-side utilization report, together with the specs that
    produced them — a self-describing record suitable for sweeps.
    """

    deployment: DeploymentSpec
    workload: WorkloadSpec
    chip: ChipSpec
    model: ModelConfig
    result: SimulationResult
    qos: QoSReport
    utilization: UtilizationReport

    def summary_lines(self) -> list[str]:
        """The human-readable report the CLI and examples print."""
        qos, util = self.qos, self.utilization
        lines = [
            f"simulated {len(self.result.finished)} requests at "
            f"{self.workload.rate_per_s:g} req/s on {self.chip.name} "
            f"({self.deployment.num_devices} device(s), "
            f"{self.deployment.batching} batching):",
            f"  TTFT mean/p95 : {qos.ttft_mean_s * 1e3:.1f} / "
            f"{qos.ttft_p95_s * 1e3:.1f} ms",
            f"  TBT  mean/p95 : {qos.tbt_mean_s * 1e3:.2f} / "
            f"{qos.tbt_p95_s * 1e3:.2f} ms",
            f"  E2E  mean     : {qos.e2e_mean_s:.2f} s",
            f"  throughput    : {qos.tokens_per_s:,.0f} tokens/s",
        ]
        lines += _prefix_cache_lines(self.result.prefix_cache)
        lines += [f"  {key}: {value:.2f}"
                  for key, value in util.as_dict().items()]
        return lines

    def summary(self) -> str:
        return "\n".join(self.summary_lines())


def simulate(deployment: DeploymentSpec, workload: WorkloadSpec,
             max_sim_seconds: float = 600.0, *,
             sim_cache: bool = True,
             context_bucket: int = 1,
             shards: int = 1,
             progress=None) -> "ServingReport | ClusterReport":
    """Run one serving experiment end-to-end and report QoS + utilization.

    Dispatches to :func:`simulate_cluster` when the deployment asks for
    more than one replica — or for an autoscaled fleet (even one that
    starts at a single replica: it can grow).  Raises
    :class:`EndpointOverloaded` if not a single request finishes within
    the horizon — the spec'd endpoint cannot sustain the load.

    ``sim_cache`` enables the simulator fast path: device-model
    memoization (:class:`~repro.perf.cache.CachedDeviceModel`) plus the
    engines' multi-step decode fast-forward.  With the default
    ``context_bucket=1`` the fast path is bit-identical to the reference
    loop (``sim_cache=False``); larger buckets quantize the decode
    context for higher hit rates at a small, measured latency error
    (see ``benchmarks/bench_sim_speed.py``).

    With ``workload.streaming`` (the default) and continuous batching,
    arrivals are generated lazily and consumed through a bounded
    look-ahead window — bit-identical to the materialized list, at
    constant memory.  ``shards`` (cluster runs only) partitions the
    fleet over worker processes (see
    :func:`repro.perf.scale.run_sharded_cluster`); ``progress`` is a
    ``progress(sim_time, done_count)`` heartbeat callback (see
    :class:`repro.perf.scale.ProgressReporter`).
    """
    if deployment.replicas > 1 or deployment.fleet is not None \
            or deployment.autoscale is not None \
            or (deployment.faults is not None
                and deployment.faults.enabled):
        # fault injection lives in the cluster engine — a single faulty
        # endpoint is a fleet of one; an explicit fleet always is a
        # cluster, even a fleet of one group of one
        return simulate_cluster(deployment, workload,
                                max_sim_seconds=max_sim_seconds,
                                sim_cache=sim_cache,
                                context_bucket=context_bucket,
                                shards=shards,
                                progress=progress)
    if shards != 1:
        raise ValueError(
            "shards apply to multi-replica cluster deployments only")
    chip = deployment.chip_spec()
    model = get_model(deployment.model)
    device = _device_for(chip, sim_cache, context_bucket)
    runner = get_policy(deployment.batching)
    if workload.streaming and deployment.batching == "continuous":
        # only the continuous engine consumes a lazy stream; the batch
        # policies slice and sort, so they keep the materialized list
        requests = workload.request_stream()
    else:
        requests = workload.build_requests()
    extra = {}
    if deployment.prefix_cache is not None \
            and deployment.prefix_cache.enabled:
        # only passed when live, so runners that predate the knob (and
        # disabled specs, which mean the cold path) see the unchanged
        # call signature
        extra["prefix_cache"] = deployment.prefix_cache
    if progress is not None:
        if deployment.batching != "continuous":
            raise ValueError(
                "the progress heartbeat requires continuous batching")
        extra["progress"] = progress
    result = runner(device, model, requests, deployment.scheduler_limits(),
                    num_devices=deployment.num_devices,
                    max_sim_seconds=max_sim_seconds,
                    fast_forward=sim_cache, **extra)
    if not result.finished:
        raise EndpointOverloaded(
            f"no requests finished within {max_sim_seconds:g} s — "
            f"{chip.name} cannot sustain {workload.rate_per_s:g} req/s")
    qos = compute_qos(result.finished, result.total_time_s)
    util = utilization_report(result, model, chip, deployment.num_devices)
    return ServingReport(
        deployment=deployment,
        workload=workload,
        chip=chip,
        model=model,
        result=result,
        qos=qos,
        utilization=util,
    )


# --------------------------------------------------------------------- #
# Capacity search                                                        #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class CapacityReport:
    """Unified outcome of one capacity search (paper Fig. 16).

    The capacity analogue of :class:`ServingReport`: the highest
    sustainable Poisson arrival rate under the spec'd SLO, the QoS
    measured at that rate, and the probe log of the search that found
    it.
    """

    deployment: DeploymentSpec
    workload: WorkloadSpec
    capacity_spec: CapacitySpec
    chip: ChipSpec
    model: ModelConfig
    capacity: CapacityResult

    @property
    def max_requests_per_s(self) -> float:
        return self.capacity.max_requests_per_s

    @property
    def qos(self) -> QoSReport:
        return self.capacity.qos_at_max

    def summary_lines(self) -> list[str]:
        spec = self.capacity_spec
        qos = self.qos
        probes = self.capacity.probes
        aborted = sum(1 for probe in probes if probe.aborted)
        slo = f"TBT p95 <= {spec.slo_tbt_s * 1e3:g} ms" \
            if spec.percentile == "p95" \
            else f"TBT {spec.percentile} <= {spec.slo_tbt_s * 1e3:g} ms"
        if spec.slo_ttft_s is not None:
            slo += f", TTFT <= {spec.slo_ttft_s * 1e3:g} ms"
        return [
            f"capacity of {self.chip.name} serving {self.model.name} "
            f"({self.deployment.num_devices} device(s), {slo}, "
            f"{self.workload.num_requests} requests/probe):",
            f"  max sustainable rate : "
            f"{self.capacity.max_requests_per_s:.2f} req/s",
            f"  TTFT p95 at max      : {qos.ttft_p95_s * 1e3:.1f} ms",
            f"  TBT  p95 at max      : {qos.tbt_p95_s * 1e3:.2f} ms",
            f"  throughput at max    : {qos.tokens_per_s:,.0f} tokens/s",
            f"  probes               : {len(probes)} "
            f"({aborted} aborted early, "
            f"{self.capacity.simulations} simulations)",
        ]

    def summary(self) -> str:
        return "\n".join(self.summary_lines())


def find_capacity(deployment: DeploymentSpec, workload: WorkloadSpec,
                  capacity: CapacitySpec | None = None,
                  max_sim_seconds: float = 600.0, *,
                  sim_cache: bool = True,
                  context_bucket: int = 1,
                  pool=None, **overrides) -> CapacityReport:
    """Search the highest SLO-compliant arrival rate for a deployment.

    ``capacity`` carries the SLO and search knobs (keyword
    ``overrides`` replace individual fields, e.g.
    ``find_capacity(dep, wl, slo_tbt_s=0.025)``).  The workload's
    ``rate_per_s`` is ignored — its trace, request count and seed
    define the probe workload.  The endpoint's scheduler limits follow
    the capacity engine's memory-derived admission policy (paper
    Fig. 16), not ``deployment.max_batch``.

    ``pool`` accepts a persistent
    :class:`repro.serving.capacity.CapacityProbePool` so the searches
    of a sweep share warm worker caches.

    A deployment with an explicit ``fleet`` dispatches to
    :func:`find_fleet_capacity` instead: the workload's ``rate_per_s``
    is then the *fixed* demand and the search finds the cheapest group
    mix sustaining it (``pool`` is rejected — fleet probes are full
    cluster simulations).
    """
    from repro.serving.capacity import max_capacity_under_slo

    if deployment.fleet is not None:
        if pool is not None:
            raise ValueError(
                "the probe pool parallelizes single-endpoint rate "
                "probes; the mixed-fleet search runs full cluster "
                "simulations and does not take one")
        return find_fleet_capacity(
            deployment, workload, capacity,
            max_sim_seconds=max_sim_seconds, sim_cache=sim_cache,
            context_bucket=context_bucket, **overrides)
    if deployment.replicas > 1 or deployment.autoscale is not None:
        raise ValueError(
            "capacity search simulates a single endpoint; "
            "set replicas=1 and drop the autoscale spec (scale the "
            "found rate by the fleet size)")
    if deployment.batching != "continuous":
        # the capacity engine is iteration-faithful only for continuous
        # batching; a capacity figure silently measured under a
        # different policy than the spec declares would be a lie
        raise ValueError(
            f"capacity search requires continuous batching, "
            f"got {deployment.batching!r}")
    if deployment.prefix_cache is not None \
            and deployment.prefix_cache.enabled:
        # the capacity engine derives its own memory-based admission
        # limits and probes single-turn Poisson streams — a prefix
        # cache would be silently inert, faking a cold-path capacity
        # as a reuse result.  Bisect simulate() over session rates
        # instead (benchmarks/bench_prefix_reuse.py shows how).
        raise ValueError(
            "capacity search does not model prefix caching; drop the "
            "prefix_cache spec (or bisect simulate() over session "
            "rates, as benchmarks/bench_prefix_reuse.py does)")
    if deployment.faults is not None and deployment.faults.enabled:
        # a capacity figure quietly measured on a fault-free endpoint
        # while the spec asks for crashes would overstate resilience;
        # sweep simulate() under the fault spec instead
        raise ValueError(
            "capacity search models a fault-free endpoint; drop the "
            "faults spec (benchmarks/bench_resilience.py sweeps "
            "goodput under faults instead)")
    if overrides:
        base = capacity if capacity is not None else CapacitySpec()
        capacity = dataclasses.replace(base, **overrides)
    elif capacity is None:
        capacity = CapacitySpec()
    chip = deployment.chip_spec()
    model = get_model(deployment.model)
    device = _device_for(chip, sim_cache, context_bucket)
    result = max_capacity_under_slo(
        device, model, workload.trace_config(),
        slo_tbt_s=capacity.slo_tbt_s,
        slo_ttft_s=capacity.slo_ttft_s,
        num_devices=deployment.num_devices,
        request_count=workload.num_requests,
        seed=workload.seed,
        percentile=capacity.percentile,
        rate_bounds=(capacity.rate_low, capacity.rate_high),
        iterations=capacity.iterations,
        max_sim_seconds=max_sim_seconds,
        reuse_arrivals=capacity.reuse_arrivals,
        early_abort=capacity.early_abort,
        parallel_probes=capacity.parallel_probes,
        pool=pool,
        sim_cache=sim_cache,
    )
    return CapacityReport(
        deployment=deployment,
        workload=workload,
        capacity_spec=capacity,
        chip=chip,
        model=model,
        capacity=result,
    )


@dataclass(frozen=True)
class FleetCapacityReport:
    """Unified outcome of one mixed-fleet capacity search.

    The fleet analogue of :class:`CapacityReport` with the axes
    swapped: the arrival rate is fixed (``workload.rate_per_s``) and
    the search variable is the fleet itself — the report names the
    cheapest per-group replica mix that sustains the rate under the
    SLO, and the QoS measured at that mix.
    """

    deployment: DeploymentSpec
    workload: WorkloadSpec
    capacity_spec: CapacitySpec
    fleet: FleetCapacityResult

    @property
    def counts(self) -> tuple:
        return self.fleet.counts

    @property
    def qos(self) -> QoSReport:
        return self.fleet.qos_at_best

    @property
    def cost(self) -> float:
        return self.fleet.cost

    def mix_label(self) -> str:
        """``"2xador+1xa100"``-style label of the winning mix."""
        return "+".join(
            f"{count}x{group.label}"
            for count, group in zip(self.fleet.counts,
                                    self.deployment.fleet.groups))

    def summary_lines(self) -> list[str]:
        spec = self.capacity_spec
        qos = self.qos
        slo = f"TBT {spec.percentile} <= {spec.slo_tbt_s * 1e3:g} ms"
        if spec.slo_ttft_s is not None:
            slo += f", TTFT <= {spec.slo_ttft_s * 1e3:g} ms"
        return [
            f"cost-optimal fleet for {self.workload.rate_per_s:g} "
            f"req/s ({slo}, {self.workload.num_requests} "
            f"requests/probe):",
            f"  cheapest mix    : {self.mix_label()} "
            f"(cost rate {self.fleet.cost_rate:g}/s)",
            f"  replica-seconds : {self.fleet.replica_seconds:.1f} "
            f"(cost {self.fleet.cost:.1f})",
            f"  TTFT p95 at mix : {qos.ttft_p95_s * 1e3:.1f} ms",
            f"  TBT  p95 at mix : {qos.tbt_p95_s * 1e3:.2f} ms",
            f"  throughput      : {qos.tokens_per_s:,.0f} tokens/s",
            f"  probes          : {len(self.fleet.probes)} "
            f"({self.fleet.simulations} simulations)",
        ]

    def summary(self) -> str:
        return "\n".join(self.summary_lines())


def find_fleet_capacity(deployment: DeploymentSpec,
                        workload: WorkloadSpec,
                        capacity: CapacitySpec | None = None,
                        max_sim_seconds: float = 600.0, *,
                        sim_cache: bool = True,
                        context_bucket: int = 1,
                        **overrides) -> FleetCapacityReport:
    """Find the cheapest group mix of a fleet meeting the SLO.

    The deployment must carry an explicit :class:`FleetSpec`; each
    group's candidate count ranges over ``[min_count or 0, max_count
    or count]`` and the search
    (:func:`repro.serving.capacity.cost_optimal_fleet`) bisects the
    leading group's count within every combination of the others,
    ranking feasible mixes by ``sum(count * cost_per_replica_s)``.
    Unlike :func:`find_capacity`, the workload's ``rate_per_s`` is
    honored — it is the demand the mix must sustain.
    """
    from repro.serving.capacity import cost_optimal_fleet

    if overrides:
        base = capacity if capacity is not None else CapacitySpec()
        capacity = dataclasses.replace(base, **overrides)
    elif capacity is None:
        capacity = CapacitySpec()
    result = cost_optimal_fleet(
        deployment, workload, capacity,
        max_sim_seconds=max_sim_seconds,
        sim_cache=sim_cache, context_bucket=context_bucket)
    return FleetCapacityReport(
        deployment=deployment,
        workload=workload,
        capacity_spec=capacity,
        fleet=result,
    )


# --------------------------------------------------------------------- #
# Cluster experiments                                                    #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class ClusterReport:
    """Unified outcome of one multi-replica serving experiment.

    The fleet-level analogue of :class:`ServingReport`: cluster QoS is
    computed over every finished request against the slowest replica's
    wall clock, and ``load`` summarizes how evenly the router spread the
    work.  ``result`` is the merged fleet view; per-replica results stay
    available in ``cluster.replica_results``.  Autoscaled deployments
    additionally expose the scaling history as ``autoscale``
    (:class:`~repro.cluster.report.AutoscaleTrace`).
    """

    deployment: DeploymentSpec
    workload: WorkloadSpec
    chip: ChipSpec
    model: ModelConfig
    cluster: ClusterResult
    qos: QoSReport

    @property
    def result(self) -> SimulationResult:
        return self.cluster.merged

    @property
    def load(self) -> LoadImbalanceStats:
        return self.cluster.load

    @property
    def autoscale(self):
        return self.cluster.autoscale

    @property
    def faults(self):
        """The run's :class:`~repro.cluster.faults.FaultTrace`
        (``None`` when fault injection was off)."""
        return self.cluster.faults

    @property
    def groups(self):
        """Per-group :class:`~repro.cluster.report.GroupBreakdown`
        tuple (``None`` on homogeneous fleets)."""
        return self.cluster.groups

    def summary_lines(self) -> list[str]:
        qos, load = self.qos, self.load
        requests = ", ".join(str(n) for n in load.requests_per_replica)
        busy = ", ".join(f"{b:.2f}"
                         for b in load.busy_fraction_per_replica)
        trace = self.autoscale
        if self.deployment.fleet is not None:
            mix = "+".join(f"{g.count}x{g.label}"
                           for g in self.deployment.fleet.groups)
            fleet = mix if trace is None else \
                f"autoscaled (start {mix}, peak {trace.peak_replicas})"
            endpoint = "fleet"
        else:
            fleet = f"{self.deployment.replicas}x" if trace is None else \
                f"autoscaled (start {self.deployment.replicas}, " \
                f"peak {trace.peak_replicas})"
            endpoint = self.chip.name
        lines = [
            f"simulated {len(self.result.finished)} requests at "
            f"{self.workload.rate_per_s:g} req/s on "
            f"{fleet} {endpoint} "
            f"({self.deployment.num_devices} device(s)/replica, "
            f"{self.deployment.router} routing):",
            f"  TTFT mean/p95 : {qos.ttft_mean_s * 1e3:.1f} / "
            f"{qos.ttft_p95_s * 1e3:.1f} ms",
            f"  TBT  mean/p95 : {qos.tbt_mean_s * 1e3:.2f} / "
            f"{qos.tbt_p95_s * 1e3:.2f} ms",
            f"  E2E  mean     : {qos.e2e_mean_s:.2f} s",
            f"  throughput    : {qos.tokens_per_s:,.0f} tokens/s",
            f"  requests/replica : {requests} "
            f"(imbalance {load.request_imbalance:.2f})",
            f"  busy fraction/replica : {busy}",
        ]
        if self.cluster.groups is not None:
            for group in self.cluster.groups:
                if group.qos is None:
                    tail = "no finished requests"
                else:
                    tail = (f"TTFT p95 {group.qos.ttft_p95_s * 1e3:.1f} "
                            f"ms, {group.qos.tokens_per_s:,.0f} tokens/s")
                lines.append(
                    f"  group {group.group} [{group.name}] : "
                    f"{group.replica_count} replica(s), "
                    f"{group.finished_requests} finished, "
                    f"{group.replica_seconds:.1f} replica-s "
                    f"(cost {group.cost:.1f}); {tail}")
        lines += _prefix_cache_lines(self.result.prefix_cache)
        if trace is not None:
            spec = self.deployment.autoscale
            lines += [
                f"  autoscaler : {spec.policy} every "
                f"{spec.decision_interval_s:g} s, range "
                f"[{spec.min_replicas}, {spec.max_replicas}], "
                f"{trace.scale_ups} up / {trace.scale_downs} down "
                f"({trace.warm_launches} warm, {trace.cold_launches} "
                f"cold launches)",
                f"  replica-seconds : {trace.replica_seconds:.1f} "
                f"(fixed fleet of {spec.max_replicas} would cost "
                f"{spec.max_replicas * self.result.total_time_s:.1f})",
            ]
        faults = self.cluster.faults
        if faults is not None:
            fault_spec = self.deployment.faults
            goodput = goodput_per_s(self.result.finished,
                                    self.result.total_time_s,
                                    fault_spec.slo_ttft_s)
            lines += [
                f"  goodput       : {goodput:.2f} req/s meeting "
                f"TTFT <= {fault_spec.slo_ttft_s * 1e3:g} ms "
                f"(raw {qos.requests_per_s:.2f} req/s, "
                f"{qos.failed_requests} failed)",
                f"  faults        : {faults.crashes} crashes "
                f"({faults.lost_requests} requests lost), "
                f"{faults.slowdowns} slowdowns, "
                f"{faults.stalls} stalls; {faults.retries} retries",
            ]
        return lines

    def summary(self) -> str:
        return "\n".join(self.summary_lines())


def simulate_cluster(deployment: DeploymentSpec, workload: WorkloadSpec,
                     max_sim_seconds: float = 600.0, *,
                     sim_cache: bool = True,
                     context_bucket: int = 1,
                     shards: int = 1,
                     progress=None) -> ClusterReport:
    """Run one cluster experiment: N replicas behind the spec'd router.

    The cluster engine is iteration-faithful only for continuous
    batching (each replica is a live, steppable endpoint); other
    batching policies are rejected loudly rather than silently
    approximated.  ``sim_cache`` / ``context_bucket`` behave as in
    :func:`simulate`; the memoized device model is shared by every
    replica, so one replica's decode evaluations warm the whole fleet.

    ``shards > 1`` partitions the fleet and its traffic over worker
    processes via :func:`repro.perf.scale.run_sharded_cluster` — a
    modeled approximation (per-shard routing), rejected loudly for
    autoscaled or fault-injected deployments.  ``shards=1`` (default)
    takes the exact engine path.
    """
    if deployment.batching != "continuous":
        raise ValueError(
            f"cluster serving requires continuous batching, "
            f"got {deployment.batching!r}")
    chip = deployment.chip_spec() if deployment.fleet is None \
        else deployment.fleet.groups[0].chip_spec()
    model = get_model(deployment.model if deployment.fleet is None
                      else deployment.fleet.groups[0].model)
    fleet_label = f"{deployment.replicas}x {chip.name}" \
        if deployment.fleet is None else \
        "+".join(f"{g.count}x{g.label}"
                 for g in deployment.fleet.groups)
    if shards != 1:
        from repro.perf.scale import run_sharded_cluster

        if progress is not None:
            raise ValueError(
                "the progress heartbeat is per-process; run sharded "
                "simulations without it (shards report on completion)")
        cluster = run_sharded_cluster(
            deployment, workload, max_sim_seconds, shards,
            sim_cache=sim_cache, context_bucket=context_bucket)
        if not cluster.merged.finished:
            raise EndpointOverloaded(
                f"no requests finished within {max_sim_seconds:g} s — "
                f"{fleet_label} cannot sustain "
                f"{workload.rate_per_s:g} req/s")
        return ClusterReport(
            deployment=deployment,
            workload=workload,
            chip=chip,
            model=model,
            cluster=cluster,
            qos=cluster.qos(),
        )
    requests = workload.request_stream() if workload.streaming \
        else workload.build_requests()
    engine = build_cluster_engine(deployment, sim_cache=sim_cache,
                                  context_bucket=context_bucket)
    cluster = engine.run(requests, max_sim_seconds=max_sim_seconds,
                         progress=progress)
    if not cluster.merged.finished:
        raise EndpointOverloaded(
            f"no requests finished within {max_sim_seconds:g} s — "
            f"{fleet_label} cannot sustain "
            f"{workload.rate_per_s:g} req/s")
    return ClusterReport(
        deployment=deployment,
        workload=workload,
        chip=chip,
        model=model,
        cluster=cluster,
        qos=cluster.qos(),
    )


# --------------------------------------------------------------------- #
# Experiment files                                                       #
# --------------------------------------------------------------------- #

def load_experiment(path: str | pathlib.Path) -> Experiment:
    """Load a declarative ``experiment.json`` file."""
    data = json.loads(pathlib.Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: experiment file must hold a JSON object")
    return Experiment.from_dict(data)


def save_experiment(experiment: Experiment,
                    path: str | pathlib.Path) -> pathlib.Path:
    """Write an experiment as formatted JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(experiment.to_dict(), indent=2) + "\n")
    return path


def run_experiment(source: Experiment | str | pathlib.Path, *,
                   sim_cache: bool = True,
                   context_bucket: int = 1,
                   shards: int = 1,
                   progress=None
                   ) -> "ServingReport | ClusterReport | CapacityReport":
    """Execute an :class:`Experiment` (or a path to one) end-to-end.

    An experiment with a ``capacity`` section runs the SLO-capacity
    search and returns a :class:`CapacityReport`; otherwise the fixed-
    rate simulation runs as before.  ``shards`` / ``progress`` forward
    to :func:`simulate` (fixed-rate runs only — the capacity search
    manages its own probe parallelism).
    """
    experiment = source if isinstance(source, Experiment) \
        else load_experiment(source)
    if experiment.capacity is not None:
        if shards != 1:
            raise ValueError(
                "shards apply to fixed-rate cluster runs; the capacity "
                "search parallelizes over probes instead (workers=N)")
        return find_capacity(experiment.deployment, experiment.workload,
                             experiment.capacity,
                             max_sim_seconds=experiment.max_sim_seconds,
                             sim_cache=sim_cache,
                             context_bucket=context_bucket)
    return simulate(experiment.deployment, experiment.workload,
                    max_sim_seconds=experiment.max_sim_seconds,
                    sim_cache=sim_cache, context_bucket=context_bucket,
                    shards=shards, progress=progress)
