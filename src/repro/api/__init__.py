"""``repro.api`` — the declarative experiment surface of the framework.

One import gives the full exploration loop the ROADMAP asks for: named
registries over chips / traces / batching policies / router policies,
frozen serializable specs, and a :func:`simulate` facade returning a
unified :class:`ServingReport` — or, with ``replicas > 1``, a
:class:`ClusterReport` from the multi-replica cluster engine
(:mod:`repro.cluster`)::

    from repro.api import DeploymentSpec, WorkloadSpec, simulate

    report = simulate(
        DeploymentSpec(chip="ador", model="llama3-8b"),
        WorkloadSpec(trace="ultrachat", rate_per_s=15.0,
                     num_requests=200, seed=7),
    )
    print(report.summary())

Sweeps become data, not scripts: serialize an :class:`Experiment` to
JSON (``save_experiment``) and replay it anywhere with
``repro run experiment.json`` or :func:`run_experiment` — same seed,
identical report.

Fleets need not be homogeneous: a :class:`DeploymentSpec` carrying an
explicit :class:`FleetSpec` of weighted :class:`ReplicaGroupSpec`
groups mixes chips in one cluster (``router="hetero-aware"`` routes by
probed capability), and :func:`find_fleet_capacity` searches the
cheapest group mix meeting an SLO at a fixed demand.
"""

from repro.api.facade import (
    CapacityReport,
    ClusterReport,
    EndpointOverloaded,
    FleetCapacityReport,
    ServingReport,
    build_cluster_engine,
    find_capacity,
    find_fleet_capacity,
    load_experiment,
    run_experiment,
    save_experiment,
    simulate,
    simulate_cluster,
)
from repro.cluster.autoscaler import (
    AutoscaleSpec,
    get_autoscaler,
    list_autoscalers,
    register_autoscaler,
)
from repro.cluster.faults import FaultEvent, FaultSpec, FaultTrace
from repro.cluster.router import get_router, list_routers, register_router
from repro.api.specs import (
    CapacitySpec,
    DeploymentSpec,
    Experiment,
    FleetSpec,
    ReplicaGroupSpec,
    WorkloadSpec,
    chip_from_dict,
    chip_to_dict,
)
from repro.cluster.report import GroupBreakdown
from repro.core.scheduling import device_model_for
# after specs/facade above: perf.scale imports repro.api.specs, which is
# already initialized by this point, so the import order is cycle-free
from repro.perf.scale import (
    ProgressReporter,
    ShardPool,
    StreamStats,
    run_sharded_cluster,
)
from repro.hardware.registry import get_chip, list_chips, register_chip
from repro.models.zoo import get_model, list_models
from repro.serving.policies import get_policy, list_policies, register_policy
from repro.serving.prefix_cache import (
    PrefixCacheSpec,
    get_eviction_policy,
    list_eviction_policies,
    register_eviction_policy,
)
from repro.serving.sessions import SessionConfig
from repro.serving.traces import get_trace, list_traces, register_trace

__all__ = [
    "DeploymentSpec",
    "WorkloadSpec",
    "Experiment",
    "CapacitySpec",
    "FleetSpec",
    "ReplicaGroupSpec",
    "ServingReport",
    "ClusterReport",
    "CapacityReport",
    "FleetCapacityReport",
    "GroupBreakdown",
    "EndpointOverloaded",
    "simulate",
    "simulate_cluster",
    "build_cluster_engine",
    "find_capacity",
    "find_fleet_capacity",
    "get_router",
    "list_routers",
    "register_router",
    "AutoscaleSpec",
    "get_autoscaler",
    "list_autoscalers",
    "register_autoscaler",
    "FaultSpec",
    "FaultEvent",
    "FaultTrace",
    "PrefixCacheSpec",
    "SessionConfig",
    "get_eviction_policy",
    "list_eviction_policies",
    "register_eviction_policy",
    "load_experiment",
    "save_experiment",
    "run_experiment",
    "chip_to_dict",
    "chip_from_dict",
    "get_chip",
    "list_chips",
    "register_chip",
    "get_trace",
    "list_traces",
    "register_trace",
    "get_policy",
    "list_policies",
    "register_policy",
    "get_model",
    "list_models",
    "device_model_for",
    "run_sharded_cluster",
    "ShardPool",
    "StreamStats",
    "ProgressReporter",
]
