"""Serializable experiment specs: the declarative half of ``repro.api``.

A serving experiment is fully described by two frozen value objects —
*what* is deployed (:class:`DeploymentSpec`) and *what load* hits it
(:class:`WorkloadSpec`) — optionally wrapped in an :class:`Experiment`
with a simulation horizon.  All three round-trip through plain dicts
(``to_dict`` / ``from_dict``) and therefore through JSON, so a sweep can
be generated in Python, checked into a repo as ``experiment.json`` files,
and replayed bit-identically anywhere (same seed, same report).

Chips are referenced by registry name (``"ador"``, ``"a100"``, ...) or
embedded as a full custom :class:`~repro.hardware.chip.ChipSpec`, which
:func:`chip_to_dict` / :func:`chip_from_dict` serialize field-by-field.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing
    from repro.serving.stream import RequestStream

from repro.cluster.autoscaler import AutoscaleSpec
from repro.cluster.faults import FaultSpec
from repro.hardware.chip import ChipKind, ChipSpec
from repro.hardware.components import MacTree, SystolicArray, VectorUnit
from repro.hardware.interconnect import NocSpec, NocTopology, P2pSpec
from repro.hardware.memory import Dram, DramKind, Sram
from repro.hardware.registry import get_chip
from repro.hardware.technology import ProcessNode
from repro.serving.dataset import ChatTraceConfig
from repro.serving.request import Request
from repro.serving.prefix_cache import PrefixCacheSpec
from repro.serving.scheduler import SchedulerLimits
from repro.serving.sessions import SessionConfig
from repro.serving.traces import get_trace

_PROCESS_BY_LABEL = {node.label: node for node in ProcessNode}


# --------------------------------------------------------------------- #
# ChipSpec <-> dict                                                      #
# --------------------------------------------------------------------- #

def _finite(value: float | None) -> float | None:
    """Map +inf to None so the dict stays strict-JSON clean."""
    if value is None or value == float("inf"):
        return None
    return value


def _require_mapping(data: Any, context: str) -> dict[str, Any]:
    if not isinstance(data, dict):
        raise ValueError(
            f"{context} section must be a JSON object, "
            f"got {type(data).__name__}")
    return data


def _reject_unknown_keys(data: dict[str, Any], allowed: frozenset[str],
                         context: str) -> None:
    """A typo'd field silently running with defaults would defeat the
    whole reproducible-config contract — fail loudly instead."""
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(
            f"unknown {context} field(s): {', '.join(sorted(unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}")


def _sram_to_dict(sram: Sram) -> dict[str, float | None]:
    return {"size_bytes": sram.size_bytes,
            "bandwidth_bytes_per_s": _finite(sram.bandwidth_bytes_per_s)}


def _sram_from_dict(data: dict[str, Any]) -> Sram:
    bandwidth = data.get("bandwidth_bytes_per_s")
    return Sram(size_bytes=data["size_bytes"],
                bandwidth_bytes_per_s=float("inf") if bandwidth is None
                else bandwidth)


def chip_to_dict(chip: ChipSpec) -> dict[str, Any]:
    """Serialize a :class:`ChipSpec` to a JSON-compatible dict."""
    return {
        "name": chip.name,
        "kind": chip.kind.value,
        "frequency_hz": chip.frequency_hz,
        "cores": chip.cores,
        "systolic_array": asdict(chip.systolic_array)
        if chip.systolic_array else None,
        "mac_tree": asdict(chip.mac_tree) if chip.mac_tree else None,
        "vector_unit": asdict(chip.vector_unit) if chip.vector_unit else None,
        "local_memory": _sram_to_dict(chip.local_memory),
        "global_memory": _sram_to_dict(chip.global_memory),
        "dram": {
            "kind": chip.dram.kind.value,
            "size_bytes": chip.dram.size_bytes,
            "bandwidth_bytes_per_s": chip.dram.bandwidth_bytes_per_s,
            "modules": chip.dram.modules,
        },
        "noc": {
            "bandwidth_bytes_per_s": chip.noc.bandwidth_bytes_per_s,
            "topology": chip.noc.topology.value,
            "hop_latency_s": chip.noc.hop_latency_s,
        },
        "p2p": {
            "bandwidth_bytes_per_s": chip.p2p.bandwidth_bytes_per_s,
            "latency_s": chip.p2p.latency_s,
        },
        "process": chip.process.label,
        "die_area_mm2": chip.die_area_mm2,
        "peak_flops_override": chip.peak_flops_override,
        "tdp_w": chip.tdp_w,
    }


def chip_from_dict(data: dict[str, Any]) -> ChipSpec:
    """Rebuild a :class:`ChipSpec` from :func:`chip_to_dict` output."""
    process = data["process"]
    if process not in _PROCESS_BY_LABEL:
        known = ", ".join(sorted(_PROCESS_BY_LABEL))
        raise KeyError(f"unknown process node {process!r}; known: {known}")
    return ChipSpec(
        name=data["name"],
        kind=ChipKind(data["kind"]),
        frequency_hz=data["frequency_hz"],
        cores=data["cores"],
        systolic_array=SystolicArray(**data["systolic_array"])
        if data.get("systolic_array") else None,
        mac_tree=MacTree(**data["mac_tree"]) if data.get("mac_tree") else None,
        vector_unit=VectorUnit(**data["vector_unit"])
        if data.get("vector_unit") else None,
        local_memory=_sram_from_dict(data["local_memory"]),
        global_memory=_sram_from_dict(data["global_memory"]),
        dram=Dram(
            kind=DramKind(data["dram"]["kind"]),
            size_bytes=data["dram"]["size_bytes"],
            bandwidth_bytes_per_s=data["dram"]["bandwidth_bytes_per_s"],
            modules=data["dram"].get("modules", 8),
        ),
        noc=NocSpec(
            bandwidth_bytes_per_s=data["noc"]["bandwidth_bytes_per_s"],
            topology=NocTopology(data["noc"].get("topology", "ring")),
            hop_latency_s=data["noc"].get("hop_latency_s", 2e-9),
        ),
        p2p=P2pSpec(
            bandwidth_bytes_per_s=data["p2p"]["bandwidth_bytes_per_s"],
            latency_s=data["p2p"].get("latency_s", 1e-6),
        ),
        process=_PROCESS_BY_LABEL[process],
        die_area_mm2=data.get("die_area_mm2"),
        peak_flops_override=data.get("peak_flops_override"),
        tdp_w=data.get("tdp_w"),
    )


# --------------------------------------------------------------------- #
# Workload                                                               #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class WorkloadSpec:
    """The load side of an experiment: which requests arrive, and when.

    ``trace`` is a registry name (``"ultrachat"``, ``"fixed-512x128"``,
    or anything registered via
    :func:`repro.serving.traces.register_trace`) or an inline
    :class:`ChatTraceConfig`.  ``arrival`` names the arrival process:

    * ``"poisson"`` — independent single-turn requests drawn from the
      trace at ``rate_per_s``;
    * ``"sessions"`` — multi-turn chat sessions
      (:class:`~repro.serving.sessions.MultiTurnSessionGenerator`):
      ``rate_per_s`` becomes the Poisson *session-start* rate and
      ``num_requests`` the session count; turn lengths come from the
      ``session`` config (the ``trace`` field is unused — session
      prompts are the accumulated history, not trace marginals).  The
      emitted requests carry ``session_id`` / ``turn_index`` /
      ``history_tokens``, the load shape prefix caching and
      session-affinity routing are about.

    ``streaming`` (default on) lets the facade feed the engines a lazy
    :meth:`iter_requests` stream instead of a materialized
    :meth:`build_requests` list.  The two are **bit-identical** — the
    streaming generators replay the exact draw sequence of the
    materializing ones — so the knob only changes peak memory, never a
    result; set it to ``False`` (CLI ``--no-stream``) to force the
    classic list path.
    """

    trace: str | ChatTraceConfig = "ultrachat"
    arrival: str = "poisson"
    rate_per_s: float = 15.0
    num_requests: int = 200
    seed: int = 7
    session: SessionConfig | None = None
    streaming: bool = True

    _ARRIVALS = ("poisson", "sessions")

    def __post_init__(self) -> None:
        if self.arrival not in self._ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"supported: {', '.join(self._ARRIVALS)}")
        if self.session is not None and self.arrival != "sessions":
            raise ValueError(
                "a session config requires arrival='sessions' — "
                "poisson arrivals would silently ignore it")
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")

    def trace_config(self) -> ChatTraceConfig:
        """Resolve the trace reference to a concrete config."""
        if isinstance(self.trace, ChatTraceConfig):
            return self.trace
        return get_trace(self.trace)

    def build_requests(self) -> list[Request]:
        """Generate the deterministic request stream this spec describes."""
        import numpy as np

        rng = np.random.default_rng(self.seed)
        if self.arrival == "sessions":
            from repro.serving.sessions import MultiTurnSessionGenerator

            generator = MultiTurnSessionGenerator(
                self.session if self.session is not None
                else SessionConfig(), rng)
            return generator.generate_stream(self.num_requests,
                                             self.rate_per_s)
        from repro.serving.generator import PoissonRequestGenerator

        generator = PoissonRequestGenerator(self.trace_config(),
                                            self.rate_per_s, rng)
        return generator.generate(self.num_requests)

    def iter_requests(self) -> Iterator[Request]:
        """Lazily generate the identical request stream.

        Yields the same requests — same ids, arrival floats and token
        lengths, bit for bit — as :meth:`build_requests`, at constant
        memory: the streaming replay generators fast-forward per-role
        RNGs instead of materializing whole draw arrays (see
        :mod:`repro.serving.generator`).
        """
        if self.arrival == "sessions":
            from repro.serving.sessions import iter_session_requests

            return iter_session_requests(
                self.session if self.session is not None
                else SessionConfig(),
                self.num_requests, self.rate_per_s, self.seed)
        from repro.serving.generator import iter_poisson_requests

        return iter_poisson_requests(self.trace_config(), self.rate_per_s,
                                     self.seed, self.num_requests)

    def request_stream(self) -> RequestStream:
        """:meth:`iter_requests` wrapped in the engines' bounded-window
        :class:`~repro.serving.stream.RequestStream` view."""
        from repro.serving.stream import as_stream

        return as_stream(self.iter_requests())

    def to_dict(self) -> dict[str, Any]:
        trace = self.trace if isinstance(self.trace, str) \
            else asdict(self.trace)
        return {
            "trace": trace,
            "arrival": self.arrival,
            "rate_per_s": self.rate_per_s,
            "num_requests": self.num_requests,
            "seed": self.seed,
            "session": asdict(self.session)
            if self.session is not None else None,
            "streaming": self.streaming,
        }

    _FIELDS = frozenset(
        ("trace", "arrival", "rate_per_s", "num_requests", "seed",
         "session", "streaming"))

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WorkloadSpec":
        _require_mapping(data, "workload")
        _reject_unknown_keys(data, cls._FIELDS, "workload")
        trace = data.get("trace", "ultrachat")
        if isinstance(trace, dict):
            trace = ChatTraceConfig(**trace)
        session = data.get("session")
        if session is not None:
            _require_mapping(session, "workload session")
            _reject_unknown_keys(
                session,
                frozenset(SessionConfig.__dataclass_fields__),
                "workload session")
            session = SessionConfig(**session)
        return cls(
            trace=trace,
            arrival=data.get("arrival", "poisson"),
            rate_per_s=data.get("rate_per_s", 15.0),
            num_requests=data.get("num_requests", 200),
            seed=data.get("seed", 7),
            session=session,
            streaming=data.get("streaming", True),
        )


# --------------------------------------------------------------------- #
# Fleet composition                                                      #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class ReplicaGroupSpec:
    """One homogeneous slice of a heterogeneous fleet.

    A group is ``count`` identical endpoints sharing one hardware and
    scheduling configuration — the per-endpoint knobs mirror
    :class:`DeploymentSpec` (chip, model, device count, batch and KV
    limits), and the group-level knobs describe how the fleet treats
    the slice as a unit:

    * ``cost_per_replica_s`` prices one replica-second of the group —
      the currency the cost-aware autoscaler and the mixed-fleet
      capacity search optimize over (relative units; 1.0 for the
      baseline chip, 2.5 for a chip 2.5x as expensive to run).
    * ``min_count`` / ``max_count`` bound the group under autoscaling
      (``None`` defers to the fleet-wide
      :class:`~repro.cluster.autoscaler.AutoscaleSpec` range).
    * ``provision_latency_s`` overrides the fleet-wide cold-provision
      latency for this group (``None`` inherits it) — a cloud GPU pool
      and an on-prem accelerator rack rarely launch at the same speed.
    * ``name`` labels the group in reports (defaults to the chip name).
    """

    chip: str | ChipSpec = "ador"
    model: str = "llama3-8b"
    count: int = 1
    num_devices: int = 1
    max_batch: int = 256
    prefill_chunk_tokens: int = 512
    kv_budget_bytes: float | None = None
    cost_per_replica_s: float = 1.0
    min_count: int | None = None
    max_count: int | None = None
    provision_latency_s: float | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("group count must be >= 0")
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if self.cost_per_replica_s <= 0:
            raise ValueError("cost_per_replica_s must be positive")
        if self.min_count is not None and self.min_count < 0:
            raise ValueError("min_count must be >= 0")
        if self.max_count is not None and self.max_count < 1:
            raise ValueError("max_count must be >= 1")
        if self.min_count is not None and self.max_count is not None \
                and self.min_count > self.max_count:
            raise ValueError(
                f"min_count={self.min_count} must not exceed "
                f"max_count={self.max_count}")
        if self.provision_latency_s is not None \
                and self.provision_latency_s < 0:
            raise ValueError("provision_latency_s must be non-negative")
        # canonicalize "unlimited" exactly as DeploymentSpec does
        if self.kv_budget_bytes == float("inf"):
            object.__setattr__(self, "kv_budget_bytes", None)

    @property
    def label(self) -> str:
        """Report label: explicit ``name``, else the chip reference."""
        if self.name:
            return self.name
        return self.chip if isinstance(self.chip, str) else self.chip.name

    def chip_spec(self) -> ChipSpec:
        """Resolve the chip reference to a concrete spec."""
        if isinstance(self.chip, ChipSpec):
            return self.chip
        return get_chip(self.chip)

    def scheduler_limits(self) -> SchedulerLimits:
        """The :class:`SchedulerLimits` one replica of the group runs."""
        budget = float("inf") if self.kv_budget_bytes is None \
            else self.kv_budget_bytes
        return SchedulerLimits(
            max_batch=self.max_batch,
            prefill_chunk_tokens=self.prefill_chunk_tokens,
            kv_budget_bytes=budget,
        )

    def to_dict(self) -> dict[str, Any]:
        chip = self.chip if isinstance(self.chip, str) \
            else chip_to_dict(self.chip)
        return {
            "chip": chip,
            "model": self.model,
            "count": self.count,
            "num_devices": self.num_devices,
            "max_batch": self.max_batch,
            "prefill_chunk_tokens": self.prefill_chunk_tokens,
            "kv_budget_bytes": _finite(self.kv_budget_bytes),
            "cost_per_replica_s": self.cost_per_replica_s,
            "min_count": self.min_count,
            "max_count": self.max_count,
            "provision_latency_s": self.provision_latency_s,
            "name": self.name,
        }

    _FIELDS = frozenset(
        ("chip", "model", "count", "num_devices", "max_batch",
         "prefill_chunk_tokens", "kv_budget_bytes", "cost_per_replica_s",
         "min_count", "max_count", "provision_latency_s", "name"))

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ReplicaGroupSpec":
        _require_mapping(data, "replica group")
        _reject_unknown_keys(data, cls._FIELDS, "replica group")
        chip = data.get("chip", "ador")
        if isinstance(chip, dict):
            chip = chip_from_dict(chip)
        return cls(
            chip=chip,
            model=data.get("model", "llama3-8b"),
            count=data.get("count", 1),
            num_devices=data.get("num_devices", 1),
            max_batch=data.get("max_batch", 256),
            prefill_chunk_tokens=data.get("prefill_chunk_tokens", 512),
            kv_budget_bytes=data.get("kv_budget_bytes"),
            cost_per_replica_s=data.get("cost_per_replica_s", 1.0),
            min_count=data.get("min_count"),
            max_count=data.get("max_count"),
            provision_latency_s=data.get("provision_latency_s"),
            name=data.get("name", ""),
        )


@dataclass(frozen=True)
class FleetSpec:
    """An explicit fleet composition: an ordered tuple of replica groups.

    The heterogeneous generalization of ``DeploymentSpec(replicas=N)``:
    a fleet of ``N`` identical endpoints is a one-group fleet, and the
    engine treats the two identically (parity-tested bit-identical).
    Group order is semantic — replica ids are assigned group by group,
    and cost ties in the autoscaler and the capacity search break
    toward the earliest group — so two fleets with the same groups in a
    different order are different specs.
    """

    groups: tuple[ReplicaGroupSpec, ...] = (ReplicaGroupSpec(),)

    def __post_init__(self) -> None:
        # accept any iterable of groups, store a hashable tuple
        object.__setattr__(self, "groups", tuple(self.groups))
        if not self.groups:
            raise ValueError("a fleet needs at least one replica group")
        for group in self.groups:
            if not isinstance(group, ReplicaGroupSpec):
                raise ValueError(
                    f"fleet groups must be ReplicaGroupSpec instances, "
                    f"got {type(group).__name__}")
        if self.total_replicas < 1:
            raise ValueError(
                "a fleet needs at least one replica across its groups")

    @property
    def total_replicas(self) -> int:
        """Initial fleet size: the sum of every group's ``count``."""
        return sum(group.count for group in self.groups)

    def to_dict(self) -> dict[str, Any]:
        return {
            "groups": [group.to_dict() for group in self.groups],
        }

    _FIELDS = frozenset(("groups",))

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FleetSpec":
        _require_mapping(data, "fleet")
        _reject_unknown_keys(data, cls._FIELDS, "fleet")
        groups = data.get("groups")
        if not isinstance(groups, list) or not groups:
            raise ValueError(
                "fleet section needs a non-empty 'groups' list")
        return cls(groups=tuple(
            ReplicaGroupSpec.from_dict(group) for group in groups))


# --------------------------------------------------------------------- #
# Deployment                                                             #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class DeploymentSpec:
    """The endpoint side of an experiment: hardware, model, scheduling.

    ``chip`` is a registry name or an inline custom :class:`ChipSpec`;
    ``batching`` names a policy from
    :mod:`repro.serving.policies`' registry; ``kv_budget_bytes`` of
    ``None`` means unlimited KV memory (the scheduler's default).

    ``replicas`` scales the deployment to a fleet of identical endpoints
    behind a router named by ``router`` (a
    :mod:`repro.cluster.router` registry entry); with ``replicas > 1``
    :func:`repro.api.simulate` dispatches to the cluster engine.

    ``fleet`` generalizes ``replicas`` to a heterogeneous fleet: an
    explicit :class:`FleetSpec` of :class:`ReplicaGroupSpec` slices,
    each with its own chip/model/batching/KV knobs.  When set, the
    top-level chip/model/batching knobs describe nothing (each group
    carries its own) and ``replicas`` must stay at its default of 1 —
    the two are competing ways to size the fleet, and silently
    preferring one would hide a config mistake.  A one-group fleet is
    bit-identical to the legacy ``replicas=N`` path.

    ``autoscale`` makes the fleet elastic: ``replicas`` becomes the
    *initial* size and the spec'd
    :class:`~repro.cluster.autoscaler.AutoscalerPolicy` resizes it
    within ``[min_replicas, max_replicas]`` on a decision interval (the
    cluster engine runs even when ``replicas == 1``, since the fleet
    can grow).

    ``prefix_cache`` turns on paged prefix/KV reuse across the turns of
    multi-turn sessions
    (:class:`~repro.serving.prefix_cache.PrefixCacheSpec`): finished
    turns keep their KV blocks resident per session, so follow-up turns
    re-prefill only the fresh question.  The paged pool is sized by
    ``kv_budget_bytes``; every replica of a fleet owns its own pool and
    cache.  Continuous batching only.

    ``faults`` injects deterministic failures into the fleet
    (:class:`~repro.cluster.faults.FaultSpec`): seeded replica crashes,
    slowdown windows and transient stalls, with crashed requests
    requeued under a retry budget and recorded as failed once it (or
    the deadline) is spent.  The cluster engine runs even when
    ``replicas == 1`` — a single faulty endpoint is still a fleet of
    one.  Continuous batching only.
    """

    chip: str | ChipSpec = "ador"
    model: str = "llama3-8b"
    num_devices: int = 1
    max_batch: int = 256
    prefill_chunk_tokens: int = 512
    kv_budget_bytes: float | None = None
    batching: str = "continuous"
    replicas: int = 1
    router: str = "round-robin"
    autoscale: AutoscaleSpec | None = None
    prefix_cache: PrefixCacheSpec | None = None
    faults: FaultSpec | None = None
    fleet: FleetSpec | None = None

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.fleet is not None:
            if self.replicas != 1:
                raise ValueError(
                    f"fleet and replicas={self.replicas} are two "
                    f"competing ways to size the fleet — with an "
                    f"explicit fleet, leave replicas at 1 and size each "
                    f"group via its count")
            if self.batching != "continuous":
                raise ValueError(
                    f"an explicit fleet requires continuous batching, "
                    f"got {self.batching!r} — the cluster engine is "
                    f"iteration-faithful only for continuous batching")
        if self.autoscale is not None and not (
                self.autoscale.min_replicas <= self.total_replicas
                <= self.autoscale.max_replicas):
            raise ValueError(
                f"replicas={self.total_replicas} (the initial fleet "
                f"size) must lie within the autoscale range "
                f"[{self.autoscale.min_replicas}, "
                f"{self.autoscale.max_replicas}]")
        if self.prefix_cache is not None and self.prefix_cache.enabled \
                and self.batching != "continuous":
            # the cache rides the continuous scheduler's block
            # accounting; a spec that silently dropped it under another
            # policy would fake a reuse result
            raise ValueError(
                f"prefix_cache requires continuous batching, "
                f"got {self.batching!r}")
        if self.faults is not None and self.faults.enabled \
                and self.batching != "continuous":
            # fault injection lives in the cluster engine, which is
            # iteration-faithful only for continuous batching — a spec
            # that silently dropped it would fake a resilience result
            raise ValueError(
                f"faults require continuous batching, "
                f"got {self.batching!r}")
        # canonicalize "unlimited": None and +inf mean the same thing,
        # and specs must compare equal after a JSON round-trip
        if self.kv_budget_bytes == float("inf"):
            object.__setattr__(self, "kv_budget_bytes", None)

    @property
    def total_replicas(self) -> int:
        """Initial fleet size regardless of how it was expressed."""
        if self.fleet is not None:
            return self.fleet.total_replicas
        return self.replicas

    def fleet_groups(self) -> tuple[ReplicaGroupSpec, ...]:
        """The fleet as explicit groups, whichever way it was spec'd.

        An explicit ``fleet`` returns its groups verbatim; the legacy
        ``replicas=N`` form folds the top-level endpoint knobs into one
        N-replica group, which the engine treats identically.
        """
        if self.fleet is not None:
            return self.fleet.groups
        return (ReplicaGroupSpec(
            chip=self.chip,
            model=self.model,
            count=self.replicas,
            num_devices=self.num_devices,
            max_batch=self.max_batch,
            prefill_chunk_tokens=self.prefill_chunk_tokens,
            kv_budget_bytes=self.kv_budget_bytes,
        ),)

    def chip_spec(self) -> ChipSpec:
        """Resolve the chip reference to a concrete spec."""
        if isinstance(self.chip, ChipSpec):
            return self.chip
        return get_chip(self.chip)

    def scheduler_limits(self) -> SchedulerLimits:
        """The :class:`SchedulerLimits` this deployment implies."""
        budget = float("inf") if self.kv_budget_bytes is None \
            else self.kv_budget_bytes
        return SchedulerLimits(
            max_batch=self.max_batch,
            prefill_chunk_tokens=self.prefill_chunk_tokens,
            kv_budget_bytes=budget,
        )

    def to_dict(self) -> dict[str, Any]:
        chip = self.chip if isinstance(self.chip, str) \
            else chip_to_dict(self.chip)
        return {
            "chip": chip,
            "model": self.model,
            "num_devices": self.num_devices,
            "max_batch": self.max_batch,
            "prefill_chunk_tokens": self.prefill_chunk_tokens,
            "kv_budget_bytes": _finite(self.kv_budget_bytes),
            "batching": self.batching,
            "replicas": self.replicas,
            "router": self.router,
            "autoscale": self.autoscale.to_dict()
            if self.autoscale is not None else None,
            "prefix_cache": self.prefix_cache.to_dict()
            if self.prefix_cache is not None else None,
            "faults": self.faults.to_dict()
            if self.faults is not None else None,
            "fleet": self.fleet.to_dict()
            if self.fleet is not None else None,
        }

    _FIELDS = frozenset(
        ("chip", "model", "num_devices", "max_batch",
         "prefill_chunk_tokens", "kv_budget_bytes", "batching",
         "replicas", "router", "autoscale", "prefix_cache", "faults",
         "fleet"))

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DeploymentSpec":
        _require_mapping(data, "deployment")
        _reject_unknown_keys(data, cls._FIELDS, "deployment")
        chip = data.get("chip", "ador")
        if isinstance(chip, dict):
            chip = chip_from_dict(chip)
        autoscale = data.get("autoscale")
        prefix_cache = data.get("prefix_cache")
        faults = data.get("faults")
        fleet = data.get("fleet")
        return cls(
            chip=chip,
            model=data.get("model", "llama3-8b"),
            num_devices=data.get("num_devices", 1),
            max_batch=data.get("max_batch", 256),
            prefill_chunk_tokens=data.get("prefill_chunk_tokens", 512),
            kv_budget_bytes=data.get("kv_budget_bytes"),
            batching=data.get("batching", "continuous"),
            replicas=data.get("replicas", 1),
            router=data.get("router", "round-robin"),
            autoscale=AutoscaleSpec.from_dict(autoscale)
            if autoscale is not None else None,
            prefix_cache=PrefixCacheSpec.from_dict(prefix_cache)
            if prefix_cache is not None else None,
            faults=FaultSpec.from_dict(faults)
            if faults is not None else None,
            fleet=FleetSpec.from_dict(fleet)
            if fleet is not None else None,
        )


# --------------------------------------------------------------------- #
# Capacity search                                                        #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class CapacitySpec:
    """What "capacity" means for an experiment: the SLO and the search.

    Attached to an :class:`Experiment`, it turns ``run_experiment`` /
    ``repro run`` into a Fig. 16-style capacity search: find the highest
    Poisson arrival rate (within ``rate_low..rate_high``, ``iterations``
    bisection steps) whose simulated QoS still meets the TBT (and
    optionally TTFT) SLO at ``percentile``.  The workload spec's
    ``rate_per_s`` is ignored — the rate is what's being searched for.

    ``early_abort``, ``reuse_arrivals`` and ``parallel_probes`` are the
    capacity engine's speed knobs (see
    :func:`repro.serving.capacity.max_capacity_under_slo`); all of them
    leave the found rate identical to the sequential reference search.
    """

    slo_tbt_s: float = 0.050
    slo_ttft_s: float | None = None
    percentile: str = "p95"
    rate_low: float = 0.25
    rate_high: float = 256.0
    iterations: int = 9
    early_abort: bool = True
    reuse_arrivals: bool = True
    parallel_probes: int = 1

    _PERCENTILES = ("mean", "p50", "p95", "p99")

    def __post_init__(self) -> None:
        if self.slo_tbt_s <= 0:
            raise ValueError("slo_tbt_s must be positive")
        if self.slo_ttft_s is not None and self.slo_ttft_s <= 0:
            raise ValueError("slo_ttft_s must be positive")
        if self.percentile not in self._PERCENTILES:
            raise ValueError(
                f"unknown percentile {self.percentile!r}; "
                f"supported: {', '.join(self._PERCENTILES)}")
        if not 0 < self.rate_low < self.rate_high:
            raise ValueError("need 0 < rate_low < rate_high")
        if self.iterations < 0:
            raise ValueError("iterations must be non-negative")
        if self.parallel_probes < 1:
            raise ValueError("parallel_probes must be >= 1")

    def to_dict(self) -> dict[str, Any]:
        return {
            "slo_tbt_s": self.slo_tbt_s,
            "slo_ttft_s": self.slo_ttft_s,
            "percentile": self.percentile,
            "rate_low": self.rate_low,
            "rate_high": self.rate_high,
            "iterations": self.iterations,
            "early_abort": self.early_abort,
            "reuse_arrivals": self.reuse_arrivals,
            "parallel_probes": self.parallel_probes,
        }

    _FIELDS = frozenset(
        ("slo_tbt_s", "slo_ttft_s", "percentile", "rate_low", "rate_high",
         "iterations", "early_abort", "reuse_arrivals", "parallel_probes"))

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CapacitySpec":
        _require_mapping(data, "capacity")
        _reject_unknown_keys(data, cls._FIELDS, "capacity")
        return cls(**{key: data[key] for key in cls._FIELDS if key in data})


# --------------------------------------------------------------------- #
# Experiment = deployment + workload + horizon                           #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class Experiment:
    """A complete, runnable, serializable experiment description.

    With a ``capacity`` section the experiment describes a capacity
    search instead of a single fixed-rate simulation.
    """

    deployment: DeploymentSpec
    workload: WorkloadSpec
    max_sim_seconds: float = 600.0
    name: str = ""
    capacity: CapacitySpec | None = None

    def __post_init__(self) -> None:
        if self.max_sim_seconds <= 0:
            raise ValueError("max_sim_seconds must be positive")

    def to_dict(self) -> dict[str, Any]:
        data = {
            "deployment": self.deployment.to_dict(),
            "workload": self.workload.to_dict(),
            "max_sim_seconds": self.max_sim_seconds,
        }
        if self.name:
            data["name"] = self.name
        if self.capacity is not None:
            data["capacity"] = self.capacity.to_dict()
        return data

    _FIELDS = frozenset(
        ("deployment", "workload", "max_sim_seconds", "name", "capacity"))

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Experiment":
        _require_mapping(data, "experiment")
        _reject_unknown_keys(data, cls._FIELDS, "experiment")
        capacity = data.get("capacity")
        return cls(
            deployment=DeploymentSpec.from_dict(data.get("deployment", {})),
            workload=WorkloadSpec.from_dict(data.get("workload", {})),
            max_sim_seconds=data.get("max_sim_seconds", 600.0),
            name=data.get("name", ""),
            capacity=CapacitySpec.from_dict(capacity)
            if capacity is not None else None,
        )
