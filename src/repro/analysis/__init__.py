"""Analysis helpers: metrics, table formatting and parameter sweeps."""

from repro.analysis.metrics import (
    area_efficiency_gflops_mm2,
    normalized_area_efficiency,
    qos_gain,
)
from repro.analysis.pareto import (
    dominates,
    normalized_distance_to_utopia,
    pareto_frontier,
)
from repro.analysis.tables import format_table
from repro.analysis.sweep import sweep

__all__ = [
    "area_efficiency_gflops_mm2",
    "normalized_area_efficiency",
    "qos_gain",
    "dominates",
    "normalized_distance_to_utopia",
    "pareto_frontier",
    "format_table",
    "sweep",
]
