"""Pareto-frontier extraction for design-space studies.

Fig. 1's right panel frames serving hardware as a latency/throughput
design space with ADOR at the balanced optimum; this helper makes that
notion precise: given evaluated design points and a set of objectives,
return the non-dominated subset.
"""

from __future__ import annotations

from typing import Callable, Sequence


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is at least as good as ``b`` everywhere and
    strictly better somewhere (all objectives are minimized)."""
    if len(a) != len(b):
        raise ValueError("objective vectors must have equal length")
    at_least_as_good = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def pareto_frontier(points: Sequence, objectives: Callable) -> list:
    """Non-dominated subset of ``points``.

    ``objectives(point)`` returns a tuple of values to *minimize*
    (negate anything to be maximized).  Order of the result follows the
    input order.
    """
    vectors = [tuple(objectives(p)) for p in points]
    frontier = []
    for i, point in enumerate(points):
        if not any(dominates(vectors[j], vectors[i])
                   for j in range(len(points)) if j != i):
            frontier.append(point)
    return frontier


def normalized_distance_to_utopia(point_objectives: Sequence[float],
                                  frontier_objectives: Sequence) -> float:
    """How close a point sits to the per-objective best corner.

    Normalizes each objective by the frontier's range, then measures the
    Euclidean distance to the utopia (all-minimum) corner — the "balanced
    optimum" score used to locate ADOR in the design space.
    """
    frontier = [tuple(v) for v in frontier_objectives]
    if not frontier:
        raise ValueError("frontier must be non-empty")
    dims = len(point_objectives)
    distance = 0.0
    for d in range(dims):
        values = [v[d] for v in frontier]
        low, high = min(values), max(values)
        span = (high - low) or 1.0
        distance += ((point_objectives[d] - low) / span) ** 2
    return distance ** 0.5
