"""Plain-text table rendering for benches and examples.

The benchmark harness prints the same rows the paper's tables/figures
report; this module keeps the formatting in one place.
"""

from __future__ import annotations


def format_table(headers: list, rows: list, title: str = "") -> str:
    """Render an aligned monospace table.

    ``rows`` may contain any mix of strings and numbers; floats are
    rendered with four significant digits.
    """

    def render(cell) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            magnitude = abs(cell)
            if magnitude >= 1000 or magnitude < 0.001:
                return f"{cell:.3e}"
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)
