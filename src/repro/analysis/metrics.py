"""Cross-design figures of merit (area efficiency, QoS gain).

These implement the exact comparisons the paper headlines: "2.51x higher
QoS and 4.01x better area efficiency compared to the A100".
"""

from __future__ import annotations

from repro.hardware.area import AreaModel
from repro.hardware.chip import ChipSpec
from repro.hardware.technology import ProcessNode, normalize_area


def area_efficiency_gflops_mm2(throughput_flops: float, chip: ChipSpec,
                               area_model: AreaModel | None = None) -> float:
    """Achieved GFLOPS per mm^2 of die (Fig. 4a's absolute panel)."""
    if throughput_flops < 0:
        raise ValueError("throughput must be non-negative")
    area = (area_model or AreaModel()).die_area_mm2(chip)
    return throughput_flops / 1e9 / area


def normalized_area_efficiency(throughput_flops: float, chip: ChipSpec,
                               target: ProcessNode = ProcessNode.NM_4,
                               area_model: AreaModel | None = None) -> float:
    """GFLOPS/mm^2 with the die normalized to ``target`` (Fig. 4a right).

    A 14 nm die shrinks ~4.7x when re-expressed at 4 nm, which is how the
    paper makes the TSP comparable to the H100.
    """
    area = (area_model or AreaModel()).die_area_mm2(chip)
    normalized = normalize_area(area, chip.process, target)
    return throughput_flops / 1e9 / normalized


def qos_gain(candidate_seconds: float, baseline_seconds: float) -> float:
    """Latency improvement factor (baseline / candidate); > 1 is better."""
    if candidate_seconds <= 0 or baseline_seconds <= 0:
        raise ValueError("latencies must be positive")
    return baseline_seconds / candidate_seconds


def area_efficiency_gain(candidate_seconds: float, candidate_area: float,
                         baseline_seconds: float, baseline_area: float) -> float:
    """QoS-per-area improvement — the paper's 4.01x headline metric.

    The rate (1/latency) per mm^2 of the candidate over the baseline's.
    """
    if min(candidate_seconds, candidate_area,
           baseline_seconds, baseline_area) <= 0:
        raise ValueError("inputs must be positive")
    candidate_rate = 1.0 / candidate_seconds / candidate_area
    baseline_rate = 1.0 / baseline_seconds / baseline_area
    return candidate_rate / baseline_rate
