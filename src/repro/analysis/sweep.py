"""Parameter sweep helper used by benches and examples."""

from __future__ import annotations

from typing import Callable, Iterable


def sweep(values: Iterable, fn: Callable) -> list:
    """Apply ``fn`` over ``values`` and return (value, result) pairs.

    Trivial but keeps bench code declarative; failures annotate which
    sweep point raised.
    """
    results = []
    for value in values:
        try:
            results.append((value, fn(value)))
        except Exception as exc:  # pragma: no cover - diagnostic path
            raise RuntimeError(f"sweep failed at value {value!r}: {exc}") from exc
    return results
