"""Parameter sweep helper used by benches and examples."""

from __future__ import annotations

from typing import Callable, Iterable


def _apply(fn: Callable, value):
    """Run one sweep point, annotating failures with the point."""
    try:
        return fn(value)
    except Exception as exc:  # pragma: no cover - diagnostic path
        raise RuntimeError(f"sweep failed at value {value!r}: {exc}") from exc


def sweep(values: Iterable, fn: Callable, workers: int | None = None) -> list:
    """Apply ``fn`` over ``values`` and return (value, result) pairs.

    Trivial but keeps bench code declarative; failures annotate which
    sweep point raised.  ``workers=N`` fans the points out over a
    :class:`~concurrent.futures.ProcessPoolExecutor` — results come back
    in input order and failures carry the same annotation, so callers
    cannot tell the difference except in wall-clock.  ``fn`` and the
    values must be picklable in that mode; the default (``workers=None``
    or ``1``) stays in-process.
    """
    values = list(values)
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if workers is None or workers == 1 or len(values) <= 1:
        return [(value, _apply(fn, value)) for value in values]

    import concurrent.futures

    with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(values))) as pool:
        futures = [pool.submit(fn, value) for value in values]
        results = []
        for value, future in zip(values, futures):
            try:
                results.append((value, future.result()))
            except Exception as exc:
                # cancel the points that have not started; points
                # already in flight still run to completion before the
                # error surfaces (the executor joins its workers)
                pool.shutdown(wait=False, cancel_futures=True)
                raise RuntimeError(
                    f"sweep failed at value {value!r}: {exc}") from exc
        return results
