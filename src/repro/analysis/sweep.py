"""Parameter sweep helpers used by benches and examples."""

from __future__ import annotations

from typing import Callable, Iterable

_ANNOTATION = "sweep failed at value "


def _apply(fn: Callable, value):
    """Run one sweep point, annotating failures with the point.

    Submitted to pool workers as well, so a worker-side failure carries
    the identical annotation the in-process path produces.
    """
    try:
        return fn(value)
    except Exception as exc:  # pragma: no cover - diagnostic path
        raise RuntimeError(f"{_ANNOTATION}{value!r}: {exc}") from exc


def _collect(values: list, futures: list, cancel: Callable) -> list:
    """Gather futures in input order; first failure cancels the rest."""
    results = []
    for value, future in zip(values, futures):
        try:
            results.append((value, future.result()))
        except Exception as exc:
            # points already in flight still run to completion before the
            # error surfaces; the rest never start
            cancel()
            if isinstance(exc, RuntimeError) \
                    and str(exc).startswith(_ANNOTATION):
                raise  # _apply already annotated it in the worker
            # pool-level failures (broken pool, unpicklable fn) get the
            # same annotation the in-process path would produce
            raise RuntimeError(f"{_ANNOTATION}{value!r}: {exc}") from exc
    return results


class SweepPool:
    """A persistent worker pool reusable across many :func:`sweep` calls.

    ``sweep(values, fn, workers=N)`` spawns and tears down a fresh
    :class:`~concurrent.futures.ProcessPoolExecutor` per call — fine for
    one sweep, wasteful for a bench that runs dozens.  A ``SweepPool``
    keeps its workers alive until :meth:`close`, so repeated sweeps skip
    the executor spawn *and* keep worker-side state warm: the optional
    ``initializer(*initargs)`` runs once per worker (the capacity search
    uses it to install a shared
    :class:`~repro.perf.cache.CachedDeviceModel`), and module-level
    caches populated by one sweep's tasks serve the next sweep's.

    Failure semantics match :func:`sweep` exactly (same annotated
    message, input-order results); a failed sweep cancels its own
    pending points but leaves the pool usable.  Usable as a context
    manager.
    """

    def __init__(self, workers: int, initializer: Callable | None = None,
                 initargs: tuple = ()) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        import concurrent.futures

        self.workers = workers
        self._executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, initializer=initializer,
            initargs=initargs)

    def sweep(self, values: Iterable, fn: Callable) -> list:
        """Apply ``fn`` over ``values``; (value, result) pairs in order."""
        values = list(values)
        futures = [self._executor.submit(_apply, fn, value)
                   for value in values]

        def cancel() -> None:
            for future in futures:
                future.cancel()

        return _collect(values, futures, cancel)

    def close(self) -> None:
        """Shut the workers down (pending work is cancelled)."""
        self._executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def sweep(values: Iterable, fn: Callable, workers: int | None = None,
          pool: SweepPool | None = None) -> list:
    """Apply ``fn`` over ``values`` and return (value, result) pairs.

    Trivial but keeps bench code declarative; failures annotate which
    sweep point raised.  ``workers=N`` fans the points out over a
    :class:`~concurrent.futures.ProcessPoolExecutor` — results come back
    in input order and failures carry the same annotation (the pool runs
    each point through the same ``_apply`` wrapper as the in-process
    path), so callers cannot tell the difference except in wall-clock.
    ``fn`` and the values must be picklable in that mode; the default
    (``workers=None`` or ``1``) stays in-process.  Passing ``pool=``
    reuses a persistent :class:`SweepPool` instead of spawning a fresh
    executor.
    """
    values = list(values)
    if pool is not None:
        return pool.sweep(values, fn)
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if workers is None or workers == 1 or len(values) <= 1:
        return [(value, _apply(fn, value)) for value in values]

    import concurrent.futures

    with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(values))) as executor:
        futures = [executor.submit(_apply, fn, value) for value in values]
        return _collect(
            values, futures,
            lambda: executor.shutdown(wait=False, cancel_futures=True))
