"""Model-parallelism mapper (paper Fig. 7a).

Shards a model's parameters and KV cache across devices and emits the
per-device view the compiler and serving simulator consume.  Sharding is
tensor-parallel along heads (attention) and the intermediate dimension
(MLP), with the synchronization method chosen per the paper's rule:
Megatron at 2 devices, all-gather at 4+ (Section V-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.models.kv_cache import kv_bytes_per_token
from repro.parallel.collectives import SyncMethod


@dataclass(frozen=True)
class DeviceShard:
    """One device's slice of a tensor-parallel model."""

    device_index: int
    num_devices: int
    heads: int
    kv_heads: int
    intermediate_size: int
    param_bytes: float
    kv_bytes_per_token: float
    sync_method: SyncMethod

    def __post_init__(self) -> None:
        if not 0 <= self.device_index < self.num_devices:
            raise ValueError("device index out of range")


class ModelParallelMapper:
    """Produces balanced :class:`DeviceShard` plans."""

    def __init__(self, model: ModelConfig) -> None:
        self.model = model

    def choose_sync_method(self, devices: int) -> SyncMethod:
        """The paper's rule: Megatron <= 2 devices, all-gather beyond."""
        if devices <= 2:
            return SyncMethod.MEGATRON
        return SyncMethod.ALL_GATHER

    def validate(self, devices: int) -> None:
        if devices < 1:
            raise ValueError("devices must be >= 1")
        if self.model.num_heads % devices != 0:
            raise ValueError(
                f"{self.model.name}: {self.model.num_heads} heads do not "
                f"shard evenly over {devices} devices"
            )

    def shard(self, devices: int) -> list[DeviceShard]:
        """Balanced TP shards for ``devices`` devices.

        KV heads are replicated when there are fewer KV heads than
        devices (each device keeps the KV groups its query heads need),
        which inflates per-device KV bytes — real GQA serving does the
        same.
        """
        self.validate(devices)
        heads = self.model.num_heads // devices
        kv_heads = max(1, self.model.num_kv_heads // devices)
        inter = math.ceil(self.model.intermediate_size / devices)
        kv_replication = max(1, devices // self.model.num_kv_heads)
        per_device_kv = kv_bytes_per_token(self.model) / devices * kv_replication
        param = self.model.param_bytes / devices
        method = self.choose_sync_method(devices)
        return [
            DeviceShard(
                device_index=i,
                num_devices=devices,
                heads=heads,
                kv_heads=kv_heads,
                intermediate_size=inter,
                param_bytes=param,
                kv_bytes_per_token=per_device_kv,
                sync_method=method,
            )
            for i in range(devices)
        ]

    def min_devices_for_capacity(self, dram_bytes: float,
                                 kv_budget_fraction: float = 0.3) -> int:
        """Fewest devices whose DRAM holds the weights plus a KV budget."""
        if dram_bytes <= 0:
            raise ValueError("dram_bytes must be positive")
        needed = self.model.param_bytes / (1.0 - kv_budget_fraction)
        devices = max(1, math.ceil(needed / dram_bytes))
        # round up to a head-divisible count
        while self.model.num_heads % devices != 0:
            devices += 1
        return devices
