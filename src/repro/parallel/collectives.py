"""Collective-communication volume and timing models (paper Fig. 7c).

The paper contrasts three tensor-parallel synchronization schemes:

* **all-gather** — each device computes a final-sum *slice* of the output
  and gathers the peers' slices.  Per-device traffic is
  ``(D-1)/D x tensor`` — essentially constant in the device count, which
  is why "all-gather maintains a constant data volume up to 16 devices";
* **all-reduce** — each device holds *partial sums of the full tensor*
  and exchanges them directly, so per-device traffic is
  ``(D-1) x tensor`` and grows linearly with the device count;
* **Megatron** — alternates column- and row-parallel GEMMs so each layer
  needs one all-gather plus one all-reduce: fewer synchronization points
  (good at 2 devices) but all-reduce volume growth (bad at 8-16).

All-gather's small final-sum messages also pipeline behind compute
(Fig. 6d), while all-reduce must accumulate before the next operator can
start — captured here as a per-method overlappable fraction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.interconnect import P2pSpec


class SyncMethod(enum.Enum):
    """Tensor-parallel synchronization scheme."""

    ALL_GATHER = "all-gather"
    ALL_REDUCE = "all-reduce"
    MEGATRON = "megatron"


def all_gather_bytes_per_device(tensor_bytes: float, devices: int) -> float:
    """Per-device wire traffic of a direct all-gather."""
    _validate(tensor_bytes, devices)
    if devices == 1:
        return 0.0
    return tensor_bytes * (devices - 1) / devices


def all_reduce_bytes_per_device(tensor_bytes: float, devices: int) -> float:
    """Per-device wire traffic of a direct all-reduce of full partial sums."""
    _validate(tensor_bytes, devices)
    if devices == 1:
        return 0.0
    return tensor_bytes * (devices - 1)


def _validate(tensor_bytes: float, devices: int) -> None:
    if tensor_bytes < 0:
        raise ValueError("tensor_bytes must be non-negative")
    if devices < 1:
        raise ValueError("devices must be >= 1")


@dataclass(frozen=True)
class SyncPlan:
    """Per-layer synchronization profile of a TP method."""

    method: SyncMethod
    #: wire bytes per device per decoder layer
    bytes_per_layer: float
    #: protocol round-trips per decoder layer (latency hits)
    steps_per_layer: int
    #: fraction of wire time that pipelines behind compute (Fig. 6d)
    overlappable_fraction: float


#: Synchronization points per decoder layer.  The pure all-gather
#: dataflow keeps every weight column-split, which requires gathering
#: activations before *and* after both the attention output projection
#: and the MLP down projection — four small gathers per layer.  Megatron
#: and the pure all-reduce scheme sync twice per layer.
_AG_SYNCS_PER_LAYER = 4
_SYNCS_PER_LAYER = 2


def layer_sync_plan(method: SyncMethod, tensor_bytes: float,
                    devices: int) -> SyncPlan:
    """Per-layer sync volume/steps for a ``tensor_bytes`` activation.

    ``tensor_bytes`` is the full (un-sharded) activation tensor produced
    by one synchronized operator, i.e. ``rows x hidden x dtype``.
    """
    _validate(tensor_bytes, devices)
    if devices == 1:
        return SyncPlan(method, 0.0, 0, 1.0)
    if method == SyncMethod.ALL_GATHER:
        per_sync = all_gather_bytes_per_device(tensor_bytes, devices)
        return SyncPlan(
            method,
            bytes_per_layer=_AG_SYNCS_PER_LAYER * per_sync,
            steps_per_layer=_AG_SYNCS_PER_LAYER,
            overlappable_fraction=0.90,
        )
    if method == SyncMethod.ALL_REDUCE:
        per_sync = all_reduce_bytes_per_device(tensor_bytes, devices)
        return SyncPlan(
            method,
            bytes_per_layer=_SYNCS_PER_LAYER * per_sync,
            steps_per_layer=_SYNCS_PER_LAYER,
            overlappable_fraction=0.25,
        )
    if method == SyncMethod.MEGATRON:
        gathered = all_gather_bytes_per_device(tensor_bytes, devices)
        reduced = all_reduce_bytes_per_device(tensor_bytes, devices)
        return SyncPlan(
            method,
            bytes_per_layer=gathered + reduced,
            steps_per_layer=_SYNCS_PER_LAYER,
            overlappable_fraction=0.50,
        )
    raise ValueError(f"unknown method {method!r}")


def collective_time(plan: SyncPlan, p2p: P2pSpec, num_layers: int) -> float:
    """Un-overlapped wall time of a model's TP synchronization."""
    if num_layers < 0:
        raise ValueError("num_layers must be non-negative")
    wire = plan.bytes_per_layer / p2p.bandwidth_bytes_per_s
    latency = plan.steps_per_layer * p2p.latency_s
    return num_layers * (wire + latency)


def visible_collective_time(plan: SyncPlan, p2p: P2pSpec, num_layers: int,
                            compute_seconds: float) -> float:
    """Sync time left exposed after overlapping with ``compute_seconds``.

    The overlappable fraction of the wire time hides behind compute (up
    to the compute time available); protocol latency is never hidden.
    """
    if compute_seconds < 0:
        raise ValueError("compute time must be non-negative")
    wire = num_layers * plan.bytes_per_layer / p2p.bandwidth_bytes_per_s
    latency = num_layers * plan.steps_per_layer * p2p.latency_s
    hideable = min(wire * plan.overlappable_fraction, compute_seconds)
    return wire - hideable + latency
