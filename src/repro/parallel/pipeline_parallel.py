"""Pipeline parallelism (paper Fig. 7b).

PP places whole layers on each device and streams tokens through; it
multiplies *throughput* and aggregate memory, but a single token still
traverses every layer, so per-token latency does not improve — "PP
provides no latency benefits due to pipelining".  ADOR therefore prefers
TP for serving; PP stays available for capacity scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.interconnect import P2pSpec
from repro.models.config import ModelConfig


@dataclass(frozen=True)
class PipelineParallelModel:
    """Latency/throughput effects of a ``D``-stage layer pipeline."""

    model: ModelConfig
    p2p: P2pSpec

    def stage_layers(self, devices: int) -> int:
        """Layers per pipeline stage (last stage may be smaller)."""
        if devices < 1:
            raise ValueError("devices must be >= 1")
        return math.ceil(self.model.num_layers / devices)

    def token_latency_seconds(self, single_device_seconds: float,
                              devices: int, batch: int) -> float:
        """Per-token latency: the full traversal plus inter-stage hops.

        The compute time is unchanged (every layer still runs serially for
        one token); each stage boundary adds an activation transfer.
        """
        if single_device_seconds < 0:
            raise ValueError("negative latency")
        if devices == 1:
            return single_device_seconds
        activation_bytes = batch * self.model.hidden_size * self.model.dtype_bytes
        hop = self.p2p.transfer_time(activation_bytes)
        return single_device_seconds + (devices - 1) * hop

    def latency_speedup(self, single_device_seconds: float, devices: int,
                        batch: int) -> float:
        """Always <= 1.0 — the Fig. 7(b) contrast with TP."""
        multi = self.token_latency_seconds(single_device_seconds, devices, batch)
        return single_device_seconds / multi if multi > 0 else 1.0

    def throughput_scaling(self, devices: int, bubble_fraction: float = 0.05) -> float:
        """Steady-state throughput multiplier with a small pipeline bubble."""
        if not 0 <= bubble_fraction < 1:
            raise ValueError("bubble fraction must be in [0, 1)")
        return devices * (1.0 - bubble_fraction)

    def aggregate_memory_bandwidth(self, per_device_bandwidth: float,
                                   devices: int) -> float:
        """Effective bandwidth grows with devices (Fig. 7b's PP column)."""
        if per_device_bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        return per_device_bandwidth * devices
