"""Computation-communication overlap analysis (paper Figs. 7a, 13b).

ADOR's multi-device story rests on overlapping all-gather traffic with
compute so that modest PCIe-class links suffice.  This module answers the
two questions of Section V-C:

* given a workload and a P2P bandwidth, how much sync time remains
  visible (Fig. 13b — decode overlaps best because its memory-bound
  attention leaves the links free);
* what is the *minimum* P2P bandwidth at which communication fully hides
  behind compute (Fig. 7a — the paper lands on ~32 GB/s, PCIe-4 x16).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.interconnect import P2pSpec
from repro.models.config import ModelConfig
from repro.models.kv_cache import kv_cache_bytes
from repro.parallel.collectives import SyncMethod, layer_sync_plan


class WorkloadPhase(enum.Enum):
    """Workload mix for the overlap study (Fig. 13b panels)."""

    PREFILL = "prefill"
    DECODE = "decode"
    CONTINUOUS = "continuous"  # paper uses prefill : decode = 3 : 1


#: How much of the per-layer body time can host communication.  Decode is
#: memory-bound, so its compute units and links are idle while DRAM
#: streams — near-perfect overlap; prefill keeps the NoC busier.
OVERLAP_CAPACITY = {
    WorkloadPhase.PREFILL: 0.60,
    WorkloadPhase.DECODE: 0.95,
    WorkloadPhase.CONTINUOUS: 0.60 * 0.75 + 0.95 * 0.25,
}


@dataclass(frozen=True)
class OverlapModel:
    """Visible-sync estimator for one phase of one model."""

    model: ModelConfig
    memory_bandwidth: float
    peak_flops: float
    phase: WorkloadPhase
    batch: int = 32
    seq_len: int = 1024
    bandwidth_utilization: float = 0.90
    compute_efficiency: float = 0.80

    def _phase_model(self, phase: WorkloadPhase) -> "OverlapModel":
        return OverlapModel(
            self.model, self.memory_bandwidth, self.peak_flops, phase,
            self.batch, self.seq_len, self.bandwidth_utilization,
            self.compute_efficiency,
        )

    def body_seconds(self, devices: int) -> float:
        """Per-iteration body time of the sharded workload."""
        if devices < 1:
            raise ValueError("devices must be >= 1")
        if self.phase == WorkloadPhase.PREFILL:
            flops = 2.0 * self.batch * self.seq_len \
                * self.model.active_params_per_token / devices
            return flops / (self.peak_flops * self.compute_efficiency)
        if self.phase == WorkloadPhase.DECODE:
            decode_bytes = (
                self.model.active_param_bytes_per_token
                + kv_cache_bytes(self.model, self.batch, self.seq_len)
            ) / devices
            return decode_bytes / (self.memory_bandwidth * self.bandwidth_utilization)
        # paper mixes prefill : decode = 3 : 1
        return (
            0.75 * self._phase_model(WorkloadPhase.PREFILL).body_seconds(devices)
            + 0.25 * self._phase_model(WorkloadPhase.DECODE).body_seconds(devices)
        )

    def _sync_rows(self) -> int:
        return self.batch * (self.seq_len if self.phase == WorkloadPhase.PREFILL else 1)

    def visible_sync_seconds(self, devices: int, p2p: P2pSpec,
                             method: SyncMethod = SyncMethod.ALL_GATHER) -> float:
        """Sync time not hidden by the phase's overlap capacity."""
        if devices == 1:
            return 0.0
        if self.phase == WorkloadPhase.CONTINUOUS:
            return (
                0.75 * self._phase_model(WorkloadPhase.PREFILL)
                .visible_sync_seconds(devices, p2p, method)
                + 0.25 * self._phase_model(WorkloadPhase.DECODE)
                .visible_sync_seconds(devices, p2p, method)
            )
        tensor_bytes = self._sync_rows() * self.model.hidden_size \
            * self.model.dtype_bytes
        plan = layer_sync_plan(method, tensor_bytes, devices)
        wire = self.model.num_layers * plan.bytes_per_layer \
            / p2p.bandwidth_bytes_per_s
        latency = self.model.num_layers * plan.steps_per_layer * p2p.latency_s
        capacity = OVERLAP_CAPACITY[self.phase] * self.body_seconds(devices)
        hideable = min(wire * plan.overlappable_fraction, capacity)
        return wire - hideable + latency

    def iteration_seconds(self, devices: int, p2p: P2pSpec,
                          method: SyncMethod = SyncMethod.ALL_GATHER) -> float:
        if self.phase == WorkloadPhase.CONTINUOUS:
            return (
                0.75 * self._phase_model(WorkloadPhase.PREFILL)
                .iteration_seconds(devices, p2p, method)
                + 0.25 * self._phase_model(WorkloadPhase.DECODE)
                .iteration_seconds(devices, p2p, method)
            )
        return self.body_seconds(devices) + self.visible_sync_seconds(
            devices, p2p, method)

    def speedup(self, devices: int, p2p: P2pSpec,
                method: SyncMethod = SyncMethod.ALL_GATHER) -> float:
        """Latency speedup vs. one device (Fig. 13b y-axis)."""
        return self.iteration_seconds(1, p2p, method) \
            / self.iteration_seconds(devices, p2p, method)


def minimum_p2p_bandwidth(
    overlap: OverlapModel,
    devices: int,
    method: SyncMethod = SyncMethod.ALL_GATHER,
    efficiency_target: float = 0.95,
    candidates_gbps: tuple = (8, 16, 32, 64, 128, 256, 600, 900),
) -> float:
    """Smallest candidate P2P bandwidth reaching the scalability target.

    The target is relative to an infinite-bandwidth link; the paper finds
    ~32 GB/s (PCIe-4 x16) sufficient for the all-gather dataflow.
    """
    if devices < 2:
        return 0.0
    infinite = P2pSpec(bandwidth_bytes_per_s=1e18)
    ideal = overlap.iteration_seconds(devices, infinite, method)
    for gbps in sorted(candidates_gbps):
        p2p = P2pSpec(bandwidth_bytes_per_s=gbps * 1e9)
        achieved = ideal / overlap.iteration_seconds(devices, p2p, method)
        if achieved >= efficiency_target:
            return gbps * 1e9
    return max(candidates_gbps) * 1e9
