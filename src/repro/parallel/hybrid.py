"""Hybrid tensor x pipeline parallelism planning.

Section IV-D discusses TP and PP as the two primary mappings; for large
device counts real deployments mix them.  This planner enumerates every
``tp x pp = devices`` factorization that shards heads evenly, scores
each with the existing TP and PP latency models, and picks a plan per
objective — latency (favours pure TP, the paper's conclusion) or
throughput-per-latency balance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.interconnect import P2pSpec
from repro.models.config import ModelConfig
from repro.parallel.collectives import SyncMethod
from repro.parallel.mapper import ModelParallelMapper
from repro.parallel.pipeline_parallel import PipelineParallelModel
from repro.parallel.tensor_parallel import TpLatencyModel


@dataclass(frozen=True)
class HybridPlan:
    """One TP x PP factorization with its predicted behaviour."""

    tp: int
    pp: int
    sync_method: SyncMethod
    decode_step_seconds: float
    throughput_tokens_per_s: float

    @property
    def devices(self) -> int:
        return self.tp * self.pp


class HybridParallelPlanner:
    """Enumerates and scores TP x PP plans for one model on one fabric."""

    def __init__(self, model: ModelConfig, memory_bandwidth: float,
                 p2p: P2pSpec) -> None:
        self.model = model
        self.tp_model = TpLatencyModel(model, memory_bandwidth, p2p)
        self.pp_model = PipelineParallelModel(model, p2p)
        self.mapper = ModelParallelMapper(model)

    def factorizations(self, devices: int) -> list[tuple[int, int]]:
        """All (tp, pp) with tp*pp == devices and tp sharding heads evenly."""
        if devices < 1:
            raise ValueError("devices must be >= 1")
        plans = []
        for tp in range(1, devices + 1):
            if devices % tp:
                continue
            if self.model.num_heads % tp:
                continue
            pp = devices // tp
            if self.model.num_layers < pp:
                continue
            plans.append((tp, pp))
        return plans

    def evaluate(self, tp: int, pp: int, batch: int,
                 context_len: int) -> HybridPlan:
        """Score one factorization."""
        method = self.mapper.choose_sync_method(tp)
        tp_step = self.tp_model.decode_step_seconds(batch, context_len, tp,
                                                    method)
        # PP leaves per-token latency at the full traversal plus hops...
        step = self.pp_model.token_latency_seconds(tp_step, pp, batch)
        # ...but multiplies steady-state throughput by the stage count
        throughput = batch / tp_step * self.pp_model.throughput_scaling(pp) / pp
        return HybridPlan(
            tp=tp, pp=pp, sync_method=method,
            decode_step_seconds=step,
            throughput_tokens_per_s=throughput * pp,
        )

    def plans(self, devices: int, batch: int,
              context_len: int) -> list[HybridPlan]:
        return [self.evaluate(tp, pp, batch, context_len)
                for tp, pp in self.factorizations(devices)]

    def best_for_latency(self, devices: int, batch: int,
                         context_len: int) -> HybridPlan:
        """Lowest decode-step latency — the paper's serving objective."""
        candidates = self.plans(devices, batch, context_len)
        if not candidates:
            raise ValueError(
                f"{self.model.name}: no valid factorization of {devices}")
        return min(candidates, key=lambda p: p.decode_step_seconds)

    def best_for_throughput(self, devices: int, batch: int,
                            context_len: int) -> HybridPlan:
        candidates = self.plans(devices, batch, context_len)
        if not candidates:
            raise ValueError(
                f"{self.model.name}: no valid factorization of {devices}")
        return max(candidates, key=lambda p: p.throughput_tokens_per_s)
