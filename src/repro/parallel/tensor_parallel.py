"""Tensor-parallel latency scaling (paper Figs. 7b and 13a).

TP shards every weight matrix over ``D`` devices, so the per-device
compute and weight traffic shrink by ``D`` while synchronization cost
grows — the balance determines latency scalability.  The paper's
Fig. 13(a) finding: Megatron's fewer sync points win at 2 devices, the
all-gather dataflow scales best to 16, all-reduce saturates early.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.interconnect import P2pSpec
from repro.models.config import ModelConfig
from repro.models.kv_cache import kv_cache_bytes
from repro.parallel.collectives import (
    SyncMethod,
    layer_sync_plan,
    visible_collective_time,
)


@dataclass(frozen=True)
class TpLatencyModel:
    """Decode-step latency under tensor parallelism.

    The single-device body time is memory-dominated (decode), so the
    sharded body is ``bytes / (D x effective bandwidth)``; synchronization
    is overlapped according to the method's capability.
    """

    model: ModelConfig
    memory_bandwidth: float
    p2p: P2pSpec
    bandwidth_utilization: float = 0.90

    def __post_init__(self) -> None:
        if self.memory_bandwidth <= 0:
            raise ValueError("memory bandwidth must be positive")
        if not 0 < self.bandwidth_utilization <= 1:
            raise ValueError("bandwidth utilization must be in (0, 1]")

    def _body_seconds(self, batch: int, context_len: int, devices: int) -> float:
        bytes_per_device = (
            self.model.active_param_bytes_per_token
            + kv_cache_bytes(self.model, batch, context_len)
        ) / devices
        return bytes_per_device / (self.memory_bandwidth * self.bandwidth_utilization)

    def decode_step_seconds(self, batch: int, context_len: int, devices: int,
                            method: SyncMethod) -> float:
        """One decode iteration including visible synchronization."""
        if devices < 1:
            raise ValueError("devices must be >= 1")
        body = self._body_seconds(batch, context_len, devices)
        if devices == 1:
            return body
        tensor_bytes = batch * self.model.hidden_size * self.model.dtype_bytes
        plan = layer_sync_plan(method, tensor_bytes, devices)
        sync = visible_collective_time(plan, self.p2p, self.model.num_layers, body)
        return body + sync

    def speedup(self, batch: int, context_len: int, devices: int,
                method: SyncMethod) -> float:
        """Latency speedup over single-device execution (Fig. 13a y-axis)."""
        single = self.decode_step_seconds(batch, context_len, 1, method)
        multi = self.decode_step_seconds(batch, context_len, devices, method)
        return single / multi


def tp_scalability_curve(
    model: ModelConfig,
    batch: int,
    context_len: int,
    device_counts: list[int],
    memory_bandwidth: float,
    p2p: P2pSpec,
    method: SyncMethod,
) -> list[float]:
    """Speedup series over ``device_counts`` for one sync method."""
    tp = TpLatencyModel(model, memory_bandwidth, p2p)
    return [tp.speedup(batch, context_len, d, method) for d in device_counts]
