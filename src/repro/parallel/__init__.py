"""Multi-device parallelism: collectives, TP/PP mapping and overlap.

Implements the paper's Section IV-D and V-C analyses: synchronization
volumes of all-gather / all-reduce / Megatron hybrids (Fig. 7c), tensor-
parallel latency scalability (Fig. 13a), the computation-communication
overlap model that determines minimum P2P bandwidth (Fig. 13b), and the
model-parallelism mapper that shards a model across devices (Fig. 7a).
"""

from repro.parallel.collectives import (
    SyncMethod,
    all_gather_bytes_per_device,
    all_reduce_bytes_per_device,
    collective_time,
    layer_sync_plan,
)
from repro.parallel.tensor_parallel import (
    TpLatencyModel,
    tp_scalability_curve,
)
from repro.parallel.pipeline_parallel import PipelineParallelModel
from repro.parallel.overlap import OverlapModel, minimum_p2p_bandwidth
from repro.parallel.mapper import DeviceShard, ModelParallelMapper
from repro.parallel.hybrid import HybridParallelPlanner, HybridPlan

__all__ = [
    "HybridParallelPlanner",
    "HybridPlan",
    "SyncMethod",
    "all_gather_bytes_per_device",
    "all_reduce_bytes_per_device",
    "collective_time",
    "layer_sync_plan",
    "TpLatencyModel",
    "tp_scalability_curve",
    "PipelineParallelModel",
    "OverlapModel",
    "minimum_p2p_bandwidth",
    "DeviceShard",
    "ModelParallelMapper",
]
