"""Vector-unit timing for softmax, normalization and elementwise ops.

Vector work is a small slice of LLM time but it gates the MAC units
(softmax sits between the two attention products), so the scheduler
charges it explicitly rather than hiding it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.components import VectorUnit


@dataclass(frozen=True)
class VectorTimingModel:
    """Timing for ``cores`` vector units."""

    unit: VectorUnit
    cores: int
    frequency_hz: float
    #: fixed per-operator cost (instruction issue, drain), seconds
    op_overhead_s: float = 2e-7

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.op_overhead_s < 0:
            raise ValueError("overhead must be non-negative")

    @property
    def elements_per_second(self) -> float:
        return float(self.unit.width) * self.cores * self.frequency_hz

    def elementwise(self, elements: float, passes: float = 1.0) -> float:
        """Seconds for an elementwise op touching ``elements`` values."""
        if elements < 0 or passes <= 0:
            raise ValueError("elements must be >= 0, passes > 0")
        return self.op_overhead_s + passes * elements / self.elements_per_second

    def softmax(self, rows: int, width: int) -> float:
        """Online-softmax over ``rows`` vectors of ``width``: 3 passes
        (max, exp+sum, scale) fused into ~2 effective passes."""
        return self.elementwise(float(rows) * width, passes=2.0)

    def layernorm(self, rows: int, width: int) -> float:
        """RMS/LayerNorm: statistics pass + scale pass."""
        return self.elementwise(float(rows) * width, passes=2.0)
