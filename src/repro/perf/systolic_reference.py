"""Cycle-accurate weight-stationary systolic-array reference simulator.

The analytical model in :mod:`repro.perf.systolic` uses SCALE-Sim's
closed-form cycle counts.  This module *checks* that form: it steps a
small R x C weight-stationary array cycle by cycle — activations enter
skewed at the west edge and hop east, partial sums flow south — and
returns both the numerically computed GEMM result and the exact cycle
count.  Property tests assert the numerics match ``numpy.matmul`` and
the cycle counts match the analytical formula.

It is a *reference*, deliberately unoptimized: O(cycles x R x C) per
tile, intended for arrays up to a few dozen PEs in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ReferenceRun:
    """Outcome of a cycle-accurate GEMM execution."""

    result: np.ndarray
    total_cycles: int
    compute_cycles: int
    load_cycles: int
    tiles: int


class CycleAccurateSystolicArray:
    """An R x C weight-stationary array stepped one cycle at a time."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be >= 1")
        self.rows = rows
        self.cols = cols

    # ------------------------------------------------------------------ #
    # One weight tile                                                     #
    # ------------------------------------------------------------------ #

    def run_tile(self, activations: np.ndarray,
                 weights: np.ndarray) -> tuple[np.ndarray, int]:
        """Stream ``activations [m, R]`` against a resident ``[R, C]`` tile.

        Returns the ``[m, C]`` partial products and the exact cycle count
        from first injection to last drain.
        """
        m, k = activations.shape
        if k != self.rows:
            raise ValueError("activation width must equal array rows")
        if weights.shape != (self.rows, self.cols):
            raise ValueError("weight tile must match the array")

        act = np.zeros((self.rows, self.cols))
        psum = np.zeros((self.rows, self.cols))
        out = np.zeros((m, self.cols))
        # output for activation row i leaves column c of the south edge at
        # cycle i + c + rows - 1 (0-indexed), hence the horizon below
        horizon = m + self.rows + self.cols - 2
        for t in range(horizon):
            # activations hop east
            act[:, 1:] = act[:, :-1]
            # skewed injection at the west edge: row r gets a[t-r][r]
            for r in range(self.rows):
                i = t - r
                act[r, 0] = activations[i, r] if 0 <= i < m else 0.0
            # partial sums hop south and accumulate this PE's product
            shifted = np.zeros_like(psum)
            shifted[1:, :] = psum[:-1, :]
            psum = shifted + act * weights
            # south edge drains one output element per column per cycle
            for c in range(self.cols):
                i = t - c - (self.rows - 1)
                if 0 <= i < m:
                    out[i, c] = psum[self.rows - 1, c]
        return out, horizon

    # ------------------------------------------------------------------ #
    # Tiled GEMM                                                          #
    # ------------------------------------------------------------------ #

    def run_gemm(self, a: np.ndarray, b: np.ndarray,
                 double_buffered: bool = True) -> ReferenceRun:
        """Full ``[m, K] x [K, N]`` GEMM via weight tiling.

        Weight loads cost ``rows`` cycles each; with double buffering all
        but the first hide behind the previous tile's compute (matching
        the analytical model's pipeline-head treatment).
        """
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError("inner dimensions disagree")
        k_tiles = math.ceil(k / self.rows)
        n_tiles = math.ceil(n / self.cols)
        result = np.zeros((m, n))
        compute_cycles = 0
        load_cycles = 0
        first = True
        for kt in range(k_tiles):
            k_lo, k_hi = kt * self.rows, min((kt + 1) * self.rows, k)
            a_tile = np.zeros((m, self.rows))
            a_tile[:, : k_hi - k_lo] = a[:, k_lo:k_hi]
            for nt in range(n_tiles):
                n_lo, n_hi = nt * self.cols, min((nt + 1) * self.cols, n)
                w_tile = np.zeros((self.rows, self.cols))
                w_tile[: k_hi - k_lo, : n_hi - n_lo] = b[k_lo:k_hi, n_lo:n_hi]
                partial, cycles = self.run_tile(a_tile, w_tile)
                result[:, n_lo:n_hi] += partial[:, : n_hi - n_lo]
                compute_cycles += cycles
                if first or not double_buffered:
                    load_cycles += self.rows
                first = False
        return ReferenceRun(
            result=result,
            total_cycles=compute_cycles + load_cycles,
            compute_cycles=compute_cycles,
            load_cycles=load_cycles,
            tiles=k_tiles * n_tiles,
        )


def analytical_tile_cycles(m: int, rows: int, cols: int) -> int:
    """The closed form the analytical model uses for one tile."""
    return m + rows + cols - 2
