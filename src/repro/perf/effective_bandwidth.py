"""Effective memory-bandwidth utilization of the MAC tree (paper Fig. 10).

The authors measured a MAC tree on an Alveo U55C FPGA and found "a
logarithmic relationship between the computational workload of various
LLM models and memory bandwidth utilization", topping out at ~90 % of the
theoretical maximum.  We encode that finding directly: utilization is an
affine function of ``log10(operations per device)``, clamped to the
measured floor and ceiling.

Calibration anchors (read off the figure):

* ~1e9 ops/device  -> ~72 % (the "util 70-80 % region"),
* ~1e10 ops/device -> ~80 % (the "util 80-90 % region"),
* >=1e11.25 ops    -> 90 % ceiling ("up to 90 % of theoretical maximum").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EffectiveBandwidthCurve:
    """Utilization as ``clamp(slope * log10(ops) + intercept)``."""

    slope: float = 0.08
    intercept: float = 0.0
    floor: float = 0.55
    ceiling: float = 0.90

    def __post_init__(self) -> None:
        if not 0.0 <= self.floor <= self.ceiling <= 1.0:
            raise ValueError("need 0 <= floor <= ceiling <= 1")

    def utilization(self, ops_per_device: float) -> float:
        """Fraction of peak DRAM bandwidth achieved at this workload size."""
        if ops_per_device <= 0:
            return self.floor
        raw = self.slope * math.log10(ops_per_device) + self.intercept
        return min(self.ceiling, max(self.floor, raw))

    def utilization_array(self, ops: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`utilization` for sweeps."""
        ops = np.asarray(ops, dtype=float)
        raw = self.slope * np.log10(np.maximum(ops, 1.0)) + self.intercept
        return np.clip(raw, self.floor, self.ceiling)

    def effective_bandwidth(self, peak_bytes_per_s: float,
                            ops_per_device: float) -> float:
        """Achievable bytes/s given peak bandwidth and workload size."""
        if peak_bytes_per_s <= 0:
            raise ValueError("peak bandwidth must be positive")
        return peak_bytes_per_s * self.utilization(ops_per_device)

    def noisy_measurements(
        self,
        ops: np.ndarray,
        rng: np.random.Generator,
        relative_sigma: float = 0.015,
    ) -> np.ndarray:
        """Synthetic "FPGA measurement" points with multiplicative noise.

        Used by the Fig. 10 bench to recreate the measurement scatter; the
        noise never pushes a sample above 1.0 utilization.
        """
        clean = self.utilization_array(ops)
        noisy = clean * rng.normal(1.0, relative_sigma, size=clean.shape)
        return np.clip(noisy, 0.0, 1.0)


#: The calibrated curve used by every MAC-tree timing estimate.
MT_BANDWIDTH_CURVE = EffectiveBandwidthCurve()


def effective_bandwidth(peak_bytes_per_s: float, ops_per_device: float,
                        curve: EffectiveBandwidthCurve = MT_BANDWIDTH_CURVE) -> float:
    """Convenience wrapper over :class:`EffectiveBandwidthCurve`."""
    return curve.effective_bandwidth(peak_bytes_per_s, ops_per_device)
