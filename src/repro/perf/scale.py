"""Cluster-scale machinery: sharded simulation, streaming aggregates,
and the long-run progress heartbeat.

Three pieces, all serving the million-request regime:

* :func:`run_sharded_cluster` partitions a fixed fleet — and its
  session-affine traffic — across :class:`ShardPool` worker processes
  (the :class:`~repro.analysis.sweep.SweepPool` idiom) and merges the
  per-shard replica results into one
  :class:`~repro.cluster.report.ClusterResult` deterministically.
  Sharding is a **modeled** approximation: each shard routes only its
  own traffic slice over its own replica subset, so cross-shard load
  balancing disappears and the result is *not* bit-identical to the
  unsharded engine (``shards=1`` is, by construction — it takes the
  exact unsharded path).  Sessions never split across shards, so
  affinity routing and prefix reuse stay intact per shard.

* :class:`StreamStats` is a finished-request sink for
  ``ServingEngine.run(..., sink=...)``: constant-memory streaming runs
  retain exact aggregate QoS (counts, token totals, TTFT/E2E sums and
  maxima) while the engine drops each completed
  :class:`~repro.serving.request.Request` after the callback.

* :class:`ProgressReporter` throttles engine ``progress`` callbacks
  to a wall-clock interval and prints a stderr heartbeat.  The engines
  themselves never read a clock — the reporter owns the only wall-clock
  access, which is why it lives here and carries the R1 pragma.
"""

from __future__ import annotations

import dataclasses
import sys
import time
from typing import Callable, Iterable, Iterator, TextIO

from repro.api.specs import DeploymentSpec, WorkloadSpec
from repro.cluster.report import ClusterResult, aggregate_cluster
from repro.serving.engine import SimulationResult
from repro.serving.request import Request

_ANNOTATION = "shard failed at index "


# --------------------------------------------------------------------- #
# Traffic partitioning                                                   #
# --------------------------------------------------------------------- #

def shard_requests(workload: WorkloadSpec, shard: int,
                   shards: int) -> Iterator[Request]:
    """Lazily yield the requests belonging to one traffic shard.

    Session-affine partition: a request follows ``session_id % shards``
    when it belongs to a session (all turns of one conversation land on
    one shard, keeping affinity routing and prefix reuse meaningful)
    and ``request_id % shards`` otherwise.  A monotone subsequence of a
    time-sorted stream is time-sorted, so the filtered stream passes
    the engines' online ordering check unchanged.
    """
    if not 0 <= shard < shards:
        raise ValueError(f"shard index {shard} outside [0, {shards})")
    source: Iterable[Request] = workload.iter_requests() \
        if workload.streaming else workload.build_requests()
    for request in source:
        key = request.session_id if request.session_id is not None \
            else request.request_id
        if key % shards == shard:
            yield request


def shard_replica_count(replicas: int, shard: int, shards: int) -> int:
    """Replicas owned by one shard: near-even split, remainder to the
    lowest-indexed shards (deterministic for any (replicas, shards))."""
    base, extra = divmod(replicas, shards)
    return base + (1 if shard < extra else 0)


# --------------------------------------------------------------------- #
# Worker side                                                            #
# --------------------------------------------------------------------- #

def _simulate_shard(task: tuple) -> tuple[SimulationResult, ...]:
    """Run one shard's replica subset over its traffic slice.

    Module-level so the pool can pickle it; everything it needs rides
    in the task tuple (frozen specs pickle by value).  Imports stay
    inside the function so worker start-up does not pay for the full
    api surface before it must.
    """
    (deployment, workload, max_sim_seconds, shard, shards, sim_cache,
     context_bucket) = task
    from repro.api.facade import _device_for
    from repro.cluster.engine import ClusterEngine
    from repro.models.zoo import get_model

    device = _device_for(deployment.chip_spec(), sim_cache, context_bucket)
    model = get_model(deployment.model)
    engine = ClusterEngine(
        device, model, deployment.scheduler_limits(),
        num_devices=deployment.num_devices,
        replicas=shard_replica_count(deployment.replicas, shard, shards),
        router=deployment.router,
        fast_forward=sim_cache,
        prefix_cache=deployment.prefix_cache,
    )
    result = engine.run(shard_requests(workload, shard, shards),
                        max_sim_seconds=max_sim_seconds)
    return result.replica_results


def _apply_shard(task: tuple):
    """Annotate worker failures with the shard index (SweepPool idiom:
    the in-process and pooled paths raise the identical message)."""
    try:
        return _simulate_shard(task)
    except Exception as exc:  # pragma: no cover - diagnostic path
        raise RuntimeError(f"{_ANNOTATION}{task[3]}: {exc}") from exc


class ShardPool:
    """A persistent worker pool reusable across sharded cluster runs.

    Mirrors :class:`~repro.analysis.sweep.SweepPool`: workers stay
    alive between calls, so a bench that runs many sharded simulations
    pays the process spawn once; module-level caches populated by one
    run's shards warm the next run's.  Usable as a context manager.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        import concurrent.futures

        self.workers = workers
        self._executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers)

    def run_shards(self, tasks: list[tuple]) -> list:
        """Run every shard task; results in shard order."""
        futures = [self._executor.submit(_apply_shard, task)
                   for task in tasks]
        results = []
        for task, future in zip(tasks, futures):
            try:
                results.append(future.result())
            except Exception as exc:
                for pending in futures:
                    pending.cancel()
                if isinstance(exc, RuntimeError) \
                        and str(exc).startswith(_ANNOTATION):
                    raise
                raise RuntimeError(
                    f"{_ANNOTATION}{task[3]}: {exc}") from exc
        return results

    def close(self) -> None:
        """Shut the workers down (pending work is cancelled)."""
        self._executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------- #
# Driver                                                                 #
# --------------------------------------------------------------------- #

def run_sharded_cluster(deployment: DeploymentSpec, workload: WorkloadSpec,
                        max_sim_seconds: float = 600.0, shards: int = 2, *,
                        sim_cache: bool = True, context_bucket: int = 1,
                        pool: ShardPool | None = None) -> ClusterResult:
    """Simulate a fixed fleet partitioned over ``shards`` processes.

    ``shards=1`` takes the exact unsharded engine path (bit-identical
    to :func:`repro.api.facade.simulate_cluster` with default knobs).
    With more shards, replicas are split near-evenly and traffic
    follows :func:`shard_requests`; per-shard replica results are
    concatenated in shard order and merged by
    :func:`~repro.cluster.report.aggregate_cluster`, so the merge is
    deterministic — same spec, same shard count, same report.

    Elastic features are rejected loudly: autoscaling and fault
    injection coordinate the *whole* fleet each decision interval,
    which a shard cannot see; silently sharding them would change
    semantics, not just wall-clock.  Explicit fleets shard only when
    homogeneous — a one-group :class:`~repro.api.specs.FleetSpec`
    flattens onto the legacy fields, a mixed fleet is rejected (its
    capability-aware routing needs the whole-fleet view).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if deployment.batching != "continuous":
        raise ValueError(
            f"sharded cluster serving requires continuous batching, "
            f"got {deployment.batching!r}")
    if shards == 1:
        from repro.api.facade import build_cluster_engine

        engine = build_cluster_engine(deployment, sim_cache=sim_cache,
                                      context_bucket=context_bucket)
        requests = workload.request_stream() if workload.streaming \
            else workload.build_requests()
        return engine.run(requests, max_sim_seconds=max_sim_seconds)
    if deployment.fleet is not None:
        if len(deployment.fleet.groups) > 1:
            raise ValueError(
                "sharding requires a homogeneous fleet: per-shard "
                "routing cannot weigh groups it does not own, so a "
                "mixed fleet would silently lose its capability-aware "
                "placement — run the exact engine (shards=1) instead")
        # a one-group fleet is the homogeneous case spelled explicitly;
        # flatten it onto the legacy fields the shard workers build from
        group = deployment.fleet.groups[0]
        deployment = dataclasses.replace(
            deployment, fleet=None,
            chip=group.chip, model=group.model,
            num_devices=group.num_devices, max_batch=group.max_batch,
            prefill_chunk_tokens=group.prefill_chunk_tokens,
            kv_budget_bytes=float("inf") if group.kv_budget_bytes is None
            else group.kv_budget_bytes,
            replicas=group.count)
    if deployment.replicas < shards:
        raise ValueError(
            f"cannot shard {deployment.replicas} replicas over {shards} "
            f"processes — every shard needs at least one replica")
    if deployment.autoscale is not None:
        raise ValueError(
            "sharding requires a fixed fleet: the autoscaler decides "
            "over fleet-wide observations no shard can see")
    if deployment.faults is not None and deployment.faults.enabled:
        raise ValueError(
            "sharding cannot run fault injection: the fault coordinator "
            "replays retries against the whole fleet")
    if not isinstance(deployment.router, str):
        raise ValueError(
            "sharded runs need the router by registry name — a router "
            "instance would be shared mutable state across processes")
    tasks = [
        (deployment, workload, max_sim_seconds, shard, shards, sim_cache,
         context_bucket)
        for shard in range(shards)
    ]
    if pool is not None:
        shard_results = pool.run_shards(tasks)
    else:
        with ShardPool(shards) as scoped:
            shard_results = scoped.run_shards(tasks)
    merged: list[SimulationResult] = []
    for replica_results in shard_results:
        merged.extend(replica_results)
    return aggregate_cluster(merged)


# --------------------------------------------------------------------- #
# Streaming aggregates                                                   #
# --------------------------------------------------------------------- #

class StreamStats:
    """Exact aggregate QoS over completed requests a sink discarded.

    Pass an instance as ``ServingEngine.run(..., sink=stats)``: every
    completed request updates the counters and is then dropped by the
    engine, so a streaming run's footprint stays at the in-flight
    window while throughput and latency aggregates remain exact —
    the same sums a retained finished list would produce.
    """

    __slots__ = ("finished", "tokens", "ttft_sum", "ttft_max",
                 "e2e_sum", "e2e_max")

    def __init__(self) -> None:
        self.finished = 0
        self.tokens = 0
        self.ttft_sum = 0.0
        self.ttft_max = 0.0
        self.e2e_sum = 0.0
        self.e2e_max = 0.0

    def __call__(self, request: Request) -> None:
        self.finished += 1
        self.tokens += request.generated_tokens
        ttft = request.ttft
        self.ttft_sum += ttft
        if ttft > self.ttft_max:
            self.ttft_max = ttft
        e2e = request.e2e_latency
        self.e2e_sum += e2e
        if e2e > self.e2e_max:
            self.e2e_max = e2e

    @property
    def mean_ttft_s(self) -> float:
        return self.ttft_sum / self.finished if self.finished else 0.0

    @property
    def mean_e2e_s(self) -> float:
        return self.e2e_sum / self.finished if self.finished else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "finished": self.finished,
            "tokens": self.tokens,
            "mean_ttft_s": self.mean_ttft_s,
            "max_ttft_s": self.ttft_max,
            "mean_e2e_s": self.mean_e2e_s,
            "max_e2e_s": self.e2e_max,
        }


# --------------------------------------------------------------------- #
# Progress heartbeat                                                     #
# --------------------------------------------------------------------- #

class ProgressReporter:
    """Wall-clock-throttled stderr heartbeat for long runs.

    The engines call ``progress(sim_time, done_count)`` on their event
    boundaries with zero knowledge of real time; this reporter decides
    *whether* to print by reading the monotonic clock.  That keeps the
    determinism contract intact — wall clock influences only what is
    written to stderr, never a simulated value — which is the
    justification the R1 pragma below carries.
    """

    def __init__(self, interval_s: float = 5.0, label: str = "sim",
                 stream: TextIO | None = None,
                 clock: Callable[[], float] | None = None) -> None:
        if interval_s < 0:
            raise ValueError("interval_s must be non-negative")
        self.interval_s = interval_s
        self.label = label
        self._stream = stream if stream is not None else sys.stderr
        # injectable clock so tests exercise throttling deterministically
        self._clock = clock if clock is not None \
            else time.monotonic  # repro: allow[R1] gates stderr output only, never sim state
        self._last: float | None = None
        self.emitted = 0

    def __call__(self, sim_time: float, done: int) -> None:
        now = self._clock()
        if self._last is not None and now - self._last < self.interval_s:
            return
        self._last = now
        self.emitted += 1
        print(f"[{self.label}] sim_time={sim_time:.1f}s "
              f"requests_done={done}", file=self._stream, flush=True)
