"""Device-level performance models for the paper's comparison hardware.

Three baseline families appear in the evaluation:

* **GPU** (A100, H100): high peak specs, but SMT control keeps memory
  bandwidth utilization under ~60 % in decode and attention kernels
  degrade further with batch size (paper Sections II-B, III-A, Fig. 4b);
* **Systolic NPU** (TPUv4, LLMCompass-L/T): throughput-oriented systolic
  arrays that are "suboptimal for GEMV" — their decode efficiency is set
  by a per-design GEMV bandwidth utilization;
* **Streaming SRAM** (Groq TSP): all weights on chip at 80 TB/s, superb
  latency but hundreds of devices per model and poor area efficiency.

Each model implements the common :class:`DeviceModel` interface the
schedulers and benches consume; the ADOR HDA model lives in
:mod:`repro.core.scheduling` and implements the same interface.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.hardware.chip import ChipKind, ChipSpec
from repro.models.config import ModelConfig
from repro.models.kv_cache import kv_cache_bytes


@dataclass(frozen=True)
class BaselineBreakdown:
    """Stage latency with its component parts (all seconds)."""

    seconds: float
    weight_stream: float = 0.0
    attention: float = 0.0
    compute: float = 0.0
    communication: float = 0.0
    overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("negative stage time")

    def as_dict(self) -> dict[str, float]:
        return {
            "weight stream": self.weight_stream,
            "attention": self.attention,
            "compute": self.compute,
            "communication": self.communication,
            "overhead": self.overhead,
        }


def _tp_allreduce_seconds(
    chip: ChipSpec,
    model: ModelConfig,
    rows: int,
    num_devices: int,
    syncs_per_layer: int = 2,
) -> float:
    """Megatron-style tensor-parallel sync cost per forward pass.

    Two all-reduces per layer over the ``rows x hidden`` activation; the
    ring all-reduce moves ``2 (D-1)/D`` of the tensor per device.
    """
    if num_devices <= 1:
        return 0.0
    tensor_bytes = rows * model.hidden_size * model.dtype_bytes
    per_sync = 2.0 * (num_devices - 1) / num_devices * tensor_bytes
    wire = per_sync / chip.p2p.bandwidth_bytes_per_s
    steps = 2 * (num_devices - 1)
    latency = steps * chip.p2p.latency_s
    return model.num_layers * syncs_per_layer * (wire + latency)


class DeviceModel(abc.ABC):
    """Common stage-latency interface over every hardware family."""

    def __init__(self, chip: ChipSpec) -> None:
        self.chip = chip

    @abc.abstractmethod
    def prefill_time(self, model: ModelConfig, batch: int, seq_len: int,
                     num_devices: int = 1) -> BaselineBreakdown:
        """Latency to prefill ``batch`` requests of ``seq_len`` tokens."""

    @abc.abstractmethod
    def decode_step_time(self, model: ModelConfig, batch: int, context_len: int,
                         num_devices: int = 1) -> BaselineBreakdown:
        """Latency of one decode iteration over ``batch`` requests."""

    def decode_bandwidth_utilization(self, model: ModelConfig, batch: int,
                                     context_len: int,
                                     num_devices: int = 1) -> float:
        """Achieved fraction of peak DRAM bandwidth in decode (Fig. 4b)."""
        step = self.decode_step_time(model, batch, context_len, num_devices)
        bytes_needed = (
            model.active_param_bytes_per_token
            + kv_cache_bytes(model, batch, context_len)
        ) / num_devices
        ideal = bytes_needed / self.chip.memory_bandwidth
        if step.seconds == 0:
            return 1.0
        return min(1.0, ideal / step.seconds)

    def prefill_throughput_flops(self, model: ModelConfig, batch: int,
                                 seq_len: int, num_devices: int = 1) -> float:
        """Achieved FLOPS in prefill — the Fig. 4a numerator."""
        time = self.prefill_time(model, batch, seq_len, num_devices).seconds
        flops = 2.0 * batch * seq_len * model.active_params_per_token / num_devices
        return flops / time if time > 0 else 0.0


@dataclass(frozen=True)
class GpuEfficiency:
    """Derating constants of the GPU model (paper-calibrated).

    ``attention_util(B) = attn_util_base / (1 + B / attn_batch_knee)``
    captures the attention-kernel slowdown with batch the paper describes
    in Section II-B; weight streams achieve ``weight_stream_util`` and
    large GEMMs ``compute_eff`` of peak.
    """

    compute_eff: float = 0.62
    weight_stream_util: float = 0.85
    attn_util_base: float = 0.60
    attn_batch_knee: float = 110.0
    kernel_overhead_s: float = 2e-6
    kernels_per_layer: int = 8
    #: per-extra-device efficiency loss under tensor parallelism: sharded
    #: GEMVs shrink, wave quantization worsens, NCCL kernels interleave
    tp_derate: float = 0.08

    def attention_util(self, batch: int) -> float:
        return self.attn_util_base / (1.0 + batch / self.attn_batch_knee)

    def tp_efficiency(self, devices: int) -> float:
        return 1.0 / (1.0 + self.tp_derate * max(0, devices - 1))


class GpuModel(DeviceModel):
    """A100/H100-class SMT GPU."""

    def __init__(self, chip: ChipSpec,
                 efficiency: GpuEfficiency | None = None) -> None:
        if chip.kind != ChipKind.GPU:
            raise ValueError(f"{chip.name} is not a GPU spec")
        super().__init__(chip)
        self.eff = efficiency or GpuEfficiency()

    def _overhead(self, model: ModelConfig) -> float:
        return self.eff.kernel_overhead_s * self.eff.kernels_per_layer \
            * model.num_layers

    def prefill_time(self, model: ModelConfig, batch: int, seq_len: int,
                     num_devices: int = 1) -> BaselineBreakdown:
        flops = 2.0 * batch * seq_len * model.active_params_per_token / num_devices
        # causal attention score/context flops
        attn_flops = (
            2.0 * batch * model.num_layers * model.num_heads
            * model.head_dim * seq_len * seq_len / num_devices
        )
        compute = (flops + attn_flops) / (self.chip.peak_flops * self.eff.compute_eff)
        weights = model.active_param_bytes_per_token / num_devices \
            / (self.chip.memory_bandwidth * self.eff.weight_stream_util)
        body = max(compute, weights)
        comm = _tp_allreduce_seconds(self.chip, model, batch * seq_len, num_devices)
        overhead = self._overhead(model)
        return BaselineBreakdown(
            seconds=body + comm + overhead,
            weight_stream=weights,
            compute=compute,
            communication=comm,
            overhead=overhead,
        )

    def decode_step_time(self, model: ModelConfig, batch: int, context_len: int,
                         num_devices: int = 1) -> BaselineBreakdown:
        bw = self.chip.memory_bandwidth
        tp_eff = self.eff.tp_efficiency(num_devices)
        weight_bytes = model.active_param_bytes_per_token / num_devices
        weight_stream = weight_bytes / (bw * self.eff.weight_stream_util * tp_eff)
        gemm_flops = 2.0 * batch * model.active_params_per_token / num_devices
        gemm_compute = gemm_flops / (self.chip.peak_flops * self.eff.compute_eff)
        dense = max(weight_stream, gemm_compute)

        kv_bytes = kv_cache_bytes(model, batch, context_len) / num_devices
        attention = kv_bytes / (bw * self.eff.attention_util(batch) * tp_eff)

        comm = _tp_allreduce_seconds(self.chip, model, batch, num_devices)
        overhead = self._overhead(model)
        return BaselineBreakdown(
            seconds=dense + attention + comm + overhead,
            weight_stream=weight_stream,
            attention=attention,
            compute=gemm_compute,
            communication=comm,
            overhead=overhead,
        )


@dataclass(frozen=True)
class NpuEfficiency:
    """Derating constants of a systolic NPU design."""

    compute_eff: float = 0.75
    weight_stream_util: float = 0.70
    #: DRAM utilization achievable by GEMV/attention work on the systolic
    #: array — the paper's core criticism of SA-only designs.
    gemv_util: float = 0.50
    op_overhead_s: float = 5e-7
    ops_per_layer: int = 8
    #: attention kernels shard into per-request GEMVs that tile the array
    #: ever worse as batch grows (same mechanism as the GPU's knee)
    attn_batch_knee: float = 256.0

    def attention_util(self, batch: int) -> float:
        return self.gemv_util / (1.0 + batch / self.attn_batch_knee)


#: Per-design GEMV utilization: latency-oriented small arrays stream
#: GEMV operands far better than huge throughput arrays.
NPU_EFFICIENCY_PRESETS: dict[str, NpuEfficiency] = {
    "Google TPUv4": NpuEfficiency(compute_eff=0.70, gemv_util=0.45),
    "LLMCompass-L": NpuEfficiency(compute_eff=0.75, gemv_util=0.75),
    "LLMCompass-T": NpuEfficiency(compute_eff=0.75, gemv_util=0.55),
}


class SystolicNpuModel(DeviceModel):
    """TPU / LLMCompass-class systolic-array NPU."""

    def __init__(self, chip: ChipSpec,
                 efficiency: NpuEfficiency | None = None) -> None:
        if chip.kind != ChipKind.SYSTOLIC_NPU:
            raise ValueError(f"{chip.name} is not a systolic NPU spec")
        super().__init__(chip)
        self.eff = efficiency or NPU_EFFICIENCY_PRESETS.get(
            chip.name, NpuEfficiency())

    def _overhead(self, model: ModelConfig) -> float:
        return self.eff.op_overhead_s * self.eff.ops_per_layer * model.num_layers

    def prefill_time(self, model: ModelConfig, batch: int, seq_len: int,
                     num_devices: int = 1) -> BaselineBreakdown:
        flops = 2.0 * batch * seq_len * model.active_params_per_token / num_devices
        attn_flops = (
            2.0 * batch * model.num_layers * model.num_heads
            * model.head_dim * seq_len * seq_len / num_devices
        )
        compute = (flops + attn_flops) / (self.chip.peak_flops * self.eff.compute_eff)
        weights = model.active_param_bytes_per_token / num_devices \
            / (self.chip.memory_bandwidth * self.eff.weight_stream_util)
        body = max(compute, weights)
        comm = _tp_allreduce_seconds(self.chip, model, batch * seq_len, num_devices)
        overhead = self._overhead(model)
        return BaselineBreakdown(
            seconds=body + comm + overhead,
            weight_stream=weights,
            compute=compute,
            communication=comm,
            overhead=overhead,
        )

    def decode_step_time(self, model: ModelConfig, batch: int, context_len: int,
                         num_devices: int = 1) -> BaselineBreakdown:
        bw = self.chip.memory_bandwidth
        weight_bytes = model.active_param_bytes_per_token / num_devices
        weight_stream = weight_bytes / (bw * self.eff.gemv_util)
        gemm_flops = 2.0 * batch * model.active_params_per_token / num_devices
        gemm_compute = gemm_flops / (self.chip.peak_flops * self.eff.compute_eff)
        dense = max(weight_stream, gemm_compute)

        kv_bytes = kv_cache_bytes(model, batch, context_len) / num_devices
        attention = kv_bytes / (bw * self.eff.attention_util(batch))

        comm = _tp_allreduce_seconds(self.chip, model, batch, num_devices)
        overhead = self._overhead(model)
        return BaselineBreakdown(
            seconds=dense + attention + comm + overhead,
            weight_stream=weight_stream,
            attention=attention,
            compute=gemm_compute,
            communication=comm,
            overhead=overhead,
        )


class TspModel(DeviceModel):
    """Groq-TSP-class streaming architecture: all weights in SRAM.

    A model is sharded over however many devices its parameters need;
    decode latency is a single pipeline traversal at SRAM bandwidth.
    """

    SRAM_UTIL = 0.80
    CAPACITY_FRACTION = 0.80  # SRAM share available for weights

    def __init__(self, chip: ChipSpec) -> None:
        if chip.kind != ChipKind.STREAMING_SRAM:
            raise ValueError(f"{chip.name} is not a streaming-SRAM spec")
        super().__init__(chip)

    def devices_required(self, model: ModelConfig) -> int:
        """Devices needed just to hold the weights on chip."""
        usable = self.chip.local_memory.size_bytes * self.CAPACITY_FRACTION
        return max(1, math.ceil(model.param_bytes / usable))

    def max_kv_batch(self, model: ModelConfig, context_len: int,
                     num_devices: int | None = None) -> int:
        """Largest batch whose KV cache fits in the SRAM left over after
        weights — the TSP's structural throughput limit."""
        devices = num_devices or self.devices_required(model)
        spare = self.chip.local_memory.size_bytes \
            * (1.0 - self.CAPACITY_FRACTION) * devices
        from repro.models.kv_cache import kv_bytes_per_token
        per_request = context_len * kv_bytes_per_token(model)
        return max(1, int(spare // per_request))

    def prefill_time(self, model: ModelConfig, batch: int, seq_len: int,
                     num_devices: int = 1) -> BaselineBreakdown:
        devices = max(num_devices, self.devices_required(model))
        flops = 2.0 * batch * seq_len * model.active_params_per_token
        compute = flops / (self.chip.peak_flops * 0.55 * devices)
        comm = devices * self.chip.p2p.latency_s
        return BaselineBreakdown(seconds=compute + comm, compute=compute,
                                 communication=comm)

    def decode_step_time(self, model: ModelConfig, batch: int, context_len: int,
                         num_devices: int = 1) -> BaselineBreakdown:
        devices = max(num_devices, self.devices_required(model))
        bw = self.chip.dram.bandwidth_bytes_per_s * self.SRAM_UTIL
        # Pipeline traversal: every weight byte crosses a MAC once, each
        # device streaming its resident slice; KV also lives in SRAM.
        weight_stream = model.active_param_bytes_per_token / (bw * devices)
        kv_bytes = kv_cache_bytes(model, batch, context_len)
        attention = kv_bytes / (bw * devices)
        comm = devices * self.chip.p2p.latency_s
        gemm_flops = 2.0 * batch * model.active_params_per_token
        compute = gemm_flops / (self.chip.peak_flops * devices * 0.55)
        body = max(weight_stream + attention, compute)
        return BaselineBreakdown(
            seconds=body + comm,
            weight_stream=weight_stream,
            attention=attention,
            compute=compute,
            communication=comm,
        )


def baseline_for(chip: ChipSpec) -> DeviceModel:
    """Dispatch a baseline chip spec to its performance model.

    ADOR HDA chips are handled by
    :func:`repro.core.scheduling.device_model_for`, which builds the full
    heterogeneous-dataflow scheduler on top of this interface.
    """
    if chip.kind == ChipKind.GPU:
        return GpuModel(chip)
    if chip.kind == ChipKind.SYSTOLIC_NPU:
        return SystolicNpuModel(chip)
    if chip.kind == ChipKind.STREAMING_SRAM:
        return TspModel(chip)
    raise ValueError(
        f"{chip.name}: kind {chip.kind} has no baseline model; "
        "use repro.core.scheduling.device_model_for for HDA chips"
    )
