"""Analytical performance models for every compute substrate in the paper.

* :mod:`repro.perf.effective_bandwidth` — the Fig. 10 MAC-tree bandwidth
  utilization curve (FPGA-calibrated in the paper, curve-fitted here).
* :mod:`repro.perf.systolic` — SCALE-Sim-style weight-stationary systolic
  array timing with tiling, fill/drain and DRAM-stall modelling.
* :mod:`repro.perf.mac_tree` — streaming dot-product engine timing with
  lane-level KV reuse for MHA/GQA/MQA (Fig. 11b).
* :mod:`repro.perf.vector` — vector-unit timing for softmax/norms.
* :mod:`repro.perf.roofline` — shared roofline helpers.
* :mod:`repro.perf.baselines` — device-level models for the GPU / NPU /
  TSP comparison points (Figs. 1, 4, 15).
"""

from repro.perf.effective_bandwidth import (
    EffectiveBandwidthCurve,
    MT_BANDWIDTH_CURVE,
    effective_bandwidth,
)
from repro.perf.systolic import SaGemmEstimate, SystolicTimingModel
from repro.perf.mac_tree import MacTreeTimingModel, MtEstimate
from repro.perf.vector import VectorTimingModel
from repro.perf.roofline import Bound, roofline_time
from repro.perf.baselines import (
    BaselineBreakdown,
    DeviceModel,
    GpuModel,
    SystolicNpuModel,
    TspModel,
    baseline_for,
)
from repro.perf.cache import CachedDeviceModel, CacheStats

__all__ = [
    "EffectiveBandwidthCurve",
    "MT_BANDWIDTH_CURVE",
    "effective_bandwidth",
    "SaGemmEstimate",
    "SystolicTimingModel",
    "MacTreeTimingModel",
    "MtEstimate",
    "VectorTimingModel",
    "Bound",
    "roofline_time",
    "BaselineBreakdown",
    "DeviceModel",
    "GpuModel",
    "SystolicNpuModel",
    "TspModel",
    "baseline_for",
    "CachedDeviceModel",
    "CacheStats",
]
