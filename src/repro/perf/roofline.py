"""Shared roofline helpers.

A kernel's time is the maximum of its compute time and its memory time;
these helpers make the "which wall did we hit" decision explicit so that
breakdowns can be reported everywhere (Figs. 11a, 15).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Bound(enum.Enum):
    """Which resource limited a kernel."""

    COMPUTE = "compute"
    MEMORY = "memory"
    NETWORK = "network"
    LATENCY = "latency"  # fixed overheads (fill/drain, kernel launch)


@dataclass(frozen=True)
class RooflineEstimate:
    """Timing estimate with its limiting resource."""

    seconds: float
    bound: Bound
    compute_seconds: float
    memory_seconds: float

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the compute roof."""
        if self.seconds == 0:
            return 1.0
        return self.compute_seconds / self.seconds


def roofline_time(
    flops: float,
    bytes_moved: float,
    peak_flops: float,
    peak_bandwidth: float,
    compute_efficiency: float = 1.0,
    bandwidth_utilization: float = 1.0,
    overhead_seconds: float = 0.0,
) -> RooflineEstimate:
    """Classic roofline with derated peaks and a fixed overhead floor."""
    if peak_flops <= 0 or peak_bandwidth <= 0:
        raise ValueError("peaks must be positive")
    if not 0 < compute_efficiency <= 1 or not 0 < bandwidth_utilization <= 1:
        raise ValueError("efficiencies must be in (0, 1]")
    compute = flops / (peak_flops * compute_efficiency)
    memory = bytes_moved / (peak_bandwidth * bandwidth_utilization)
    body = max(compute, memory)
    total = body + overhead_seconds
    if overhead_seconds > body:
        bound = Bound.LATENCY
    elif compute >= memory:
        bound = Bound.COMPUTE
    else:
        bound = Bound.MEMORY
    return RooflineEstimate(
        seconds=total,
        bound=bound,
        compute_seconds=compute,
        memory_seconds=memory,
    )
