"""Memoizing device-model wrapper: the simulator's hot-path cache.

Every serving iteration asks a :class:`~repro.perf.baselines.DeviceModel`
for one decode-step or prefill latency.  Those analytic evaluations are
pure functions of ``(model, batch, context, num_devices)``, yet the
engines re-derive them from scratch thousands of times per simulation —
steady-state serving revisits the same operating points constantly
(batch pinned at ``max_batch``, contexts cycling through the same band,
replicas of a cluster sharing one device model).

:class:`CachedDeviceModel` wraps any device model and memoizes both
estimators.  With the default ``context_bucket=1`` the cache is *exact*:
a hit returns the identical :class:`BaselineBreakdown` object the inner
model would have produced, so simulation results are bit-identical to
the uncached path.  Larger buckets quantize the decode context to the
nearest bucket multiple before the lookup, trading a bounded latency
error (the KV-attention term shifts by at most half a bucket of context)
for a much higher hit rate — useful for coarse design-space sweeps;
``benchmarks/bench_sim_speed.py`` reports the measured error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.perf.baselines import BaselineBreakdown, DeviceModel


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`CachedDeviceModel`."""

    decode_hits: int = 0
    decode_misses: int = 0
    prefill_hits: int = 0
    prefill_misses: int = 0

    @property
    def decode_hit_rate(self) -> float:
        calls = self.decode_hits + self.decode_misses
        return self.decode_hits / calls if calls else 0.0

    @property
    def prefill_hit_rate(self) -> float:
        calls = self.prefill_hits + self.prefill_misses
        return self.prefill_hits / calls if calls else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "decode_hits": self.decode_hits,
            "decode_misses": self.decode_misses,
            "decode_hit_rate": self.decode_hit_rate,
            "prefill_hits": self.prefill_hits,
            "prefill_misses": self.prefill_misses,
            "prefill_hit_rate": self.prefill_hit_rate,
        }


class CachedDeviceModel(DeviceModel):
    """Memoizes ``decode_step_time`` / ``prefill_time`` of a wrapped model.

    Keys are ``(model, batch, context, num_devices)``; ``ModelConfig`` is
    a frozen dataclass, so equal configs share entries.  The wrapper is
    transparent for everything else: unknown attributes (``scheduler``,
    ``devices_required``, ...) delegate to the inner model, and the
    inherited :class:`DeviceModel` helpers (bandwidth utilization,
    prefill FLOPS) route their stage-time calls through the cache.
    """

    def __init__(self, inner: DeviceModel, context_bucket: int = 1) -> None:
        if isinstance(inner, CachedDeviceModel):
            raise ValueError("refusing to cache an already-cached model")
        if context_bucket < 1:
            raise ValueError("context_bucket must be >= 1")
        super().__init__(inner.chip)
        self.inner = inner
        self.context_bucket = int(context_bucket)
        self.stats = CacheStats()
        # two-level maps: model identity -> {(batch, context, devices):
        # breakdown}.  Hashing a frozen ModelConfig re-derives a dozen
        # field hashes per lookup; an id() outer key makes the hot
        # lookup three machine integers.  The model object is pinned in
        # _models so a freed id can never alias a new config.
        self._models: dict[int, ModelConfig] = {}
        self._decode: dict[int, dict] = {}
        self._prefill: dict[int, dict] = {}
        # raw-context -> step-seconds maps, keyed (model id, batch,
        # devices).  See decode_seconds_map.
        self._decode_seconds: dict[tuple[int, int, int], dict[int, float]] = {}

    def __getattr__(self, name: str):
        # only called when normal lookup fails: delegate e.g.
        # TspModel.devices_required or AdorDeviceModel.scheduler
        if name == "inner":
            # during unpickling the instance dict is still empty;
            # delegating would recurse on self.inner forever
            raise AttributeError(name)
        return getattr(self.inner, name)

    def bucketed_context(self, context_len: int) -> int:
        """The context length actually evaluated for ``context_len``."""
        bucket = self.context_bucket
        if bucket <= 1:
            return context_len
        # snap to the nearest bucket multiple (at least one token) so the
        # worst-case context error is bucket/2 either way
        return max(1, ((context_len + bucket // 2) // bucket) * bucket)

    def _model_entries(self, table: dict, model: ModelConfig) -> dict:
        entries = table.get(id(model))
        if entries is None:
            entries = table[id(model)] = {}
            self._models[id(model)] = model
        return entries

    def decode_step_time(self, model: ModelConfig, batch: int,
                         context_len: int,
                         num_devices: int = 1) -> BaselineBreakdown:
        context = self.bucketed_context(context_len)
        entries = self._decode.get(id(model))
        if entries is None:
            entries = self._model_entries(self._decode, model)
        key = (batch, context, num_devices)
        hit = entries.get(key)
        if hit is not None:
            self.stats.decode_hits += 1
            return hit
        self.stats.decode_misses += 1
        value = self.inner.decode_step_time(model, batch, context,
                                            num_devices)
        entries[key] = value
        return value

    def decode_seconds_map(self, model: ModelConfig, batch: int,
                           num_devices: int = 1) -> dict[int, float]:
        """Mutable ``{raw context -> decode-step seconds}`` map for one
        ``(model, batch, num_devices)`` operating point.

        The decode fast-forward loop runs one dict probe per simulated
        step; going through :meth:`decode_step_time` would re-bucket the
        context and rebuild the key tuple every step only to fetch the
        same ``seconds`` float.  Callers fill misses *through*
        :meth:`decode_step_time` (so breakdown entries and miss counters
        stay exact) and bulk-account the map hits on ``stats``
        afterwards.  Keys are raw contexts: with ``context_bucket > 1``
        several raw contexts alias one bucketed evaluation, which is the
        same value the bucketed lookup would return.
        """
        key = (id(model), batch, num_devices)
        seconds = self._decode_seconds.get(key)
        if seconds is None:
            seconds = self._decode_seconds[key] = {}
            self._models[id(model)] = model
        return seconds

    def prefill_time(self, model: ModelConfig, batch: int, seq_len: int,
                     num_devices: int = 1) -> BaselineBreakdown:
        # prefill chunks are already quantized by the scheduler's chunk
        # size; bucketing them would distort TTFT for no hit-rate gain
        entries = self._prefill.get(id(model))
        if entries is None:
            entries = self._model_entries(self._prefill, model)
        key = (batch, seq_len, num_devices)
        hit = entries.get(key)
        if hit is not None:
            self.stats.prefill_hits += 1
            return hit
        self.stats.prefill_misses += 1
        value = self.inner.prefill_time(model, batch, seq_len, num_devices)
        entries[key] = value
        return value

    def cache_info(self) -> dict[str, float]:
        """Counters plus current entry counts, for benches and logs."""
        info = self.stats.as_dict()
        info["decode_entries"] = sum(len(e) for e in self._decode.values())
        info["prefill_entries"] = sum(len(e) for e in self._prefill.values())
        info["context_bucket"] = self.context_bucket
        return info

    def clear(self) -> None:
        """Drop all entries and reset counters."""
        self._models.clear()
        self._decode.clear()
        self._prefill.clear()
        self._decode_seconds.clear()
        self.stats = CacheStats()
