"""Coarse-Grained Reconfigurable Architecture (CGRA) baseline.

Section II-C contrasts ADOR's HDA against a CGRA that morphs one core
between GEMM-mode and GEMV-mode at runtime.  The CGRA pays three taxes
the paper identifies:

* **area** — switches and wires for reconfigurability make each MAC less
  dense, so an equal-area CGRA carries fewer MACs ("less area
  efficiency");
* **energy** — the switching fabric burns extra energy per operation
  ("poorer power efficiency"; the cited HDA study reports 41.3 %
  savings);
* **reconfiguration bubbles** — switching modes between the attention
  GEMVs and the projection GEMMs of every layer stalls the fabric.

The model reuses the HDA scheduler on a derated chip: the same die area
buys ``1 / area_overhead`` of the MACs, every mode switch costs
``reconfig_latency_s``, and the power model charges an energy overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.scheduling import AdorDeviceModel, SchedulerConfig
from repro.hardware.chip import ChipKind, ChipSpec
from repro.hardware.components import MacTree, SystolicArray
from repro.models.config import ModelConfig
from repro.perf.baselines import BaselineBreakdown, DeviceModel


@dataclass(frozen=True)
class CgraOverheads:
    """The CGRA's taxes relative to fixed-function HDA units."""

    area_overhead: float = 1.40
    energy_overhead: float = 1.35
    reconfig_latency_s: float = 1.5e-6
    #: mode switches per decoder layer (GEMM mode <-> GEMV mode, twice:
    #: into attention and back out)
    switches_per_layer: int = 2

    def __post_init__(self) -> None:
        if self.area_overhead < 1.0 or self.energy_overhead < 1.0:
            raise ValueError("CGRA overheads cannot be below 1.0")
        if self.reconfig_latency_s < 0 or self.switches_per_layer < 0:
            raise ValueError("reconfiguration costs must be non-negative")


def cgra_equivalent_chip(hda: ChipSpec,
                         overheads: CgraOverheads | None = None) -> ChipSpec:
    """An equal-die-area CGRA: same memories/interconnect, fewer MACs.

    The reconfigurable fabric's area tax shrinks the systolic array; the
    MAC tree disappears (a CGRA reuses the same fabric in GEMV mode, so
    its "MAC tree" capability is the derated array itself, represented
    here as a minimal tree to keep the scheduler's GEMV path honest).
    """
    overheads = overheads or CgraOverheads()
    array = hda.systolic_array
    if array is None:
        raise ValueError("need an HDA reference with a systolic array")
    total_macs = hda.sa_macs + hda.mt_macs
    budget = total_macs / overheads.area_overhead
    per_core = budget / hda.cores
    side = max(8, int(math.sqrt(per_core) // 8 * 8))
    return hda.with_updates(
        name=f"CGRA ({hda.name})",
        systolic_array=SystolicArray(side, side),
        mac_tree=MacTree(tree_size=max(1, side // 4), lanes=4),
    )


class CgraDeviceModel(DeviceModel):
    """Stage-latency model of the equal-area CGRA."""

    def __init__(self, hda_chip: ChipSpec,
                 overheads: CgraOverheads | None = None) -> None:
        if hda_chip.kind != ChipKind.ADOR_HDA:
            raise ValueError("the CGRA baseline derives from an HDA chip")
        self.overheads = overheads or CgraOverheads()
        chip = cgra_equivalent_chip(hda_chip, self.overheads)
        super().__init__(chip)
        # the reconfigurable fabric streams GEMVs worse than a MAC tree:
        # mode-switched operation exposes prefetch, like the SA-only case
        self._inner = AdorDeviceModel(chip, use_mac_tree=False,
                                      config=SchedulerConfig())

    def _reconfig_seconds(self, model: ModelConfig) -> float:
        return (model.num_layers * self.overheads.switches_per_layer
                * self.overheads.reconfig_latency_s)

    def prefill_time(self, model: ModelConfig, batch: int, seq_len: int,
                     num_devices: int = 1) -> BaselineBreakdown:
        base = self._inner.prefill_time(model, batch, seq_len, num_devices)
        bubble = self._reconfig_seconds(model)
        return BaselineBreakdown(
            seconds=base.seconds + bubble,
            weight_stream=base.weight_stream,
            attention=base.attention,
            compute=base.compute,
            communication=base.communication,
            overhead=base.overhead + bubble,
        )

    def decode_step_time(self, model: ModelConfig, batch: int,
                         context_len: int,
                         num_devices: int = 1) -> BaselineBreakdown:
        base = self._inner.decode_step_time(model, batch, context_len,
                                            num_devices)
        bubble = self._reconfig_seconds(model)
        return BaselineBreakdown(
            seconds=base.seconds + bubble,
            weight_stream=base.weight_stream,
            attention=base.attention,
            compute=base.compute,
            communication=base.communication,
            overhead=base.overhead + bubble,
        )
