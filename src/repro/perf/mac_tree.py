"""MAC-tree timing: streaming GEMV and decode attention (paper Fig. 11b).

The MAC tree consumes its streamed operand (weights or KV cache) straight
from DRAM — no SRAM staging — so its GEMV time is the larger of:

* the *stream time*: bytes over the effective DRAM bandwidth from the
  Fig. 10 curve, inflated by KV re-reads when the lane count cannot cover
  a GQA group (one KV stream must feed ``group`` query heads; with fewer
  lanes the stream is fetched ``ceil(group / lanes)`` times);
* the *compute time*: FLOPs over the tree pool's peak, clamped by the
  available parallel jobs (batch x heads for attention).

This reproduces the paper's observations: MHA is compute-limited on a
1-lane tree and bandwidth-limited beyond ~8 lanes; GQA gains up to its
group size; MQA keeps gaining through 16 lanes (Fig. 11b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.components import MacTree
from repro.perf.effective_bandwidth import (
    EffectiveBandwidthCurve,
    MT_BANDWIDTH_CURVE,
)
from repro.perf.roofline import Bound


@dataclass(frozen=True)
class MtEstimate:
    """Timing of one streamed operation on the MAC-tree pool."""

    seconds: float
    bound: Bound
    stream_seconds: float
    compute_seconds: float
    effective_bandwidth: float


@dataclass(frozen=True)
class MacTreeTimingModel:
    """Timing for ``cores`` MAC trees sharing one DRAM system."""

    tree: MacTree
    cores: int
    frequency_hz: float
    dram_bandwidth: float
    curve: EffectiveBandwidthCurve = MT_BANDWIDTH_CURVE

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.frequency_hz <= 0 or self.dram_bandwidth <= 0:
            raise ValueError("frequency and bandwidth must be positive")

    @property
    def pool_macs(self) -> int:
        return self.tree.macs * self.cores

    @property
    def peak_flops(self) -> float:
        return 2.0 * self.pool_macs * self.frequency_hz

    def _estimate(self, flops: float, stream_bytes: float,
                  parallel_jobs: int) -> MtEstimate:
        eff_bw = self.curve.effective_bandwidth(self.dram_bandwidth, flops)
        stream = stream_bytes / eff_bw
        usable_lanes = min(self.tree.lanes, max(1, parallel_jobs))
        usable_macs = self.tree.tree_size * usable_lanes * self.cores
        compute = flops / (2.0 * usable_macs * self.frequency_hz)
        seconds = max(stream, compute)
        bound = Bound.MEMORY if stream >= compute else Bound.COMPUTE
        return MtEstimate(
            seconds=seconds,
            bound=bound,
            stream_seconds=stream,
            compute_seconds=compute,
            effective_bandwidth=eff_bw,
        )

    def gemv(
        self,
        batch: int,
        k: int,
        n: int,
        dtype_bytes: int = 2,
    ) -> MtEstimate:
        """Batched weight GEMV: ``batch`` rows against a ``K x N`` weight.

        Weights stream once from DRAM and are consumed by all batch rows,
        so the stream term is weight bytes only — exactly the dataflow of
        Fig. 6(b)/(c) for the decode stage.
        """
        if batch < 1 or k < 1 or n < 1:
            raise ValueError("GEMV dims must be >= 1")
        flops = 2.0 * batch * k * n
        stream_bytes = float(k * n * dtype_bytes)
        return self._estimate(flops, stream_bytes, parallel_jobs=batch)

    def decode_attention(
        self,
        batch: int,
        num_heads: int,
        num_kv_heads: int,
        head_dim: int,
        context_len: int,
        dtype_bytes: int = 2,
    ) -> MtEstimate:
        """Score + context products of one decode step against the KV cache.

        KV bytes are per-request (non-shareable); a lane deficit versus
        the GQA group size forces re-reads of the KV stream.
        """
        if batch < 1 or context_len < 0:
            raise ValueError("batch must be >= 1 and context non-negative")
        if num_heads % num_kv_heads != 0:
            raise ValueError("num_heads must be divisible by num_kv_heads")
        if context_len == 0:
            return MtEstimate(0.0, Bound.MEMORY, 0.0, 0.0, self.dram_bandwidth)
        group = num_heads // num_kv_heads
        kv_bytes = 2.0 * batch * context_len * num_kv_heads * head_dim * dtype_bytes
        rereads = math.ceil(group / self.tree.lanes)
        flops = 2.0 * 2.0 * batch * num_heads * head_dim * context_len
        return self._estimate(flops, kv_bytes * rereads,
                              parallel_jobs=batch * num_heads)

    def stream_weights(self, weight_bytes: float, flops: float) -> MtEstimate:
        """Generic weight-stream op (used for whole-layer aggregates)."""
        if weight_bytes < 0 or flops < 0:
            raise ValueError("bytes and flops must be non-negative")
        return self._estimate(flops, weight_bytes, parallel_jobs=1 << 30)
