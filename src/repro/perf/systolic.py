"""Weight-stationary systolic-array timing (SCALE-Sim analytical model).

The paper models its systolic arrays with SCALE-Sim (Section V-A); for a
weight-stationary array SCALE-Sim's cycle count is closed-form, so we
implement that form directly plus the two extensions ADOR needs:

* a DRAM-bandwidth stall term — weight tiles must arrive in time, and a
  too-slow memory system exposes prefetch latency;
* a *double-buffering* toggle — prefill GEMMs hide the weight load behind
  compute (paper Fig. 6c), but latency-critical GEMV work cannot ("weight
  double buffering is not feasible in this case, exposing pre-fetch
  latency", Section III-B).

For an ``M x K`` activation against a ``K x N`` weight on an ``R x C``
array: the weight matrix is cut into ``ceil(K/R) * ceil(N/C)`` tiles; per
tile the array loads R rows of weights, then streams M activation rows
through with a pipeline fill+drain of ``R + C - 2`` cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.components import SystolicArray
from repro.perf.roofline import Bound


@dataclass(frozen=True)
class SaGemmEstimate:
    """Timing of one GEMM on (possibly many cores of) systolic arrays."""

    cycles: float
    seconds: float
    utilization: float
    bound: Bound
    tiles: int

    def __post_init__(self) -> None:
        if self.seconds < 0 or self.cycles < 0:
            raise ValueError("negative time")


@dataclass(frozen=True)
class SystolicTimingModel:
    """Analytical WS timing for a pool of identical systolic arrays.

    Parameters
    ----------
    array:
        Per-core array geometry.
    cores:
        Number of cores cooperating on one GEMM (the throughput dataflow
        broadcasts weights and splits M across cores, Fig. 6c).
    frequency_hz:
        Core clock.
    dram_stream_utilization:
        Fraction of DRAM bandwidth usable for weight prefetch streams;
        below 1.0 because prefetch granularity and refresh cut into it.
    """

    array: SystolicArray
    cores: int
    frequency_hz: float
    dram_stream_utilization: float = 0.70

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if not 0 < self.dram_stream_utilization <= 1:
            raise ValueError("stream utilization must be in (0, 1]")

    def gemm(
        self,
        m: int,
        k: int,
        n: int,
        dram_bandwidth: float,
        dtype_bytes: int = 2,
        double_buffered: bool = True,
        weights_resident: bool = False,
        core_split: str = "auto",
    ) -> SaGemmEstimate:
        """Time an ``M x K x N`` GEMM spread over all cores.

        ``weights_resident`` skips the DRAM stall term (weights already in
        global memory, e.g. the KV pairs of the current prefill chunk).

        ``core_split`` chooses how cores cooperate: ``"m"`` is the
        throughput dataflow (activations partitioned, weights broadcast,
        Fig. 6c), ``"n"`` is the latency dataflow (same activations,
        weight columns partitioned, Fig. 6b), and ``"auto"`` picks the
        faster — the compiler's choice.
        """
        if core_split == "auto":
            split_m = self.gemm(m, k, n, dram_bandwidth, dtype_bytes,
                                double_buffered, weights_resident, "m")
            split_n = self.gemm(m, k, n, dram_bandwidth, dtype_bytes,
                                double_buffered, weights_resident, "n")
            return split_m if split_m.seconds <= split_n.seconds else split_n
        if core_split not in ("m", "n"):
            raise ValueError("core_split must be 'auto', 'm' or 'n'")
        if m < 1 or k < 1 or n < 1:
            raise ValueError("GEMM dims must be >= 1")
        if dram_bandwidth <= 0:
            raise ValueError("dram_bandwidth must be positive")
        rows, cols = self.array.rows, self.array.cols
        if core_split == "m":
            # M split across cores and lanes; weights broadcast (Fig. 6c).
            m_per_core = math.ceil(m / (self.cores * self.array.lanes))
            tiles = math.ceil(k / rows) * math.ceil(n / cols)
        else:
            # Weight columns split across cores; same activations (Fig. 6b).
            m_per_core = m
            n_per_core = math.ceil(n / (self.cores * self.array.lanes))
            tiles = math.ceil(k / rows) * math.ceil(n_per_core / cols)

        fill_drain = rows + cols - 2
        compute_per_tile = m_per_core + fill_drain
        load_per_tile = rows  # cycles to shift one weight tile in

        # Weight arrival constraint.  In the M-split (broadcast) dataflow
        # DRAM supplies each tile once for all cores; in the N-split
        # dataflow every core streams a distinct tile concurrently, so the
        # aggregate demand is ``cores`` tiles per interval.
        concurrent_tiles = 1 if core_split == "m" else self.cores
        bytes_per_tile = rows * cols * dtype_bytes * concurrent_tiles
        if weights_resident:
            stall_per_tile = 0.0
        else:
            arrival_cycles = (
                bytes_per_tile
                / (dram_bandwidth * self.dram_stream_utilization)
                * self.frequency_hz
            )
            stall_per_tile = arrival_cycles

        if double_buffered:
            # Next tile's load and arrival overlap this tile's compute.
            per_tile = max(compute_per_tile, load_per_tile, stall_per_tile)
            pipeline_head = load_per_tile + (0 if weights_resident else stall_per_tile)
            total = pipeline_head + per_tile * tiles
        else:
            # Latency case: load is exposed on every tile.
            per_tile = compute_per_tile + max(load_per_tile, stall_per_tile)
            total = per_tile * tiles

        ideal = (
            float(m) * k * n
            / (rows * cols * self.array.lanes * self.cores)
        )
        utilization = min(1.0, ideal / total) if total > 0 else 0.0

        if stall_per_tile > compute_per_tile and not weights_resident:
            bound = Bound.MEMORY
        elif m_per_core < fill_drain:
            bound = Bound.LATENCY
        else:
            bound = Bound.COMPUTE
        return SaGemmEstimate(
            cycles=total,
            seconds=total / self.frequency_hz,
            utilization=utilization,
            bound=bound,
            tiles=tiles,
        )

    def gemm_seconds(self, m: int, k: int, n: int, dram_bandwidth: float,
                     **kwargs) -> float:
        """Shorthand returning only the latency."""
        return self.gemm(m, k, n, dram_bandwidth, **kwargs).seconds

    @property
    def peak_flops(self) -> float:
        """Aggregate peak of the modelled pool."""
        return 2.0 * self.array.macs * self.cores * self.frequency_hz
