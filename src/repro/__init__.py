"""repro — a reproduction of ADOR (ISPASS 2025).

ADOR: A Design Exploration Framework for LLM Serving with Enhanced
Latency and Throughput.  The package implements the paper's full stack:

* :mod:`repro.api` — the declarative experiment surface: serializable
  specs, named registries and the ``simulate()`` facade;
* :mod:`repro.models` — LLM architectures and workload characterization;
* :mod:`repro.hardware` — chip templates, presets, the named chip
  registry and the calibrated area/cost model;
* :mod:`repro.perf` — analytical compute/memory performance models
  (systolic arrays, MAC trees, GPU/NPU/TSP baselines);
* :mod:`repro.parallel` — collectives, TP/PP and overlap analysis;
* :mod:`repro.core` — the HDA scheduler and the architecture search;
* :mod:`repro.compiler` — model mapper and instruction generator;
* :mod:`repro.serving` — the discrete-event serving simulator;
* :mod:`repro.analysis` — metrics and reporting helpers.

Quick start — one serving experiment, declaratively::

    from repro.api import DeploymentSpec, WorkloadSpec, simulate

    report = simulate(
        DeploymentSpec(chip="ador", model="llama3-8b", max_batch=256),
        WorkloadSpec(trace="ultrachat", rate_per_s=15.0,
                     num_requests=200, seed=7),
    )
    print(f"TTFT p95: {report.qos.ttft_p95_s * 1e3:.1f} ms, "
          f"TBT p95: {report.qos.tbt_p95_s * 1e3:.2f} ms")

The same experiment as data — serialize it, check it in, replay it
anywhere (``repro run experiment.json`` from the CLI does the same)::

    from repro.api import Experiment, run_experiment, save_experiment

    save_experiment(Experiment(deployment, workload), "experiment.json")
    report = run_experiment("experiment.json")   # identical, same seed

Lower-level building blocks stay importable for custom studies::

    from repro.api import device_model_for, get_chip, get_model

    device = device_model_for(get_chip("ador"))
    step = device.decode_step_time(get_model("llama3-8b"), batch=128,
                                   context_len=1024)
    print(f"TBT: {step.seconds * 1e3:.2f} ms")
"""

__version__ = "1.1.0"

from repro.models import get_model, list_models
from repro.core import AdorSearch, device_model_for
from repro.hardware.presets import ador_table3
from repro.hardware.registry import get_chip, list_chips, register_chip
from repro.api import (
    DeploymentSpec,
    Experiment,
    ServingReport,
    WorkloadSpec,
    load_experiment,
    run_experiment,
    save_experiment,
    simulate,
)

__all__ = [
    "__version__",
    "get_model",
    "list_models",
    "AdorSearch",
    "device_model_for",
    "ador_table3",
    "get_chip",
    "list_chips",
    "register_chip",
    "DeploymentSpec",
    "WorkloadSpec",
    "Experiment",
    "ServingReport",
    "simulate",
    "load_experiment",
    "save_experiment",
    "run_experiment",
]
