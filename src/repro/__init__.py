"""repro — a reproduction of ADOR (ISPASS 2025).

ADOR: A Design Exploration Framework for LLM Serving with Enhanced
Latency and Throughput.  The package implements the paper's full stack:

* :mod:`repro.models` — LLM architectures and workload characterization;
* :mod:`repro.hardware` — chip templates, presets and the calibrated
  area/cost model;
* :mod:`repro.perf` — analytical compute/memory performance models
  (systolic arrays, MAC trees, GPU/NPU/TSP baselines);
* :mod:`repro.parallel` — collectives, TP/PP and overlap analysis;
* :mod:`repro.core` — the HDA scheduler and the architecture search;
* :mod:`repro.compiler` — model mapper and instruction generator;
* :mod:`repro.serving` — the discrete-event serving simulator;
* :mod:`repro.analysis` — metrics and reporting helpers.

Quick start::

    from repro.models import get_model
    from repro.hardware.presets import ador_table3
    from repro.core import device_model_for

    chip = ador_table3()
    device = device_model_for(chip)
    step = device.decode_step_time(get_model("llama3-8b"), batch=128,
                                   context_len=1024)
    print(f"TBT: {step.seconds * 1e3:.2f} ms")
"""

__version__ = "1.0.0"

from repro.models import get_model, list_models
from repro.core import AdorSearch, device_model_for
from repro.hardware.presets import ador_table3

__all__ = [
    "__version__",
    "get_model",
    "list_models",
    "AdorSearch",
    "device_model_for",
    "ador_table3",
]
