"""Local-memory footprint simulator (paper Fig. 12 and Section V-B).

ADOR sizes each core's local SRAM so the *activations* of any single layer
fit on chip — off-chip bandwidth is then spent exclusively on weights and
KV cache.  This module computes the peak activation bytes per layer type
for a decode step, mirroring the simulator the authors "developed to
calculate local memory usage".

Softmax decomposition (FlashAttention) bounds the attention score matrix
to one tile, which is why long contexts do not blow up the footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig

#: Tile width (in context positions) kept resident by the softmax
#: decomposition.  FlashAttention-style kernels stream the rest.
FLASH_TILE = 256

#: Number of vocabulary tiles the LM head is split into.  The logits
#: matrix (batch x vocab) is the one activation that cannot fit whole;
#: tiling over the vocabulary bounds its residency.
LM_HEAD_VOCAB_TILES = 2


@dataclass(frozen=True)
class LocalMemoryReport:
    """Peak local-memory bytes per layer type for one decode step."""

    token_embedding: float
    residual_elementwise: float
    rmsnorm: float
    self_attention: float
    mlp: float
    lm_head: float

    def as_dict(self) -> dict[str, float]:
        return {
            "Token Embedding": self.token_embedding,
            "Residual/Element-wise": self.residual_elementwise,
            "RMSNorm Layer": self.rmsnorm,
            "Self-Attention Layer": self.self_attention,
            "MLP Layer": self.mlp,
            "LM-Head Layer": self.lm_head,
        }

    @property
    def peak(self) -> float:
        """Overall peak — the minimum local memory a core group needs."""
        return max(self.as_dict().values())

    @property
    def peak_excluding_lm_head(self) -> float:
        """Peak over the per-layer types (the paper notes only the LM head
        exceeds 1.5 MB for LLaMA3-8B at batch 32)."""
        values = self.as_dict()
        values.pop("LM-Head Layer")
        return max(values.values())


def peak_local_memory(
    config: ModelConfig,
    batch: int,
    flash_tile: int = FLASH_TILE,
    lm_head_tiles: int = LM_HEAD_VOCAB_TILES,
) -> LocalMemoryReport:
    """Peak activation bytes by layer type for a decode step at ``batch``.

    The decode stage is the local-memory sizing case ADOR uses: prefill
    activations are larger but are tiled along the token dimension
    (Section IV-B), so a configuration that holds one token's activations
    per request suffices.
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    d = config.dtype_bytes
    h = config.hidden_size
    row = batch * d  # bytes per scalar column across the batch

    token_embedding = row * h
    # residual add: input + skip + output
    residual = 3.0 * row * h
    # norm: input + output (statistics negligible)
    rmsnorm = 2.0 * row * h
    # attention: q/k/v rows for the new token, a flash tile of scores per
    # head, and the accumulated context output
    qkv_rows = row * (config.q_dim + 2 * config.kv_dim)
    score_tile = batch * config.num_heads * min(flash_tile, config.max_position_embeddings) * d
    attn_out = row * config.q_dim
    self_attention = qkv_rows + score_tile + attn_out
    # MLP: input row + intermediate + output row.  SwiGLU kernels fuse the
    # gate multiply into the up projection's epilogue, so only one
    # intermediate tensor is ever resident.
    mlp = row * h + row * config.intermediate_size + row * h
    # LM head: input row + one vocabulary tile of logits
    lm_head = row * h + row * (config.vocab_size / lm_head_tiles)
    return LocalMemoryReport(
        token_embedding=token_embedding,
        residual_elementwise=residual,
        rmsnorm=rmsnorm,
        self_attention=self_attention,
        mlp=mlp,
        lm_head=lm_head,
    )


def required_local_memory_bytes(
    config: ModelConfig,
    batch: int,
    num_cores: int,
    headroom: float = 1.25,
) -> float:
    """Per-core local memory needed to keep one layer's activations on chip.

    Activations are sharded across cores in the latency dataflow, so the
    per-core requirement divides by ``num_cores``; ``headroom`` covers
    double buffering of the next operator's inputs.
    """
    if num_cores < 1:
        raise ValueError("num_cores must be >= 1")
    report = peak_local_memory(config, batch)
    return headroom * report.peak / num_cores
