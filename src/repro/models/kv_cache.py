"""Key-value cache byte accounting.

The KV cache is the paper's central villain: it is per-request state that
batching cannot amortize, and at large batch sizes it dominates DRAM
traffic (Fig. 3a reports >90 % of read bytes at batch 128).  These helpers
compute the quantities behind that figure and the capacity constraints of
the serving simulator.
"""

from __future__ import annotations

from repro.models.config import ModelConfig


def kv_bytes_per_token(config: ModelConfig) -> int:
    """KV-cache bytes appended per generated/prefetched token.

    Two tensors (key and value) per layer, each ``num_kv_heads * head_dim``
    wide — GQA/MQA models shrink this by the group factor, which is exactly
    why Fig. 11(b) shows them tolerating narrow MAC trees.
    """
    return (
        2
        * config.num_layers
        * config.num_kv_heads
        * config.head_dim
        * config.dtype_bytes
    )


def kv_cache_bytes(config: ModelConfig, batch: int, seq_len: int) -> int:
    """Total KV bytes resident for ``batch`` requests at ``seq_len`` context."""
    if batch < 0 or seq_len < 0:
        raise ValueError("batch and seq_len must be non-negative")
    return batch * seq_len * kv_bytes_per_token(config)


def kv_fraction_of_traffic(config: ModelConfig, batch: int, seq_len: int) -> float:
    """Fraction of decode-step DRAM reads spent on KV cache (paper Fig. 3a).

    One decode step reads every active parameter once (shared across the
    batch) plus each request's KV cache.  The returned value is
    ``kv / (kv + params)``.
    """
    kv = kv_cache_bytes(config, batch, seq_len)
    params = config.active_param_bytes_per_token
    return kv / (kv + params)


def max_batch_for_memory(
    config: ModelConfig,
    seq_len: int,
    dram_bytes: float,
    num_devices: int = 1,
    reserve_fraction: float = 0.05,
) -> int:
    """Largest batch whose weights + KV fit in aggregate DRAM.

    The serving simulator uses this as the admission-control limit, with a
    small ``reserve_fraction`` held back for activations and fragmentation.
    """
    if seq_len <= 0:
        raise ValueError("seq_len must be positive")
    capacity = dram_bytes * num_devices * (1.0 - reserve_fraction)
    available = capacity - config.param_bytes
    if available <= 0:
        return 0
    per_request = seq_len * kv_bytes_per_token(config)
    return int(available // per_request)
