"""Whole-model operator graphs for the prefill and decoding stages.

The graphs are ``networkx.DiGraph`` instances whose nodes carry
:class:`~repro.models.layers.Operator` payloads and whose edges encode
data dependencies.  The compiler (:mod:`repro.compiler`) lowers these
graphs to instruction streams; the analytical models usually only need
the flattened operator list (:func:`flatten`).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.models.config import ModelConfig
from repro.models.layers import (
    Operator,
    OperatorKind,
    Phase,
    decoder_layer_operators,
    embedding_operator,
    lm_head_operator,
)

OPERATOR_KEY = "operator"


def _chain(graph: nx.DiGraph, ops: list[Operator], prefix: str,
           previous: str | None) -> str | None:
    """Append ``ops`` as a linear chain of nodes; return the tail node id."""
    for index, op in enumerate(ops):
        node_id = f"{prefix}.{index}.{op.name}"
        graph.add_node(node_id, **{OPERATOR_KEY: op})
        if previous is not None:
            graph.add_edge(previous, node_id)
        previous = node_id
    return previous


def build_prefill_graph(
    config: ModelConfig,
    batch: int,
    seq_len: int,
    include_lm_head: bool = False,
) -> nx.DiGraph:
    """Operator graph for prefilling ``batch`` requests of ``seq_len`` tokens.

    All ``seq_len`` tokens are processed in parallel, so GEMM ``m`` is
    ``batch * seq_len`` and the attention context equals the sequence
    length.  The LM head is normally skipped in prefill (the paper notes it
    "is only involved in the decoding stage"); enable ``include_lm_head``
    for the first generated token's logits.
    """
    graph = nx.DiGraph(phase=Phase.PREFILL, model=config.name,
                       batch=batch, seq_len=seq_len)
    tail = _chain(graph, [embedding_operator(config, Phase.PREFILL, batch * seq_len)],
                  "embed", None)
    for layer in range(config.num_layers):
        ops = decoder_layer_operators(config, Phase.PREFILL, batch, seq_len, seq_len)
        tail = _chain(graph, ops, f"layer{layer}", tail)
    if include_lm_head:
        _chain(graph, [lm_head_operator(config, Phase.PREFILL, batch)], "head", tail)
    return graph


def build_decode_graph(
    config: ModelConfig,
    batch: int,
    context_len: int,
) -> nx.DiGraph:
    """Operator graph for one decode step of ``batch`` requests.

    Each request generates one token while attending to ``context_len``
    cached tokens; GEMMs have ``m == batch`` and the LM head always runs.
    """
    graph = nx.DiGraph(phase=Phase.DECODE, model=config.name,
                       batch=batch, context_len=context_len)
    tail = _chain(graph, [embedding_operator(config, Phase.DECODE, batch)],
                  "embed", None)
    for layer in range(config.num_layers):
        ops = decoder_layer_operators(config, Phase.DECODE, batch, 1, context_len)
        tail = _chain(graph, ops, f"layer{layer}", tail)
    _chain(graph, [lm_head_operator(config, Phase.DECODE, batch)], "head", tail)
    return graph


def flatten(graph: nx.DiGraph) -> list[Operator]:
    """Operators in topological (execution) order."""
    return [graph.nodes[node][OPERATOR_KEY] for node in nx.topological_sort(graph)]


def total_flops(graph: nx.DiGraph) -> float:
    """Sum of FLOPs over the whole graph."""
    return sum(op.flops for op in flatten(graph))


def total_weight_bytes(graph: nx.DiGraph) -> float:
    """Sum of weight bytes streamed (counts each layer's weights once)."""
    return sum(op.weight_bytes for op in flatten(graph))


@dataclass(frozen=True)
class OperationShare:
    """Breakdown of a graph's FLOPs by operator family (paper Fig. 3b)."""

    attention: float
    mlp_and_projections: float
    other: float

    @property
    def attention_fraction(self) -> float:
        return self.attention / self.total

    @property
    def mlp_fraction(self) -> float:
        return self.mlp_and_projections / self.total

    @property
    def total(self) -> float:
        return self.attention + self.mlp_and_projections + self.other


def operation_share(
    config: ModelConfig,
    seq_len: int,
    batch: int = 1,
    phase: Phase = Phase.DECODE,
) -> OperationShare:
    """FLOP share of self-attention vs. MLP+projections at a sequence length.

    Reproduces the paper's Fig. 3(b): the attention share grows toward
    dominance as context length increases (LLaMA3-8B: roughly a quarter of
    the work at short context, three quarters at 64k) because score and
    context products scale with the context while projections stay flat.
    The paper counts operations in the decoding stage, where each new token
    attends to the full cached context — ``phase`` defaults accordingly.
    """
    if phase == Phase.DECODE:
        graph = build_decode_graph(config, batch, seq_len)
    else:
        graph = build_prefill_graph(config, batch, seq_len)
    attention = 0.0
    gemm = 0.0
    other = 0.0
    for op in flatten(graph):
        if op.kind == OperatorKind.ATTENTION:
            attention += op.flops
        elif op.kind == OperatorKind.GEMM:
            gemm += op.flops
        else:
            other += op.flops
    return OperationShare(attention=attention, mlp_and_projections=gemm, other=other)
