"""Multimodal GenAI workloads: vision encoders and diffusion transformers.

Fig. 2(a) and Fig. 9's input box list LMMs (image encoder + LLM) and
DiT-style generators among the model types ADOR must serve.  Both reduce
to transformer operator graphs the existing performance models already
understand:

* a **vision encoder** (ViT) is a prefill-only transformer over patch
  tokens — pure GEMM work, throughput-shaped;
* an **LMM request** is the encoder pass followed by an LLM whose prompt
  is extended by the image tokens;
* a **DiT** denoising step is a bidirectional transformer pass over
  latent tokens, repeated for N sampling steps — again prefill-shaped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.models.layers import Operator, Phase, decoder_layer_operators
from repro.models.zoo import get_model, register_model


def _encoder_config(name: str, num_layers: int, hidden: int, heads: int,
                    intermediate: int) -> ModelConfig:
    """Encoders are bidirectional; we reuse ModelConfig with MHA heads."""
    return ModelConfig(
        name=name,
        num_layers=num_layers,
        hidden_size=hidden,
        num_heads=heads,
        num_kv_heads=heads,
        intermediate_size=intermediate,
        vocab_size=1,  # no vocabulary: patch/latent embeddings
        gated_mlp=False,
        max_position_embeddings=16384,
    )


#: ViT-L/14 as used by CLIP-style LMM front-ends (LLaVA et al.)
VIT_L_14 = register_model(_encoder_config(
    "vit-l-14", num_layers=24, hidden=1024, heads=16, intermediate=4096))

#: A DiT-XL/2 class latent diffusion transformer
DIT_XL_2 = register_model(_encoder_config(
    "dit-xl-2", num_layers=28, hidden=1152, heads=16, intermediate=4608))


@dataclass(frozen=True)
class VisionEncoderWorkload:
    """One image encoded into ``num_tokens`` patch embeddings."""

    encoder: ModelConfig
    num_tokens: int = 576  # 336x336 image at patch 14

    def operators(self, batch: int = 1) -> list[Operator]:
        """Prefill-shaped operator list for ``batch`` images."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        ops: list[Operator] = []
        for _ in range(self.encoder.num_layers):
            ops.extend(decoder_layer_operators(
                self.encoder, Phase.PREFILL, batch,
                self.num_tokens, self.num_tokens))
        return ops

    def flops(self, batch: int = 1) -> float:
        return sum(op.flops for op in self.operators(batch))


@dataclass(frozen=True)
class LmmWorkload:
    """A multimodal chat request: image encode + LLM with a longer prompt.

    The encoder output is projected into the LLM's embedding space and
    prepended to the text prompt, so the LLM's effective input length is
    ``text_tokens + image_tokens`` — the extra prefill the paper's LMM
    row implies.
    """

    llm: ModelConfig
    encoder_workload: VisionEncoderWorkload

    @classmethod
    def default(cls, llm_name: str = "llama3-8b") -> "LmmWorkload":
        return cls(llm=get_model(llm_name),
                   encoder_workload=VisionEncoderWorkload(VIT_L_14))

    def effective_input_tokens(self, text_tokens: int,
                               images: int = 1) -> int:
        if text_tokens < 0 or images < 0:
            raise ValueError("token and image counts must be non-negative")
        return text_tokens + images * self.encoder_workload.num_tokens

    def encoder_flops(self, images: int = 1) -> float:
        return self.encoder_workload.flops(batch=max(1, images))


@dataclass(frozen=True)
class DitWorkload:
    """Latent-diffusion image generation: N denoising transformer passes."""

    dit: ModelConfig
    latent_tokens: int = 1024  # 64x64 latents at patch 2
    sampling_steps: int = 30

    @classmethod
    def default(cls) -> "DitWorkload":
        return cls(dit=DIT_XL_2)

    def step_operators(self, batch: int = 1) -> list[Operator]:
        ops: list[Operator] = []
        for _ in range(self.dit.num_layers):
            ops.extend(decoder_layer_operators(
                self.dit, Phase.PREFILL, batch,
                self.latent_tokens, self.latent_tokens))
        return ops

    def total_flops(self, batch: int = 1) -> float:
        per_step = sum(op.flops for op in self.step_operators(batch))
        return per_step * self.sampling_steps
