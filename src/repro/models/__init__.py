"""Model zoo and workload characterization for LLM serving.

This package describes *what* has to be computed: transformer model
architectures (:mod:`repro.models.config`, :mod:`repro.models.zoo`),
the per-layer operator shapes they induce in the prefill and decoding
stages (:mod:`repro.models.layers`, :mod:`repro.models.graph`), the
key-value cache byte math that drives the paper's memory-bandwidth
analysis (:mod:`repro.models.kv_cache`), and the local-memory footprint
simulator used to size on-chip SRAM (:mod:`repro.models.footprint`).
"""

from repro.models.config import AttentionKind, ModelConfig
from repro.models.zoo import get_model, list_models, register_model
from repro.models.layers import Operator, OperatorKind, Phase
from repro.models.graph import build_decode_graph, build_prefill_graph, operation_share
from repro.models.kv_cache import (
    kv_bytes_per_token,
    kv_cache_bytes,
    kv_fraction_of_traffic,
)
from repro.models.footprint import LocalMemoryReport, peak_local_memory

__all__ = [
    "AttentionKind",
    "ModelConfig",
    "get_model",
    "list_models",
    "register_model",
    "Operator",
    "OperatorKind",
    "Phase",
    "build_decode_graph",
    "build_prefill_graph",
    "operation_share",
    "kv_bytes_per_token",
    "kv_cache_bytes",
    "kv_fraction_of_traffic",
    "LocalMemoryReport",
    "peak_local_memory",
]
