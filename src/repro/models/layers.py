"""Operator-level description of transformer layers.

Every performance model in :mod:`repro.perf` consumes a stream of
:class:`Operator` records — GEMMs, attention kernels and vector ops with
explicit shapes and byte counts.  This module builds those records for a
single decoder layer; :mod:`repro.models.graph` assembles whole-model
graphs out of them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.models.config import ModelConfig


class Phase(enum.Enum):
    """Inference stage an operator belongs to."""

    PREFILL = "prefill"
    DECODE = "decode"


class OperatorKind(enum.Enum):
    """Coarse operator classes, mapped to compute units by the scheduler.

    ``GEMM`` operators carry weights that are shared across the batch;
    ``ATTENTION`` operators read per-request KV-cache state that cannot be
    shared (the crux of the paper's Section II-B analysis); ``VECTOR``
    covers norms, activations, softmax and residual adds.
    """

    GEMM = "gemm"
    ATTENTION = "attention"
    VECTOR = "vector"


@dataclass(frozen=True)
class Operator:
    """One schedulable unit of work.

    GEMM semantics are ``out[M, N] = in[M, K] @ w[K, N]``; the M dimension
    carries batch/sequence parallelism.  Attention operators describe the
    pair of score/context products against the KV cache of ``batch``
    requests at context length ``context_len``.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"qkv_proj"``.
    kind:
        Operator class (see :class:`OperatorKind`).
    phase:
        Prefill or decode.
    m, k, n:
        GEMM dimensions; for attention these hold per-head shapes.
    flops:
        Total floating-point operations (2 per MAC).
    weight_bytes:
        Bytes of weights streamed from DRAM, shared across the batch.
    io_bytes:
        Bytes of per-request state streamed from DRAM (KV cache); zero
        for weight-stationary GEMMs whose activations stay on chip.
    activation_bytes:
        Peak on-chip activation footprint of the operator (input + output),
        used by the local-memory simulator.
    batch / heads / context_len / group_size:
        Attention bookkeeping: request count, query-head count, KV length
        and the GQA sharing factor.
    """

    name: str
    kind: OperatorKind
    phase: Phase
    m: int
    k: int
    n: int
    flops: float
    weight_bytes: float
    io_bytes: float = 0.0
    activation_bytes: float = 0.0
    batch: int = 1
    heads: int = 1
    context_len: int = 0
    group_size: int = 1

    def scaled(self, factor: float) -> "Operator":
        """Return a copy with work quantities scaled (used by TP sharding)."""
        return replace(
            self,
            flops=self.flops * factor,
            weight_bytes=self.weight_bytes * factor,
            io_bytes=self.io_bytes * factor,
        )

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte — the roofline x-coordinate."""
        bytes_moved = self.weight_bytes + self.io_bytes
        if bytes_moved == 0:
            return float("inf")
        return self.flops / bytes_moved


def _gemm(
    name: str,
    phase: Phase,
    m: int,
    k: int,
    n: int,
    dtype_bytes: int,
    weight_copies: int = 1,
) -> Operator:
    """Build a weight-bearing GEMM operator.

    ``weight_copies`` inflates the weight traffic for MoE layers where
    several experts are streamed for the same logical projection.
    """
    return Operator(
        name=name,
        kind=OperatorKind.GEMM,
        phase=phase,
        m=m,
        k=k,
        n=n,
        flops=2.0 * m * k * n * weight_copies,
        weight_bytes=float(k * n * dtype_bytes * weight_copies),
        activation_bytes=float((m * k + m * n) * dtype_bytes),
    )


def _vector(name: str, phase: Phase, m: int, width: int, dtype_bytes: int,
            flops_per_element: float = 4.0) -> Operator:
    """Build a vector operator (norm / activation / residual)."""
    elements = m * width
    return Operator(
        name=name,
        kind=OperatorKind.VECTOR,
        phase=phase,
        m=m,
        k=width,
        n=1,
        flops=flops_per_element * elements,
        weight_bytes=0.0,
        activation_bytes=float(2 * elements * dtype_bytes),
    )


def attention_operator(
    config: ModelConfig,
    phase: Phase,
    batch: int,
    query_len: int,
    context_len: int,
) -> Operator:
    """Build the fused score+softmax+context attention operator.

    ``query_len`` is tokens per request being processed (sequence length in
    prefill, 1 in decode); ``context_len`` is the KV length attended to.
    Prefill uses causal masking, so score/context FLOPs are halved relative
    to the full rectangle.

    The KV bytes charged to ``io_bytes`` are the per-request key and value
    reads — the traffic that batching cannot amortize (paper Fig. 3a).
    """
    causal_factor = 0.5 if query_len > 1 else 1.0
    # score: [q_len, d] x [d, ctx]  and  context: [q_len, ctx] x [ctx, d]
    flops_per_head = 2.0 * 2.0 * query_len * config.head_dim * context_len * causal_factor
    flops = flops_per_head * config.num_heads * batch
    kv_bytes = (
        2.0 * batch * context_len * config.num_kv_heads * config.head_dim
        * config.dtype_bytes
    )
    # FlashAttention-style decomposition keeps only a tile of the score
    # matrix resident (paper Section V-B); footprint modelled in footprint.py.
    activation = 2.0 * batch * query_len * config.q_dim * config.dtype_bytes
    return Operator(
        name="attention",
        kind=OperatorKind.ATTENTION,
        phase=phase,
        m=batch * query_len,
        k=config.head_dim,
        n=context_len,
        flops=flops,
        weight_bytes=0.0,
        io_bytes=kv_bytes,
        activation_bytes=activation,
        batch=batch,
        heads=config.num_heads,
        context_len=context_len,
        group_size=config.gqa_group_size,
    )


def decoder_layer_operators(
    config: ModelConfig,
    phase: Phase,
    batch: int,
    query_len: int,
    context_len: int,
) -> list[Operator]:
    """Operator sequence for one decoder layer.

    Ordering matches Fig. 8's transformer mapping: input norm, QKV
    projection, attention, output projection, post-attention norm, MLP.
    ``m`` for the GEMMs is ``batch * query_len`` — the token-level
    parallelism both stages expose.
    """
    if query_len < 1 or batch < 1:
        raise ValueError("batch and query_len must be >= 1")
    d = config.dtype_bytes
    m = batch * query_len
    h = config.hidden_size
    ops: list[Operator] = []

    ops.append(_vector("input_norm", phase, m, h, d))
    ops.append(_gemm("qkv_proj", phase, m, h, config.q_dim + 2 * config.kv_dim, d))
    ops.append(attention_operator(config, phase, batch, query_len, context_len))
    ops.append(_gemm("out_proj", phase, m, config.q_dim, h, d))
    ops.append(_vector("post_attn_norm", phase, m, h, d))

    if config.is_moe:
        ops.append(_gemm("moe_router", phase, m, h, config.num_experts, d))
    # MoE: per token only experts_per_token experts run, but in a batch all
    # (or most) experts' weights are streamed; model weight traffic as the
    # active-expert count, compute as per-token expert count.
    expert_copies = config.experts_per_token
    inter = config.intermediate_size
    if config.gated_mlp:
        ops.append(_gemm("mlp_gate", phase, m, h, inter, d, weight_copies=expert_copies))
        ops.append(_gemm("mlp_up", phase, m, h, inter, d, weight_copies=expert_copies))
        ops.append(_vector("mlp_act_mul", phase, m, inter, d, flops_per_element=2.0))
        ops.append(_gemm("mlp_down", phase, m, inter, h, d, weight_copies=expert_copies))
    else:
        ops.append(_gemm("mlp_fc1", phase, m, h, inter, d, weight_copies=expert_copies))
        ops.append(_vector("mlp_act", phase, m, inter, d, flops_per_element=2.0))
        ops.append(_gemm("mlp_fc2", phase, m, inter, h, d, weight_copies=expert_copies))

    ops.append(_vector("residual_add", phase, m, h, d, flops_per_element=1.0))
    return ops


def lm_head_operator(config: ModelConfig, phase: Phase, batch: int) -> Operator:
    """The LM-head GEMM, executed once per generated token per request."""
    return _gemm("lm_head", phase, batch, config.hidden_size, config.vocab_size,
                 config.dtype_bytes)


def embedding_operator(config: ModelConfig, phase: Phase, m: int) -> Operator:
    """Token-embedding lookup; a gather, modelled as a vector op."""
    return _vector("token_embedding", phase, m, config.hidden_size,
                   config.dtype_bytes, flops_per_element=0.0)
