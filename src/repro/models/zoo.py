"""Registry of every model architecture the paper touches.

The paper pulls model descriptions from HuggingFace at simulation time
(Fig. 14b).  We have no network, so the public architecture constants are
entered here by hand — this is the substitution documented in DESIGN.md.
Configurations follow the models' published ``config.json`` files.
"""

from __future__ import annotations

from repro.models.config import ModelConfig

_REGISTRY: dict[str, ModelConfig] = {}


def register_model(config: ModelConfig) -> ModelConfig:
    """Add a model to the zoo; returns the config for chaining."""
    key = config.name.lower()
    if key in _REGISTRY:
        raise ValueError(f"model {config.name!r} is already registered")
    _REGISTRY[key] = config
    return config


def get_model(name: str) -> ModelConfig:
    """Look up a model by name (case-insensitive).

    Raises ``KeyError`` with the list of known names on a miss so typos in
    experiment scripts fail loudly.
    """
    key = name.lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}")
    return _REGISTRY[key]


def list_models() -> list[str]:
    """Names of all registered models, sorted."""
    return sorted(_REGISTRY)


# --------------------------------------------------------------------- #
# Dense models used throughout the evaluation                            #
# --------------------------------------------------------------------- #

register_model(ModelConfig(
    name="gptj-6b",
    num_layers=28,
    hidden_size=4096,
    num_heads=16,
    num_kv_heads=16,
    head_dim=256,
    intermediate_size=16384,
    vocab_size=50400,
    gated_mlp=False,
    max_position_embeddings=2048,
))

register_model(ModelConfig(
    name="llama2-7b",
    num_layers=32,
    hidden_size=4096,
    num_heads=32,
    num_kv_heads=32,           # MHA — the paper's Fig. 11(b) MHA exemplar
    intermediate_size=11008,
    vocab_size=32000,
    max_position_embeddings=4096,
))

register_model(ModelConfig(
    name="llama3-8b",
    num_layers=32,
    hidden_size=4096,
    num_heads=32,
    num_kv_heads=8,            # GQA — the paper's primary evaluation model
    intermediate_size=14336,
    vocab_size=128256,
    max_position_embeddings=8192,
))

register_model(ModelConfig(
    name="llama3-70b",
    num_layers=80,
    hidden_size=8192,
    num_heads=64,
    num_kv_heads=8,
    intermediate_size=28672,
    vocab_size=128256,
    max_position_embeddings=8192,
))

register_model(ModelConfig(
    name="mistral-7b",
    num_layers=32,
    hidden_size=4096,
    num_heads=32,
    num_kv_heads=8,
    intermediate_size=14336,
    vocab_size=32000,
    max_position_embeddings=32768,
))

register_model(ModelConfig(
    name="falcon-7b",
    num_layers=32,
    hidden_size=4544,
    num_heads=71,
    num_kv_heads=1,            # MQA — the paper's Fig. 11(b) MQA exemplar
    head_dim=64,
    intermediate_size=18176,
    vocab_size=65024,
    gated_mlp=False,
    max_position_embeddings=2048,
))

register_model(ModelConfig(
    name="qwen2-7b",
    num_layers=28,
    hidden_size=3584,
    num_heads=28,
    num_kv_heads=4,
    intermediate_size=18944,
    vocab_size=152064,
    max_position_embeddings=32768,
))

register_model(ModelConfig(
    name="gemma2-9b",
    num_layers=42,
    hidden_size=3584,
    num_heads=16,
    num_kv_heads=8,
    head_dim=256,
    intermediate_size=14336,
    vocab_size=256000,
    tie_word_embeddings=True,
    max_position_embeddings=8192,
))

register_model(ModelConfig(
    name="yi-34b",
    num_layers=60,
    hidden_size=7168,
    num_heads=56,
    num_kv_heads=8,
    intermediate_size=20480,
    vocab_size=64000,
    max_position_embeddings=4096,
))

register_model(ModelConfig(
    name="llama2-13b",
    num_layers=40,
    hidden_size=5120,
    num_heads=40,
    num_kv_heads=40,
    intermediate_size=13824,
    vocab_size=32000,
    max_position_embeddings=4096,
))

register_model(ModelConfig(
    name="llama2-70b",
    num_layers=80,
    hidden_size=8192,
    num_heads=64,
    num_kv_heads=8,
    intermediate_size=28672,
    vocab_size=32000,
    max_position_embeddings=4096,
))

register_model(ModelConfig(
    name="qwen2-72b",
    num_layers=80,
    hidden_size=8192,
    num_heads=64,
    num_kv_heads=8,
    intermediate_size=29568,
    vocab_size=152064,
    max_position_embeddings=32768,
))

register_model(ModelConfig(
    name="phi-3-mini",
    num_layers=32,
    hidden_size=3072,
    num_heads=32,
    num_kv_heads=32,
    intermediate_size=8192,
    vocab_size=32064,
    max_position_embeddings=4096,
))

# --------------------------------------------------------------------- #
# Mixture-of-experts                                                     #
# --------------------------------------------------------------------- #

register_model(ModelConfig(
    name="mixtral-8x7b",
    num_layers=32,
    hidden_size=4096,
    num_heads=32,
    num_kv_heads=8,
    intermediate_size=14336,
    vocab_size=32000,
    num_experts=8,
    experts_per_token=2,
    max_position_embeddings=32768,
))

# --------------------------------------------------------------------- #
# OPT family — the Fig. 10 bandwidth-calibration workloads               #
# --------------------------------------------------------------------- #

register_model(ModelConfig(
    name="opt-1.3b",
    num_layers=24,
    hidden_size=2048,
    num_heads=32,
    num_kv_heads=32,
    intermediate_size=8192,
    vocab_size=50272,
    gated_mlp=False,
    max_position_embeddings=2048,
))

register_model(ModelConfig(
    name="opt-6.7b",
    num_layers=32,
    hidden_size=4096,
    num_heads=32,
    num_kv_heads=32,
    intermediate_size=16384,
    vocab_size=50272,
    gated_mlp=False,
    max_position_embeddings=2048,
))

register_model(ModelConfig(
    name="opt-13b",
    num_layers=40,
    hidden_size=5120,
    num_heads=40,
    num_kv_heads=40,
    intermediate_size=20480,
    vocab_size=50272,
    gated_mlp=False,
    max_position_embeddings=2048,
))

register_model(ModelConfig(
    name="opt-30b",
    num_layers=48,
    hidden_size=7168,
    num_heads=56,
    num_kv_heads=56,
    intermediate_size=28672,
    vocab_size=50272,
    gated_mlp=False,
    max_position_embeddings=2048,
))

register_model(ModelConfig(
    name="opt-66b",
    num_layers=64,
    hidden_size=9216,
    num_heads=72,
    num_kv_heads=72,
    intermediate_size=36864,
    vocab_size=50272,
    gated_mlp=False,
    max_position_embeddings=2048,
))
