"""Transformer architecture descriptions.

A :class:`ModelConfig` captures exactly the architectural constants the
ADOR analytical models need: layer counts, projection dimensions, the
attention head layout (MHA / GQA / MQA), the MLP flavour, and optional
mixture-of-experts structure.  Everything downstream — operator shapes,
KV-cache byte math, FLOP counts — is derived from these constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class AttentionKind(enum.Enum):
    """Head layout of the attention block.

    The paper's Fig. 11(b) contrasts the three layouts because they have
    radically different KV-cache footprints and therefore different
    decode-stage bandwidth demands.
    """

    MHA = "mha"  # one KV head per query head
    GQA = "gqa"  # query heads grouped over fewer KV heads
    MQA = "mqa"  # a single KV head shared by all query heads


@dataclass(frozen=True)
class ModelConfig:
    """Architectural constants of a decoder-only transformer.

    Parameters
    ----------
    name:
        Identifier used by the zoo and in reports (e.g. ``"llama3-8b"``).
    num_layers:
        Number of decoder blocks.
    hidden_size:
        Model (embedding) dimension.
    num_heads:
        Number of query heads.
    num_kv_heads:
        Number of key/value heads.  ``num_kv_heads == num_heads`` is MHA,
        ``1`` is MQA, anything in between is GQA.
    intermediate_size:
        MLP inner dimension (per expert for MoE models).
    vocab_size:
        Vocabulary size; drives the LM-head GEMM and its local-memory peak.
    head_dim:
        Per-head dimension.  Defaults to ``hidden_size // num_heads`` but a
        few models (GPT-J, Gemma-2, Falcon) override it.
    gated_mlp:
        ``True`` for LLaMA-style SwiGLU MLPs (gate + up + down projections),
        ``False`` for the classic two-matrix GELU MLP (OPT, GPT-J, Falcon).
    num_experts / experts_per_token:
        Mixture-of-experts structure (Mixtral).  Dense models use ``1``/``1``.
    max_position_embeddings:
        Maximum supported sequence length.
    dtype_bytes:
        Bytes per parameter / activation element (2 for fp16/bf16).
    tie_word_embeddings:
        Whether the LM head shares the token-embedding matrix.
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    num_kv_heads: int
    intermediate_size: int
    vocab_size: int
    head_dim: int = 0
    gated_mlp: bool = True
    num_experts: int = 1
    experts_per_token: int = 1
    max_position_embeddings: int = 8192
    dtype_bytes: int = 2
    tie_word_embeddings: bool = False
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.hidden_size <= 0:
            raise ValueError(f"{self.name}: layer count and hidden size must be positive")
        if self.num_heads <= 0 or self.num_kv_heads <= 0:
            raise ValueError(f"{self.name}: head counts must be positive")
        if self.head_dim == 0:
            object.__setattr__(self, "head_dim", self.hidden_size // self.num_heads)
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError(
                f"{self.name}: num_heads ({self.num_heads}) must be divisible by "
                f"num_kv_heads ({self.num_kv_heads})"
            )
        if self.experts_per_token > self.num_experts:
            raise ValueError(f"{self.name}: experts_per_token exceeds num_experts")

    # ------------------------------------------------------------------ #
    # Attention layout                                                    #
    # ------------------------------------------------------------------ #

    @property
    def attention_kind(self) -> AttentionKind:
        """Classify the head layout (paper Fig. 11b)."""
        if self.num_kv_heads == 1:
            return AttentionKind.MQA
        if self.num_kv_heads == self.num_heads:
            return AttentionKind.MHA
        return AttentionKind.GQA

    @property
    def gqa_group_size(self) -> int:
        """Query heads sharing one KV head (1 for MHA, num_heads for MQA)."""
        return self.num_heads // self.num_kv_heads

    @property
    def q_dim(self) -> int:
        """Output dimension of the query projection."""
        return self.num_heads * self.head_dim

    @property
    def kv_dim(self) -> int:
        """Output dimension of each of the key and value projections."""
        return self.num_kv_heads * self.head_dim

    @property
    def is_moe(self) -> bool:
        return self.num_experts > 1

    # ------------------------------------------------------------------ #
    # Parameter counts                                                    #
    # ------------------------------------------------------------------ #

    @property
    def attention_params_per_layer(self) -> int:
        """Weights in Q/K/V/O projections of one decoder layer."""
        q = self.hidden_size * self.q_dim
        kv = 2 * self.hidden_size * self.kv_dim
        o = self.q_dim * self.hidden_size
        return q + kv + o

    @property
    def mlp_params_per_expert(self) -> int:
        """Weights of one MLP expert."""
        matrices = 3 if self.gated_mlp else 2
        return matrices * self.hidden_size * self.intermediate_size

    @property
    def mlp_params_per_layer(self) -> int:
        """Weights of all experts in one decoder layer."""
        return self.num_experts * self.mlp_params_per_expert

    @property
    def embedding_params(self) -> int:
        """Token embedding table (and untied LM head)."""
        tables = 1 if self.tie_word_embeddings else 2
        return tables * self.vocab_size * self.hidden_size

    @property
    def num_parameters(self) -> int:
        """Total parameter count (norms and biases are negligible and omitted)."""
        per_layer = self.attention_params_per_layer + self.mlp_params_per_layer
        return self.num_layers * per_layer + self.embedding_params

    @property
    def param_bytes(self) -> int:
        """Total parameter storage in bytes."""
        return self.num_parameters * self.dtype_bytes

    # ------------------------------------------------------------------ #
    # Per-step working set                                                #
    # ------------------------------------------------------------------ #

    @property
    def active_params_per_token(self) -> int:
        """Parameters touched when decoding one token.

        For MoE models only ``experts_per_token`` experts are read per
        token, which is what bounds decode-stage DRAM traffic.
        """
        per_layer = (
            self.attention_params_per_layer
            + self.experts_per_token * self.mlp_params_per_expert
        )
        lm_head = self.vocab_size * self.hidden_size
        return self.num_layers * per_layer + lm_head

    @property
    def active_param_bytes_per_token(self) -> int:
        return self.active_params_per_token * self.dtype_bytes

    def flops_per_token(self) -> float:
        """Dense FLOPs to process one token (2 FLOPs per MAC), ex-attention."""
        return 2.0 * self.active_params_per_token

    def with_dtype(self, dtype_bytes: int) -> "ModelConfig":
        """A copy quantized to ``dtype_bytes`` per element.

        Used by the fp8 ablation: halving the element size halves both
        the weight-stream and KV-cache traffic, which is exactly how it
        enters every analytical model.
        """
        if dtype_bytes < 1:
            raise ValueError("dtype_bytes must be >= 1")
        suffix = {1: "fp8", 2: "fp16", 4: "fp32"}.get(dtype_bytes,
                                                      f"{dtype_bytes}B")
        return replace(self, name=f"{self.name}-{suffix}",
                       dtype_bytes=dtype_bytes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.num_layers}L x {self.hidden_size}d, "
            f"{self.num_heads}q/{self.num_kv_heads}kv heads "
            f"({self.attention_kind.value}), "
            f"{self.num_parameters / 1e9:.2f}B params"
        )
