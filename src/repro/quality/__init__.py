"""Static quality gates: the AST-based determinism & contract linter.

``repro.quality`` turns the repo's reproducibility invariants — no
wall-clock or unseeded randomness in the simulator core, frozen
round-trippable specs, position-not-id routing — from runtime-test
folklore into machine-checked rules.  ``repro lint`` runs them from the
CLI; ``tests/test_lint.py::test_codebase_clean`` enforces a clean tree
in tier-1.
"""

from repro.quality.lint import (
    exit_code,
    format_json,
    format_text,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.quality.rules import (
    RULE_REGISTRY,
    Rule,
    Violation,
    all_rules,
    register_rule,
    resolve_rule,
    rule_tokens,
)

__all__ = [
    "RULE_REGISTRY",
    "Rule",
    "Violation",
    "all_rules",
    "exit_code",
    "format_json",
    "format_text",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register_rule",
    "resolve_rule",
    "rule_tokens",
]
