"""The lint rules: one AST visitor class per repo contract.

Each rule encodes an invariant the repo's headline claims rest on —
bit-identical fast paths, identical capacity found-rates, deterministic
autoscaling histories — and that until now only runtime parity tests
defended.  A rule is a :class:`Rule` subclass registered in
:data:`RULE_REGISTRY` under its short id (``R1``..); the driver in
:mod:`repro.quality.lint` instantiates every applicable rule per file,
runs it over the parsed tree, and filters ``# repro: allow[<rule>]``
pragma suppressions.

The rules:

* **R0 pragma-hygiene** — every suppression pragma must name a known
  rule and carry a one-line justification on the same line; a bare
  escape hatch is just a disabled rule.
* **R1 determinism** — no wall-clock reads or unseeded randomness in
  the simulator tree; all randomness flows through an injected seeded
  ``numpy`` ``Generator`` and all timestamps come from the simulated
  clock (``benchmarks/`` and the CLI measure real time by design and
  are path-exempt).
* **R2 spec-hygiene** — every dataclass in ``repro.api.specs`` is
  ``frozen=True`` and its ``to_dict`` / ``_FIELDS`` key sets match its
  field set, so serialized experiments can't silently drop or invent a
  knob.
* **R3 mutable-default** — no mutable default arguments anywhere in
  ``src/repro``; shared default state is cross-run leakage, the exact
  thing deterministic replay can't tolerate.
* **R4 float-equality** — no ``==`` / ``!=`` between float-typed
  expressions in simulator/scheduler/capacity code; bit-parity is
  asserted in tests, production code compares with tolerances or
  integer state.
* **R5 router-contract** — a ``route()`` implementation must never
  return a ``.replica_id``; routers return *positions in the snapshot
  sequence* (the PR 5 bug class: ids survive a scale-down
  non-contiguously, positions do not).
* **R6 exception-hygiene** — no bare ``except:`` and no
  ``except ...: pass`` swallowing in ``src/repro``; a fault-injection
  engine that silently eats errors can fake the very resilience it is
  supposed to measure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, ClassVar, Sequence

from repro.registry import Registry


@dataclass(frozen=True)
class Violation:
    """One rule hit: where, which rule, and what is wrong."""

    file: str
    line: int
    rule: str      # short id, e.g. "R1"
    name: str      # human name, e.g. "determinism"
    message: str

    def to_dict(self) -> dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "name": self.name,
            "message": self.message,
        }


class Rule(ast.NodeVisitor):
    """Base class: a per-file AST visitor that accumulates violations.

    ``include`` / ``exclude`` are path-substring filters (checked on
    ``/``-normalized paths) so a rule can scope itself to the code the
    contract is about — e.g. R1 exempts ``benchmarks/`` where measuring
    wall-clock time is the whole point.
    """

    id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    include: ClassVar[tuple[str, ...]] = ()   # empty = everywhere
    exclude: ClassVar[tuple[str, ...]] = ()

    def __init__(self, path: str, tree: ast.Module,
                 lines: Sequence[str]) -> None:
        self.path = path
        self.tree = tree
        self.lines = lines
        self.violations: list[Violation] = []

    @classmethod
    def applies_to(cls, path: str) -> bool:
        normalized = path.replace("\\", "/")
        if cls.include and not any(part in normalized
                                   for part in cls.include):
            return False
        return not any(part in normalized for part in cls.exclude)

    def run(self) -> list[Violation]:
        self.visit(self.tree)
        return self.violations

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append(Violation(
            file=self.path, line=getattr(node, "lineno", 1),
            rule=self.id, name=self.name, message=message))


RULE_REGISTRY = Registry("lint rule")


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: register a rule under its short id."""
    RULE_REGISTRY.register(cls.id, cls)
    return cls


def all_rules() -> list[type[Rule]]:
    """Every registered rule class, in id order."""
    return [RULE_REGISTRY.get(rule_id) for rule_id in RULE_REGISTRY.names()]


def resolve_rule(token: str) -> type[Rule]:
    """Look a rule up by short id (``R1``) or name (``determinism``)."""
    if token in RULE_REGISTRY:
        return RULE_REGISTRY.get(token)
    for cls in all_rules():
        if cls.name == token.lower():
            return cls
    known = ", ".join(f"{cls.id} ({cls.name})" for cls in all_rules())
    raise KeyError(f"unknown lint rule {token!r}; known rules: {known}")


def rule_tokens() -> list[str]:
    """Every accepted ``--rule`` spelling: short ids then names."""
    rules = all_rules()
    return [cls.id for cls in rules] + [cls.name for cls in rules]


# --------------------------------------------------------------------- #
# R0: pragma hygiene (driver-enforced; kept here for docs/selection)     #
# --------------------------------------------------------------------- #

@register_rule
class PragmaHygieneRule(Rule):
    """Suppression pragmas must name known rules and justify themselves.

    The actual check lives in the driver's pragma scanner (pragmas are
    comments, invisible to the AST); this class exists so ``R0`` is
    selectable and documented like every other rule.
    """

    id = "R0"
    name = "pragma-hygiene"
    rationale = ("a `# repro: allow[...]` pragma must name known rule "
                 "ids and carry a one-line justification on the same "
                 "line — an unexplained escape hatch is just a disabled "
                 "rule")

    def run(self) -> list[Violation]:
        return self.violations     # driver-enforced; nothing AST-side


# --------------------------------------------------------------------- #
# R1: determinism                                                        #
# --------------------------------------------------------------------- #

_BANNED_CALLS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
}

# seeded constructors: the *only* sanctioned way randomness enters
_SEEDED_NUMPY = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}

_STDLIB_RANDOM_ALLOWED = {"random.Random"}   # seedable instance


@register_rule
class DeterminismRule(Rule):
    """R1: no wall-clock reads, no unseeded randomness in the simulator.

    Flags calls to ``time.time``/``perf_counter``/``datetime.now``/
    ``os.urandom`` and any module-level ``random.*`` / ``np.random.*``
    convenience function — everything that isn't routed through a
    seeded ``default_rng`` / ``Generator``.  Import aliases are tracked
    (``import numpy as np``, ``from time import perf_counter``), so
    renaming doesn't evade the rule.
    """

    id = "R1"
    name = "determinism"
    rationale = ("simulated results must replay bit-identically from a "
                 "seed; wall-clock reads and global-state RNGs make a "
                 "run depend on when and in what order it executed")
    exclude = ("benchmarks/", "repro/cli.py")

    def __init__(self, path: str, tree: ast.Module,
                 lines: Sequence[str]) -> None:
        super().__init__(path, tree, lines)
        # local alias -> canonical dotted module path
        self._modules: dict[str, str] = {}
        # local name -> canonical dotted function path
        self._names: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._modules[alias.asname or alias.name.split(".")[0]] = \
                alias.name if alias.asname else alias.name.split(".")[0]
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self._names[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def _canonical(self, node: ast.expr) -> str | None:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = parts[0]
        if head in self._names:
            parts[0:1] = self._names[head].split(".")
        elif head in self._modules:
            parts[0:1] = self._modules[head].split(".")
        return ".".join(parts)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._canonical(node.func)
        if dotted is not None:
            self._check(node, dotted)
        self.generic_visit(node)

    def _check(self, node: ast.Call, dotted: str) -> None:
        if dotted in _BANNED_CALLS:
            self.report(node, f"nondeterministic call {dotted}() — take "
                              f"timestamps from the simulated clock and "
                              f"entropy from a seeded Generator")
        elif dotted.startswith("random.") \
                and dotted not in _STDLIB_RANDOM_ALLOWED:
            self.report(node, f"global-state RNG call {dotted}() — route "
                              f"randomness through an injected seeded "
                              f"numpy default_rng/Generator")
        elif dotted.startswith("numpy.random.") \
                and dotted.split(".")[2] not in _SEEDED_NUMPY:
            self.report(node, f"unseeded module-level call {dotted}() — "
                              f"use a seeded default_rng/Generator "
                              f"passed down from the experiment spec")


# --------------------------------------------------------------------- #
# R2: spec hygiene                                                       #
# --------------------------------------------------------------------- #

def _dict_literal_keys(node: ast.Dict) -> set[str]:
    return {key.value for key in node.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)}


@register_rule
class SpecHygieneRule(Rule):
    """R2: spec dataclasses are frozen and their key sets don't drift.

    For every ``@dataclass`` in ``repro.api.specs``: require
    ``frozen=True``, and require both the ``to_dict`` output keys (the
    dict literal(s) it returns plus ``data["key"] = ...`` stores on the
    returned name) and the ``_FIELDS`` frozenset (the ``from_dict``
    unknown-key gate) to equal the dataclass field set exactly.
    """

    id = "R2"
    name = "spec-hygiene"
    rationale = ("experiment specs are the reproducibility contract: a "
                 "mutable spec or a to_dict/from_dict key set that "
                 "drifts from the fields silently drops or invents "
                 "knobs across a JSON round-trip")
    include = ("repro/api/specs.py",)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        decorator = self._dataclass_decorator(node)
        if decorator is None:
            self.generic_visit(node)
            return
        if not self._is_frozen(decorator):
            self.report(node, f"dataclass {node.name} must be "
                              f"frozen=True — specs are value objects "
                              f"and hash/compare across round-trips")
        fields = self._field_names(node)
        to_dict_keys = self._to_dict_keys(node)
        if to_dict_keys is not None and to_dict_keys != fields:
            self.report(node, self._drift_message(
                node.name, "to_dict keys", to_dict_keys, fields))
        declared = self._declared_fields(node)
        if declared is not None and declared != fields:
            self.report(node, self._drift_message(
                node.name, "_FIELDS", declared, fields))
        self.generic_visit(node)

    @staticmethod
    def _drift_message(cls_name: str, what: str, got: set[str],
                       fields: set[str]) -> str:
        missing = ", ".join(sorted(fields - got)) or "-"
        extra = ", ".join(sorted(got - fields)) or "-"
        return (f"{cls_name}: {what} drift from the dataclass fields "
                f"(missing: {missing}; extra: {extra})")

    @staticmethod
    def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
        for decorator in node.decorator_list:
            target = decorator.func \
                if isinstance(decorator, ast.Call) else decorator
            dotted = None
            if isinstance(target, ast.Name):
                dotted = target.id
            elif isinstance(target, ast.Attribute):
                dotted = target.attr
            if dotted == "dataclass":
                return decorator
        return None

    @staticmethod
    def _is_frozen(decorator: ast.expr) -> bool:
        if not isinstance(decorator, ast.Call):
            return False       # bare @dataclass: frozen defaults to False
        for keyword in decorator.keywords:
            if keyword.arg == "frozen" \
                    and isinstance(keyword.value, ast.Constant):
                return keyword.value.value is True
        return False

    @staticmethod
    def _field_names(node: ast.ClassDef) -> set[str]:
        fields = set()
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) \
                    and isinstance(statement.target, ast.Name) \
                    and not statement.target.id.startswith("_"):
                annotation = statement.annotation
                base = annotation.value \
                    if isinstance(annotation, ast.Subscript) else annotation
                if isinstance(base, ast.Name) and base.id == "ClassVar":
                    continue
                fields.add(statement.target.id)
        return fields

    def _to_dict_keys(self, node: ast.ClassDef) -> set[str] | None:
        method = self._method(node, "to_dict")
        if method is None:
            return None
        returned_names = {statement.value.id
                          for statement in ast.walk(method)
                          if isinstance(statement, ast.Return)
                          and isinstance(statement.value, ast.Name)}
        keys: set[str] = set()
        for statement in ast.walk(method):
            if isinstance(statement, ast.Return) \
                    and isinstance(statement.value, ast.Dict):
                keys |= _dict_literal_keys(statement.value)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name) \
                            and target.id in returned_names \
                            and isinstance(statement.value, ast.Dict):
                        keys |= _dict_literal_keys(statement.value)
                    elif isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id in returned_names \
                            and isinstance(target.slice, ast.Constant) \
                            and isinstance(target.slice.value, str):
                        keys.add(target.slice.value)
        return keys

    def _declared_fields(self, node: ast.ClassDef) -> set[str] | None:
        for statement in node.body:
            if isinstance(statement, ast.Assign) \
                    and any(isinstance(target, ast.Name)
                            and target.id == "_FIELDS"
                            for target in statement.targets):
                strings = {constant.value
                           for constant in ast.walk(statement.value)
                           if isinstance(constant, ast.Constant)
                           and isinstance(constant.value, str)}
                return strings
        return None

    @staticmethod
    def _method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
        for statement in node.body:
            if isinstance(statement, ast.FunctionDef) \
                    and statement.name == name:
                return statement
        return None


# --------------------------------------------------------------------- #
# R3: mutable defaults                                                   #
# --------------------------------------------------------------------- #

_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict",
}


@register_rule
class MutableDefaultRule(Rule):
    """R3: no mutable default arguments anywhere in ``src/repro``."""

    id = "R3"
    name = "mutable-default"
    rationale = ("a mutable default is one shared object across every "
                 "call — state leaking between runs is exactly what "
                 "deterministic replay cannot tolerate")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check(node)
        self.generic_visit(node)

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef
               | ast.Lambda) -> None:
        defaults = list(node.args.defaults) \
            + [default for default in node.args.kw_defaults
               if default is not None]
        for default in defaults:
            if self._is_mutable(default):
                label = getattr(node, "name", "<lambda>")
                self.report(default,
                            f"mutable default argument in {label}() — "
                            f"use None and construct inside the body")

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_CONSTRUCTORS
        return False


# --------------------------------------------------------------------- #
# R4: float equality                                                     #
# --------------------------------------------------------------------- #

@register_rule
class FloatEqualityRule(Rule):
    """R4: no ``==`` / ``!=`` between float-typed expressions.

    Scoped to simulator/scheduler/capacity code, where a float compare
    is either a latent tolerance bug or a bit-parity assertion that
    belongs in the test suite.  Float-typedness is conservative and
    syntactic: float literals, ``float(...)`` calls, and expressions
    containing a true division.
    """

    id = "R4"
    name = "float-equality"
    rationale = ("exact float comparison in scheduling/capacity logic "
                 "turns representation noise into behavioral "
                 "divergence; compare integers, use tolerances, or "
                 "keep bit-parity assertions in tests")
    include = ("repro/serving/", "repro/simulator/", "repro/cluster/",
               "repro/perf/")

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            if any(self._is_floaty(operand) for operand in operands):
                self.report(node,
                            "==/!= on a float-typed expression — use a "
                            "tolerance (math.isclose) or integer state")
        self.generic_visit(node)

    @classmethod
    def _is_floaty(cls, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id == "float":
            return True
        if isinstance(node, ast.UnaryOp):
            return cls._is_floaty(node.operand)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return cls._is_floaty(node.left) or cls._is_floaty(node.right)
        return False


# --------------------------------------------------------------------- #
# R5: router contract                                                    #
# --------------------------------------------------------------------- #

@register_rule
class RouterContractRule(Rule):
    """R5: ``route()`` must never return a ``.replica_id``.

    Routers return positions in the snapshot sequence they were handed;
    replica ids survive a scale-down non-contiguously, so an id used as
    an index routes to the wrong replica (or out of range) the moment
    the fleet resizes — the exact bug class PR 5 fixed after the fact.
    """

    id = "R5"
    name = "router-contract"
    rationale = ("routers return snapshot *positions*, never replica "
                 "ids — ids survive a scale-down non-contiguously, so "
                 "an id-as-index routes wrong on any elastic fleet")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name == "route":
            for statement in ast.walk(node):
                if isinstance(statement, ast.Return) \
                        and statement.value is not None \
                        and self._mentions_replica_id(statement.value):
                    self.report(statement,
                                "route() returns an expression "
                                "referencing .replica_id — return the "
                                "position in the snapshot sequence "
                                "instead (ids are not positions on an "
                                "elastic fleet)")
        self.generic_visit(node)

    @staticmethod
    def _mentions_replica_id(node: ast.expr) -> bool:
        return any(isinstance(child, ast.Attribute)
                   and child.attr == "replica_id"
                   for child in ast.walk(node))


# --------------------------------------------------------------------- #
# R6: exception hygiene                                                  #
# --------------------------------------------------------------------- #

@register_rule
class ExceptionHygieneRule(Rule):
    """R6: no bare ``except:``, no ``except ...: pass`` swallowing.

    A bare handler catches ``KeyboardInterrupt``/``SystemExit`` and
    every programming error alike; a handler whose whole body is
    ``pass`` makes failures invisible.  Both are poison in a codebase
    whose fault-injection results are only credible if every injected
    failure is observed, retried, or recorded — never eaten.  Narrow,
    intentional swallows take a ``# repro: allow[R6]`` pragma with the
    justification on the handler line.
    """

    id = "R6"
    name = "exception-hygiene"
    rationale = ("a bare except hides KeyboardInterrupt and programmer "
                 "errors; an except-pass makes failures invisible — "
                 "fault-injection results are only credible when every "
                 "failure is observed, retried, or recorded")

    def visit_Try(self, node: ast.Try) -> None:
        self._check_handlers(node.handlers)
        self.generic_visit(node)

    def visit_TryStar(self, node: ast.TryStar) -> None:
        self._check_handlers(node.handlers)
        self.generic_visit(node)

    def _check_handlers(self,
                        handlers: list[ast.ExceptHandler]) -> None:
        for handler in handlers:
            if handler.type is None:
                self.report(handler,
                            "bare except: catches KeyboardInterrupt and "
                            "every bug alike — name the exception types "
                            "this handler is for")
            elif len(handler.body) == 1 \
                    and isinstance(handler.body[0], ast.Pass):
                self.report(handler,
                            "except-pass swallows the failure — handle "
                            "it, re-raise, or record it; a deliberate "
                            "swallow takes a # repro: allow[R6] pragma "
                            "with its justification")


RuleFactory = Callable[[str, ast.Module, Sequence[str]], Rule]
