"""The ``repro lint`` driver: run the rule set over files, honor pragmas.

Static enforcement of the repo's reproducibility contracts (see
:mod:`repro.quality.rules` for the rules themselves).  The entry points:

* :func:`lint_source` — lint one source string (tests, editors);
* :func:`lint_paths` — lint files and directory trees;
* :func:`format_text` / :func:`format_json` — render violations.

Inline suppression: a violation on a line carrying
``# repro: allow[<rule>] <justification>`` is dropped, where ``<rule>``
is a comma-separated list of short ids (``R1``) or names
(``determinism``).  The justification is mandatory — a pragma without
one (or naming an unknown rule) is itself a violation (rule ``R0``), so
every escape hatch in the tree documents why it exists.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Iterable, Sequence

from repro.quality.rules import (
    PragmaHygieneRule,
    Rule,
    Violation,
    all_rules,
    resolve_rule,
)

_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]\s*(.*)$")

# exit codes above this are shell-reserved (126/127) or signal-shaped;
# the count still reports exactly through --format json
EXIT_CODE_CAP = 100


def _select(rules: Iterable[str] | None) -> list[type[Rule]]:
    if rules is None:
        return all_rules()
    selected = []
    for token in rules:
        cls = resolve_rule(token)
        if cls not in selected:
            selected.append(cls)
    return selected


def _comments(source: str) -> dict[int, str]:
    """Real comment tokens by line (docstrings mentioning the pragma
    syntax must not count as pragmas)."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except tokenize.TokenError:   # repro: allow[R6] unterminated construct; ast already reported it as a parse violation
        pass
    return comments


def _scan_pragmas(path: str, source: str,
                  known: dict[str, type[Rule]]) \
        -> tuple[dict[int, set[str]], list[Violation]]:
    """Collect per-line suppressed-rule ids and R0 hygiene violations."""
    suppressions: dict[int, set[str]] = {}
    violations: list[Violation] = []
    for lineno, line in sorted(_comments(source).items()):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        tokens = [token.strip() for token in match.group(1).split(",")
                  if token.strip()]
        justification = match.group(2).strip().strip("-—:# ").strip()
        covered: set[str] = set()
        for token in tokens:
            cls = known.get(token.lower())
            if cls is None:
                violations.append(Violation(
                    file=path, line=lineno,
                    rule=PragmaHygieneRule.id,
                    name=PragmaHygieneRule.name,
                    message=f"pragma names unknown rule {token!r}"))
            else:
                covered.add(cls.id)
        if not tokens:
            violations.append(Violation(
                file=path, line=lineno,
                rule=PragmaHygieneRule.id, name=PragmaHygieneRule.name,
                message="pragma allows no rules — remove it or name "
                        "the rule(s) it suppresses"))
        if not justification:
            violations.append(Violation(
                file=path, line=lineno,
                rule=PragmaHygieneRule.id, name=PragmaHygieneRule.name,
                message="pragma without a justification — say why the "
                        "violation is intentional on the same line"))
        if covered:
            suppressions.setdefault(lineno, set()).update(covered)
    return suppressions, violations


def lint_source(source: str, path: str,
                rules: Iterable[str] | None = None) -> list[Violation]:
    """Lint one source string as if it lived at ``path``."""
    selected = _select(rules)
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(
            file=path, line=exc.lineno or 1, rule="parse",
            name="syntax-error",
            message=f"file does not parse: {exc.msg}")]
    known = {}
    for cls in all_rules():
        known[cls.id.lower()] = cls
        known[cls.name.lower()] = cls
    suppressions, pragma_violations = _scan_pragmas(path, source, known)

    violations: list[Violation] = []
    if any(cls is PragmaHygieneRule for cls in selected):
        violations.extend(pragma_violations)
    for cls in selected:
        if cls is PragmaHygieneRule or not cls.applies_to(path):
            continue
        violations.extend(cls(path, tree, lines).run())
    violations = [violation for violation in violations
                  if violation.rule == PragmaHygieneRule.id
                  or violation.rule
                  not in suppressions.get(violation.line, set())]
    violations.sort(key=lambda v: (v.file, v.line, v.rule))
    return violations


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files and directory trees to a sorted ``*.py`` list."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(candidate for candidate in path.rglob("*.py")
                         if "__pycache__" not in candidate.parts)
        elif path.suffix == ".py":
            files.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def lint_paths(paths: Iterable[str | Path],
               rules: Iterable[str] | None = None) -> list[Violation]:
    """Lint every ``*.py`` file under ``paths`` (files or trees)."""
    violations: list[Violation] = []
    for file in iter_python_files(paths):
        violations.extend(lint_source(
            file.read_text(encoding="utf-8"), str(file), rules))
    return violations


def format_text(violations: Sequence[Violation]) -> str:
    """One ``file:line: RULE(name): message`` row per violation."""
    if not violations:
        return "repro lint: clean (0 violations)"
    rows = [f"{violation.file}:{violation.line}: "
            f"{violation.rule}({violation.name}): {violation.message}"
            for violation in violations]
    rows.append(f"repro lint: {len(violations)} violation(s)")
    return "\n".join(rows)


def format_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report (the CI artifact format)."""
    return json.dumps({
        "count": len(violations),
        "violations": [violation.to_dict() for violation in violations],
    }, indent=2)


def exit_code(violations: Sequence[Violation]) -> int:
    """Process exit status: the violation count, shell-safely capped."""
    return min(len(violations), EXIT_CODE_CAP)
