"""Resource-timeline execution of compiled instruction streams.

The machine owns one timeline per hardware unit.  Instructions execute
in program order along a logical dependency chain (operators within a
layer are data-dependent), with two sanctioned overlaps:

* **weight prefetch** — a ``LOAD`` may start up to one operator ahead of
  its consumer (double buffering, Fig. 6c), contending for DRAM with any
  MAC-tree streams;
* **synchronization** — ``SYNC``/``COMM`` wire time overlaps the
  preceding compute according to the dataflow's overlappable fraction
  (Fig. 6d), with protocol latency always exposed.

Durations come from the same primitives as the analytical scheduler
(effective-bandwidth curve, systolic estimates, vector rates) so
disagreements between the two paths indicate scheduling effects, not
calibration differences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.generator import CompiledProgram
from repro.compiler.instructions import Instruction, Opcode, TargetUnit
from repro.hardware.chip import ChipKind, ChipSpec
from repro.perf.effective_bandwidth import MT_BANDWIDTH_CURVE
from repro.perf.systolic import SystolicTimingModel


@dataclass
class UnitTimeline:
    """Busy-time bookkeeping for one hardware unit."""

    name: str
    free_at: float = 0.0
    busy: float = 0.0

    def reserve(self, earliest_start: float, duration: float) -> float:
        """Occupy the unit; returns the completion time."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(self.free_at, earliest_start)
        self.free_at = start + duration
        self.busy += duration
        return self.free_at


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of executing one compiled program."""

    seconds: float
    instruction_count: int
    unit_busy: dict = field(default_factory=dict)

    def utilization(self, unit: TargetUnit) -> float:
        """Busy fraction of one unit over the program's makespan."""
        if self.seconds <= 0:
            return 0.0
        return min(1.0, self.unit_busy.get(unit.value, 0.0) / self.seconds)


class InstructionLevelSimulator:
    """Executes :class:`CompiledProgram` streams on an HDA chip."""

    #: fraction of SYNC/COMM wire time hidden behind compute
    SYNC_OVERLAP = 0.90
    COMM_OVERLAP = 0.90

    def __init__(self, chip: ChipSpec,
                 sa_efficiency: float = 0.92,
                 mt_gemm_efficiency: float = 0.90) -> None:
        if chip.kind != ChipKind.ADOR_HDA:
            raise ValueError("the instruction simulator models HDA chips")
        if chip.systolic_array is None:
            raise ValueError("an HDA chip needs a systolic array")
        self.chip = chip
        self.sa_efficiency = sa_efficiency
        self.mt_gemm_efficiency = mt_gemm_efficiency
        self.systolic = SystolicTimingModel(
            array=chip.systolic_array,
            cores=chip.cores,
            frequency_hz=chip.frequency_hz,
        )

    # ------------------------------------------------------------------ #
    # Per-instruction durations                                           #
    # ------------------------------------------------------------------ #

    def _stream_seconds(self, bytes_moved: float, program_flops: float) -> float:
        eff = MT_BANDWIDTH_CURVE.effective_bandwidth(
            self.chip.memory_bandwidth, program_flops)
        return bytes_moved / eff

    def _duration(self, inst: Instruction, program_flops: float) -> float:
        if inst.opcode in (Opcode.GEMV, Opcode.ATTN) \
                and inst.target == TargetUnit.MAC_TREE:
            stream = self._stream_seconds(inst.bytes_moved, program_flops)
            mt_rate = 2.0 * self.chip.mt_macs * self.chip.frequency_hz \
                * self.mt_gemm_efficiency
            if inst.opcode == Opcode.GEMV:
                # Fig. 8: at batch, the systolic array assists weight-
                # streamed GEMMs while the MAC tree owns the DRAM stream
                rate = mt_rate + self.systolic.peak_flops * self.sa_efficiency
            else:
                rate = mt_rate
            compute = inst.flops / rate if rate else float("inf")
            return max(stream, compute)
        if inst.target == TargetUnit.SYSTOLIC_ARRAY:
            m = int(inst.meta.get("m", 1))
            k = int(inst.meta.get("k", 1))
            n = int(inst.meta.get("n", 1))
            if inst.opcode == Opcode.ATTN:
                # score+context against resident KV; flops already carry
                # the causal factor, so derive seconds from the estimate's
                # achieved rate
                est = self.systolic.gemm(
                    max(1, m), max(1, k), max(1, 2 * inst.meta.get("context", n)),
                    self.chip.memory_bandwidth, weights_resident=True)
                rate = self.systolic.peak_flops * est.utilization \
                    * self.sa_efficiency
            else:
                est = self.systolic.gemm(m, k, n, self.chip.memory_bandwidth,
                                         double_buffered=True,
                                         weights_resident=True)
                rate = self.systolic.peak_flops * est.utilization \
                    * self.sa_efficiency
            return inst.flops / rate if rate > 0 else 0.0
        if inst.target == TargetUnit.VECTOR_UNIT:
            if self.chip.vector_unit is None:
                return 0.0
            rate = self.chip.vector_unit.width * self.chip.cores \
                * self.chip.frequency_hz
            return 2e-7 + inst.flops / rate
        if inst.target == TargetUnit.DMA:
            return self._stream_seconds(inst.bytes_moved, program_flops)
        if inst.target == TargetUnit.NOC:
            return inst.bytes_moved / self.chip.noc.bandwidth_bytes_per_s
        if inst.target == TargetUnit.P2P:
            return self.chip.p2p.latency_s \
                + inst.bytes_moved / self.chip.p2p.bandwidth_bytes_per_s
        return 0.0

    # ------------------------------------------------------------------ #
    # Program execution                                                   #
    # ------------------------------------------------------------------ #

    def run(self, program: CompiledProgram) -> ExecutionReport:
        """Execute the stream; returns makespan and per-unit busy time."""
        timelines = {unit: UnitTimeline(unit.value) for unit in TargetUnit}
        program_flops = sum(i.flops for i in program.instructions)
        chain = 0.0  # completion time of the dependency chain
        pending_load_done = 0.0

        for inst in program.instructions:
            duration = self._duration(inst, program_flops)
            timeline = timelines[inst.target]
            if inst.opcode == Opcode.BARRIER:
                chain = max(chain, pending_load_done)
                continue
            if inst.opcode == Opcode.LOAD:
                # prefetch: may run ahead of the chain (double buffering),
                # serialized only on the DMA/DRAM resource
                done = timeline.reserve(0.0, duration)
                pending_load_done = max(pending_load_done, done)
                continue
            if inst.opcode in (Opcode.SYNC, Opcode.COMM):
                overlap = self.SYNC_OVERLAP if inst.opcode == Opcode.SYNC \
                    else self.COMM_OVERLAP
                exposed = duration * (1.0 - overlap)
                if inst.opcode == Opcode.COMM:
                    exposed += self.chip.p2p.latency_s * overlap
                done = timeline.reserve(chain, exposed)
                chain = done
                continue
            # compute instructions join the dependency chain; systolic
            # GEMMs additionally wait for their prefetched weights
            earliest = chain
            if inst.target == TargetUnit.SYSTOLIC_ARRAY \
                    and inst.opcode == Opcode.GEMM:
                earliest = max(earliest, pending_load_done)
            done = timeline.reserve(earliest, duration)
            chain = done

        makespan = max(chain, *(t.free_at for t in timelines.values()))
        return ExecutionReport(
            seconds=makespan,
            instruction_count=program.instruction_count,
            unit_busy={unit.value: timelines[unit].busy
                       for unit in TargetUnit},
        )
