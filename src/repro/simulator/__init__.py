"""Instruction-level execution simulator (the ADOR Scheduling Sim).

Executes compiled instruction streams (:mod:`repro.compiler`) against
per-unit resource timelines — MAC tree, systolic array, vector units,
DMA/DRAM, NoC and P2P — honoring dependencies and double-buffered weight
prefetch.  It is the deeper-fidelity counterpart of the closed-form
:class:`~repro.core.scheduling.HdaScheduler`; integration tests assert
the two agree on stage latencies.
"""

from repro.simulator.machine import (
    ExecutionReport,
    InstructionLevelSimulator,
    UnitTimeline,
)

__all__ = [
    "ExecutionReport",
    "InstructionLevelSimulator",
    "UnitTimeline",
]
