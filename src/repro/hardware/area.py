"""Calibrated silicon area / cost model.

The paper estimates die areas by "adding the MAC tree information to the
LLMCompass cost model".  We recreate that model as a linear composition
of per-component coefficients at a 7 nm reference node:

* systolic-array MACs (``sa_mac_mm2``),
* MAC-tree MACs, carrying a density *penalty* — tree wiring, per-lane
  stream buffers and the full-bandwidth DRAM datapath make MT MACs far
  less dense than SA MACs (the paper's Table II notes exactly this),
* vector-unit lanes,
* local + global SRAM per MiB,
* DRAM PHY + controllers per TB/s,
* P2P SerDes per GB/s,
* per-core control/DMA/router overhead, and a fixed chip overhead.

The coefficients are calibrated so the three synthesizable designs in
Table III (LLMCompass-L 478 mm^2, LLMCompass-T 787 mm^2, ADOR 516 mm^2)
are reproduced exactly; real GPUs keep their published die sizes via
``ChipSpec.die_area_mm2``.  Areas at other nodes scale by transistor
density (:mod:`repro.hardware.technology`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.chip import ChipSpec
from repro.hardware.memory import MIB
from repro.hardware.technology import ProcessNode, area_scaling_factor


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component die area in mm^2 (at the chip's own process node)."""

    systolic_array: float
    mac_tree: float
    vector_unit: float
    sram: float
    dram_interface: float
    p2p_interface: float
    core_overhead: float
    fixed_overhead: float

    @property
    def total(self) -> float:
        return (
            self.systolic_array
            + self.mac_tree
            + self.vector_unit
            + self.sram
            + self.dram_interface
            + self.p2p_interface
            + self.core_overhead
            + self.fixed_overhead
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "systolic array": self.systolic_array,
            "MAC tree": self.mac_tree,
            "vector unit": self.vector_unit,
            "SRAM": self.sram,
            "DRAM interface": self.dram_interface,
            "P2P interface": self.p2p_interface,
            "core overhead": self.core_overhead,
            "fixed overhead": self.fixed_overhead,
        }


@dataclass(frozen=True)
class AreaModel:
    """Linear area model with coefficients at the 7 nm reference node.

    Default coefficients reproduce Table III exactly (see module docstring
    and ``tests/test_hardware_area.py``).
    """

    sa_mac_mm2: float = 0.0015463
    #: MT MACs are ~7.6x less dense than SA MACs once stream buffers and
    #: the DRAM-width datapath are charged to them (Table III calibration).
    mt_density_penalty: float = 7.633
    vu_lane_mm2: float = 0.733
    sram_mm2_per_mib: float = 0.75
    dram_mm2_per_tbps: float = 40.0
    p2p_mm2_per_gbps: float = 0.012
    core_overhead_mm2: float = 0.7
    fixed_overhead_mm2: float = 30.0
    reference_node: ProcessNode = field(default=ProcessNode.NM_7)

    @property
    def mt_mac_mm2(self) -> float:
        return self.sa_mac_mm2 * self.mt_density_penalty

    def breakdown(self, chip: ChipSpec) -> AreaBreakdown:
        """Estimate the per-component area of ``chip`` at its own node."""
        scale = area_scaling_factor(chip.process, self.reference_node) ** -1
        vu_lanes = 0
        if chip.vector_unit is not None:
            # one lane per 16 elements of vector width, at least one per core
            vu_lanes = chip.cores * max(1, chip.vector_unit.width // 16)
        sa_lanes = chip.systolic_array.lanes if chip.systolic_array else 0
        # LLMCompass-style lanes each carry their own vector unit
        vu_lanes = max(vu_lanes, chip.cores * sa_lanes)
        sram_mib = chip.total_sram_bytes / MIB
        return AreaBreakdown(
            systolic_array=scale * self.sa_mac_mm2 * chip.sa_macs,
            mac_tree=scale * self.mt_mac_mm2 * chip.mt_macs,
            vector_unit=scale * self.vu_lane_mm2 * vu_lanes,
            sram=scale * self.sram_mm2_per_mib * sram_mib,
            dram_interface=scale * self.dram_mm2_per_tbps
            * chip.dram.bandwidth_bytes_per_s / 1e12,
            p2p_interface=scale * self.p2p_mm2_per_gbps
            * chip.p2p.bandwidth_bytes_per_s / 1e9,
            core_overhead=scale * self.core_overhead_mm2 * chip.cores,
            fixed_overhead=scale * self.fixed_overhead_mm2,
        )

    def die_area_mm2(self, chip: ChipSpec) -> float:
        """Die area of ``chip``: published figure if available, else modelled."""
        if chip.die_area_mm2 is not None:
            return chip.die_area_mm2
        return self.breakdown(chip).total

    def die_area_at(self, chip: ChipSpec, node: ProcessNode) -> float:
        """Die area normalized to another process node (paper Fig. 4a)."""
        area = self.die_area_mm2(chip)
        return area * area_scaling_factor(chip.process, node)
