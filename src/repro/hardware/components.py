"""Compute-unit descriptors: systolic array, MAC tree, vector unit.

These are *specifications*, not simulators — timing lives in
:mod:`repro.perf`.  Each descriptor exposes its MAC count and peak FLOPS
so allocation (paper Section V-A) and area estimation can reason about
them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystolicArray:
    """A weight-stationary systolic array (paper Fig. 5a).

    ``lanes`` replicates the array within a core — the LLMCompass-style
    designs in Table III use 4 lanes of small arrays where ADOR uses one
    lane of a large array.
    """

    rows: int
    cols: int
    lanes: int = 1

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1 or self.lanes < 1:
            raise ValueError("systolic array dimensions must be >= 1")

    @property
    def macs(self) -> int:
        """MAC units in all lanes of one core's array."""
        return self.rows * self.cols * self.lanes

    def peak_flops(self, frequency_hz: float) -> float:
        """Peak FLOPS of one core's array (2 FLOPs per MAC per cycle)."""
        return 2.0 * self.macs * frequency_hz

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lanes = f" x{self.lanes} lanes" if self.lanes > 1 else ""
        return f"SA {self.rows}x{self.cols}{lanes}"


@dataclass(frozen=True)
class MacTree:
    """A multiplier + adder-tree dot-product engine (paper Fig. 5b).

    ``tree_size`` is the dot-product width per cycle (multipliers feeding
    one adder tree); ``lanes`` is the number of parallel trees sharing the
    streamed weight/KV operand.  Lanes matter for GQA/MQA attention, where
    one KV stream feeds several query heads (Fig. 11b).

    The paper's ADOR design is "a MAC tree with a size of 16 ... and 16
    lanes", i.e. ``MacTree(16, 16)``.
    """

    tree_size: int
    lanes: int = 1

    def __post_init__(self) -> None:
        if self.tree_size < 1 or self.lanes < 1:
            raise ValueError("MAC tree dimensions must be >= 1")

    @property
    def macs(self) -> int:
        """MAC units in all lanes of one core's tree."""
        return self.tree_size * self.lanes

    def peak_flops(self, frequency_hz: float) -> float:
        """Peak FLOPS of one core's MAC tree."""
        return 2.0 * self.macs * frequency_hz

    def stream_bytes_per_cycle(self, dtype_bytes: int = 2) -> int:
        """Bytes of streamed operand one lane consumes per cycle.

        This is the quantity ADOR's sizing rule matches against the
        per-core DRAM bandwidth share (Section V-A's
        ``data_size_per_cycle`` formula).
        """
        return self.tree_size * dtype_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"MT {self.tree_size}x{self.lanes}"


@dataclass(frozen=True)
class VectorUnit:
    """A SIMD vector unit for softmax / norms / elementwise ops (Fig. 5c)."""

    width: int
    ops_per_element: int = 1

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("vector width must be >= 1")

    def peak_elements_per_second(self, frequency_hz: float) -> float:
        """Elements processed per second at full occupancy."""
        return self.width * frequency_hz

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"VU {self.width}-wide"
