"""Process-technology nodes and area normalization.

The paper compares dies built on 4 nm (H100), 7 nm (A100, TPUv4) and
14 nm (Groq TSP) processes, normalizing area efficiency to a common node
in Fig. 4(a).  We model each node by its logic transistor density and
scale areas by density ratios — the same first-order normalization the
figure applies (its "normalized value with 4nm process" panel).
"""

from __future__ import annotations

import enum


class ProcessNode(enum.Enum):
    """Named fabrication nodes with logic density in Mtransistors / mm^2.

    Densities are the published peak logic densities for each foundry
    node family (TSMC N4/N5/N7/N12, GF/Samsung 14 nm class).
    """

    NM_4 = ("4nm", 137.6)
    NM_5 = ("5nm", 126.5)
    NM_7 = ("7nm", 91.2)
    NM_12 = ("12nm", 33.8)
    NM_14 = ("14nm", 29.2)

    def __init__(self, label: str, density_mtr_per_mm2: float) -> None:
        self.label = label
        self.density = density_mtr_per_mm2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


def area_scaling_factor(source: ProcessNode, target: ProcessNode) -> float:
    """Multiplier converting an area at ``source`` to the ``target`` node.

    Area scales inversely with transistor density, so the factor is
    ``target.density / source.density`` inverted — e.g. a 14 nm die
    normalized to 4 nm shrinks by 137.6 / 29.2 = 4.712x, the exact factor
    printed next to the TSP bar in the paper's Fig. 4(a).
    """
    return source.density / target.density


def normalize_area(area_mm2: float, source: ProcessNode,
                   target: ProcessNode = ProcessNode.NM_4) -> float:
    """Area re-expressed at ``target`` (default 4 nm, as in Fig. 4a)."""
    if area_mm2 < 0:
        raise ValueError("area must be non-negative")
    return area_mm2 * area_scaling_factor(source, target)
