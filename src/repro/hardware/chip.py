"""Whole-chip specification: the unit the DSE searches over.

A :class:`ChipSpec` is the ADOR architecture template of Fig. 6(a)
instantiated with concrete numbers: ``cores`` identical cores, each with
an optional systolic array, MAC tree, vector unit and local memory, plus
shared global memory, a ring NoC, DRAM and P2P links.

Fixed-function devices the paper compares against (A100, TPUv4, TSP) are
also expressed as ``ChipSpec`` instances with a ``kind`` tag so the
performance layer dispatches to the appropriate baseline model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.hardware.components import MacTree, SystolicArray, VectorUnit
from repro.hardware.interconnect import NocSpec, P2pSpec
from repro.hardware.memory import Dram, Sram
from repro.hardware.technology import ProcessNode


class ChipKind(enum.Enum):
    """Performance-model dispatch tag."""

    ADOR_HDA = "ador"          # heterogeneous dataflow template (SA + MT + VU)
    SYSTOLIC_NPU = "npu"       # SA-only NPU (TPU, LLMCompass designs)
    GPU = "gpu"                # SMT GPU baseline (A100/H100)
    STREAMING_SRAM = "tsp"     # all-weights-on-chip streaming (Groq TSP)


@dataclass(frozen=True)
class ChipSpec:
    """One device of a (possibly multi-device) serving system."""

    name: str
    kind: ChipKind
    frequency_hz: float
    cores: int
    systolic_array: SystolicArray | None
    mac_tree: MacTree | None
    vector_unit: VectorUnit | None
    local_memory: Sram
    global_memory: Sram
    dram: Dram
    noc: NocSpec
    p2p: P2pSpec
    process: ProcessNode
    # Published specs for real silicon; ``None`` means "derive from model".
    die_area_mm2: float | None = None
    peak_flops_override: float | None = None
    tdp_w: float | None = None

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("a chip needs at least one core")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.kind == ChipKind.ADOR_HDA and self.systolic_array is None \
                and self.mac_tree is None:
            raise ValueError("an HDA chip needs at least one compute unit type")

    # ------------------------------------------------------------------ #
    # Aggregate compute                                                   #
    # ------------------------------------------------------------------ #

    @property
    def sa_macs(self) -> int:
        """Systolic-array MACs across all cores."""
        if self.systolic_array is None:
            return 0
        return self.cores * self.systolic_array.macs

    @property
    def mt_macs(self) -> int:
        """MAC-tree MACs across all cores."""
        if self.mac_tree is None:
            return 0
        return self.cores * self.mac_tree.macs

    @property
    def sa_peak_flops(self) -> float:
        return 2.0 * self.sa_macs * self.frequency_hz

    @property
    def mt_peak_flops(self) -> float:
        return 2.0 * self.mt_macs * self.frequency_hz

    @property
    def peak_flops(self) -> float:
        """Peak dense FLOPS; real devices use their published number."""
        if self.peak_flops_override is not None:
            return self.peak_flops_override
        return self.sa_peak_flops + self.mt_peak_flops

    # ------------------------------------------------------------------ #
    # Aggregate memory                                                    #
    # ------------------------------------------------------------------ #

    @property
    def total_local_memory_bytes(self) -> float:
        return self.cores * self.local_memory.size_bytes

    @property
    def total_sram_bytes(self) -> float:
        return self.total_local_memory_bytes + self.global_memory.size_bytes

    @property
    def memory_bandwidth(self) -> float:
        return self.dram.bandwidth_bytes_per_s

    def with_updates(self, **changes) -> "ChipSpec":
        """Functional update helper used by the DSE loop."""
        return replace(self, **changes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        units = []
        if self.systolic_array:
            units.append(str(self.systolic_array))
        if self.mac_tree:
            units.append(str(self.mac_tree))
        inner = ", ".join(units) if units else self.kind.value
        return (
            f"{self.name}: {self.cores} cores [{inner}], "
            f"{self.peak_flops / 1e12:.0f} TFLOPS, {self.dram}"
        )
