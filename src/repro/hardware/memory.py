"""Memory specifications: off-chip DRAM and on-chip SRAM pools.

ADOR's template splits on-chip SRAM into per-core *local* memory (holds
activations so DRAM bandwidth is spent only on weights/KV) and shared
*global* memory (holds freshly produced KV pairs so the systolic array
can work without touching DRAM during decode) — paper Section IV-B.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

GIB = 1024 ** 3
MIB = 1024 ** 2
KIB = 1024


class DramKind(enum.Enum):
    """Off-chip memory families appearing in Table I."""

    HBM2 = "HBM2"
    HBM2E = "HBM2e"
    HBM3 = "HBM3"
    HBM3E = "HBM3e"
    LPDDR = "LPDDR"
    ON_CHIP_SRAM = "SRAM"  # Groq TSP stores all weights on chip


@dataclass(frozen=True)
class Dram:
    """Off-chip memory system of one device."""

    kind: DramKind
    size_bytes: float
    bandwidth_bytes_per_s: float
    modules: int = 8  # stacks / channel groups, for DMA and NoC layout

    def __post_init__(self) -> None:
        if self.size_bytes < 0 or self.bandwidth_bytes_per_s <= 0:
            raise ValueError("DRAM size must be >= 0 and bandwidth > 0")
        if self.modules < 1:
            raise ValueError("DRAM must expose at least one module")

    @property
    def bandwidth_per_module(self) -> float:
        return self.bandwidth_bytes_per_s / self.modules

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.kind.value} {self.size_bytes / GIB:.0f} GiB @ "
            f"{self.bandwidth_bytes_per_s / 1e12:.2f} TB/s"
        )


@dataclass(frozen=True)
class Sram:
    """An on-chip SRAM pool (local-per-core or global-shared)."""

    size_bytes: float
    bandwidth_bytes_per_s: float = float("inf")

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("SRAM size must be >= 0")

    def fits(self, bytes_needed: float) -> bool:
        """Whether a working set fits in this pool."""
        return bytes_needed <= self.size_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.size_bytes >= MIB:
            return f"SRAM {self.size_bytes / MIB:.0f} MiB"
        return f"SRAM {self.size_bytes / KIB:.0f} KiB"
