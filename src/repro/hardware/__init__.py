"""Hardware description layer: compute units, memories, interconnect,
process technology and the calibrated area/cost model.

:mod:`repro.hardware.presets` holds every concrete device the paper
evaluates (Table I) and every design it proposes or compares against
(Table III).
"""

from repro.hardware.technology import ProcessNode, area_scaling_factor, normalize_area
from repro.hardware.components import MacTree, SystolicArray, VectorUnit
from repro.hardware.memory import Dram, DramKind, Sram
from repro.hardware.interconnect import NocSpec, P2pSpec
from repro.hardware.chip import ChipSpec
from repro.hardware.area import AreaBreakdown, AreaModel
from repro.hardware.power import EnergyBreakdown, PowerModel
from repro.hardware.presets import (
    a100,
    ader_reference_designs,
    ador_table3,
    groq_tsp,
    h100,
    llmcompass_latency,
    llmcompass_throughput,
    tpu_v4,
)
from repro.hardware.registry import (
    CHIP_REGISTRY,
    get_chip,
    list_chips,
    register_chip,
)

__all__ = [
    "CHIP_REGISTRY",
    "get_chip",
    "list_chips",
    "register_chip",
    "ProcessNode",
    "area_scaling_factor",
    "normalize_area",
    "MacTree",
    "SystolicArray",
    "VectorUnit",
    "Dram",
    "DramKind",
    "Sram",
    "NocSpec",
    "P2pSpec",
    "ChipSpec",
    "AreaBreakdown",
    "AreaModel",
    "EnergyBreakdown",
    "PowerModel",
    "a100",
    "h100",
    "tpu_v4",
    "groq_tsp",
    "llmcompass_latency",
    "llmcompass_throughput",
    "ador_table3",
    "ader_reference_designs",
]
