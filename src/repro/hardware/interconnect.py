"""On-chip NoC and device-to-device P2P link specifications.

The paper's template uses a ring NoC between cores (Fig. 6a) and modest
P2P links between devices — one of its punchlines is that ~32-64 GB/s
(PCIe-class) P2P suffices for LLM serving when all-gather synchronization
is overlapped with compute, versus NVLink's 600-900 GB/s (Section V-C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class NocTopology(enum.Enum):
    RING = "ring"
    CROSSBAR = "crossbar"
    MESH = "mesh"


@dataclass(frozen=True)
class NocSpec:
    """On-chip network connecting cores, global memory and DMA engines."""

    bandwidth_bytes_per_s: float
    topology: NocTopology = NocTopology.RING
    hop_latency_s: float = 2e-9  # per-router pipeline latency

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("NoC bandwidth must be positive")
        if self.hop_latency_s < 0:
            raise ValueError("hop latency must be non-negative")

    def transfer_time(self, payload_bytes: float, hops: int = 1) -> float:
        """Seconds to move ``payload_bytes`` across ``hops`` routers."""
        if payload_bytes < 0 or hops < 0:
            raise ValueError("payload and hops must be non-negative")
        return payload_bytes / self.bandwidth_bytes_per_s + hops * self.hop_latency_s


@dataclass(frozen=True)
class P2pSpec:
    """Device-to-device link (PCIe / InfiniBand / NVLink class)."""

    bandwidth_bytes_per_s: float
    latency_s: float = 1e-6  # per-message protocol latency

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("P2P bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("P2P latency must be non-negative")

    def transfer_time(self, payload_bytes: float) -> float:
        """Seconds for one point-to-point message."""
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        return self.latency_s + payload_bytes / self.bandwidth_bytes_per_s
