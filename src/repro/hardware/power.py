"""Energy / power model for ADOR designs and baselines.

The paper treats power as a first-class vendor constraint ("Power
Budget" in Fig. 9's inputs; TDP rows in Table I) and motivates the HDA
over CGRA partly on power (Section II-C cites 41.3 % savings).  This
module prices a workload's energy from per-event coefficients at a 7 nm
reference node:

* MAC energy (systolic; MAC-tree MACs carry a wiring penalty),
* SRAM access energy (local and shared global),
* DRAM access energy (HBM-class, ~7.5 pJ/bit),
* NoC and P2P transfer energy,
* static power as a fraction of the peak dynamic power plus a floor.

Coefficients are standard circuit-level figures for 7 nm-class silicon;
energies at other nodes scale with the technology's density ratio (a
first-order dynamic-energy proxy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.chip import ChipSpec
from repro.hardware.technology import area_scaling_factor, ProcessNode


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (joules) of one workload execution."""

    compute: float
    sram: float
    dram: float
    noc: float
    p2p: float
    static: float

    @property
    def total(self) -> float:
        return (self.compute + self.sram + self.dram + self.noc + self.p2p
                + self.static)

    def as_dict(self) -> dict[str, float]:
        return {
            "compute": self.compute,
            "SRAM": self.sram,
            "DRAM": self.dram,
            "NoC": self.noc,
            "P2P": self.p2p,
            "static": self.static,
        }


@dataclass(frozen=True)
class PowerModel:
    """Per-event energy coefficients at the 7 nm reference node."""

    sa_mac_pj: float = 0.9
    #: MAC-tree MACs burn more wire energy per operation (tree fan-in,
    #: full-bandwidth streaming datapath)
    mt_energy_penalty: float = 1.3
    sram_pj_per_byte: float = 1.2
    global_sram_pj_per_byte: float = 2.0
    dram_pj_per_byte: float = 60.0
    noc_pj_per_byte: float = 0.5
    p2p_pj_per_byte: float = 8.0
    #: leakage + clock tree as a fraction of peak dynamic power
    static_fraction: float = 0.12
    static_floor_w: float = 20.0
    reference_node: ProcessNode = ProcessNode.NM_7

    def _scale(self, chip: ChipSpec) -> float:
        """Dynamic-energy scaling for the chip's process node.

        Denser nodes switch less capacitance: energy scales with the
        density ratio to first order (a 4 nm chip spends ~0.66x the 7 nm
        reference energy per event).
        """
        return area_scaling_factor(self.reference_node, chip.process)

    def peak_dynamic_power_w(self, chip: ChipSpec) -> float:
        """Upper-bound dynamic power: all MACs and the full DRAM pipe."""
        scale = self._scale(chip)
        macs_per_s = chip.frequency_hz * (
            chip.sa_macs + chip.mt_macs * self.mt_energy_penalty)
        compute = macs_per_s * self.sa_mac_pj * 1e-12
        dram = chip.memory_bandwidth * self.dram_pj_per_byte * 1e-12
        sram = chip.memory_bandwidth * self.sram_pj_per_byte * 1e-12
        return scale * (compute + dram + sram)

    def static_power_w(self, chip: ChipSpec) -> float:
        return self.static_floor_w \
            + self.static_fraction * self.peak_dynamic_power_w(chip)

    def tdp_w(self, chip: ChipSpec) -> float:
        """Thermal design power estimate for a candidate design."""
        if chip.tdp_w is not None:
            return chip.tdp_w
        return self.peak_dynamic_power_w(chip) + self.static_power_w(chip)

    def workload_energy(
        self,
        chip: ChipSpec,
        duration_s: float,
        flops: float,
        dram_bytes: float,
        sram_bytes: float | None = None,
        noc_bytes: float = 0.0,
        p2p_bytes: float = 0.0,
        mt_flop_fraction: float = 0.0,
    ) -> EnergyBreakdown:
        """Energy of a workload that ran for ``duration_s``.

        ``sram_bytes`` defaults to twice the DRAM traffic (stream in, use
        once from a buffer); ``mt_flop_fraction`` routes that share of the
        FLOPs through the costlier MAC-tree coefficient.
        """
        if duration_s < 0 or flops < 0 or dram_bytes < 0:
            raise ValueError("workload quantities must be non-negative")
        if not 0.0 <= mt_flop_fraction <= 1.0:
            raise ValueError("mt_flop_fraction must be in [0, 1]")
        scale = self._scale(chip)
        if sram_bytes is None:
            sram_bytes = 2.0 * dram_bytes
        macs = flops / 2.0
        mac_energy = macs * self.sa_mac_pj * (
            1.0 - mt_flop_fraction + mt_flop_fraction * self.mt_energy_penalty
        ) * 1e-12
        return EnergyBreakdown(
            compute=scale * mac_energy,
            sram=scale * sram_bytes * self.sram_pj_per_byte * 1e-12,
            dram=scale * dram_bytes * self.dram_pj_per_byte * 1e-12,
            noc=scale * noc_bytes * self.noc_pj_per_byte * 1e-12,
            p2p=scale * p2p_bytes * self.p2p_pj_per_byte * 1e-12,
            static=self.static_power_w(chip) * duration_s,
        )

    def average_power_w(self, chip: ChipSpec, duration_s: float,
                        **workload) -> float:
        """Mean power over the workload's duration."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        energy = self.workload_energy(chip, duration_s, **workload)
        return energy.total / duration_s

    def energy_per_token(self, chip: ChipSpec, step_seconds: float,
                         batch: int, flops: float,
                         dram_bytes: float) -> float:
        """Joules per generated token for a decode step."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        energy = self.workload_energy(chip, step_seconds, flops, dram_bytes)
        return energy.total / batch
