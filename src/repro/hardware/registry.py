"""Named chip registry: the single source of chip-preset names.

Every chip the CLI, the ``repro.api`` facade and the experiment files can
name by string lives here.  Built-in presets register themselves in
:mod:`repro.hardware.presets` via the :func:`register_chip` decorator;
third-party designs plug in the same way without touching core::

    from repro.hardware.registry import register_chip

    @register_chip("my-npu")
    def my_npu() -> ChipSpec:
        return ChipSpec(...)

Entries are zero-argument factories returning a fresh :class:`ChipSpec`,
so callers can mutate-by-replace (``with_updates``) without aliasing the
registry's copy.
"""

from __future__ import annotations

from typing import Callable

from repro.hardware.chip import ChipSpec
from repro.registry import Registry

CHIP_REGISTRY = Registry("chip")


def register_chip(name: str) -> Callable:
    """Decorator: register a zero-arg ``ChipSpec`` factory under ``name``."""

    def _decorate(factory: Callable[[], ChipSpec]) -> Callable[[], ChipSpec]:
        CHIP_REGISTRY.register(name, factory)
        return factory

    return _decorate


def get_chip(name: str) -> ChipSpec:
    """Instantiate the chip registered under ``name`` (case-insensitive)."""
    factory = CHIP_REGISTRY.get(name)
    chip = factory()
    if not isinstance(chip, ChipSpec):
        raise TypeError(f"chip factory {name!r} returned {type(chip).__name__}")
    return chip


def list_chips() -> list[str]:
    """Names of all registered chips, sorted."""
    return CHIP_REGISTRY.names()


# Importing the presets module runs its ``@register_chip`` decorators, so
# looking up a built-in never depends on who imported what first.
import repro.hardware.presets  # noqa: E402,F401  (registration side effect)
