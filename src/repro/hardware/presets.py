"""Concrete devices and designs from the paper's Tables I and III.

Real silicon (A100, H100, TPUv4, Groq TSP) is described by its published
spec sheet; the synthesizable designs (LLMCompass-L/T, the ADOR design)
are full template instantiations whose die areas the calibrated
:class:`~repro.hardware.area.AreaModel` reproduces.
"""

from __future__ import annotations

from repro.hardware.chip import ChipKind, ChipSpec
from repro.hardware.registry import register_chip
from repro.hardware.components import MacTree, SystolicArray, VectorUnit
from repro.hardware.interconnect import NocSpec, P2pSpec
from repro.hardware.memory import Dram, DramKind, Sram, GIB, KIB, MIB

_GBPS = 1e9
_TBPS = 1e12

from repro.hardware.technology import ProcessNode


@register_chip("a100")
def a100() -> ChipSpec:
    """NVIDIA A100 as configured in Table III (2 TB/s HBM2e variant)."""
    return ChipSpec(
        name="NVIDIA A100",
        kind=ChipKind.GPU,
        frequency_hz=1.5e9,
        cores=108,  # SMs
        systolic_array=None,
        mac_tree=None,
        vector_unit=VectorUnit(width=128),
        local_memory=Sram(192 * KIB),
        global_memory=Sram(48 * MIB),
        dram=Dram(DramKind.HBM2E, 80 * GIB, 2.0 * _TBPS, modules=5),
        noc=NocSpec(bandwidth_bytes_per_s=5.0 * _TBPS),
        p2p=P2pSpec(bandwidth_bytes_per_s=600 * _GBPS),
        process=ProcessNode.NM_7,
        die_area_mm2=826.0,
        peak_flops_override=312e12,
        tdp_w=400.0,
    )


@register_chip("h100")
def h100() -> ChipSpec:
    """NVIDIA H100 per Table I."""
    return ChipSpec(
        name="NVIDIA H100",
        kind=ChipKind.GPU,
        frequency_hz=1.593e9,
        cores=132,
        systolic_array=None,
        mac_tree=None,
        vector_unit=VectorUnit(width=128),
        local_memory=Sram(228 * KIB),
        global_memory=Sram(80 * MIB),
        dram=Dram(DramKind.HBM3E, 80 * GIB, 3.35 * _TBPS, modules=5),
        noc=NocSpec(bandwidth_bytes_per_s=7.0 * _TBPS),
        p2p=P2pSpec(bandwidth_bytes_per_s=900 * _GBPS),
        process=ProcessNode.NM_4,
        die_area_mm2=814.0,
        peak_flops_override=1000e12,
        tdp_w=700.0,
    )


@register_chip("tpuv4")
def tpu_v4() -> ChipSpec:
    """Google TPUv4 per Table I — a throughput-oriented systolic NPU."""
    return ChipSpec(
        name="Google TPUv4",
        kind=ChipKind.SYSTOLIC_NPU,
        frequency_hz=1.05e9,
        cores=2,  # two TensorCores, each with large MXUs
        systolic_array=SystolicArray(rows=128, cols=128, lanes=4),
        mac_tree=None,
        vector_unit=VectorUnit(width=128),
        local_memory=Sram(16 * MIB),
        global_memory=Sram(128 * MIB),
        dram=Dram(DramKind.HBM2, 32 * GIB, 1.2 * _TBPS, modules=4),
        noc=NocSpec(bandwidth_bytes_per_s=2.0 * _TBPS),
        p2p=P2pSpec(bandwidth_bytes_per_s=200 * _GBPS),
        process=ProcessNode.NM_7,
        die_area_mm2=400.0,
        peak_flops_override=275e12,
        tdp_w=275.0,
    )


@register_chip("tsp")
def groq_tsp() -> ChipSpec:
    """Groq TSP per Table I — all weights resident in on-chip SRAM.

    The "DRAM" entry models the 220 MiB on-chip SRAM at its 80 TB/s
    streaming bandwidth; model capacity therefore forces hundreds of
    devices per model (the paper quotes 576 for LLaMA3-8B-class models).
    """
    return ChipSpec(
        name="Groq TSP",
        kind=ChipKind.STREAMING_SRAM,
        frequency_hz=1.0e9,
        cores=1,
        systolic_array=None,
        mac_tree=None,
        vector_unit=VectorUnit(width=320),
        local_memory=Sram(220 * MIB),
        global_memory=Sram(0),
        dram=Dram(DramKind.ON_CHIP_SRAM, 220 * MIB, 80.0 * _TBPS, modules=1),
        noc=NocSpec(bandwidth_bytes_per_s=80.0 * _TBPS),
        p2p=P2pSpec(bandwidth_bytes_per_s=330 * _GBPS),
        process=ProcessNode.NM_14,
        die_area_mm2=725.0,
        peak_flops_override=205e12,
        tdp_w=300.0,
    )


@register_chip("llmcompass-l")
def llmcompass_latency() -> ChipSpec:
    """LLMCompass's latency-oriented design (Table III column "L")."""
    return ChipSpec(
        name="LLMCompass-L",
        kind=ChipKind.SYSTOLIC_NPU,
        frequency_hz=1.5e9,
        cores=64,
        systolic_array=SystolicArray(rows=16, cols=16, lanes=4),
        mac_tree=None,
        vector_unit=VectorUnit(width=64),
        local_memory=Sram(192 * KIB),
        global_memory=Sram(24 * MIB),
        dram=Dram(DramKind.HBM2E, 80 * GIB, 2.0 * _TBPS, modules=5),
        noc=NocSpec(bandwidth_bytes_per_s=2.0 * _TBPS),
        p2p=P2pSpec(bandwidth_bytes_per_s=600 * _GBPS),
        process=ProcessNode.NM_7,
    )


@register_chip("llmcompass-t")
def llmcompass_throughput() -> ChipSpec:
    """LLMCompass's throughput-oriented design (Table III column "T")."""
    return ChipSpec(
        name="LLMCompass-T",
        kind=ChipKind.SYSTOLIC_NPU,
        frequency_hz=1.5e9,
        cores=64,
        systolic_array=SystolicArray(rows=32, cols=32, lanes=4),
        mac_tree=None,
        vector_unit=VectorUnit(width=64),
        local_memory=Sram(768 * KIB),
        global_memory=Sram(48 * MIB),
        dram=Dram(DramKind.LPDDR, 512 * GIB, 1.0 * _TBPS, modules=8),
        noc=NocSpec(bandwidth_bytes_per_s=2.0 * _TBPS),
        p2p=P2pSpec(bandwidth_bytes_per_s=600 * _GBPS),
        process=ProcessNode.NM_7,
    )


@register_chip("ador")
def ador_table3() -> ChipSpec:
    """The ADOR design the paper's DSE proposes (Table III last column).

    64x64 weight-stationary systolic array and a 16-wide, 16-lane MAC
    tree per core, 32 cores, 2 MiB local / 16 MiB global SRAM, 2 TB/s
    HBM and 64 GB/s P2P.  Peak compute: 393.2 TFLOPS (SA) + 24.6 TFLOPS
    (MT) = 417.8 TFLOPS, matching the table's 417.
    """
    return ChipSpec(
        name="ADOR Design",
        kind=ChipKind.ADOR_HDA,
        frequency_hz=1.5e9,
        cores=32,
        systolic_array=SystolicArray(rows=64, cols=64, lanes=1),
        mac_tree=MacTree(tree_size=16, lanes=16),
        vector_unit=VectorUnit(width=16),
        local_memory=Sram(2048 * KIB),
        global_memory=Sram(16 * MIB),
        dram=Dram(DramKind.HBM2E, 80 * GIB, 2.0 * _TBPS, modules=8),
        noc=NocSpec(bandwidth_bytes_per_s=512 * _GBPS),
        p2p=P2pSpec(bandwidth_bytes_per_s=64 * _GBPS),
        process=ProcessNode.NM_7,
    )


def ader_reference_designs() -> dict[str, ChipSpec]:
    """All Table III columns keyed by short name (used by the benches)."""
    return {
        "A100": a100(),
        "LLMCompass-L": llmcompass_latency(),
        "LLMCompass-T": llmcompass_throughput(),
        "ADOR": ador_table3(),
    }
