"""Command-line interface: ``python -m repro`` or ``repro-ador``.

Four subcommands cover the library's main entry points:

* ``models``   — list the model zoo with key architecture facts;
* ``evaluate`` — prefill/decode latency of a model on a chip preset;
* ``search``   — run the ADOR architecture search (Fig. 9);
* ``serve``    — simulate a serving endpoint and report QoS (Fig. 14b).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.tables import format_table
from repro.core.requirements import (
    SearchRequest,
    ServiceLevelObjectives,
    VendorConstraints,
)
from repro.core.scheduling import device_model_for
from repro.core.search import AdorSearch
from repro.hardware.area import AreaModel
from repro.hardware.power import PowerModel
from repro.hardware.presets import (
    a100,
    ador_table3,
    groq_tsp,
    h100,
    llmcompass_latency,
    llmcompass_throughput,
    tpu_v4,
)
from repro.models.zoo import get_model, list_models
from repro.serving.dataset import ULTRACHAT_LIKE
from repro.serving.engine import ServingEngine
from repro.serving.generator import PoissonRequestGenerator
from repro.serving.qos import compute_qos
from repro.serving.scheduler import SchedulerLimits
from repro.serving.utilization import utilization_report

CHIP_PRESETS = {
    "ador": ador_table3,
    "a100": a100,
    "h100": h100,
    "tpuv4": tpu_v4,
    "tsp": groq_tsp,
    "llmcompass-l": llmcompass_latency,
    "llmcompass-t": llmcompass_throughput,
}


def _cmd_models(_args: argparse.Namespace) -> int:
    rows = []
    for name in list_models():
        model = get_model(name)
        rows.append([
            name,
            f"{model.num_parameters / 1e9:.2f}B",
            model.num_layers,
            model.hidden_size,
            f"{model.num_heads}/{model.num_kv_heads}",
            model.attention_kind.value,
        ])
    print(format_table(
        ["model", "params", "layers", "hidden", "q/kv heads", "attention"],
        rows, title="Model zoo"))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    chip = CHIP_PRESETS[args.chip]()
    device = device_model_for(chip)
    area = AreaModel().die_area_mm2(chip)
    power = PowerModel().tdp_w(chip)
    print(f"{chip}")
    print(f"die area {area:.0f} mm^2, TDP estimate {power:.0f} W\n")
    rows = []
    for batch in args.batches:
        prefill = device.prefill_time(model, 1, args.seq_len, args.devices)
        decode = device.decode_step_time(model, batch, args.seq_len,
                                         args.devices)
        rows.append([batch, prefill.seconds * 1e3, decode.seconds * 1e3,
                     1.0 / decode.seconds])
    print(format_table(
        ["batch", "TTFT (ms)", "decode step (ms)", "TBT (tok/s)"],
        rows, title=f"{model.name} on {chip.name}, seq {args.seq_len}, "
                    f"{args.devices} device(s)"))
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    request = SearchRequest(
        model_names=tuple(args.models),
        slos=ServiceLevelObjectives(
            ttft_slo_s=args.ttft_ms / 1e3,
            tbt_slo_s=args.tbt_ms / 1e3,
            batch_size=args.batch,
            seq_len=args.seq_len,
        ),
        vendor=VendorConstraints(
            area_budget_mm2=args.area_budget,
            power_budget_w=args.power_budget,
        ),
        num_devices=args.devices,
    )
    result = AdorSearch(request).run()
    for line in result.log:
        print(line)
    chip = result.best.chip
    print(f"\nproposed: {chip}")
    print(f"  area {result.best.area_mm2:.0f} mm^2, "
          f"TDP {PowerModel().tdp_w(chip):.0f} W, "
          f"requirements {'met' if result.requirements_met else 'NOT met'}")
    if result.notes:
        print(f"  {result.notes}")
    return 0 if result.requirements_met else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    chip = CHIP_PRESETS[args.chip]()
    device = device_model_for(chip)
    rng = np.random.default_rng(args.seed)
    requests = PoissonRequestGenerator(
        ULTRACHAT_LIKE, args.rate, rng).generate(args.requests)
    engine = ServingEngine(device, model,
                           SchedulerLimits(max_batch=args.max_batch),
                           num_devices=args.devices)
    result = engine.run(requests)
    if not result.finished:
        print("no requests finished — the endpoint cannot sustain this load")
        return 1
    qos = compute_qos(result.finished, result.total_time_s)
    print(f"simulated {len(result.finished)} requests at {args.rate} req/s "
          f"on {chip.name}:")
    print(f"  TTFT mean/p95 : {qos.ttft_mean_s * 1e3:.1f} / "
          f"{qos.ttft_p95_s * 1e3:.1f} ms")
    print(f"  TBT  mean/p95 : {qos.tbt_mean_s * 1e3:.2f} / "
          f"{qos.tbt_p95_s * 1e3:.2f} ms")
    print(f"  E2E  mean     : {qos.e2e_mean_s:.2f} s")
    print(f"  throughput    : {qos.tokens_per_s:,.0f} tokens/s")
    util = utilization_report(result, model, chip, args.devices)
    for key, value in util.as_dict().items():
        print(f"  {key}: {value:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ador",
        description="ADOR design-exploration framework (ISPASS 2025 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo")

    evaluate = sub.add_parser("evaluate", help="stage latencies on a chip")
    evaluate.add_argument("--model", default="llama3-8b")
    evaluate.add_argument("--chip", choices=sorted(CHIP_PRESETS),
                          default="ador")
    evaluate.add_argument("--seq-len", type=int, default=1024)
    evaluate.add_argument("--devices", type=int, default=1)
    evaluate.add_argument("--batches", type=int, nargs="+",
                          default=[1, 16, 64, 128])

    search = sub.add_parser("search", help="run the architecture search")
    search.add_argument("--models", nargs="+", default=["llama3-8b"])
    search.add_argument("--ttft-ms", type=float, default=50.0)
    search.add_argument("--tbt-ms", type=float, default=30.0)
    search.add_argument("--batch", type=int, default=128)
    search.add_argument("--seq-len", type=int, default=1024)
    search.add_argument("--area-budget", type=float, default=550.0)
    search.add_argument("--power-budget", type=float, default=500.0)
    search.add_argument("--devices", type=int, default=1)

    serve = sub.add_parser("serve", help="simulate a serving endpoint")
    serve.add_argument("--model", default="llama3-8b")
    serve.add_argument("--chip", choices=sorted(CHIP_PRESETS),
                       default="ador")
    serve.add_argument("--rate", type=float, default=15.0)
    serve.add_argument("--requests", type=int, default=200)
    serve.add_argument("--max-batch", type=int, default=256)
    serve.add_argument("--devices", type=int, default=1)
    serve.add_argument("--seed", type=int, default=7)
    return parser


def main(argv: list | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "models": _cmd_models,
        "evaluate": _cmd_evaluate,
        "search": _cmd_search,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
