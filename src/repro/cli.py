"""Command-line interface: ``python -m repro`` or ``repro-ador``.

Five subcommands cover the library's main entry points:

* ``models``   — list the model zoo with key architecture facts;
* ``evaluate`` — prefill/decode latency of a model on a chip preset;
* ``search``   — run the ADOR architecture search (Fig. 9);
* ``serve``    — simulate a serving endpoint and report QoS (Fig. 14b);
* ``capacity`` — search the max sustainable rate under an SLO (Fig. 16);
* ``run``      — execute a declarative ``experiment.json`` end-to-end;
* ``lint``     — run the AST-based determinism & contract checker.

Chips resolve by name through :mod:`repro.hardware.registry`, so presets
registered by third-party code are addressable here without changes.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import warnings

from repro.analysis.tables import format_table
from repro.api import (
    AutoscaleSpec,
    CapacitySpec,
    DeploymentSpec,
    EndpointOverloaded,
    FaultSpec,
    FleetSpec,
    PrefixCacheSpec,
    ReplicaGroupSpec,
    WorkloadSpec,
    find_capacity,
    load_experiment,
    run_experiment,
    simulate,
)
from repro.cluster.autoscaler import list_autoscalers
from repro.cluster.router import list_routers
from repro.serving.prefix_cache import list_eviction_policies
from repro.core.requirements import (
    SearchRequest,
    ServiceLevelObjectives,
    VendorConstraints,
)
from repro.core.scheduling import device_model_for
from repro.core.search import AdorSearch
from repro.hardware.area import AreaModel
from repro.hardware.power import PowerModel
from repro.hardware.registry import CHIP_REGISTRY, get_chip, list_chips
from repro.models.zoo import get_model, list_models
from repro.quality.lint import (
    exit_code,
    format_json,
    format_text,
    lint_paths,
)
from repro.quality.rules import all_rules, rule_tokens
from repro.serving.capacity import EndpointUnservable


def __getattr__(name: str):
    # Deprecation shim: the old hard-coded preset table is now the chip
    # registry; keep ``from repro.cli import CHIP_PRESETS`` importable.
    if name == "CHIP_PRESETS":
        warnings.warn(
            "repro.cli.CHIP_PRESETS is deprecated; use "
            "repro.hardware.registry.get_chip/list_chips instead",
            DeprecationWarning, stacklevel=2)
        return {chip: CHIP_REGISTRY.get(chip) for chip in list_chips()}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _cmd_models(_args: argparse.Namespace) -> int:
    rows = []
    for name in list_models():
        model = get_model(name)
        rows.append([
            name,
            f"{model.num_parameters / 1e9:.2f}B",
            model.num_layers,
            model.hidden_size,
            f"{model.num_heads}/{model.num_kv_heads}",
            model.attention_kind.value,
        ])
    print(format_table(
        ["model", "params", "layers", "hidden", "q/kv heads", "attention"],
        rows, title="Model zoo"))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    chip = get_chip(args.chip)
    device = device_model_for(chip)
    area = AreaModel().die_area_mm2(chip)
    power = PowerModel().tdp_w(chip)
    print(f"{chip}")
    print(f"die area {area:.0f} mm^2, TDP estimate {power:.0f} W\n")
    rows = []
    for batch in args.batches:
        prefill = device.prefill_time(model, 1, args.seq_len, args.devices)
        decode = device.decode_step_time(model, batch, args.seq_len,
                                         args.devices)
        rows.append([batch, prefill.seconds * 1e3, decode.seconds * 1e3,
                     1.0 / decode.seconds])
    print(format_table(
        ["batch", "TTFT (ms)", "decode step (ms)", "TBT (tok/s)"],
        rows, title=f"{model.name} on {chip.name}, seq {args.seq_len}, "
                    f"{args.devices} device(s)"))
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    request = SearchRequest(
        model_names=tuple(args.models),
        slos=ServiceLevelObjectives(
            ttft_slo_s=args.ttft_ms / 1e3,
            tbt_slo_s=args.tbt_ms / 1e3,
            batch_size=args.batch,
            seq_len=args.seq_len,
        ),
        vendor=VendorConstraints(
            area_budget_mm2=args.area_budget,
            power_budget_w=args.power_budget,
        ),
        num_devices=args.devices,
    )
    result = AdorSearch(request).run()
    for line in result.log:
        print(line)
    chip = result.best.chip
    print(f"\nproposed: {chip}")
    print(f"  area {result.best.area_mm2:.0f} mm^2, "
          f"TDP {PowerModel().tdp_w(chip):.0f} W, "
          f"requirements {'met' if result.requirements_met else 'NOT met'}")
    if result.notes:
        print(f"  {result.notes}")
    return 0 if result.requirements_met else 1


_AUTOSCALE_KNOBS = (
    ("autoscale_min", "min_replicas"),
    ("autoscale_max", "max_replicas"),
    ("autoscale_interval", "decision_interval_s"),
    ("autoscale_provision_s", "provision_latency_s"),
    ("autoscale_warm_pool", "warm_pool_size"),
    ("autoscale_warm_provision_s", "warm_provision_s"),
)


def _autoscale_spec(args: argparse.Namespace) -> AutoscaleSpec | None:
    """Build an AutoscaleSpec from ``--autoscale*`` flags.

    A knob without ``--autoscale`` is a config mistake, not a default
    to silently ignore — fail loudly, same contract as the JSON specs.
    """
    overrides = {field: getattr(args, arg)
                 for arg, field in _AUTOSCALE_KNOBS
                 if getattr(args, arg) is not None}
    if args.autoscale is None:
        if overrides:
            flags = ", ".join("--" + arg.replace("_", "-")
                              for arg, _ in _AUTOSCALE_KNOBS
                              if getattr(args, arg) is not None)
            raise ValueError(
                f"{flags} require(s) --autoscale <policy>")
        return None
    return AutoscaleSpec(policy=args.autoscale, **overrides)


_PREFIX_CACHE_KNOBS = (
    ("prefix_cache_fraction", "reclaimable_fraction"),
    ("prefix_cache_eviction", "eviction"),
    ("prefix_cache_block_tokens", "block_tokens"),
)


def _prefix_cache_spec(args: argparse.Namespace) -> PrefixCacheSpec | None:
    """Build a PrefixCacheSpec from ``--prefix-cache*`` flags.

    A knob without ``--prefix-cache`` is a config mistake, not a default
    to silently ignore — fail loudly, same contract as the JSON specs.
    """
    overrides = {field: getattr(args, arg)
                 for arg, field in _PREFIX_CACHE_KNOBS
                 if getattr(args, arg) is not None}
    if not args.prefix_cache:
        if overrides:
            flags = ", ".join("--" + arg.replace("_", "-")
                              for arg, _ in _PREFIX_CACHE_KNOBS
                              if getattr(args, arg) is not None)
            raise ValueError(f"{flags} require(s) --prefix-cache")
        return None
    return PrefixCacheSpec(**overrides)


_FAULT_KNOBS = (
    ("fault_seed", "seed"),
    ("fault_crash_mtbf_s", "crash_mtbf_s"),
    ("fault_restart_delay_s", "restart_delay_s"),
    ("fault_slowdown_mtbf_s", "slowdown_mtbf_s"),
    ("fault_slowdown_factor", "slowdown_factor"),
    ("fault_stall_mtbf_s", "stall_mtbf_s"),
    ("fault_max_retries", "max_retries"),
    ("fault_timeout_s", "request_timeout_s"),
)


def _faults_spec(args: argparse.Namespace) -> FaultSpec | None:
    """Build a FaultSpec from ``--fault*`` flags.

    A knob without ``--faults`` is a config mistake, not a default
    to silently ignore — fail loudly, same contract as the JSON specs.
    """
    overrides = {field: getattr(args, arg)
                 for arg, field in _FAULT_KNOBS
                 if getattr(args, arg) is not None}
    if not args.faults:
        if overrides:
            flags = ", ".join("--" + arg.replace("_", "-")
                              for arg, _ in _FAULT_KNOBS
                              if getattr(args, arg) is not None)
            raise ValueError(f"{flags} require(s) --faults")
        return None
    return FaultSpec(**overrides)


def _fleet_spec(args: argparse.Namespace) -> FleetSpec | None:
    """Build a FleetSpec from repeatable ``--group CHIP:COUNT`` flags.

    ``--group`` makes the fleet explicit, so the flags that size or
    type a homogeneous fleet (``--replicas``, ``--chip``) become
    competing instructions — fail loudly, same contract as the JSON
    specs.
    """
    if not args.group:
        return None
    if args.replicas != 1:
        raise ValueError(
            "--group and --replicas are two competing ways to size "
            "the fleet; size each group via its COUNT and drop "
            "--replicas")
    if args.chip is not None:
        raise ValueError(
            "--group names each group's chip; drop --chip (it only "
            "types the homogeneous single-chip fleet)")
    groups = []
    for value in args.group:
        chip, sep, raw = value.partition(":")
        if not sep or not chip:
            raise ValueError(
                f"--group {value!r}: expected CHIP:COUNT "
                f"(e.g. --group ador:2 --group a100:1)")
        if chip not in list_chips():
            raise ValueError(
                f"--group {value!r}: unknown chip {chip!r} "
                f"(choices: {', '.join(list_chips())})")
        try:
            count = int(raw)
        except ValueError:
            raise ValueError(
                f"--group {value!r}: COUNT must be an integer, "
                f"got {raw!r}") from None
        groups.append(ReplicaGroupSpec(
            chip=chip,
            model=args.model,
            count=count,
            num_devices=args.devices,
            max_batch=args.max_batch,
            kv_budget_bytes=float("inf") if args.kv_budget_gb is None
            else args.kv_budget_gb * float(1 << 30),
        ))
    return FleetSpec(groups=tuple(groups))


def _router_name(args: argparse.Namespace) -> str:
    """The router name, with ``--slo-short-tokens`` folded in.

    The threshold routers take the short/long prompt boundary through
    the parametric ``"name:N"`` form (see
    :func:`repro.cluster.router.make_router`), so the flag rewrites
    the name instead of adding a parallel config channel.  On any
    other router the flag would silently do nothing — fail loudly.
    """
    if args.slo_short_tokens is None:
        return args.router
    if args.router not in ("slo-aware", "hetero-aware"):
        raise ValueError(
            "--slo-short-tokens tunes the threshold routers; pair it "
            "with --router slo-aware or --router hetero-aware")
    return f"{args.router}:{args.slo_short_tokens}"


def _progress_reporter(args: argparse.Namespace, label: str):
    """The ``--progress`` heartbeat, or ``None`` when the flag is off.

    Lives behind a lazy import: the reporter owns the CLI's only
    wall-clock read outside benchmarking, and constructing it only on
    demand keeps plain runs byte-identical in behavior and output.
    """
    if args.progress is None:
        return None
    from repro.perf.scale import ProgressReporter

    return ProgressReporter(interval_s=args.progress, label=label)


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        deployment = DeploymentSpec(
            chip=args.chip if args.chip is not None else "ador",
            model=args.model,
            num_devices=args.devices,
            max_batch=args.max_batch,
            batching=args.policy,
            replicas=args.replicas,
            router=_router_name(args),
            fleet=_fleet_spec(args),
            autoscale=_autoscale_spec(args),
            kv_budget_bytes=float("inf") if args.kv_budget_gb is None
            else args.kv_budget_gb * float(1 << 30),
            prefix_cache=_prefix_cache_spec(args),
            faults=_faults_spec(args),
        )
    except ValueError as exc:
        print(f"error: {_exc_message(exc)}", file=sys.stderr)
        return 2
    workload = WorkloadSpec(
        trace=args.trace,
        rate_per_s=args.rate,
        num_requests=args.requests,
        seed=args.seed,
        arrival=args.arrival,
        streaming=not args.no_stream,
    )
    try:
        report = simulate(deployment, workload,
                          sim_cache=not args.no_sim_cache,
                          context_bucket=args.context_bucket,
                          shards=args.shards,
                          progress=_progress_reporter(args, "serve"))
    except EndpointOverloaded as exc:
        print(f"no requests finished — {exc}")
        return 1
    except MemoryError as exc:
        # an undersized --kv-budget-gb pool that cannot hold even one
        # request's context — an actionable config error, not a crash
        print(f"error: {_exc_message(exc)}", file=sys.stderr)
        return 2
    except (KeyError, ValueError) as exc:
        print(f"error: {_exc_message(exc)}", file=sys.stderr)
        return 2
    print(report.summary())
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    try:
        deployment = DeploymentSpec(
            chip=args.chip,
            model=args.model,
            num_devices=args.devices,
        )
        workload = WorkloadSpec(
            trace=args.trace,
            num_requests=args.requests,
            seed=args.seed,
        )
        capacity = CapacitySpec(
            slo_tbt_s=args.slo_tbt_ms / 1e3,
            slo_ttft_s=None if args.slo_ttft_ms is None
            else args.slo_ttft_ms / 1e3,
            percentile=args.percentile,
            rate_low=args.rate_low,
            rate_high=args.rate_high,
            iterations=args.iterations,
            early_abort=not args.no_early_abort,
            reuse_arrivals=not args.no_reuse_arrivals,
            parallel_probes=args.parallel_probes,
        )
        report = find_capacity(deployment, workload, capacity,
                               sim_cache=not args.no_sim_cache)
    except EndpointUnservable as exc:
        print(f"no capacity found — {_exc_message(exc)}")
        return 1
    except (KeyError, ValueError) as exc:
        print(f"error: {_exc_message(exc)}", file=sys.stderr)
        return 2
    print(report.summary())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        experiment = load_experiment(args.experiment)
        overrides = {}
        # command-line overrides for quick cluster what-ifs without
        # editing the experiment file
        if args.replicas is not None:
            overrides["replicas"] = args.replicas
        if args.router is not None:
            overrides["router"] = args.router
        if args.no_autoscale and args.autoscale is not None:
            # same loud-conflict contract as the serve-side knobs: a
            # silently ignored policy would fake a fixed-fleet result
            # as an autoscaled one (or vice versa)
            raise ValueError(
                "--autoscale and --no-autoscale are mutually exclusive")
        if args.no_autoscale:
            overrides["autoscale"] = None
        elif args.autoscale is not None:
            # switch (or turn on) the policy, keeping the experiment's
            # other scaling knobs when it already autoscales
            base = experiment.deployment.autoscale
            overrides["autoscale"] = AutoscaleSpec(policy=args.autoscale) \
                if base is None \
                else dataclasses.replace(base, policy=args.autoscale)
        if args.no_prefix_cache and args.prefix_cache:
            raise ValueError(
                "--prefix-cache and --no-prefix-cache are mutually "
                "exclusive")
        if args.no_prefix_cache:
            overrides["prefix_cache"] = None
        elif args.prefix_cache:
            # turn reuse on, keeping the experiment's cache knobs when
            # it already carries a (possibly disabled) spec
            base = experiment.deployment.prefix_cache
            overrides["prefix_cache"] = PrefixCacheSpec() \
                if base is None \
                else dataclasses.replace(base, enabled=True)
        if args.no_faults and args.faults:
            raise ValueError(
                "--faults and --no-faults are mutually exclusive")
        if args.no_faults:
            overrides["faults"] = None
        elif args.faults:
            # turn injection on, keeping the experiment's fault knobs
            # when it already carries a (possibly disabled) spec
            base = experiment.deployment.faults
            overrides["faults"] = FaultSpec() \
                if base is None \
                else dataclasses.replace(base, enabled=True)
        if overrides:
            experiment = dataclasses.replace(
                experiment,
                deployment=dataclasses.replace(experiment.deployment,
                                               **overrides))
        if args.no_stream:
            experiment = dataclasses.replace(
                experiment,
                workload=dataclasses.replace(experiment.workload,
                                             streaming=False))
        report = run_experiment(experiment,
                                sim_cache=not args.no_sim_cache,
                                context_bucket=args.context_bucket,
                                shards=args.shards,
                                progress=_progress_reporter(args, "run"))
    except EndpointOverloaded as exc:
        print(f"no requests finished — {exc}")
        return 1
    except EndpointUnservable as exc:
        # a capacity experiment whose endpoint cannot serve even the
        # minimum probed rate — same one-liner the capacity command
        # prints, not a traceback (other RuntimeErrors, e.g. a broken
        # worker pool, must still surface loudly)
        print(f"no capacity found — {_exc_message(exc)}")
        return 1
    except MemoryError as exc:
        # kv_budget_bytes too small for a single request's context —
        # same one-line treatment as serve, not a traceback
        print(f"error: {_exc_message(exc)}", file=sys.stderr)
        return 2
    except (KeyError, ValueError, OSError, TypeError) as exc:
        # bad chip/trace/policy name, malformed spec, unreadable file —
        # a one-line CLI error, not a traceback
        print(f"error: {_exc_message(exc)}", file=sys.stderr)
        return 2
    print(report.summary())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    try:
        violations = lint_paths(args.paths, rules=args.rule or None)
    except (FileNotFoundError, KeyError) as exc:
        print(f"error: {_exc_message(exc)}", file=sys.stderr)
        return 2
    print(format_json(violations) if args.format == "json"
          else format_text(violations))
    return exit_code(violations)


def _lint_epilog() -> str:
    """The rule catalog, generated from the live rule registry so the
    help text can't drift from what actually runs."""
    lines = ["rules:"]
    for cls in all_rules():
        lines.append(f"  {cls.id}  {cls.name}")
        lines.append(f"      {cls.rationale}")
        if cls.include:
            lines.append(f"      scope: paths matching "
                         f"{', '.join(cls.include)}")
        if cls.exclude:
            lines.append(f"      exempt paths: {', '.join(cls.exclude)}")
    lines += [
        "",
        "suppression:",
        "  # repro: allow[<rule>] <one-line justification>",
        "      drops that rule's violation on the same line; the",
        "      justification is mandatory and an unknown rule id is",
        "      itself a violation (R0).",
        "",
        "exit status is the violation count (capped at 100).",
    ]
    return "\n".join(lines)


def _exc_message(exc: BaseException) -> str:
    # str(KeyError) wraps the message in quotes; unwrap for clean output
    return exc.args[0] if exc.args and isinstance(exc.args[0], str) \
        else str(exc)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ador",
        description="ADOR design-exploration framework (ISPASS 2025 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo")

    evaluate = sub.add_parser("evaluate", help="stage latencies on a chip")
    evaluate.add_argument("--model", default="llama3-8b")
    evaluate.add_argument("--chip", choices=list_chips(), default="ador")
    evaluate.add_argument("--seq-len", type=int, default=1024)
    evaluate.add_argument("--devices", type=int, default=1)
    evaluate.add_argument("--batches", type=int, nargs="+",
                          default=[1, 16, 64, 128])

    search = sub.add_parser("search", help="run the architecture search")
    search.add_argument("--models", nargs="+", default=["llama3-8b"])
    search.add_argument("--ttft-ms", type=float, default=50.0)
    search.add_argument("--tbt-ms", type=float, default=30.0)
    search.add_argument("--batch", type=int, default=128)
    search.add_argument("--seq-len", type=int, default=1024)
    search.add_argument("--area-budget", type=float, default=550.0)
    search.add_argument("--power-budget", type=float, default=500.0)
    search.add_argument("--devices", type=int, default=1)

    serve = sub.add_parser("serve", help="simulate a serving endpoint")
    serve.add_argument("--model", default="llama3-8b")
    serve.add_argument("--chip", choices=list_chips(), default=None,
                       help="chip preset of a homogeneous fleet "
                            "(default ador; mutually exclusive with "
                            "--group)")
    serve.add_argument("--trace", default="ultrachat",
                       help="workload trace name (e.g. ultrachat, "
                            "fixed-512x128)")
    serve.add_argument("--policy", default="continuous",
                       help="batching policy name")
    serve.add_argument("--rate", type=float, default=15.0)
    serve.add_argument("--requests", type=int, default=200)
    serve.add_argument("--max-batch", type=int, default=256)
    serve.add_argument("--devices", type=int, default=1)
    serve.add_argument("--seed", type=int, default=7,
                       help="RNG seed for arrivals and token lengths "
                            "(reruns with the same seed are bit-identical)")
    serve.add_argument("--replicas", type=int, default=1,
                       help="number of replica endpoints behind the "
                            "router (>1 simulates a cluster)")
    serve.add_argument("--router", default="round-robin",
                       choices=list_routers(),
                       help="router policy for multi-replica serving")
    serve.add_argument("--group", action="append", default=None,
                       metavar="CHIP:COUNT",
                       help="replica group CHIP:COUNT (repeatable); "
                            "builds an explicit, possibly "
                            "heterogeneous fleet — mutually exclusive "
                            "with --replicas and --chip (pair with "
                            "--router hetero-aware to route by "
                            "capability)")
    serve.add_argument("--slo-short-tokens", type=int, default=None,
                       help="short/long prompt boundary in input "
                            "tokens for the slo-aware / hetero-aware "
                            "routers (default 256); rewrites the "
                            "router name to its parametric "
                            "'name:N' form")
    serve.add_argument("--autoscale", default=None,
                       choices=list_autoscalers(),
                       help="autoscaler policy; --replicas becomes the "
                            "initial fleet size and the fleet resizes "
                            "within [--autoscale-min, --autoscale-max]")
    serve.add_argument("--autoscale-min", type=int, default=None,
                       help="smallest fleet the autoscaler may shrink to "
                            "(default 1)")
    serve.add_argument("--autoscale-max", type=int, default=None,
                       help="largest fleet the autoscaler may grow to "
                            "(default 8)")
    serve.add_argument("--autoscale-interval", type=float, default=None,
                       help="seconds of simulated time between scaling "
                            "decisions (default 2)")
    serve.add_argument("--autoscale-provision-s", type=float, default=None,
                       help="cold provision latency a scale-up pays "
                            "before the replica takes traffic "
                            "(default 10)")
    serve.add_argument("--autoscale-warm-pool", type=int, default=None,
                       help="warm-pool slots; each cuts one launch to "
                            "the warm latency, retirements refill the "
                            "pool (default 0)")
    serve.add_argument("--autoscale-warm-provision-s", type=float,
                       default=None,
                       help="provision latency of a warm-pool launch "
                            "(default 1)")
    serve.add_argument("--arrival", default="poisson",
                       choices=["poisson", "sessions"],
                       help="arrival process: independent Poisson "
                            "requests, or multi-turn chat sessions "
                            "whose turns share a growing prefix")
    serve.add_argument("--kv-budget-gb", type=float, default=None,
                       help="KV-cache memory budget in GiB (default: "
                            "unbounded)")
    serve.add_argument("--prefix-cache", action="store_true",
                       help="keep finished session turns' KV blocks "
                            "resident so the next turn re-prefills only "
                            "its fresh question (pairs with "
                            "--arrival sessions)")
    serve.add_argument("--prefix-cache-fraction", type=float, default=None,
                       help="fraction of the block pool cached prefixes "
                            "may occupy (default 0.5)")
    serve.add_argument("--prefix-cache-eviction", default=None,
                       choices=list_eviction_policies(),
                       help="eviction policy over cached sessions "
                            "(default lru)")
    serve.add_argument("--prefix-cache-block-tokens", type=int,
                       default=None,
                       help="tokens per KV block; hits are block-"
                            "aligned (default 16)")
    serve.add_argument("--faults", action="store_true",
                       help="inject deterministic seeded faults (replica "
                            "crashes, slowdowns, stalls) and report "
                            "goodput next to raw throughput")
    serve.add_argument("--fault-seed", type=int, default=None,
                       help="fault-schedule RNG seed, independent of the "
                            "workload seed (default 0)")
    serve.add_argument("--fault-crash-mtbf-s", type=float, default=None,
                       help="mean seconds between crashes per replica "
                            "(exponential; default: no crashes)")
    serve.add_argument("--fault-restart-delay-s", type=float, default=None,
                       help="seconds a crashed fixed-fleet replica stays "
                            "down before restarting (default 10)")
    serve.add_argument("--fault-slowdown-mtbf-s", type=float, default=None,
                       help="mean seconds between slowdown windows per "
                            "replica (default: none)")
    serve.add_argument("--fault-slowdown-factor", type=float, default=None,
                       help="device-step multiplier inside a slowdown "
                            "window (default 2)")
    serve.add_argument("--fault-stall-mtbf-s", type=float, default=None,
                       help="mean seconds between transient stalls per "
                            "replica (default: none)")
    serve.add_argument("--fault-max-retries", type=int, default=None,
                       help="crash requeues per request before it is "
                            "recorded failed (default 2)")
    serve.add_argument("--fault-timeout-s", type=float, default=None,
                       help="per-request deadline from arrival; a retry "
                            "past it fails the request (default: none)")
    serve.add_argument("--no-sim-cache", action="store_true",
                       help="disable the simulator fast path (device-"
                            "model memoization + decode fast-forward); "
                            "results are bit-identical either way, the "
                            "reference loop is just slower")
    serve.add_argument("--context-bucket", type=int, default=1,
                       help="decode-context quantization bucket for the "
                            "sim cache; 1 (default) is exact, larger "
                            "buckets trade a small latency error for "
                            "faster sweeps")
    serve.add_argument("--no-stream", action="store_true",
                       help="materialize the full request list up front "
                            "instead of streaming arrivals lazily "
                            "(bit-identical results; streaming keeps "
                            "peak memory constant in request count)")
    serve.add_argument("--shards", type=int, default=1,
                       help="partition a fixed multi-replica fleet over "
                            "N worker processes (modeled per-shard "
                            "routing; 1 = the exact engine, default)")
    serve.add_argument("--progress", nargs="?", const=5.0, type=float,
                       default=None, metavar="SECS",
                       help="stderr heartbeat (simulated time + "
                            "requests done) every SECS wall-clock "
                            "seconds (default 5 when given bare)")

    capacity = sub.add_parser(
        "capacity",
        help="search the max sustainable request rate under an SLO")
    capacity.add_argument("--model", default="llama3-8b")
    capacity.add_argument("--chip", choices=list_chips(), default="ador")
    capacity.add_argument("--devices", type=int, default=1)
    capacity.add_argument("--trace", default="ultrachat",
                          help="workload trace name (e.g. ultrachat, "
                               "fixed-512x128)")
    capacity.add_argument("--requests", type=int, default=200,
                          help="requests simulated per probed rate")
    capacity.add_argument("--seed", type=int, default=7)
    capacity.add_argument("--slo-tbt-ms", type=float, default=50.0,
                          help="TBT SLO in milliseconds")
    capacity.add_argument("--slo-ttft-ms", type=float, default=None,
                          help="optional TTFT SLO in milliseconds")
    capacity.add_argument("--percentile", default="p95",
                          choices=["mean", "p50", "p95", "p99"],
                          help="QoS percentile the SLO applies to")
    capacity.add_argument("--rate-low", type=float, default=0.25)
    capacity.add_argument("--rate-high", type=float, default=256.0)
    capacity.add_argument("--iterations", type=int, default=9,
                          help="bisection steps (rate resolution)")
    capacity.add_argument("--parallel-probes", type=int, default=1,
                          help="speculative probes per bisection round "
                               "(2-3; worker processes, identical found "
                               "rate)")
    capacity.add_argument("--no-early-abort", action="store_true",
                          help="always simulate saturated probes to the "
                               "full horizon (identical found rate, "
                               "slower)")
    capacity.add_argument("--no-reuse-arrivals", action="store_true",
                          help="regenerate the workload per probed rate "
                               "instead of rescaling one template "
                               "(bit-identical either way, slower)")
    capacity.add_argument("--no-sim-cache", action="store_true",
                          help="disable device-model memoization "
                               "(bit-identical results, reference speed)")

    run = sub.add_parser(
        "run", help="execute a declarative experiment.json file")
    run.add_argument("experiment", help="path to an experiment JSON file")
    run.add_argument("--replicas", type=int, default=None,
                     help="override the experiment's replica count")
    run.add_argument("--router", default=None, choices=list_routers(),
                     help="override the experiment's router policy")
    run.add_argument("--autoscale", default=None,
                     choices=list_autoscalers(),
                     help="override (or enable) the experiment's "
                          "autoscaler policy, keeping its other scaling "
                          "knobs")
    run.add_argument("--no-autoscale", action="store_true",
                     help="strip the experiment's autoscale section and "
                          "run the fixed fleet")
    run.add_argument("--prefix-cache", action="store_true",
                     help="enable prefix/KV reuse, keeping the "
                          "experiment's cache knobs when it carries a "
                          "(possibly disabled) prefix_cache section")
    run.add_argument("--no-prefix-cache", action="store_true",
                     help="strip the experiment's prefix_cache section "
                          "and run the cold path")
    run.add_argument("--faults", action="store_true",
                     help="enable fault injection, keeping the "
                          "experiment's fault knobs when it carries a "
                          "(possibly disabled) faults section")
    run.add_argument("--no-faults", action="store_true",
                     help="strip the experiment's faults section and "
                          "run the fault-free engine")
    run.add_argument("--no-sim-cache", action="store_true",
                     help="disable the simulator fast path (bit-identical "
                          "results, reference speed)")
    run.add_argument("--context-bucket", type=int, default=1,
                     help="decode-context quantization bucket for the sim "
                          "cache; 1 (default) is exact")
    run.add_argument("--no-stream", action="store_true",
                     help="materialize the request list up front instead "
                          "of streaming arrivals (bit-identical results)")
    run.add_argument("--shards", type=int, default=1,
                     help="partition a fixed multi-replica fleet over N "
                          "worker processes (modeled per-shard routing; "
                          "1 = the exact engine, default)")
    run.add_argument("--progress", nargs="?", const=5.0, type=float,
                     default=None, metavar="SECS",
                     help="stderr heartbeat (simulated time + requests "
                          "done) every SECS wall-clock seconds "
                          "(default 5 when given bare)")

    lint = sub.add_parser(
        "lint",
        help="run the AST-based determinism & contract checker",
        description="Statically check the reproducibility contracts the "
                    "repo's headline claims rest on: no wall-clock or "
                    "unseeded randomness in the simulator core, frozen "
                    "round-trippable specs, no mutable defaults, no "
                    "float ==, position-not-id routing.",
        epilog=_lint_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directory trees to lint "
                           "(default: src/repro)")
    lint.add_argument("--rule", action="append", default=None,
                      choices=rule_tokens(), metavar="RULE",
                      help="check only this rule (repeatable; short id "
                           "like R1 or name like determinism)")
    lint.add_argument("--format", choices=["text", "json"],
                      default="text",
                      help="report format; json is the CI artifact "
                           "shape")
    return parser


def main(argv: list | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "models": _cmd_models,
        "evaluate": _cmd_evaluate,
        "search": _cmd_search,
        "serve": _cmd_serve,
        "capacity": _cmd_capacity,
        "run": _cmd_run,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
