"""Instruction set of the ADOR simulator.

The compiler emits a linear instruction stream per device; the serving
simulator's task manager walks it to attribute time to compute units.
Instructions are deliberately coarse (one per operator, not per tile) —
the timing models already integrate over tiles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Opcode(enum.Enum):
    """Executable operation classes."""

    LOAD = "load"          # DMA weights/KV from DRAM
    GEMM = "gemm"          # dense matrix multiply
    GEMV = "gemv"          # weight-streamed matrix-vector(s)
    ATTN = "attn"          # fused score+softmax+context
    VOP = "vop"            # vector op (norm/activation/residual)
    SYNC = "sync"          # on-chip all-gather between cores
    COMM = "comm"          # device-to-device collective
    BARRIER = "barrier"    # layer boundary


class TargetUnit(enum.Enum):
    """Compute unit an instruction is scheduled on (Fig. 8 mapping)."""

    SYSTOLIC_ARRAY = "sa"
    MAC_TREE = "mt"
    VECTOR_UNIT = "vu"
    DMA = "dma"
    NOC = "noc"
    P2P = "p2p"


@dataclass(frozen=True)
class Instruction:
    """One schedulable instruction.

    ``flops`` and ``bytes_moved`` carry the work quantities the simulator
    charges; ``operand`` names the tensor for debugging/reporting.
    """

    opcode: Opcode
    target: TargetUnit
    operand: str
    flops: float = 0.0
    bytes_moved: float = 0.0
    layer: int = -1
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0:
            raise ValueError("work quantities must be non-negative")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{self.opcode.value.upper():7s}", f"@{self.target.value:3s}",
                 self.operand]
        if self.flops:
            parts.append(f"{self.flops / 1e9:.2f} GFLOP")
        if self.bytes_moved:
            parts.append(f"{self.bytes_moved / 1e6:.2f} MB")
        return " ".join(parts)


def stream_summary(instructions: list[Instruction]) -> dict[str, float]:
    """Aggregate work per target unit — used in reports and tests."""
    summary: dict[str, float] = {}
    for inst in instructions:
        key = f"{inst.target.value}.flops"
        summary[key] = summary.get(key, 0.0) + inst.flops
        key = f"{inst.target.value}.bytes"
        summary[key] = summary.get(key, 0.0) + inst.bytes_moved
    return summary
