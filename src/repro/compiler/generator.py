"""Instruction generator: operator graph -> per-device instruction stream.

Implements the Fig. 14(a) pipeline: the model mapper picks a parallelism
plan, then every operator lowers to instructions targeted at the compute
unit the Fig. 8 schedule assigns it — GEMMs to the systolic array in
prefill and to the MAC tree (weight stream) in decode, attention to the
MAC tree in decode, vector work to the vector units, with SYNC/COMM
instructions at dataflow boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.binary import ModelBinary, build_model_binary
from repro.compiler.instructions import Instruction, Opcode, TargetUnit
from repro.hardware.chip import ChipSpec
from repro.models.config import ModelConfig
from repro.models.layers import (
    Operator,
    OperatorKind,
    Phase,
    decoder_layer_operators,
    lm_head_operator,
)
from repro.parallel.mapper import ModelParallelMapper


@dataclass(frozen=True)
class CompiledProgram:
    """Everything the simulator needs to run one stage of one model."""

    model_name: str
    phase: Phase
    num_devices: int
    instructions: tuple
    binary: ModelBinary

    @property
    def instruction_count(self) -> int:
        return len(self.instructions)

    def per_unit_flops(self) -> dict[TargetUnit, float]:
        out: dict[TargetUnit, float] = {}
        for inst in self.instructions:
            out[inst.target] = out.get(inst.target, 0.0) + inst.flops
        return out


class InstructionGenerator:
    """Lowers operator graphs for one chip."""

    def __init__(self, chip: ChipSpec) -> None:
        self.chip = chip

    def _lower_operator(self, op: Operator, phase: Phase, layer: int,
                        devices: int) -> list[Instruction]:
        share = 1.0 / devices
        shape = {"m": op.m, "k": op.k, "n": op.n, "batch": op.batch,
                 "heads": op.heads, "group": op.group_size,
                 "context": op.context_len}
        if op.kind == OperatorKind.GEMM:
            if phase == Phase.PREFILL:
                # weights prefetched, GEMM on the systolic array
                return [
                    Instruction(Opcode.LOAD, TargetUnit.DMA, f"{op.name}.w",
                                bytes_moved=op.weight_bytes * share,
                                layer=layer, meta=shape),
                    Instruction(Opcode.GEMM, TargetUnit.SYSTOLIC_ARRAY, op.name,
                                flops=op.flops * share, layer=layer,
                                meta=shape),
                ]
            # decode: the MAC tree consumes the weight stream directly
            return [
                Instruction(Opcode.GEMV, TargetUnit.MAC_TREE, op.name,
                            flops=op.flops * share,
                            bytes_moved=op.weight_bytes * share, layer=layer,
                            meta=shape),
            ]
        if op.kind == OperatorKind.ATTENTION:
            if phase == Phase.PREFILL:
                # current-chunk KV lives in global memory; SA computes
                return [
                    Instruction(Opcode.ATTN, TargetUnit.SYSTOLIC_ARRAY,
                                "attention", flops=op.flops * share,
                                layer=layer, meta=shape),
                    Instruction(Opcode.VOP, TargetUnit.VECTOR_UNIT, "softmax",
                                flops=op.m * op.context_len * 4.0 * share,
                                layer=layer, meta=shape),
                ]
            return [
                Instruction(Opcode.ATTN, TargetUnit.MAC_TREE, "attention",
                            flops=op.flops * share,
                            bytes_moved=op.io_bytes * share, layer=layer,
                            meta=shape),
                Instruction(Opcode.VOP, TargetUnit.VECTOR_UNIT, "softmax",
                            flops=op.m * op.context_len * 4.0 * share,
                            layer=layer, meta=shape),
            ]
        return [
            Instruction(Opcode.VOP, TargetUnit.VECTOR_UNIT, op.name,
                        flops=op.flops * share, layer=layer, meta=shape),
        ]

    def compile(self, model: ModelConfig, phase: Phase, batch: int,
                query_len: int, context_len: int,
                num_devices: int = 1) -> CompiledProgram:
        """Emit the per-device instruction stream for one stage."""
        if batch < 1 or query_len < 1:
            raise ValueError("batch and query_len must be >= 1")
        mapper = ModelParallelMapper(model)
        mapper.validate(num_devices)
        sync_method = mapper.choose_sync_method(num_devices)
        instructions: list[Instruction] = []
        rows = batch * query_len
        sync_bytes = rows * model.hidden_size * model.dtype_bytes

        for layer in range(model.num_layers):
            ops = decoder_layer_operators(model, phase, batch, query_len,
                                          context_len)
            for op in ops:
                instructions.extend(
                    self._lower_operator(op, phase, layer, num_devices))
                if op.name in ("out_proj", "mlp_down", "mlp_fc2"):
                    # multi-core all-gather at the latency dataflow's
                    # synchronization points (Fig. 6b)
                    instructions.append(Instruction(
                        Opcode.SYNC, TargetUnit.NOC, f"{op.name}.gather",
                        bytes_moved=sync_bytes
                        * (self.chip.cores - 1) / self.chip.cores,
                        layer=layer))
                    if num_devices > 1:
                        instructions.append(Instruction(
                            Opcode.COMM, TargetUnit.P2P,
                            f"{op.name}.{sync_method.value}",
                            bytes_moved=sync_bytes
                            * (num_devices - 1) / num_devices,
                            layer=layer))
            instructions.append(Instruction(
                Opcode.BARRIER, TargetUnit.NOC, f"layer{layer}.end",
                layer=layer))

        if phase == Phase.DECODE:
            head = lm_head_operator(model, phase, batch)
            instructions.extend(self._lower_operator(
                head, phase, model.num_layers, num_devices))

        binary = build_model_binary(model, self.chip, num_devices)
        return CompiledProgram(
            model_name=model.name,
            phase=phase,
            num_devices=num_devices,
            instructions=tuple(instructions),
            binary=binary,
        )
