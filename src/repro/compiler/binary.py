"""Model binary: the memory-mapped weight layout (paper Fig. 14a).

The model mapper assigns each layer's weight slices to DRAM modules so
that, under the latency dataflow, "each core fetches data from the
nearest DRAM module" (Section IV-C).  The binary records region offsets
per device and per DRAM module; the simulator uses it for capacity
checks and the tests assert its invariants (no overlap, full coverage).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.chip import ChipSpec
from repro.models.config import ModelConfig
from repro.parallel.mapper import ModelParallelMapper


@dataclass(frozen=True)
class MemoryRegion:
    """A contiguous weight region in one device's DRAM."""

    name: str
    device: int
    dram_module: int
    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.size < 0:
            raise ValueError("offset and size must be non-negative")

    @property
    def end(self) -> int:
        return self.offset + self.size


@dataclass(frozen=True)
class ModelBinary:
    """Weight layout of one model across one or more devices."""

    model_name: str
    num_devices: int
    regions: tuple

    def device_regions(self, device: int) -> list[MemoryRegion]:
        return [r for r in self.regions if r.device == device]

    def device_bytes(self, device: int) -> int:
        return sum(r.size for r in self.device_regions(device))

    @property
    def total_bytes(self) -> int:
        return sum(r.size for r in self.regions)

    def validate_against(self, chip: ChipSpec) -> None:
        """Raise if any device's layout exceeds DRAM or regions overlap."""
        for device in range(self.num_devices):
            regions = sorted(self.device_regions(device),
                             key=lambda r: (r.dram_module, r.offset))
            per_module: dict[int, int] = {}
            for region in regions:
                cursor = per_module.get(region.dram_module, 0)
                if region.offset < cursor:
                    raise ValueError(
                        f"{region.name}: overlaps previous region in module "
                        f"{region.dram_module}")
                per_module[region.dram_module] = region.end
            used = self.device_bytes(device)
            if used > chip.dram.size_bytes:
                raise ValueError(
                    f"device {device}: weights ({used / 2**30:.1f} GiB) exceed "
                    f"DRAM ({chip.dram.size_bytes / 2**30:.1f} GiB)")


def build_model_binary(model: ModelConfig, chip: ChipSpec,
                       num_devices: int = 1) -> ModelBinary:
    """Lay a TP-sharded model out over each device's DRAM modules.

    Layer weights round-robin across DRAM modules so that concurrent
    streams load-balance the memory system; embeddings and the LM head
    land on the last module.
    """
    mapper = ModelParallelMapper(model)
    shards = mapper.shard(num_devices)
    modules = chip.dram.modules
    regions: list[MemoryRegion] = []
    d = model.dtype_bytes
    for shard in shards:
        cursors = [0] * modules
        device = shard.device_index

        def place(name: str, size: int, module: int) -> None:
            regions.append(MemoryRegion(
                name=name, device=device, dram_module=module,
                offset=cursors[module], size=size))
            cursors[module] += size

        for layer in range(model.num_layers):
            module = layer % modules
            attn_bytes = model.attention_params_per_layer * d // num_devices
            mlp_bytes = model.mlp_params_per_layer * d // num_devices
            place(f"layer{layer}.attn", attn_bytes, module)
            place(f"layer{layer}.mlp", mlp_bytes, module)
        embed_bytes = model.embedding_params * d // num_devices
        place("embeddings", embed_bytes, modules - 1)
    return ModelBinary(
        model_name=model.name,
        num_devices=num_devices,
        regions=tuple(regions),
    )
