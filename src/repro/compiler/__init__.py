"""ADOR compiler stack (paper Fig. 14a).

Lowers a model's operator graph plus a parallelism plan into the two
artifacts the simulator consumes: a *model binary* (memory-mapped weight
layout across DRAM modules) and an *instruction binary* (a stream of
LOAD / GEMM / GEMV / ATTN / VOP / SYNC / COMM instructions per device).
"""

from repro.compiler.instructions import Instruction, Opcode, TargetUnit
from repro.compiler.binary import MemoryRegion, ModelBinary, build_model_binary
from repro.compiler.generator import CompiledProgram, InstructionGenerator

__all__ = [
    "Instruction",
    "Opcode",
    "TargetUnit",
    "MemoryRegion",
    "ModelBinary",
    "build_model_binary",
    "CompiledProgram",
    "InstructionGenerator",
]
