"""Sensitivity analysis around a proposed design point.

A DSE framework should not just emit a point — it should say which knobs
the outcome is sensitive to.  This module perturbs one template knob at
a time around a reference chip (memory bandwidth, core count, systolic
geometry, MAC-tree lanes, NoC and P2P bandwidth) and reports the
relative change in the QoS metrics and in die area, i.e. a discrete
local gradient of the design space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheduling import AdorDeviceModel
from repro.hardware.area import AreaModel
from repro.hardware.chip import ChipSpec
from repro.hardware.components import MacTree, SystolicArray
from repro.hardware.interconnect import NocSpec, P2pSpec
from repro.hardware.memory import Dram
from repro.models.config import ModelConfig


@dataclass(frozen=True)
class SensitivityRow:
    """Effect of one knob perturbation."""

    knob: str
    direction: str
    ttft_change: float   # relative: +0.1 == 10 % slower
    tbt_change: float
    area_change: float

    def as_list(self) -> list:
        return [self.knob, self.direction, 100 * self.ttft_change,
                100 * self.tbt_change, 100 * self.area_change]


def _variants(chip: ChipSpec) -> list[tuple[str, str, ChipSpec]]:
    """One-knob perturbations around ``chip``."""
    dram = chip.dram
    sa = chip.systolic_array
    mt = chip.mac_tree
    variants: list[tuple[str, str, ChipSpec]] = []

    def add(knob: str, direction: str, **updates) -> None:
        variants.append((knob, direction, chip.with_updates(**updates)))

    add("memory bandwidth", "x0.5", dram=Dram(
        dram.kind, dram.size_bytes, dram.bandwidth_bytes_per_s * 0.5,
        dram.modules))
    add("memory bandwidth", "x2", dram=Dram(
        dram.kind, dram.size_bytes, dram.bandwidth_bytes_per_s * 2.0,
        dram.modules))
    add("cores", "x0.5", cores=max(1, chip.cores // 2))
    add("cores", "x2", cores=chip.cores * 2)
    if sa is not None and sa.rows >= 64:
        add("systolic array", "halve side",
            systolic_array=SystolicArray(sa.rows // 2, sa.cols // 2,
                                         sa.lanes))
    if sa is not None:
        add("systolic array", "double side",
            systolic_array=SystolicArray(sa.rows * 2, sa.cols * 2, sa.lanes))
    if mt is not None and mt.lanes >= 2:
        add("MAC-tree lanes", "x0.5",
            mac_tree=MacTree(mt.tree_size, mt.lanes // 2))
    if mt is not None:
        add("MAC-tree lanes", "x2",
            mac_tree=MacTree(mt.tree_size, mt.lanes * 2))
    add("NoC bandwidth", "x0.5",
        noc=NocSpec(chip.noc.bandwidth_bytes_per_s * 0.5,
                    chip.noc.topology, chip.noc.hop_latency_s))
    add("P2P bandwidth", "x0.5",
        p2p=P2pSpec(chip.p2p.bandwidth_bytes_per_s * 0.5,
                    chip.p2p.latency_s))
    return variants


def sensitivity_table(
    chip: ChipSpec,
    model: ModelConfig,
    batch: int = 128,
    seq_len: int = 1024,
    devices: int = 1,
    area_model: AreaModel | None = None,
) -> list[SensitivityRow]:
    """Relative TTFT / TBT / area response to each knob perturbation."""
    area_model = area_model or AreaModel()
    base_device = AdorDeviceModel(chip)
    base_ttft = base_device.prefill_time(model, 1, seq_len, devices).seconds
    base_tbt = base_device.decode_step_time(model, batch, seq_len,
                                            devices).seconds
    base_area = area_model.die_area_mm2(chip)

    rows = []
    for knob, direction, variant in _variants(chip):
        device = AdorDeviceModel(variant)
        ttft = device.prefill_time(model, 1, seq_len, devices).seconds
        tbt = device.decode_step_time(model, batch, seq_len, devices).seconds
        area = area_model.die_area_mm2(variant)
        rows.append(SensitivityRow(
            knob=knob,
            direction=direction,
            ttft_change=ttft / base_ttft - 1.0,
            tbt_change=tbt / base_tbt - 1.0,
            area_change=area / base_area - 1.0,
        ))
    return rows


def most_sensitive_knob(rows: list[SensitivityRow],
                        metric: str = "tbt") -> str:
    """Knob with the largest absolute response on the chosen metric."""
    if not rows:
        raise ValueError("no sensitivity rows")
    attribute = {"ttft": "ttft_change", "tbt": "tbt_change",
                 "area": "area_change"}[metric]
    worst = max(rows, key=lambda r: abs(getattr(r, attribute)))
    return worst.knob
