"""The ADOR architecture template (paper Fig. 6a).

A :class:`TemplateKnobs` instance is one point in the design space:
systolic-array geometry, MAC-tree width/lanes, core count, memory split
and interconnect bandwidths.  :class:`AdorTemplate` materializes knobs
into a full :class:`~repro.hardware.chip.ChipSpec` and provides the
paper's closed-form sizing rules (Section V-A) as starting points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.requirements import VendorConstraints
from repro.hardware.chip import ChipKind, ChipSpec
from repro.hardware.components import MacTree, SystolicArray, VectorUnit
from repro.hardware.interconnect import NocSpec, P2pSpec
from repro.hardware.memory import Dram, DramKind, Sram, KIB
from repro.hardware.technology import ProcessNode


def _round_down_pow2(value: float) -> int:
    """Largest power of two <= value (>= 1)."""
    if value < 1:
        return 1
    return 1 << int(math.floor(math.log2(value)))


def _round_up_pow2(value: float) -> int:
    """Smallest power of two >= value (>= 1)."""
    if value <= 1:
        return 1
    return 1 << int(math.ceil(math.log2(value)))


@dataclass(frozen=True)
class TemplateKnobs:
    """One candidate configuration of the ADOR template."""

    sa_rows: int
    sa_cols: int
    cores: int
    mt_tree_size: int
    mt_lanes: int
    local_memory_bytes: float
    global_memory_bytes: float
    noc_bandwidth: float
    p2p_bandwidth: float

    def __post_init__(self) -> None:
        if self.sa_rows % 32 or self.sa_cols % 32:
            raise ValueError(
                "systolic arrays are searched in multiples of 32 (paper V-A)")
        if self.cores < 1 or self.mt_tree_size < 1 or self.mt_lanes < 1:
            raise ValueError("core and MAC-tree parameters must be >= 1")
        if self.local_memory_bytes < 0 or self.global_memory_bytes < 0:
            raise ValueError("memory sizes must be non-negative")
        if self.noc_bandwidth <= 0 or self.p2p_bandwidth <= 0:
            raise ValueError("interconnect bandwidths must be positive")

    @property
    def total_macs(self) -> int:
        sa = self.sa_rows * self.sa_cols * self.cores
        mt = self.mt_tree_size * self.mt_lanes * self.cores
        return sa + mt


class AdorTemplate:
    """Materializes knobs into chips and applies the paper's sizing rules."""

    def __init__(self, vendor: VendorConstraints,
                 process: ProcessNode = ProcessNode.NM_7) -> None:
        self.vendor = vendor
        self.process = process

    # ------------------------------------------------------------------ #
    # Section V-A closed-form starting points                             #
    # ------------------------------------------------------------------ #

    def mac_tree_size_for_bandwidth(self, cores: int) -> int:
        """The paper's MT sizing rule.

        ``data_size_per_cycle = memory_bandwidth / core_frequency``;
        divided across cores and by the element size, rounded down to a
        power of two so the adder tree stays balanced.  For 2 TB/s,
        1.5 GHz and 32 cores this yields 16 — Table III's tree size.
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        bytes_per_cycle = self.vendor.dram_bandwidth / self.vendor.frequency_hz
        elements_per_core = bytes_per_cycle / self.vendor.dtype_bytes / cores
        return max(1, _round_down_pow2(elements_per_core))

    def build(self, knobs: TemplateKnobs, name: str = "ADOR candidate") -> ChipSpec:
        """Instantiate a full chip spec from template knobs."""
        return ChipSpec(
            name=name,
            kind=ChipKind.ADOR_HDA,
            frequency_hz=self.vendor.frequency_hz,
            cores=knobs.cores,
            systolic_array=SystolicArray(knobs.sa_rows, knobs.sa_cols),
            mac_tree=MacTree(knobs.mt_tree_size, knobs.mt_lanes),
            vector_unit=VectorUnit(width=16),
            local_memory=Sram(knobs.local_memory_bytes),
            global_memory=Sram(knobs.global_memory_bytes),
            dram=Dram(
                DramKind.HBM2E,
                self.vendor.dram_size_bytes,
                self.vendor.dram_bandwidth,
                modules=8,
            ),
            noc=NocSpec(bandwidth_bytes_per_s=knobs.noc_bandwidth),
            p2p=P2pSpec(bandwidth_bytes_per_s=knobs.p2p_bandwidth),
            process=self.process,
        )

    # ------------------------------------------------------------------ #
    # Candidate enumeration (Section V-A: "multiples of 32")              #
    # ------------------------------------------------------------------ #

    def systolic_candidates(
        self,
        mac_budget: int,
        sizes: tuple = (32, 64, 96, 128),
        max_cores: int = 256,
    ) -> list[tuple[int, int, int]]:
        """(rows, cols, cores) candidates near a total-MAC budget.

        For each square array size the core count is chosen to meet the
        MAC budget as closely as possible without exceeding it by more
        than one core's worth.
        """
        if mac_budget < 32 * 32:
            raise ValueError("MAC budget below one minimal array")
        candidates = []
        for size in sizes:
            per_core = size * size
            cores = max(1, min(max_cores, round(mac_budget / per_core)))
            candidates.append((size, size, cores))
        return candidates

    def memory_split(self, local_bytes_per_core: float,
                     cores: int) -> tuple[float, float]:
        """Split the SRAM budget: local per core, remainder global.

        Section V-B: "after determining the local memory size, the
        remaining SRAM is fully allocated to global memory".
        """
        local = _round_up_pow2(int(local_bytes_per_core / KIB)) * KIB
        total_local = local * cores
        if total_local > self.vendor.sram_budget_bytes:
            # shrink local memory to fit — the feedback path of Fig. 9
            local = _round_down_pow2(
                self.vendor.sram_budget_bytes / cores / KIB) * KIB
            total_local = local * cores
        global_mem = max(0.0, self.vendor.sram_budget_bytes - total_local)
        return float(local), float(global_mem)
