"""ADOR architecture search — the three-step loop of Fig. 9.

Step 1 sizes compute units: the MAC tree first (from the bandwidth rule
of Section V-A), then lane count by sweeping self-attention latency
(Fig. 11b), then the systolic array geometry in multiples of 32
(Fig. 11a).  Step 2 sizes local/global memory from the activation
footprint simulator (Fig. 12).  Step 3 sets NoC and P2P bandwidths from
the dataflow and overlap models (Fig. 13).  Candidates are then
evaluated with the HDA scheduler; if no candidate meets both requirement
sets the loop relaxes the binding budget and reports what extra hardware
would be needed — the paper's feedback path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.design_point import DesignEvaluation, DesignPoint, evaluate_area
from repro.core.requirements import SearchRequest
from repro.core.scheduling import AdorDeviceModel
from repro.core.template import AdorTemplate, TemplateKnobs
from repro.core.dataflow import DataflowKind, MultiCoreDataflow
from repro.hardware.area import AreaModel
from repro.hardware.components import MacTree
from repro.hardware.power import PowerModel
from repro.models.footprint import peak_local_memory
from repro.models.zoo import get_model
from repro.parallel.overlap import OverlapModel, WorkloadPhase, minimum_p2p_bandwidth
from repro.perf.mac_tree import MacTreeTimingModel

_LANE_CANDIDATES = (1, 2, 4, 8, 16)
_CORE_CANDIDATES = (8, 16, 32, 64, 128)
_SA_SIZES = (32, 64, 96, 128)
#: sizing batch for the local-memory footprint (the paper's Fig. 12 case)
_FOOTPRINT_BATCH = 32
#: reference attention mechanisms for lane sizing — the paper determines
#: lane count "by measuring the performance of various self-attention
#: mechanisms" (Fig. 11b: MHA, GQA and MQA exemplars)
_LANE_REFERENCE_MODELS = ("llama2-7b", "llama3-8b", "falcon-7b")


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one DSE run."""

    best: DesignPoint
    requirements_met: bool
    candidates: tuple
    log: tuple
    notes: str = ""


class AdorSearch:
    """Deterministic grid search over the ADOR template.

    ``memoize`` (default) caches the two pure sub-searches that the
    candidate loop would otherwise recompute for every ``sa_size`` and
    every budget-relaxation iteration: :meth:`choose_mt_lanes` depends
    only on ``(tree_size, cores)`` and :meth:`local_memory_requirement`
    on nothing but the request, so caching them changes no result —
    ``bench_table3_dse.py`` measures the speedup and asserts identity.
    """

    def __init__(self, request: SearchRequest,
                 area_model: AreaModel | None = None,
                 power_model: PowerModel | None = None,
                 memoize: bool = True) -> None:
        self.request = request
        self.area_model = area_model or AreaModel()
        self.power_model = power_model or PowerModel()
        self.template = AdorTemplate(request.vendor)
        self.models = [get_model(name) for name in request.model_names]
        self.memoize = memoize
        self._lane_cache: dict[tuple[int, int], int] = {}
        self._local_memory_cache: float | None = None

    # ------------------------------------------------------------------ #
    # Step 1a: MAC-tree lanes                                             #
    # ------------------------------------------------------------------ #

    def choose_mt_lanes(self, tree_size: int, cores: int) -> int:
        """Smallest lane count within 2 % of the best attention latency.

        Mirrors Fig. 11(b): sweep lanes, time decode self-attention for
        the MHA / GQA / MQA reference mechanisms, stop adding lanes once
        returns vanish (within a 2 % tolerance).
        """
        if self.memoize and (tree_size, cores) in self._lane_cache:
            return self._lane_cache[(tree_size, cores)]
        vendor = self.request.vendor
        slos = self.request.slos
        references = [get_model(name) for name in _LANE_REFERENCE_MODELS]

        def attention_seconds(lanes: int) -> float:
            mt = MacTreeTimingModel(
                tree=MacTree(tree_size, lanes),
                cores=cores,
                frequency_hz=vendor.frequency_hz,
                dram_bandwidth=vendor.dram_bandwidth,
            )
            total = 0.0
            for model in references:
                est = mt.decode_attention(
                    batch=slos.batch_size,
                    num_heads=model.num_heads,
                    num_kv_heads=model.num_kv_heads,
                    head_dim=model.head_dim,
                    context_len=slos.seq_len,
                )
                total += est.seconds * model.num_layers
            return total

        timings = {lanes: attention_seconds(lanes) for lanes in _LANE_CANDIDATES}
        best = min(timings.values())
        chosen = _LANE_CANDIDATES[-1]
        for lanes in _LANE_CANDIDATES:
            if timings[lanes] <= best * 1.02:
                chosen = lanes
                break
        self._lane_cache[(tree_size, cores)] = chosen
        return chosen

    # ------------------------------------------------------------------ #
    # Step 2: memory sizing                                               #
    # ------------------------------------------------------------------ #

    def local_memory_requirement(self) -> float:
        """Per-core local memory: worst-case single-layer activations.

        The latency dataflow keeps the full activation set on every core
        (same input, different weights), so the per-core need is the peak
        itself; the LM head is excluded because it is tiled over the
        vocabulary (Section V-B), and 25 % headroom covers double
        buffering.
        """
        if self.memoize and self._local_memory_cache is not None:
            return self._local_memory_cache
        worst = 0.0
        for model in self.models:
            report = peak_local_memory(model, _FOOTPRINT_BATCH)
            worst = max(worst, report.peak_excluding_lm_head)
        self._local_memory_cache = worst * 1.25
        return self._local_memory_cache

    # ------------------------------------------------------------------ #
    # Step 3: interconnect sizing                                         #
    # ------------------------------------------------------------------ #

    def choose_p2p_bandwidth(self, peak_flops: float) -> float:
        """Smallest vendor-available P2P bandwidth that overlaps decode."""
        vendor = self.request.vendor
        if self.request.num_devices <= 1:
            return min(vendor.available_p2p_bandwidths)
        overlap = OverlapModel(
            model=self.models[0],
            memory_bandwidth=vendor.dram_bandwidth,
            peak_flops=peak_flops,
            phase=WorkloadPhase.DECODE,
            batch=self.request.slos.batch_size,
            seq_len=self.request.slos.seq_len,
        )
        needed = minimum_p2p_bandwidth(
            overlap, self.request.num_devices,
            candidates_gbps=tuple(b / 1e9 for b in vendor.available_p2p_bandwidths),
        )
        return needed

    # ------------------------------------------------------------------ #
    # Candidate enumeration + evaluation                                  #
    # ------------------------------------------------------------------ #

    def _build_candidate(self, sa_size: int, cores: int) -> TemplateKnobs | None:
        vendor = self.request.vendor
        tree_size = self.template.mac_tree_size_for_bandwidth(cores)
        lanes = self.choose_mt_lanes(tree_size, cores)
        local, global_mem = self.template.memory_split(
            self.local_memory_requirement(), cores)
        if global_mem <= 0:
            return None
        peak = 2.0 * (sa_size * sa_size + tree_size * lanes) * cores \
            * vendor.frequency_hz
        # NoC: the larger of the two dataflows' demands
        draft = TemplateKnobs(
            sa_rows=sa_size, sa_cols=sa_size, cores=cores,
            mt_tree_size=tree_size, mt_lanes=lanes,
            local_memory_bytes=local, global_memory_bytes=global_mem,
            noc_bandwidth=1e12, p2p_bandwidth=64e9,
        )
        chip = self.template.build(draft)
        noc = max(
            MultiCoreDataflow(chip, DataflowKind.LATENCY).required_noc_bandwidth(),
            MultiCoreDataflow(chip, DataflowKind.THROUGHPUT).required_noc_bandwidth(),
        )
        p2p = self.choose_p2p_bandwidth(peak)
        return TemplateKnobs(
            sa_rows=sa_size, sa_cols=sa_size, cores=cores,
            mt_tree_size=tree_size, mt_lanes=lanes,
            local_memory_bytes=local, global_memory_bytes=global_mem,
            noc_bandwidth=noc, p2p_bandwidth=p2p,
        )

    def _evaluate(self, knobs: TemplateKnobs) -> DesignPoint:
        chip = self.template.build(knobs, name=(
            f"ADOR {knobs.sa_rows}x{knobs.sa_cols}x{knobs.cores}c "
            f"MT{knobs.mt_tree_size}x{knobs.mt_lanes}"
        ))
        device = AdorDeviceModel(chip)
        slos = self.request.slos
        devices = self.request.num_devices
        evaluations = []
        for model in self.models:
            prefill = device.prefill_time(model, 1, slos.seq_len, devices)
            decode = device.decode_step_time(
                model, slos.batch_size, slos.seq_len, devices)
            util = device.decode_bandwidth_utilization(
                model, slos.batch_size, slos.seq_len, devices)
            flops = 2.0 * slos.seq_len * model.active_params_per_token / devices
            prefill_util = flops / (prefill.seconds * chip.peak_flops) \
                if prefill.seconds > 0 else 0.0
            evaluations.append(DesignEvaluation(
                model_name=model.name,
                ttft_s=prefill.seconds,
                tbt_s=decode.seconds,
                decode_bandwidth_utilization=util,
                prefill_compute_utilization=min(1.0, prefill_util),
            ))
        return DesignPoint(
            chip=chip,
            area_mm2=evaluate_area(chip, self.area_model),
            evaluations=tuple(evaluations),
        )

    # ------------------------------------------------------------------ #
    # The search loop with the Fig. 9 feedback path                       #
    # ------------------------------------------------------------------ #

    def run(self, max_iterations: int = 3) -> SearchResult:
        """Run the search, relaxing the area budget if requirements fail."""
        vendor = self.request.vendor
        slos = self.request.slos
        log: list[str] = []
        all_points: list[DesignPoint] = []
        budget = vendor.area_budget_mm2

        for iteration in range(max_iterations):
            log.append(f"iteration {iteration}: area budget {budget:.0f} mm2")
            points = []
            for sa_size in _SA_SIZES:
                for cores in _CORE_CANDIDATES:
                    knobs = self._build_candidate(sa_size, cores)
                    if knobs is None:
                        continue
                    point = self._evaluate(knobs)
                    points.append(point)
                    log.append(
                        f"  {point.chip.name}: area {point.area_mm2:.0f} mm2, "
                        f"TTFT {point.worst_ttft_s * 1e3:.1f} ms, "
                        f"TBT {point.worst_tbt_s * 1e3:.2f} ms, "
                        f"util {point.min_utilization:.2f}"
                    )
            all_points.extend(points)
            within_budget = [
                p for p in points
                if p.area_mm2 <= budget
                and self.power_model.tdp_w(p.chip) <= vendor.power_budget_w
            ]
            feasible = [
                p for p in within_budget
                if p.worst_ttft_s <= slos.ttft_slo_s
                and p.worst_tbt_s <= slos.tbt_slo_s
                and p.min_utilization >= vendor.min_hardware_utilization
            ]
            if feasible:
                best = max(feasible, key=DesignPoint.throughput_per_area)
                log.append(f"selected {best.chip.name}")
                met = budget <= vendor.area_budget_mm2
                notes = "" if met else (
                    f"requirements needed an area budget of {budget:.0f} mm2 "
                    f"(vendor offered {vendor.area_budget_mm2:.0f} mm2)"
                )
                return SearchResult(
                    best=best,
                    requirements_met=met,
                    candidates=tuple(all_points),
                    log=tuple(log),
                    notes=notes,
                )
            # Feedback path: vendor needs more silicon for these SLOs.
            budget *= 1.25
            log.append("no feasible candidate; relaxing area budget by 25%")

        # Requirements unmet even after relaxation: propose the best
        # effort along with what it would take (paper Section V-D).
        best = max(all_points, key=DesignPoint.throughput_per_area)
        return SearchResult(
            best=best,
            requirements_met=False,
            candidates=tuple(all_points),
            log=tuple(log),
            notes=(
                "requirements unmet after budget relaxation; proposing the "
                "highest-merit design with additional hardware needs noted"
            ),
        )
