"""Design points: a candidate chip plus its evaluated merit.

The search loop scores candidates on the quantities Fig. 9 reports:
QoS (TTFT/TBT at the SLO batch size), hardware utilization, and
estimated area/cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.requirements import ServiceLevelObjectives, VendorConstraints
from repro.hardware.area import AreaModel
from repro.hardware.chip import ChipSpec


@dataclass(frozen=True)
class DesignEvaluation:
    """Measured merit of one candidate on one model."""

    model_name: str
    ttft_s: float
    tbt_s: float
    decode_bandwidth_utilization: float
    prefill_compute_utilization: float

    @property
    def tokens_per_s(self) -> float:
        """Per-request decode rate (the paper's TBT axis in Fig. 15)."""
        return 1.0 / self.tbt_s if self.tbt_s > 0 else float("inf")


@dataclass(frozen=True)
class DesignPoint:
    """A candidate chip with its evaluations and area."""

    chip: ChipSpec
    area_mm2: float
    evaluations: tuple = field(default_factory=tuple)

    @property
    def worst_tbt_s(self) -> float:
        return max((e.tbt_s for e in self.evaluations), default=float("inf"))

    @property
    def worst_ttft_s(self) -> float:
        return max((e.ttft_s for e in self.evaluations), default=float("inf"))

    @property
    def min_utilization(self) -> float:
        return min((e.decode_bandwidth_utilization for e in self.evaluations),
                   default=0.0)

    def meets(self, slos: ServiceLevelObjectives,
              vendor: VendorConstraints) -> bool:
        """Does this point satisfy both requirement sets?"""
        return (
            self.worst_ttft_s <= slos.ttft_slo_s
            and self.worst_tbt_s <= slos.tbt_slo_s
            and self.area_mm2 <= vendor.area_budget_mm2
            and self.min_utilization >= vendor.min_hardware_utilization
        )

    def throughput_per_area(self) -> float:
        """tokens/s/mm^2 at the SLO batch — the vendor's figure of merit."""
        if self.area_mm2 <= 0 or not self.evaluations:
            return 0.0
        return min(e.tokens_per_s for e in self.evaluations) / self.area_mm2


def evaluate_area(chip: ChipSpec, area_model: AreaModel | None = None) -> float:
    """Die area of a candidate under the calibrated cost model."""
    return (area_model or AreaModel()).die_area_mm2(chip)
