"""Multi-core dataflows of the ADOR template (paper Fig. 6b/c/d).

Two dataflows exist because latency and throughput want opposite
placements:

* **latency dataflow** (Fig. 6b): every core holds the *same* activation
  and a different weight slice fetched from its nearest DRAM module, so
  no bandwidth is wasted; results are synchronized with a pipelined
  all-gather whose small final-sum messages hide behind compute
  (Fig. 6d's comparison against all-reduce);
* **throughput dataflow** (Fig. 6c): cores hold *different* activations
  and the same weights are broadcast, letting weight prefetch double-
  buffer behind long GEMM tiles.

This module quantifies both: the NoC bandwidth each needs and the
synchronization bubble each exposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.chip import ChipSpec


class DataflowKind(enum.Enum):
    LATENCY = "latency"        # same activation, split weights, all-gather
    THROUGHPUT = "throughput"  # split activations, broadcast weights


class CoreSyncMethod(enum.Enum):
    """On-chip synchronization flavour (Fig. 6d)."""

    ALL_GATHER = "all-gather"
    ALL_REDUCE = "all-reduce"


@dataclass(frozen=True)
class SyncBubble:
    """Visible synchronization cost of a chained GEMV pipeline."""

    wire_seconds: float
    exposed_seconds: float

    @property
    def hidden_fraction(self) -> float:
        if self.wire_seconds == 0:
            return 1.0
        return 1.0 - self.exposed_seconds / self.wire_seconds


@dataclass(frozen=True)
class MultiCoreDataflow:
    """Dataflow analysis bound to one chip."""

    chip: ChipSpec
    kind: DataflowKind

    def sync_bytes_per_gemv(self, rows: int, output_dim: int,
                            method: CoreSyncMethod,
                            dtype_bytes: int = 2) -> float:
        """On-chip bytes a core exchanges to synchronize one GEMV output.

        All-gather moves each core's final-sum slice (``1/cores`` of the
        output); all-reduce moves full partial sums — ``cores`` times
        more data, plus it cannot start the next GEMV until accumulation
        finishes.
        """
        if rows < 1 or output_dim < 1:
            raise ValueError("rows and output_dim must be >= 1")
        full = float(rows) * output_dim * dtype_bytes
        cores = self.chip.cores
        if cores == 1:
            return 0.0
        if method == CoreSyncMethod.ALL_GATHER:
            return full * (cores - 1) / cores
        return full * (cores - 1)

    def sync_bubble(self, rows: int, output_dim: int,
                    compute_seconds: float,
                    method: CoreSyncMethod = CoreSyncMethod.ALL_GATHER,
                    dtype_bytes: int = 2) -> SyncBubble:
        """Exposed sync time after overlapping with ``compute_seconds``.

        All-gather pipelines chunk-by-chunk with the GEMV (Fig. 6d top);
        all-reduce serializes accumulation after transfer (bottom), so
        only a small fraction hides.
        """
        bytes_moved = self.sync_bytes_per_gemv(rows, output_dim, method,
                                               dtype_bytes)
        wire = bytes_moved / self.chip.noc.bandwidth_bytes_per_s
        hop = self.chip.cores / 2 * self.chip.noc.hop_latency_s
        overlappable = 0.95 if method == CoreSyncMethod.ALL_GATHER else 0.25
        hidden = min(wire * overlappable, compute_seconds)
        return SyncBubble(wire_seconds=wire,
                          exposed_seconds=wire - hidden + hop)

    def required_noc_bandwidth(self, dtype_bytes: int = 2) -> float:
        """NoC bandwidth the dataflow needs to not throttle the cores.

        Latency dataflow: gathered final sums are tiny; the floor is set
        by re-broadcasting activations, roughly the DRAM bandwidth split
        across cores.  Throughput dataflow: the weight broadcast must
        sustain the systolic arrays' aggregate prefetch appetite.
        """
        if self.kind == DataflowKind.LATENCY:
            return self.chip.memory_bandwidth / max(1, self.chip.cores) * 4
        sa = self.chip.systolic_array
        if sa is None:
            return self.chip.memory_bandwidth
        # one weight element per column per cycle during steady prefetch
        per_core = sa.cols * sa.lanes * dtype_bytes * self.chip.frequency_hz
        # broadcast: one stream serves all cores
        return per_core
