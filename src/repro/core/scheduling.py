"""Dynamic HDA scheduling: the decoder-layer latency estimator (Fig. 8).

The scheduler implements the paper's operating rules:

* **decode** — the MAC tree owns the full DRAM bandwidth, streaming
  weights and KV cache at the Fig. 10 effective bandwidth; the systolic
  array assists with batched GEMM compute and works on KV pairs already
  resident in global memory; vector units handle norms/softmax;
* **prefill** — GEMMs are split at compile time between the systolic
  array and MAC tree proportionally to their effective rates
  (:mod:`repro.core.allocation`); weights double-buffer behind tiles;
* **multi-core** — the latency dataflow's all-gather bubbles are charged
  per layer (Fig. 6d); **multi-device** TP sync is overlapped per the
  collectives model.

Every QoS experiment (Figs. 11, 15, 16, 17) consumes these estimates, so
calibration decisions live here and nowhere else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.allocation import hda_gemm_seconds
from repro.core.dataflow import CoreSyncMethod, DataflowKind, MultiCoreDataflow
from repro.hardware.chip import ChipKind, ChipSpec
from repro.models.config import ModelConfig
from repro.models.layers import (
    Operator,
    OperatorKind,
    Phase,
    attention_operator,
    decoder_layer_operators,
    lm_head_operator,
)
from repro.parallel.collectives import layer_sync_plan, visible_collective_time
from repro.parallel.mapper import ModelParallelMapper
from repro.perf.baselines import BaselineBreakdown, DeviceModel, baseline_for
from repro.perf.effective_bandwidth import MT_BANDWIDTH_CURVE
from repro.perf.mac_tree import MacTreeTimingModel
from repro.perf.systolic import SystolicTimingModel
from repro.perf.vector import VectorTimingModel


@dataclass(frozen=True)
class _DecodePlan:
    """Context-independent constants of one decode operating point.

    ``entries`` holds ``(kind, name, value, compute_seconds)`` per layer
    operator: for GEMMs ``value`` is the TP-sharded weight bytes and
    ``compute_seconds`` the compute-bound floor; for vector ops ``value``
    is the finished latency; the attention slot is re-evaluated per call
    (it is the only context-dependent operator).  ``flops`` mirrors the
    operator order with ``None`` marking the attention slot, so the
    step-FLOPs sum reproduces the uncompiled order exactly.
    """

    entries: list
    flops: list
    head_seconds: float


@dataclass(frozen=True)
class SchedulerConfig:
    """Calibration constants of the HDA scheduler."""

    #: SA compute efficiency on large prefill GEMMs beyond the analytical
    #: tiling losses (bank conflicts, edge tiles)
    sa_efficiency: float = 0.92
    #: MT efficiency when assisting GEMMs (it must share DRAM streams)
    mt_gemm_efficiency: float = 0.90
    #: DRAM utilization of SA weight prefetch in decode *without* a MAC
    #: tree (the Fig. 11c ablation: SA-only GEMV exposes prefetch latency)
    sa_only_gemv_utilization: float = 0.58
    #: per-layer scheduling overhead (descriptor fetch, DMA programming)
    layer_overhead_s: float = 1.0e-6
    #: fraction of a decode step's KV that is fresh enough to still be in
    #: global memory, served to the SA without DRAM traffic (Section IV-E)
    global_memory_kv_fraction_cap: float = 1.0


class HdaScheduler:
    """Stage-latency estimator for one ADOR HDA chip."""

    def __init__(self, chip: ChipSpec, use_mac_tree: bool = True,
                 config: SchedulerConfig | None = None,
                 compiled_decode: bool = True) -> None:
        if chip.kind != ChipKind.ADOR_HDA:
            raise ValueError(f"{chip.name} is not an ADOR HDA chip")
        if chip.systolic_array is None:
            raise ValueError("HDA scheduling requires a systolic array")
        self.chip = chip
        self.use_mac_tree = use_mac_tree and chip.mac_tree is not None
        self.config = config or SchedulerConfig()
        self.systolic = SystolicTimingModel(
            array=chip.systolic_array,
            cores=chip.cores,
            frequency_hz=chip.frequency_hz,
        )
        self.mac_tree = None
        if self.use_mac_tree:
            self.mac_tree = MacTreeTimingModel(
                tree=chip.mac_tree,
                cores=chip.cores,
                frequency_hz=chip.frequency_hz,
                dram_bandwidth=chip.memory_bandwidth,
            )
        self.vector = VectorTimingModel(
            unit=chip.vector_unit,
            cores=chip.cores,
            frequency_hz=chip.frequency_hz,
        ) if chip.vector_unit is not None else None
        self.dataflow_latency = MultiCoreDataflow(chip, DataflowKind.LATENCY)
        # compiled decode-layer plans keyed (model, batch, devices): the
        # context-independent constants of a decode step, rebuilt only
        # when the operating point changes (see _build_decode_plan);
        # compiled_decode=False keeps the reference per-operator path
        self.compiled_decode = compiled_decode
        self._decode_plans: dict = {}

    # ------------------------------------------------------------------ #
    # Effective rates                                                     #
    # ------------------------------------------------------------------ #

    def _decode_utilization(self, step_flops: float) -> float:
        """DRAM utilization in decode: the Fig. 10 curve with the MAC
        tree, a derated constant without it (Fig. 11c ablation)."""
        if self.use_mac_tree:
            return MT_BANDWIDTH_CURVE.utilization(step_flops)
        return self.config.sa_only_gemv_utilization

    def _mt_rate(self) -> float:
        if self.mac_tree is None:
            return 0.0
        return self.mac_tree.peak_flops * self.config.mt_gemm_efficiency

    # ------------------------------------------------------------------ #
    # Per-operator timing                                                 #
    # ------------------------------------------------------------------ #

    def _prefill_gemm_seconds(self, op: Operator, devices: int) -> float:
        """Compile-time split GEMM on SA (+MT assist), weights sharded by TP."""
        n_shard = max(1, math.ceil(op.n / devices))
        sa_est = self.systolic.gemm(
            op.m, op.k, n_shard, self.chip.memory_bandwidth,
            double_buffered=True,
        )
        flops_shard = op.flops / devices
        sa_rate = (flops_shard / sa_est.seconds if sa_est.seconds > 0
                   else self.systolic.peak_flops) * self.config.sa_efficiency
        return hda_gemm_seconds(flops_shard, sa_rate, self._mt_rate())

    def _decode_gemm_seconds(self, op: Operator, devices: int,
                             utilization: float) -> float:
        """Weight-streamed batched GEMV: MT consumes the stream, SA assists."""
        weight_bytes = op.weight_bytes / devices
        stream = weight_bytes / (self.chip.memory_bandwidth * utilization)
        rates = self.systolic.peak_flops * self.config.sa_efficiency \
            + self._mt_rate()
        compute = (op.flops / devices) / rates
        return max(stream, compute)

    def _prefill_attention_seconds(self, op: Operator, devices: int) -> float:
        """Chunk attention on the SA against global-memory KV.

        Heads shard across devices; score and context GEMMs read KV pairs
        produced by the current chunk from global memory, so no DRAM
        stall applies (Section IV-B).
        """
        heads_per_device = max(1, op.heads // devices)
        query_len = max(1, op.m // op.batch)
        jobs = op.batch * heads_per_device
        # score: [q, d] x [d, ctx]; context: [q, ctx] x [ctx, d] — model the
        # pair as one GEMM of doubled N on the resident operand.
        est = self.systolic.gemm(
            m=query_len * jobs,
            k=op.k,
            n=2 * op.context_len,
            dram_bandwidth=self.chip.memory_bandwidth,
            double_buffered=True,
            weights_resident=True,
        )
        causal = 0.5 if query_len > 1 else 1.0
        return est.seconds * causal / self.config.sa_efficiency

    def _decode_attention_seconds(self, op: Operator, devices: int,
                                  utilization: float,
                                  dtype_bytes: int) -> float:
        """Decode attention: the MAC tree streams per-request KV."""
        kv_heads = max(1, op.heads // op.group_size)
        if self.mac_tree is not None:
            shard = self.mac_tree.decode_attention(
                batch=op.batch,
                num_heads=max(1, op.heads // devices),
                num_kv_heads=max(1, kv_heads // devices),
                head_dim=op.k,
                context_len=op.context_len,
                dtype_bytes=dtype_bytes,
            )
            return shard.seconds
        kv_bytes = op.io_bytes / devices
        return kv_bytes / (self.chip.memory_bandwidth * utilization)

    def _vector_seconds(self, op: Operator, devices: int) -> float:
        if self.vector is None:
            return 0.0
        elements = op.m * op.k / devices
        if op.name.endswith("norm"):
            return self.vector.layernorm(op.m, max(1, op.k // devices))
        return self.vector.elementwise(elements)

    def _softmax_seconds(self, op: Operator, devices: int) -> float:
        if self.vector is None or op.context_len == 0:
            return 0.0
        rows = op.m * max(1, op.heads // devices)
        return self.vector.softmax(rows, op.context_len)

    # ------------------------------------------------------------------ #
    # Layer and stage aggregation                                         #
    # ------------------------------------------------------------------ #

    def layer_breakdown(self, model: ModelConfig, phase: Phase, batch: int,
                        query_len: int, context_len: int,
                        devices: int = 1) -> dict[str, float]:
        """Per-operator seconds for one decoder layer (Fig. 11a bars)."""
        if devices < 1:
            raise ValueError("devices must be >= 1")
        if phase == Phase.DECODE and query_len == 1 and self.compiled_decode:
            # the serving hot path: thousands of near-identical decode
            # steps per simulation — reuse the compiled constants
            return self._decode_layer_breakdown(model, batch, context_len,
                                                devices)
        ops = decoder_layer_operators(model, phase, batch, query_len, context_len)
        step_flops = sum(op.flops for op in ops) * model.num_layers
        utilization = self._decode_utilization(step_flops)
        breakdown: dict[str, float] = {}
        for op in ops:
            if op.kind == OperatorKind.GEMM:
                if phase == Phase.PREFILL:
                    seconds = self._prefill_gemm_seconds(op, devices)
                else:
                    seconds = self._decode_gemm_seconds(op, devices, utilization)
            elif op.kind == OperatorKind.ATTENTION:
                if phase == Phase.PREFILL:
                    seconds = self._prefill_attention_seconds(op, devices)
                else:
                    seconds = self._decode_attention_seconds(
                        op, devices, utilization, model.dtype_bytes)
                seconds += self._softmax_seconds(op, devices)
            else:
                seconds = self._vector_seconds(op, devices)
            breakdown[op.name] = breakdown.get(op.name, 0.0) + seconds
        # multi-core all-gather bubbles: two synchronized GEMVs per layer
        rows = batch * query_len
        compute_floor = breakdown.get("out_proj", 0.0)
        bubble = self.dataflow_latency.sync_bubble(
            rows, model.hidden_size, compute_floor, CoreSyncMethod.ALL_GATHER)
        breakdown["core_sync"] = 2 * bubble.exposed_seconds \
            + self.config.layer_overhead_s
        return breakdown

    # ------------------------------------------------------------------ #
    # Compiled decode plans                                                #
    # ------------------------------------------------------------------ #
    #
    # A decode step (query_len == 1) re-derives the same per-operator
    # constants every call: only the attention operator and the
    # bandwidth-utilization point depend on the context length.  The
    # serving simulator evaluates decode_step_time thousands of times per
    # run, so the context-independent parts are compiled once per
    # (model, batch, devices) operating point.  Every arithmetic
    # expression below reproduces the general layer_breakdown() path
    # operation-for-operation, so the fast path is bit-identical — the
    # parity suite in tests/test_sim_fastpath.py holds it to that.

    def _decode_plan(self, model: ModelConfig, batch: int,
                     devices: int) -> "_DecodePlan":
        key = (model, batch, devices)
        plan = self._decode_plans.get(key)
        if plan is None:
            plan = self._build_decode_plan(model, batch, devices)
            self._decode_plans[key] = plan
        return plan

    def _build_decode_plan(self, model: ModelConfig, batch: int,
                           devices: int) -> "_DecodePlan":
        # context length 1 is a probe: every cached constant below is
        # context-independent (the attention operator is rebuilt per call)
        ops = decoder_layer_operators(model, Phase.DECODE, batch, 1, 1)
        rates = self.systolic.peak_flops * self.config.sa_efficiency \
            + self._mt_rate()
        entries: list = []
        flops: list = []
        for op in ops:
            if op.kind == OperatorKind.GEMM:
                entries.append(("gemm", op.name, op.weight_bytes / devices,
                                (op.flops / devices) / rates))
                flops.append(op.flops)
            elif op.kind == OperatorKind.ATTENTION:
                entries.append(("attn", op.name, 0.0, 0.0))
                flops.append(None)
            else:
                entries.append(("vector", op.name,
                                self._vector_seconds(op, devices), 0.0))
                flops.append(op.flops)
        head = lm_head_operator(model, Phase.DECODE, batch)
        step_flops = 2.0 * batch * model.active_params_per_token
        head_seconds = self._decode_gemm_seconds(
            head, devices, self._decode_utilization(step_flops))
        return _DecodePlan(entries=entries, flops=flops,
                           head_seconds=head_seconds)

    def _decode_layer_breakdown(self, model: ModelConfig, batch: int,
                                context_len: int,
                                devices: int) -> dict[str, float]:
        """layer_breakdown(DECODE, query_len=1) via the compiled plan."""
        plan = self._decode_plan(model, batch, devices)
        attn = attention_operator(model, Phase.DECODE, batch, 1, context_len)
        # same left-to-right order as sum(op.flops for op in ops)
        total = 0
        for f in plan.flops:
            total = total + (attn.flops if f is None else f)
        step_flops = total * model.num_layers
        utilization = self._decode_utilization(step_flops)
        bw_util = self.chip.memory_bandwidth * utilization
        breakdown: dict[str, float] = {}
        for kind, name, value, compute_seconds in plan.entries:
            if kind == "gemm":
                # value = sharded weight bytes; same expression as
                # _decode_gemm_seconds with the constants hoisted
                seconds = max(value / bw_util, compute_seconds)
            elif kind == "attn":
                seconds = self._decode_attention_seconds(
                    attn, devices, utilization, model.dtype_bytes)
                seconds += self._softmax_seconds(attn, devices)
            else:
                seconds = value  # precomputed vector-op seconds
            breakdown[name] = breakdown.get(name, 0.0) + seconds
        compute_floor = breakdown.get("out_proj", 0.0)
        bubble = self.dataflow_latency.sync_bubble(
            batch, model.hidden_size, compute_floor,
            CoreSyncMethod.ALL_GATHER)
        breakdown["core_sync"] = 2 * bubble.exposed_seconds \
            + self.config.layer_overhead_s
        return breakdown

    def _tp_sync_seconds(self, model: ModelConfig, rows: int, devices: int,
                         body_seconds: float, overlap_capacity: float) -> float:
        if devices <= 1:
            return 0.0
        method = ModelParallelMapper(model).choose_sync_method(devices)
        tensor_bytes = rows * model.hidden_size * model.dtype_bytes
        plan = layer_sync_plan(method, tensor_bytes, devices)
        return visible_collective_time(
            plan, self.chip.p2p, model.num_layers,
            body_seconds * overlap_capacity)

    def prefill_time(self, model: ModelConfig, batch: int, seq_len: int,
                     devices: int = 1) -> BaselineBreakdown:
        """Latency to prefill ``batch`` requests of ``seq_len`` tokens."""
        layer = self.layer_breakdown(
            model, Phase.PREFILL, batch, seq_len, seq_len, devices)
        per_layer = sum(layer.values())
        compute = per_layer * model.num_layers
        # weights must still arrive from DRAM once per layer
        weight_stream = model.active_param_bytes_per_token / devices / (
            self.chip.memory_bandwidth * self.systolic.dram_stream_utilization)
        body = max(compute, weight_stream)
        comm = self._tp_sync_seconds(model, batch * seq_len, devices,
                                     body, overlap_capacity=0.60)
        attn = layer.get("attention", 0.0) * model.num_layers
        return BaselineBreakdown(
            seconds=body + comm,
            weight_stream=weight_stream,
            attention=attn,
            compute=compute,
            communication=comm,
            overhead=layer.get("core_sync", 0.0) * model.num_layers,
        )

    def decode_step_time(self, model: ModelConfig, batch: int, context_len: int,
                         devices: int = 1) -> BaselineBreakdown:
        """One decode iteration over ``batch`` requests (TBT = 1/this)."""
        layer = self.layer_breakdown(
            model, Phase.DECODE, batch, 1, context_len, devices)
        body = sum(layer.values()) * model.num_layers
        # LM head: a weight-streamed GEMM over the vocabulary — context-
        # independent, so the compiled plan carries it precomputed
        if self.compiled_decode:
            head_seconds = self._decode_plan(model, batch, devices) \
                .head_seconds
        else:
            head = lm_head_operator(model, Phase.DECODE, batch)
            step_flops = 2.0 * batch * model.active_params_per_token
            utilization = self._decode_utilization(step_flops)
            head_seconds = self._decode_gemm_seconds(head, devices,
                                                     utilization)
        body += head_seconds
        comm = self._tp_sync_seconds(model, batch, devices, body,
                                     overlap_capacity=0.95)
        return BaselineBreakdown(
            seconds=body + comm,
            weight_stream=sum(v for k, v in layer.items()
                              if k not in ("attention", "core_sync"))
            * model.num_layers + head_seconds,
            attention=layer.get("attention", 0.0) * model.num_layers,
            communication=comm,
            overhead=layer.get("core_sync", 0.0) * model.num_layers,
        )


class AdorDeviceModel(DeviceModel):
    """:class:`DeviceModel` facade over the HDA scheduler.

    ``compiled_decode=False`` forces the scheduler's uncompiled
    per-operator decode evaluation — the reference implementation the
    compiled plans are held bit-identical to.
    """

    def __init__(self, chip: ChipSpec, use_mac_tree: bool = True,
                 config: SchedulerConfig | None = None,
                 compiled_decode: bool = True) -> None:
        super().__init__(chip)
        self.scheduler = HdaScheduler(chip, use_mac_tree=use_mac_tree,
                                      config=config,
                                      compiled_decode=compiled_decode)

    def prefill_time(self, model: ModelConfig, batch: int, seq_len: int,
                     num_devices: int = 1) -> BaselineBreakdown:
        return self.scheduler.prefill_time(model, batch, seq_len, num_devices)

    def decode_step_time(self, model: ModelConfig, batch: int, context_len: int,
                         num_devices: int = 1) -> BaselineBreakdown:
        return self.scheduler.decode_step_time(model, batch, context_len,
                                               num_devices)


def device_model_for(chip: ChipSpec, **kwargs) -> DeviceModel:
    """Performance model for any chip kind (HDA or baseline)."""
    if chip.kind == ChipKind.ADOR_HDA:
        return AdorDeviceModel(chip, **kwargs)
    return baseline_for(chip)
