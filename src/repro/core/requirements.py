"""Inputs to the ADOR search: end-user SLAs and vendor constraints.

Fig. 9's input box: users supply QoS targets (TTFT, TBT, request rate);
vendors supply hardware budgets (area, power, SRAM, memory system).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.memory import GIB, MIB


@dataclass(frozen=True)
class ServiceLevelObjectives:
    """End-user QoS requirements.

    ``tbt_slo_s`` bounds the time between tokens (the paper reports its
    reciprocal, tokens/sec, in Fig. 15); ``ttft_slo_s`` bounds the time
    to first token; ``target_requests_per_s`` is the vendor-visible
    demand the serving simulator must sustain.
    """

    ttft_slo_s: float = 0.5
    tbt_slo_s: float = 0.05
    target_requests_per_s: float = 10.0
    batch_size: int = 128
    seq_len: int = 1024

    def __post_init__(self) -> None:
        if self.ttft_slo_s <= 0 or self.tbt_slo_s <= 0:
            raise ValueError("SLOs must be positive")
        if self.batch_size < 1 or self.seq_len < 1:
            raise ValueError("batch and sequence length must be >= 1")

    @property
    def min_tokens_per_s(self) -> float:
        """TBT SLO expressed as a per-request decode rate floor."""
        return 1.0 / self.tbt_slo_s


@dataclass(frozen=True)
class VendorConstraints:
    """Hardware budgets the proposed design must respect.

    Defaults describe the A100-class budget used for Table III: 7 nm-era
    die budget, 80 GiB of HBM at 2 TB/s, and an on-chip SRAM budget the
    search splits between local and global memories.
    """

    area_budget_mm2: float = 550.0
    power_budget_w: float = 500.0
    sram_budget_bytes: float = 80 * MIB
    dram_size_bytes: float = 80 * GIB
    dram_bandwidth: float = 2e12
    frequency_hz: float = 1.5e9
    available_p2p_bandwidths: tuple = (16e9, 32e9, 64e9, 128e9)
    min_hardware_utilization: float = 0.6
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.area_budget_mm2 <= 0 or self.power_budget_w <= 0:
            raise ValueError("budgets must be positive")
        if self.dram_bandwidth <= 0 or self.frequency_hz <= 0:
            raise ValueError("bandwidth and frequency must be positive")
        if not 0 < self.min_hardware_utilization <= 1:
            raise ValueError("utilization target must be in (0, 1]")


@dataclass(frozen=True)
class SearchRequest:
    """Complete DSE input: models to serve plus both requirement sets."""

    model_names: tuple
    slos: ServiceLevelObjectives = field(default_factory=ServiceLevelObjectives)
    vendor: VendorConstraints = field(default_factory=VendorConstraints)
    num_devices: int = 1

    def __post_init__(self) -> None:
        if not self.model_names:
            raise ValueError("at least one model is required")
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
