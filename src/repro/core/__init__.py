"""ADOR core: the architecture template, HDA scheduler and DSE search.

This package is the paper's primary contribution.  The template
(:mod:`repro.core.template`) spans the design space of Section IV; the
scheduler (:mod:`repro.core.scheduling`) implements the dynamic
prefill/decode orchestration of Fig. 8 and provides the stage-latency
estimates every experiment consumes; the search
(:mod:`repro.core.search`) runs the three-step exploration loop of
Fig. 9 and emits the Table III design.
"""

from repro.core.requirements import ServiceLevelObjectives, VendorConstraints
from repro.core.template import AdorTemplate, TemplateKnobs
from repro.core.dataflow import DataflowKind, MultiCoreDataflow
from repro.core.allocation import GemmSplit, split_gemm_work
from repro.core.scheduling import (
    AdorDeviceModel,
    HdaScheduler,
    device_model_for,
)
from repro.core.design_point import DesignEvaluation, DesignPoint
from repro.core.search import AdorSearch, SearchResult

__all__ = [
    "ServiceLevelObjectives",
    "VendorConstraints",
    "AdorTemplate",
    "TemplateKnobs",
    "DataflowKind",
    "MultiCoreDataflow",
    "GemmSplit",
    "split_gemm_work",
    "AdorDeviceModel",
    "HdaScheduler",
    "device_model_for",
    "DesignEvaluation",
    "DesignPoint",
    "AdorSearch",
    "SearchResult",
]
