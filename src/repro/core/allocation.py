"""Compile-time GEMM work split between systolic array and MAC tree.

Paper Section IV-E: "considering the ratio of compute units between
systolic arrays and MAC trees, the workload distribution for GEMM
operations is determined at compile time".  Work is split so both unit
pools finish together, which minimizes the makespan of a divisible load.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GemmSplit:
    """Fraction of a GEMM's work assigned to each compute-unit pool."""

    sa_fraction: float
    mt_fraction: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.sa_fraction <= 1.0 and 0.0 <= self.mt_fraction <= 1.0):
            raise ValueError("fractions must be in [0, 1]")
        if abs(self.sa_fraction + self.mt_fraction - 1.0) > 1e-9:
            raise ValueError("fractions must sum to 1")


def split_gemm_work(sa_rate_flops: float, mt_rate_flops: float) -> GemmSplit:
    """Split proportional to effective rates so both pools finish together.

    ``sa_rate_flops`` and ``mt_rate_flops`` are the *effective* (derated)
    throughputs of each pool on the GEMM in question; a pool with zero
    rate receives no work.
    """
    if sa_rate_flops < 0 or mt_rate_flops < 0:
        raise ValueError("rates must be non-negative")
    total = sa_rate_flops + mt_rate_flops
    if total == 0:
        raise ValueError("at least one pool must have a positive rate")
    return GemmSplit(sa_fraction=sa_rate_flops / total,
                     mt_fraction=mt_rate_flops / total)


def hda_gemm_seconds(flops: float, sa_rate_flops: float,
                     mt_rate_flops: float) -> float:
    """Makespan of a GEMM split optimally across the two pools."""
    if flops < 0:
        raise ValueError("flops must be non-negative")
    total = sa_rate_flops + mt_rate_flops
    if total <= 0:
        raise ValueError("no compute available")
    return flops / total
