"""Generic decorator-based string registries.

The model zoo established the repo's extension idiom: named entries in a
flat string-keyed table, loud ``KeyError`` on a typo, no subclassing
required to plug in.  This module generalizes that idiom so chips,
batching policies and workload traces (and anything a later PR adds)
share one implementation instead of three hand-rolled dicts.

Usage, decorator style (the common case — registering a factory)::

    CHIPS = Registry("chip")

    @CHIPS.register("my-chip")
    def my_chip() -> ChipSpec: ...

or direct style (registering a ready value)::

    TRACES.register("ultrachat", ULTRACHAT_LIKE)
"""

from __future__ import annotations

from typing import Any, Callable, Iterator


class Registry:
    """A flat, case-insensitive name -> object table.

    ``names()`` and iteration are always **sorted**: help output, error
    messages and sweep orderings derived from a registry must not depend
    on import order (a nondeterministic CLI choice list is a
    reproducibility bug like any other).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # Registration                                                         #
    # ------------------------------------------------------------------ #

    def register(self, name: str,
                 obj: Any = None) -> Callable[[Any], Any] | Any:
        """Register ``obj`` under ``name``; decorator form when ``obj`` is
        omitted.  Duplicate names fail loudly — silently shadowing a chip
        preset or policy would corrupt every experiment referencing it.
        """
        key = self._key(name)

        def _add(value: Any) -> Any:
            if key in self._entries:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered")
            self._entries[key] = value
            return value

        if obj is None:
            return _add
        return _add(obj)

    def unregister(self, name: str) -> None:
        """Remove an entry (used by tests and experiment teardown)."""
        self._entries.pop(self._key(name), None)

    # ------------------------------------------------------------------ #
    # Lookup                                                               #
    # ------------------------------------------------------------------ #

    def get(self, name: str) -> Any:
        """Look up by name; unknown names list the known ones."""
        key = self._key(name)
        if key not in self._entries:
            known = ", ".join(sorted(self._entries))
            raise KeyError(
                f"unknown {self.kind} {name!r}; "
                f"known {self.kind} names: {known}")
        return self._entries[key]

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return self._key(name) in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(name: str) -> str:
        if not isinstance(name, str) or not name:
            raise ValueError("registry names must be non-empty strings")
        return name.lower()
