"""Request generation (the Request Generator box of Fig. 14b).

:class:`PoissonRequestGenerator` draws exponential inter-arrival times
at a fixed rate; :class:`OnOffRequestGenerator` modulates the rate with
alternating on/off phases — the bursty traffic that separates adaptive
routers from round-robin in the cluster benchmarks.  Token lengths come
from a :class:`~repro.serving.dataset.ChatTraceConfig`.  All randomness
flows through one injected ``numpy.random.Generator``.
"""

from __future__ import annotations

import numpy as np

from repro.serving.dataset import ChatTraceConfig, sample_trace
from repro.serving.request import Request


def _requests_from(arrivals, lengths) -> list[Request]:
    """Zip arrival times and (input, output) lengths into requests —
    the one place request construction happens, so a new ``Request``
    field threads through every generator at once."""
    return [
        Request(
            request_id=i,
            arrival_time=float(arrivals[i]),
            input_tokens=lengths[i][0],
            output_tokens=lengths[i][1],
        )
        for i in range(len(arrivals))
    ]


class PoissonRequestGenerator:
    """Generates request arrival schedules."""

    def __init__(self, trace: ChatTraceConfig, rate_per_s: float,
                 rng: np.random.Generator) -> None:
        if rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        self.trace = trace
        self.rate = rate_per_s
        self.rng = rng

    def generate(self, count: int, start_time: float = 0.0) -> list[Request]:
        """``count`` requests with Poisson arrivals from ``start_time``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return []
        gaps = self.rng.exponential(1.0 / self.rate, size=count)
        arrivals = start_time + np.cumsum(gaps)
        lengths = sample_trace(self.trace, count, self.rng)
        return _requests_from(arrivals, lengths)


class OnOffRequestGenerator:
    """Bursty arrivals: a Markov-modulated Poisson (on/off) process.

    Time alternates between fixed-length phases; arrivals are Poisson at
    ``on_rate_per_s`` during even phases and ``off_rate_per_s`` during
    odd ones.  Real chat traffic shows exactly this regime switching
    (diurnal peaks, thundering herds), and it is the workload where
    load-aware routing visibly beats round-robin.
    """

    def __init__(self, trace: ChatTraceConfig, on_rate_per_s: float,
                 off_rate_per_s: float, phase_seconds: float,
                 rng: np.random.Generator) -> None:
        if on_rate_per_s <= 0 or off_rate_per_s <= 0:
            raise ValueError("arrival rates must be positive")
        if phase_seconds <= 0:
            raise ValueError("phase length must be positive")
        self.trace = trace
        self.on_rate = on_rate_per_s
        self.off_rate = off_rate_per_s
        self.phase_seconds = phase_seconds
        self.rng = rng

    def generate(self, count: int, start_time: float = 0.0) -> list[Request]:
        """``count`` requests with phase-modulated Poisson arrivals."""
        if count < 0:
            raise ValueError("count must be non-negative")
        lengths = sample_trace(self.trace, count, self.rng)
        now = start_time
        arrivals = []
        for _ in range(count):
            phase = int(now / self.phase_seconds) % 2
            rate = self.on_rate if phase == 0 else self.off_rate
            now += float(self.rng.exponential(1.0 / rate))
            arrivals.append(now)
        return _requests_from(arrivals, lengths)
