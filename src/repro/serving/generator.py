"""Poisson request generation (the Request Generator box of Fig. 14b).

Inter-arrival times are exponential at the configured rate; token
lengths come from a :class:`~repro.serving.dataset.ChatTraceConfig`.
All randomness flows through one injected ``numpy.random.Generator``.
"""

from __future__ import annotations

import numpy as np

from repro.serving.dataset import ChatTraceConfig, sample_trace
from repro.serving.request import Request


class PoissonRequestGenerator:
    """Generates request arrival schedules."""

    def __init__(self, trace: ChatTraceConfig, rate_per_s: float,
                 rng: np.random.Generator) -> None:
        if rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        self.trace = trace
        self.rate = rate_per_s
        self.rng = rng

    def generate(self, count: int, start_time: float = 0.0) -> list[Request]:
        """``count`` requests with Poisson arrivals from ``start_time``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return []
        gaps = self.rng.exponential(1.0 / self.rate, size=count)
        arrivals = start_time + np.cumsum(gaps)
        lengths = sample_trace(self.trace, count, self.rng)
        return [
            Request(
                request_id=i,
                arrival_time=float(arrivals[i]),
                input_tokens=lengths[i][0],
                output_tokens=lengths[i][1],
            )
            for i in range(count)
        ]
