"""Request generation (the Request Generator box of Fig. 14b).

:class:`PoissonRequestGenerator` draws exponential inter-arrival times
at a fixed rate; :class:`OnOffRequestGenerator` modulates the rate with
alternating on/off phases — the bursty traffic that separates adaptive
routers from round-robin in the cluster benchmarks.  Token lengths come
from a :class:`~repro.serving.dataset.ChatTraceConfig`.  All randomness
flows through one injected ``numpy.random.Generator``.

The ``iter_*`` functions are the **streaming replay** twins of the
materializing generators: they yield the identical request sequence —
same ids, same arrival floats, same lengths, bit for bit — at constant
memory.  The materialized path draws whole arrays in a fixed order
(e.g. all gaps, then all input lengths, then all output lengths) from
one seeded generator, so a naive chunked loop would interleave the
draws and land on different stream positions.  The replay instead runs
one ``default_rng(seed)`` instance *per draw role*, fast-forwards each
past the roles drawn before it (chunk-wise, nothing retained), and then
pulls chunks from every role in lockstep.  numpy's ``Generator``
distributions consume the underlying bit stream one value at a time,
so splitting a ``size=n`` draw into chunks reproduces the exact same
values — the property the parity suite pins down.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.serving.dataset import (
    ChatTraceConfig,
    sample_inputs,
    sample_outputs,
    sample_trace,
)
from repro.serving.request import Request

#: draws per chunk in the streaming replay generators — bounds peak
#: memory at a few array pages regardless of the workload size
STREAM_CHUNK = 4096


def _chunk_sizes(count: int, chunk: int) -> Iterator[int]:
    """Split ``count`` draws into chunk-sized runs (last one ragged)."""
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    while count > 0:
        step = chunk if count > chunk else count
        yield step
        count -= step


def _skip_exponential(rng: np.random.Generator, count: int,
                      chunk: int) -> None:
    """Fast-forward past ``count`` exponential draws (constant memory).

    The scale parameter only multiplies the standard draw, so any scale
    consumes the identical stream positions.
    """
    for step in _chunk_sizes(count, chunk):
        rng.standard_exponential(size=step)


def _skip_lengths(rng: np.random.Generator, count: int,
                  chunk: int) -> None:
    """Fast-forward past one lognormal length array (one normal each)."""
    for step in _chunk_sizes(count, chunk):
        rng.standard_normal(size=step)


def _requests_from(arrivals, lengths) -> list[Request]:
    """Zip arrival times and (input, output) lengths into requests —
    the one place request construction happens, so a new ``Request``
    field threads through every generator at once."""
    return [
        Request(
            request_id=i,
            arrival_time=float(arrivals[i]),
            input_tokens=lengths[i][0],
            output_tokens=lengths[i][1],
        )
        for i in range(len(arrivals))
    ]


class PoissonRequestGenerator:
    """Generates request arrival schedules."""

    def __init__(self, trace: ChatTraceConfig, rate_per_s: float,
                 rng: np.random.Generator) -> None:
        if rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        self.trace = trace
        self.rate = rate_per_s
        self.rng = rng

    def generate(self, count: int, start_time: float = 0.0) -> list[Request]:
        """``count`` requests with Poisson arrivals from ``start_time``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return []
        gaps = self.rng.exponential(1.0 / self.rate, size=count)
        arrivals = start_time + np.cumsum(gaps)
        lengths = sample_trace(self.trace, count, self.rng)
        return _requests_from(arrivals, lengths)


class PoissonArrivalTemplate:
    """A Poisson workload drawn once and rescaled per probed rate.

    The capacity search probes many arrival rates against *the same*
    workload.  Regenerating with :class:`PoissonRequestGenerator` per
    probe redraws identical randomness; this template draws the
    unit-rate exponential gaps and the token lengths a single time, and
    :meth:`requests_at` rescales the gaps by ``1 / rate``.

    The rescaling is draw-for-draw **bit-identical** to fresh
    generation: numpy's ``Generator.exponential(scale)`` evaluates
    ``scale * standard_exponential()`` per element, so
    ``Exp(1/rate) == Exp(1) * (1/rate)`` on the very same underlying
    uniforms, and the length draws that follow consume the identical
    stream positions.  Every probed rate therefore sees common random
    numbers (the classic variance-reduction trick) while skipping the
    per-probe regeneration cost.
    """

    def __init__(self, trace: ChatTraceConfig, count: int, seed: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.trace = trace
        self.count = count
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._unit_gaps = rng.standard_exponential(size=count)
        self._lengths = sample_trace(trace, count, rng)

    def requests_at(self, rate_per_s: float,
                    start_time: float = 0.0) -> list[Request]:
        """Fresh :class:`Request` objects for one probed arrival rate."""
        if rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if self.count == 0:
            return []
        # identical float operations to PoissonRequestGenerator.generate:
        # numpy's exponential(scale) multiplies each standard draw by the
        # scale, and IEEE multiplication is commutative bit-for-bit
        gaps = self._unit_gaps * (1.0 / rate_per_s)
        arrivals = start_time + np.cumsum(gaps)
        return _requests_from(arrivals, self._lengths)


class OnOffRequestGenerator:
    """Bursty arrivals: a Markov-modulated Poisson (on/off) process.

    Time alternates between fixed-length phases; arrivals are Poisson at
    ``on_rate_per_s`` during even phases and ``off_rate_per_s`` during
    odd ones.  Real chat traffic shows exactly this regime switching
    (diurnal peaks, thundering herds), and it is the workload where
    load-aware routing visibly beats round-robin.
    """

    def __init__(self, trace: ChatTraceConfig, on_rate_per_s: float,
                 off_rate_per_s: float, phase_seconds: float,
                 rng: np.random.Generator) -> None:
        if on_rate_per_s <= 0 or off_rate_per_s <= 0:
            raise ValueError("arrival rates must be positive")
        if phase_seconds <= 0:
            raise ValueError("phase length must be positive")
        self.trace = trace
        self.on_rate = on_rate_per_s
        self.off_rate = off_rate_per_s
        self.phase_seconds = phase_seconds
        self.rng = rng

    def generate(self, count: int, start_time: float = 0.0) -> list[Request]:
        """``count`` requests with phase-modulated Poisson arrivals."""
        if count < 0:
            raise ValueError("count must be non-negative")
        lengths = sample_trace(self.trace, count, self.rng)
        now = start_time
        arrivals = []
        for _ in range(count):
            phase = int(now / self.phase_seconds) % 2
            rate = self.on_rate if phase == 0 else self.off_rate
            now += float(self.rng.exponential(1.0 / rate))
            arrivals.append(now)
        return _requests_from(arrivals, lengths)


# --------------------------------------------------------------------- #
# Streaming replay generators                                            #
# --------------------------------------------------------------------- #

def iter_poisson_requests(trace: ChatTraceConfig, rate_per_s: float,
                          seed: int, count: int, start_time: float = 0.0,
                          chunk: int = STREAM_CHUNK) -> Iterator[Request]:
    """Stream the exact request sequence of
    ``PoissonRequestGenerator(trace, rate, default_rng(seed)).generate(count)``.

    Three replay generators cover the materialized draw order (all
    gaps, then all inputs, then all outputs): the gap stream starts at
    position zero, the input stream skips the gaps, the output stream
    skips gaps and inputs.  Arrival times accumulate in a running
    float64 sum — ``np.cumsum`` is the same strictly sequential
    addition chain, so every arrival float matches bit for bit.
    """
    if rate_per_s <= 0:
        raise ValueError("arrival rate must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    gap_rng = np.random.default_rng(seed)
    in_rng = np.random.default_rng(seed)
    out_rng = np.random.default_rng(seed)
    _skip_exponential(in_rng, count, chunk)
    _skip_exponential(out_rng, count, chunk)
    _skip_lengths(out_rng, count, chunk)
    scale = 1.0 / rate_per_s
    total = 0.0
    request_id = 0
    for step in _chunk_sizes(count, chunk):
        gaps = gap_rng.exponential(scale, size=step)
        inputs = sample_inputs(trace, step, in_rng)
        outputs = sample_outputs(trace, step, out_rng)
        for i in range(step):
            total += float(gaps[i])
            yield Request(
                request_id=request_id,
                arrival_time=float(start_time + total),
                input_tokens=int(inputs[i]),
                output_tokens=int(outputs[i]),
            )
            request_id += 1


def iter_onoff_requests(trace: ChatTraceConfig, on_rate_per_s: float,
                        off_rate_per_s: float, phase_seconds: float,
                        seed: int, count: int, start_time: float = 0.0,
                        chunk: int = STREAM_CHUNK) -> Iterator[Request]:
    """Stream the exact request sequence of
    ``OnOffRequestGenerator(trace, on, off, phase, default_rng(seed))
    .generate(count)``.

    The materialized draw order is lengths first (inputs, then
    outputs), then one scalar exponential per arrival; the replay skips
    accordingly and walks the same phase-modulated clock.
    """
    if on_rate_per_s <= 0 or off_rate_per_s <= 0:
        raise ValueError("arrival rates must be positive")
    if phase_seconds <= 0:
        raise ValueError("phase length must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    in_rng = np.random.default_rng(seed)
    out_rng = np.random.default_rng(seed)
    gap_rng = np.random.default_rng(seed)
    _skip_lengths(out_rng, count, chunk)
    _skip_lengths(gap_rng, count, chunk)
    _skip_lengths(gap_rng, count, chunk)
    now = start_time
    request_id = 0
    for step in _chunk_sizes(count, chunk):
        inputs = sample_inputs(trace, step, in_rng)
        outputs = sample_outputs(trace, step, out_rng)
        for i in range(step):
            phase = int(now / phase_seconds) % 2
            rate = on_rate_per_s if phase == 0 else off_rate_per_s
            now += float(gap_rng.exponential(1.0 / rate))
            yield Request(
                request_id=request_id,
                arrival_time=float(now),
                input_tokens=int(inputs[i]),
                output_tokens=int(outputs[i]),
            )
            request_id += 1
