"""Request generation (the Request Generator box of Fig. 14b).

:class:`PoissonRequestGenerator` draws exponential inter-arrival times
at a fixed rate; :class:`OnOffRequestGenerator` modulates the rate with
alternating on/off phases — the bursty traffic that separates adaptive
routers from round-robin in the cluster benchmarks.  Token lengths come
from a :class:`~repro.serving.dataset.ChatTraceConfig`.  All randomness
flows through one injected ``numpy.random.Generator``.
"""

from __future__ import annotations

import numpy as np

from repro.serving.dataset import ChatTraceConfig, sample_trace
from repro.serving.request import Request


def _requests_from(arrivals, lengths) -> list[Request]:
    """Zip arrival times and (input, output) lengths into requests —
    the one place request construction happens, so a new ``Request``
    field threads through every generator at once."""
    return [
        Request(
            request_id=i,
            arrival_time=float(arrivals[i]),
            input_tokens=lengths[i][0],
            output_tokens=lengths[i][1],
        )
        for i in range(len(arrivals))
    ]


class PoissonRequestGenerator:
    """Generates request arrival schedules."""

    def __init__(self, trace: ChatTraceConfig, rate_per_s: float,
                 rng: np.random.Generator) -> None:
        if rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        self.trace = trace
        self.rate = rate_per_s
        self.rng = rng

    def generate(self, count: int, start_time: float = 0.0) -> list[Request]:
        """``count`` requests with Poisson arrivals from ``start_time``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return []
        gaps = self.rng.exponential(1.0 / self.rate, size=count)
        arrivals = start_time + np.cumsum(gaps)
        lengths = sample_trace(self.trace, count, self.rng)
        return _requests_from(arrivals, lengths)


class PoissonArrivalTemplate:
    """A Poisson workload drawn once and rescaled per probed rate.

    The capacity search probes many arrival rates against *the same*
    workload.  Regenerating with :class:`PoissonRequestGenerator` per
    probe redraws identical randomness; this template draws the
    unit-rate exponential gaps and the token lengths a single time, and
    :meth:`requests_at` rescales the gaps by ``1 / rate``.

    The rescaling is draw-for-draw **bit-identical** to fresh
    generation: numpy's ``Generator.exponential(scale)`` evaluates
    ``scale * standard_exponential()`` per element, so
    ``Exp(1/rate) == Exp(1) * (1/rate)`` on the very same underlying
    uniforms, and the length draws that follow consume the identical
    stream positions.  Every probed rate therefore sees common random
    numbers (the classic variance-reduction trick) while skipping the
    per-probe regeneration cost.
    """

    def __init__(self, trace: ChatTraceConfig, count: int, seed: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.trace = trace
        self.count = count
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._unit_gaps = rng.standard_exponential(size=count)
        self._lengths = sample_trace(trace, count, rng)

    def requests_at(self, rate_per_s: float,
                    start_time: float = 0.0) -> list[Request]:
        """Fresh :class:`Request` objects for one probed arrival rate."""
        if rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if self.count == 0:
            return []
        # identical float operations to PoissonRequestGenerator.generate:
        # numpy's exponential(scale) multiplies each standard draw by the
        # scale, and IEEE multiplication is commutative bit-for-bit
        gaps = self._unit_gaps * (1.0 / rate_per_s)
        arrivals = start_time + np.cumsum(gaps)
        return _requests_from(arrivals, self._lengths)


class OnOffRequestGenerator:
    """Bursty arrivals: a Markov-modulated Poisson (on/off) process.

    Time alternates between fixed-length phases; arrivals are Poisson at
    ``on_rate_per_s`` during even phases and ``off_rate_per_s`` during
    odd ones.  Real chat traffic shows exactly this regime switching
    (diurnal peaks, thundering herds), and it is the workload where
    load-aware routing visibly beats round-robin.
    """

    def __init__(self, trace: ChatTraceConfig, on_rate_per_s: float,
                 off_rate_per_s: float, phase_seconds: float,
                 rng: np.random.Generator) -> None:
        if on_rate_per_s <= 0 or off_rate_per_s <= 0:
            raise ValueError("arrival rates must be positive")
        if phase_seconds <= 0:
            raise ValueError("phase length must be positive")
        self.trace = trace
        self.on_rate = on_rate_per_s
        self.off_rate = off_rate_per_s
        self.phase_seconds = phase_seconds
        self.rng = rng

    def generate(self, count: int, start_time: float = 0.0) -> list[Request]:
        """``count`` requests with phase-modulated Poisson arrivals."""
        if count < 0:
            raise ValueError("count must be non-negative")
        lengths = sample_trace(self.trace, count, self.rng)
        now = start_time
        arrivals = []
        for _ in range(count):
            phase = int(now / self.phase_seconds) % 2
            rate = self.on_rate if phase == 0 else self.off_rate
            now += float(self.rng.exponential(1.0 / rate))
            arrivals.append(now)
        return _requests_from(arrivals, lengths)
