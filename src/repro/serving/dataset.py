"""Synthetic chat-trace generator (the ultrachat_200k substitution).

The paper drives its Fig. 16 experiment with token-length patterns
reconstructed from HuggingFaceH4/ultrachat_200k.  Offline, we generate
(input_len, output_len) pairs from log-normal marginals matched to that
dataset's published summary statistics.  Ultrachat is *multi-turn*: a
served request carries the running conversation history as its prompt,
so the effective input length is the accumulated context (~760 tokens on
average) while responses average ~260 tokens, both heavy-tailed.  The
serving simulator consumes only these pairs, so QoS trends depend
exactly on the distribution shape this generator preserves (see
DESIGN.md's substitution table).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ChatTraceConfig:
    """Log-normal token-length marginals for a chat workload."""

    name: str
    input_median: float
    input_sigma: float
    output_median: float
    output_sigma: float
    min_input: int = 8
    max_input: int = 4096
    min_output: int = 16
    max_output: int = 2048

    def __post_init__(self) -> None:
        if self.input_median <= 0 or self.output_median <= 0:
            raise ValueError("medians must be positive")
        if self.input_sigma < 0 or self.output_sigma < 0:
            raise ValueError("sigmas must be non-negative")

    @property
    def mean_input(self) -> float:
        return self.input_median * math.exp(self.input_sigma ** 2 / 2)

    @property
    def mean_output(self) -> float:
        return self.output_median * math.exp(self.output_sigma ** 2 / 2)


#: Calibrated to ultrachat_200k summary statistics (multi-turn chat:
#: prompts include conversation history).
ULTRACHAT_LIKE = ChatTraceConfig(
    name="ultrachat-like",
    input_median=550.0,
    input_sigma=0.8,
    output_median=220.0,
    output_sigma=0.6,
)

#: A fixed-length trace for controlled sweeps (Fig. 17's grid).
def fixed_trace(input_len: int, output_len: int) -> ChatTraceConfig:
    """Degenerate trace: every request has the same lengths."""
    return ChatTraceConfig(
        name=f"fixed-{input_len}x{output_len}",
        input_median=float(input_len),
        input_sigma=0.0,
        output_median=float(output_len),
        output_sigma=0.0,
        min_input=1,
        max_input=max(1, input_len),
        min_output=1,
        max_output=max(1, output_len),
    )


def sample_inputs(config: ChatTraceConfig, count: int,
                  rng: np.random.Generator) -> np.ndarray:
    """Draw ``count`` clipped input lengths (one normal draw each).

    Split out of :func:`sample_trace` so the streaming replay
    generators can consume the input and output halves of the draw
    stream independently — each half performs the identical numpy
    operations, so chunked replay stays bit-for-bit equal to one
    full-size :func:`sample_trace` call.
    """
    values = rng.lognormal(math.log(config.input_median),
                           max(config.input_sigma, 1e-12), size=count)
    return np.clip(np.round(values), config.min_input, config.max_input)


def sample_outputs(config: ChatTraceConfig, count: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Draw ``count`` clipped output lengths (one normal draw each)."""
    values = rng.lognormal(math.log(config.output_median),
                           max(config.output_sigma, 1e-12), size=count)
    return np.clip(np.round(values), config.min_output, config.max_output)


def sample_trace(config: ChatTraceConfig, count: int,
                 rng: np.random.Generator) -> list[tuple[int, int]]:
    """Draw ``count`` (input_len, output_len) pairs."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return []
    inputs = sample_inputs(config, count, rng)
    outputs = sample_outputs(config, count, rng)
    return [(int(i), int(o)) for i, o in zip(inputs, outputs)]
