"""Streaming arrival consumption: the constant-memory request pipe.

A :class:`RequestStream` wraps a lazy request iterator (see
``iter_requests`` on :class:`~repro.api.specs.WorkloadSpec` and the
``iter_*`` generators in :mod:`repro.serving.generator` /
:mod:`repro.serving.sessions`) and exposes exactly the head-of-queue
interface the engines already consume — truthiness, ``stream[0]`` and
``popleft()`` — so ``ServingEngine.run`` and ``ClusterEngine.run`` pull
arrivals one at a time instead of materializing the full request list.
Peak memory becomes the *in-flight* window (queued + batched requests),
independent of how many requests the workload describes.

The stream also owns the arrival-order contract.  The engines assume a
time-sorted arrival sequence; a materialized list can simply be sorted,
but sorting a generator would materialize it and defeat the point.  The
stream therefore checks monotonicity online as requests are pulled and
fails loudly — with the offending timestamp — the instant a producer
emits out of order.  Streaming never reorders: a stream that survives a
run is proof the producer was sorted, which is exactly the property the
bit-identity parity suites rely on.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.serving.request import Request


class OutOfOrderArrival(ValueError):
    """A streaming producer emitted arrivals out of time order."""


class RequestStream:
    """Deque-like view over a lazy, time-sorted request iterator.

    Supports the exact subset of :class:`collections.deque` the engines
    use on their pending queue: ``bool(stream)`` / ``stream[0]`` peek at
    the next arrival (pulling at most one request ahead — the bounded
    look-ahead window), ``popleft()`` consumes it, and iterating drains
    whatever remains (used for the unfinished tail of a truncated run).
    Every pull runs the online monotonicity check.
    """

    __slots__ = ("_source", "_head", "_exhausted", "_last_arrival",
                 "emitted")

    def __init__(self, source: Iterable[Request]) -> None:
        self._source = iter(source)
        self._head: Request | None = None
        self._exhausted = False
        self._last_arrival: float | None = None
        #: requests handed out so far (progress reporting)
        self.emitted = 0

    def _pull(self) -> None:
        if self._head is not None or self._exhausted:
            return
        try:
            request = next(self._source)
        except StopIteration:
            self._exhausted = True
            return
        last = self._last_arrival
        if last is not None and request.arrival_time < last:
            raise OutOfOrderArrival(
                f"streaming arrivals must be time-sorted: request "
                f"{request.request_id} arrives at "
                f"{request.arrival_time!r} after the stream already "
                f"reached {last!r}")
        self._last_arrival = request.arrival_time
        self._head = request

    def __bool__(self) -> bool:
        self._pull()
        return self._head is not None

    def __getitem__(self, index: int) -> Request:
        if index != 0:
            raise IndexError(
                "a RequestStream only exposes the head ([0]); deeper "
                "look-ahead would grow the window past its bound")
        self._pull()
        if self._head is None:
            raise IndexError("peek on an exhausted RequestStream")
        return self._head

    def popleft(self) -> Request:
        self._pull()
        head = self._head
        if head is None:
            raise IndexError("popleft on an exhausted RequestStream")
        self._head = None
        self.emitted += 1
        return head

    def __iter__(self) -> Iterator[Request]:
        while True:
            self._pull()
            if self._head is None:
                return
            yield self.popleft()


def as_stream(requests: Iterable[Request]) -> RequestStream:
    """Wrap any time-sorted request iterable (idempotent on streams)."""
    if isinstance(requests, RequestStream):
        return requests
    return RequestStream(requests)
