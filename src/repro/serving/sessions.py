"""Multi-turn chat sessions (the workload behind ultrachat's statistics).

A chat user sends follow-up turns whose prompts carry the running
conversation; the serving system therefore sees correlated requests with
growing inputs.  This generator produces such sessions — turn *t*'s
input length is the accumulated history plus a fresh question — and
flattens them into the arrival stream the engine consumes.

The single-turn :class:`~repro.serving.dataset.ChatTraceConfig` marginals
remain the calibration target: sessions are built so the *aggregate*
distribution of effective input lengths matches the multi-turn ultrachat
statistics DESIGN.md documents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.request import Request


@dataclass(frozen=True)
class SessionConfig:
    """Shape of a multi-turn chat session."""

    mean_turns: float = 3.7          # ultrachat's published average
    question_median: float = 60.0    # fresh tokens per turn
    question_sigma: float = 0.7
    answer_median: float = 220.0
    answer_sigma: float = 0.6
    think_time_mean_s: float = 20.0  # user pause between turns
    max_context: int = 8192

    def __post_init__(self) -> None:
        if self.mean_turns < 1:
            raise ValueError("sessions need at least one expected turn")
        if self.think_time_mean_s < 0:
            raise ValueError("think time must be non-negative")


@dataclass(frozen=True)
class SessionTurn:
    """One turn with its accumulated context."""

    session_id: int
    turn_index: int
    arrival_time: float
    input_tokens: int    # history + fresh question
    output_tokens: int
    history_tokens: int = 0  # leading prompt tokens repeating past turns


class MultiTurnSessionGenerator:
    """Generates sessions and flattens them into request streams."""

    def __init__(self, config: SessionConfig,
                 rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng

    def _length(self, median: float, sigma: float) -> int:
        return max(1, int(round(self.rng.lognormal(np.log(median), sigma))))

    def generate_session(self, session_id: int,
                         start_time: float) -> list[SessionTurn]:
        """One session: geometric turn count, growing context."""
        config = self.config
        # geometric with the configured mean (>= 1 turn)
        p = 1.0 / config.mean_turns
        turns = self.rng.geometric(p)
        history = 0
        now = start_time
        out: list[SessionTurn] = []
        for index in range(turns):
            question = self._length(config.question_median,
                                    config.question_sigma)
            answer = self._length(config.answer_median, config.answer_sigma)
            input_tokens = min(history + question, config.max_context)
            out.append(SessionTurn(
                session_id=session_id,
                turn_index=index,
                arrival_time=now,
                input_tokens=input_tokens,
                output_tokens=answer,
                # context clamping can leave history == input_tokens;
                # the prefix cache separately guarantees at least one
                # recomputed token, so no extra clamp here
                history_tokens=min(history, input_tokens),
            ))
            history = min(input_tokens + answer, config.max_context)
            now += self.rng.exponential(config.think_time_mean_s)
        return out

    def generate_stream(self, sessions: int,
                        session_rate_per_s: float) -> list[Request]:
        """Poisson session starts, flattened to a time-sorted request list."""
        if sessions < 0:
            raise ValueError("sessions must be non-negative")
        if session_rate_per_s <= 0:
            raise ValueError("session rate must be positive")
        gaps = self.rng.exponential(1.0 / session_rate_per_s, size=sessions)
        starts = np.cumsum(gaps)
        turns: list[SessionTurn] = []
        for sid in range(sessions):
            turns.extend(self.generate_session(sid, float(starts[sid])))
        turns.sort(key=lambda t: t.arrival_time)
        return [
            Request(
                request_id=i,
                arrival_time=turn.arrival_time,
                input_tokens=turn.input_tokens,
                output_tokens=turn.output_tokens,
                session_id=turn.session_id,
                turn_index=turn.turn_index,
                history_tokens=turn.history_tokens,
            )
            for i, turn in enumerate(turns)
        ]

    def expected_requests_per_session(self) -> float:
        return self.config.mean_turns
