"""Multi-turn chat sessions (the workload behind ultrachat's statistics).

A chat user sends follow-up turns whose prompts carry the running
conversation; the serving system therefore sees correlated requests with
growing inputs.  This generator produces such sessions — turn *t*'s
input length is the accumulated history plus a fresh question — and
flattens them into the arrival stream the engine consumes.

The single-turn :class:`~repro.serving.dataset.ChatTraceConfig` marginals
remain the calibration target: sessions are built so the *aggregate*
distribution of effective input lengths matches the multi-turn ultrachat
statistics DESIGN.md documents.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.serving.request import Request


@dataclass(frozen=True)
class SessionConfig:
    """Shape of a multi-turn chat session."""

    mean_turns: float = 3.7          # ultrachat's published average
    question_median: float = 60.0    # fresh tokens per turn
    question_sigma: float = 0.7
    answer_median: float = 220.0
    answer_sigma: float = 0.6
    think_time_mean_s: float = 20.0  # user pause between turns
    max_context: int = 8192

    def __post_init__(self) -> None:
        if self.mean_turns < 1:
            raise ValueError("sessions need at least one expected turn")
        if self.think_time_mean_s < 0:
            raise ValueError("think time must be non-negative")


@dataclass(frozen=True)
class SessionTurn:
    """One turn with its accumulated context."""

    session_id: int
    turn_index: int
    arrival_time: float
    input_tokens: int    # history + fresh question
    output_tokens: int
    history_tokens: int = 0  # leading prompt tokens repeating past turns


class MultiTurnSessionGenerator:
    """Generates sessions and flattens them into request streams."""

    def __init__(self, config: SessionConfig,
                 rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng

    def _length(self, median: float, sigma: float) -> int:
        return max(1, int(round(self.rng.lognormal(np.log(median), sigma))))

    def generate_session(self, session_id: int,
                         start_time: float) -> list[SessionTurn]:
        """One session: geometric turn count, growing context."""
        config = self.config
        # geometric with the configured mean (>= 1 turn)
        p = 1.0 / config.mean_turns
        turns = self.rng.geometric(p)
        history = 0
        now = start_time
        out: list[SessionTurn] = []
        for index in range(turns):
            question = self._length(config.question_median,
                                    config.question_sigma)
            answer = self._length(config.answer_median, config.answer_sigma)
            input_tokens = min(history + question, config.max_context)
            out.append(SessionTurn(
                session_id=session_id,
                turn_index=index,
                arrival_time=now,
                input_tokens=input_tokens,
                output_tokens=answer,
                # context clamping can leave history == input_tokens;
                # the prefix cache separately guarantees at least one
                # recomputed token, so no extra clamp here
                history_tokens=min(history, input_tokens),
            ))
            history = min(input_tokens + answer, config.max_context)
            now += self.rng.exponential(config.think_time_mean_s)
        return out

    def generate_stream(self, sessions: int,
                        session_rate_per_s: float) -> list[Request]:
        """Poisson session starts, flattened to a time-sorted request list."""
        if sessions < 0:
            raise ValueError("sessions must be non-negative")
        if session_rate_per_s <= 0:
            raise ValueError("session rate must be positive")
        gaps = self.rng.exponential(1.0 / session_rate_per_s, size=sessions)
        starts = np.cumsum(gaps)
        turns: list[SessionTurn] = []
        for sid in range(sessions):
            turns.extend(self.generate_session(sid, float(starts[sid])))
        turns.sort(key=lambda t: t.arrival_time)
        return [
            Request(
                request_id=i,
                arrival_time=turn.arrival_time,
                input_tokens=turn.input_tokens,
                output_tokens=turn.output_tokens,
                session_id=turn.session_id,
                turn_index=turn.turn_index,
                history_tokens=turn.history_tokens,
            )
            for i, turn in enumerate(turns)
        ]

    def expected_requests_per_session(self) -> float:
        return self.config.mean_turns


def iter_session_requests(config: SessionConfig, sessions: int,
                          session_rate_per_s: float, seed: int,
                          chunk: int = 4096) -> Iterator[Request]:
    """Stream the exact request sequence of
    ``MultiTurnSessionGenerator(config, default_rng(seed))
    .generate_stream(sessions, session_rate_per_s)``.

    The materialized path draws all session-start gaps up front, then
    each session's body draws in session order, and finally performs a
    *stable* sort by arrival time.  The replay splits the stream into a
    start-gap generator and a body generator (fast-forwarded past the
    gap draws) and merges turns through a heap keyed on
    ``(arrival_time, session_id, turn_index)`` — the stable-sort order,
    since sessions are generated in id order and turns in index order.
    Before generating session *s* (starting at time ``start``), every
    buffered turn with ``arrival_time <= start`` is emitted: all turns
    of later sessions arrive at or after ``start`` (session starts are
    non-decreasing and think times are non-negative), so nothing that
    should sort earlier can still appear.  The heap holds only the
    turns of sessions whose tails overlap the current start time — the
    bounded look-ahead window.
    """
    if sessions < 0:
        raise ValueError("sessions must be non-negative")
    if session_rate_per_s <= 0:
        raise ValueError("session rate must be positive")
    from repro.serving.generator import _chunk_sizes, _skip_exponential

    start_rng = np.random.default_rng(seed)
    body_rng = np.random.default_rng(seed)
    _skip_exponential(body_rng, sessions, chunk)
    generator = MultiTurnSessionGenerator(config, body_rng)

    # (arrival, session_id, turn_index) reproduces the stable sort; the
    # SessionTurn payload is never compared because (sid, turn) is unique
    heap: list[tuple[float, int, int, SessionTurn]] = []
    request_id = 0
    session_id = 0
    total = 0.0

    def _emit(turn: SessionTurn) -> Request:
        nonlocal request_id
        request = Request(
            request_id=request_id,
            arrival_time=turn.arrival_time,
            input_tokens=turn.input_tokens,
            output_tokens=turn.output_tokens,
            session_id=turn.session_id,
            turn_index=turn.turn_index,
            history_tokens=turn.history_tokens,
        )
        request_id += 1
        return request

    for step in _chunk_sizes(sessions, chunk):
        gaps = start_rng.exponential(1.0 / session_rate_per_s, size=step)
        for i in range(step):
            total += float(gaps[i])
            start = float(total)
            while heap and heap[0][0] <= start:
                yield _emit(heapq.heappop(heap)[3])
            for turn in generator.generate_session(session_id, start):
                heapq.heappush(
                    heap,
                    (turn.arrival_time, turn.session_id,
                     turn.turn_index, turn))
            session_id += 1
    while heap:
        yield _emit(heapq.heappop(heap)[3])
