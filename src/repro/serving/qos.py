"""QoS accounting: the QoS Calculator of Fig. 14(b).

Aggregates per-request TTFT / TBT / end-to-end latency into the summary
statistics the paper reports (means and tail percentiles), plus the
token and request throughput a vendor cares about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.serving.request import Request


@dataclass(frozen=True)
class QoSReport:
    """Summary QoS of a set of finished requests."""

    request_count: int
    ttft_mean_s: float
    ttft_p50_s: float
    ttft_p95_s: float
    ttft_p99_s: float
    tbt_mean_s: float
    tbt_p50_s: float
    tbt_p95_s: float
    tbt_p99_s: float
    e2e_mean_s: float
    e2e_p95_s: float
    tokens_per_s: float
    requests_per_s: float
    failed_requests: int = 0    # terminal failures (fault injection)

    @property
    def mean_tokens_per_s_per_request(self) -> float:
        """The paper's Fig. 15/17 "TBT (token/sec)" axis.

        ``nan`` when TBT was unmeasurable (no request emitted a second
        token) — an unmeasured rate must not masquerade as infinite.
        """
        if math.isnan(self.tbt_mean_s):
            return float("nan")
        if self.tbt_mean_s <= 0:
            return float("inf")
        return 1.0 / self.tbt_mean_s

    def meets_tbt_slo(self, slo_s: float, percentile: str = "p95") -> bool:
        """Does the chosen TBT percentile meet the SLO?"""
        value = {"mean": self.tbt_mean_s, "p50": self.tbt_p50_s,
                 "p95": self.tbt_p95_s, "p99": self.tbt_p99_s}[percentile]
        return value <= slo_s

    def meets_ttft_slo(self, slo_s: float, percentile: str = "p95") -> bool:
        value = {"mean": self.ttft_mean_s, "p50": self.ttft_p50_s,
                 "p95": self.ttft_p95_s, "p99": self.ttft_p99_s}[percentile]
        return value <= slo_s


def goodput_per_s(finished: list[Request], wall_time_s: float,
                  slo_ttft_s: float) -> float:
    """SLO-met completions per second: the throughput that *counts*.

    Raw ``requests_per_s`` treats a request that crawled out after three
    crash retries the same as one served instantly; goodput counts only
    completions whose TTFT met the SLO, which is what a degraded fleet
    is actually delivering to users.
    """
    if wall_time_s <= 0:
        raise ValueError("wall time must be positive")
    if slo_ttft_s <= 0:
        raise ValueError("slo_ttft_s must be positive")
    met = sum(1 for r in finished if r.ttft <= slo_ttft_s)
    return met / wall_time_s


def compute_qos(finished: list[Request], wall_time_s: float,
                failed_requests: int = 0) -> QoSReport:
    """Aggregate per-request metrics over ``wall_time_s`` of simulation."""
    if not finished:
        raise ValueError("no finished requests to report on")
    if wall_time_s <= 0:
        raise ValueError("wall time must be positive")
    ttft = np.array([r.ttft for r in finished])
    tbt = np.array([r.tbt for r in finished if r.generated_tokens >= 2])
    if tbt.size == 0:
        # no request emitted >= 2 tokens: TBT is unmeasured, not zero —
        # nan keeps meets_tbt_slo() False instead of reporting a perfect
        # inter-token latency nobody observed
        tbt = np.array([float("nan")])
    e2e = np.array([r.e2e_latency for r in finished])
    tokens = sum(r.generated_tokens for r in finished)
    return QoSReport(
        request_count=len(finished),
        ttft_mean_s=float(ttft.mean()),
        ttft_p50_s=float(np.percentile(ttft, 50)),
        ttft_p95_s=float(np.percentile(ttft, 95)),
        ttft_p99_s=float(np.percentile(ttft, 99)),
        tbt_mean_s=float(tbt.mean()),
        tbt_p50_s=float(np.percentile(tbt, 50)),
        tbt_p95_s=float(np.percentile(tbt, 95)),
        tbt_p99_s=float(np.percentile(tbt, 99)),
        e2e_mean_s=float(e2e.mean()),
        e2e_p95_s=float(np.percentile(e2e, 95)),
        tokens_per_s=tokens / wall_time_s,
        requests_per_s=len(finished) / wall_time_s,
        failed_requests=failed_requests,
    )
