"""Paged KV-cache block allocator (PagedAttention-style).

The paper's serving background leans on vLLM's memory management [20]:
KV cache is allocated in fixed-size blocks so that requests with unknown
output lengths never need contiguous reservations.  This allocator
provides that substrate for the serving simulator: block-granular
allocation per request, growth one token at a time, explicit
fragmentation accounting, and admission checks that replace the
whole-request reservation of :class:`SchedulerLimits`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.models.kv_cache import kv_bytes_per_token


#: Block count standing in for an unbounded pool (``pool_bytes=inf``):
#: large enough that no simulated workload can exhaust it, while every
#: counter stays exact integer arithmetic.
UNBOUNDED_BLOCKS = 1 << 62


@dataclass(frozen=True)
class KvBlockConfig:
    """Geometry of the paged KV pool.

    ``pool_bytes`` of ``inf`` means an unbounded pool (admission never
    blocks) — the paged analogue of the scheduler's unlimited
    ``kv_budget_bytes``.
    """

    block_tokens: int = 16
    pool_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        if self.pool_bytes < 0:
            raise ValueError("pool_bytes must be non-negative")


@dataclass
class _Allocation:
    blocks: int = 0
    tokens: int = 0


class PagedKvAllocator:
    """Block-granular KV accounting for one model on one device group."""

    def __init__(self, model: ModelConfig, config: KvBlockConfig) -> None:
        self.model = model
        self.config = config
        self.bytes_per_token = kv_bytes_per_token(model)
        self.block_bytes = self.bytes_per_token * config.block_tokens
        if self.block_bytes <= 0:
            raise ValueError("model yields zero-sized KV blocks")
        self.total_blocks = UNBOUNDED_BLOCKS \
            if math.isinf(config.pool_bytes) \
            else int(config.pool_bytes // self.block_bytes)
        self._allocations: dict[int, _Allocation] = {}
        self._used_blocks = 0
        # incremental last-block slack so internal_fragmentation() is
        # O(1) — it is polled per engine iteration by utilization
        # reporting, and summing all live allocations there made the
        # poll O(active requests)
        self._slack_tokens = 0

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self._used_blocks

    @property
    def used_blocks(self) -> int:
        return self._used_blocks

    @property
    def active_requests(self) -> int:
        return len(self._allocations)

    def utilization(self) -> float:
        """Fraction of pool blocks allocated."""
        if self.total_blocks == 0:
            return 0.0
        return self._used_blocks / self.total_blocks

    def internal_fragmentation(self) -> float:
        """Bytes allocated but not holding tokens (last-block slack).

        O(1): the slack counter is maintained incrementally on every
        admit/append/extend/release (integer arithmetic, so it is
        exactly the sum over live allocations at all times).
        """
        return self._slack_tokens * self.bytes_per_token

    def blocks_for_tokens(self, tokens: int) -> int:
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        return math.ceil(tokens / self.config.block_tokens)

    # ------------------------------------------------------------------ #
    # Allocation lifecycle                                                #
    # ------------------------------------------------------------------ #

    def can_admit(self, prompt_tokens: int) -> bool:
        """Whether a fresh prompt's blocks fit right now.

        Paged admission only needs the *prompt* resident immediately —
        decode growth allocates lazily — which is exactly how paging
        beats whole-request reservation on admission batch size.
        """
        return self.blocks_for_tokens(prompt_tokens) <= self.free_blocks

    def admit(self, request_id: int, prompt_tokens: int) -> None:
        """Allocate the prompt's blocks for a new request."""
        if request_id in self._allocations:
            raise ValueError(f"request {request_id} already allocated")
        needed = self.blocks_for_tokens(prompt_tokens)
        if needed > self.free_blocks:
            raise MemoryError(
                f"request {request_id}: needs {needed} blocks, "
                f"{self.free_blocks} free")
        self._allocations[request_id] = _Allocation(blocks=needed,
                                                    tokens=prompt_tokens)
        self._used_blocks += needed
        self._slack_tokens += needed * self.config.block_tokens \
            - prompt_tokens

    def append_token(self, request_id: int) -> bool:
        """Grow a request by one generated token.

        Returns ``True`` when the append fit (possibly by taking a new
        block) and ``False`` when the pool is exhausted — the caller must
        then preempt or stall (vLLM's recompute/swap decision point).
        """
        allocation = self._allocations.get(request_id)
        if allocation is None:
            raise KeyError(f"request {request_id} has no allocation")
        if allocation.tokens < allocation.blocks * self.config.block_tokens:
            allocation.tokens += 1
            self._slack_tokens -= 1
            return True
        if self.free_blocks < 1:
            return False
        allocation.blocks += 1
        allocation.tokens += 1
        self._used_blocks += 1
        self._slack_tokens += self.config.block_tokens - 1
        return True

    def growth_blocks(self, request_id: int, new_tokens: int) -> int:
        """Blocks a :meth:`extend` by ``new_tokens`` would allocate."""
        allocation = self._allocations.get(request_id)
        if allocation is None:
            raise KeyError(f"request {request_id} has no allocation")
        if new_tokens < 0:
            raise ValueError("new_tokens must be non-negative")
        return self.blocks_for_tokens(allocation.tokens + new_tokens) \
            - allocation.blocks

    def extend(self, request_id: int, new_tokens: int) -> bool:
        """Grow a request by ``new_tokens`` at once (all-or-nothing).

        The bulk analogue of :meth:`append_token` for the engine's
        decode fast-forward: one call per burst instead of one per
        step.  Returns ``False`` — leaving the allocation untouched —
        when the pool cannot supply the growth blocks.
        """
        allocation = self._allocations.get(request_id)
        if allocation is None:
            raise KeyError(f"request {request_id} has no allocation")
        if new_tokens < 0:
            raise ValueError("new_tokens must be non-negative")
        if new_tokens == 0:
            return True
        grown = self.blocks_for_tokens(allocation.tokens + new_tokens)
        growth = grown - allocation.blocks
        if growth > self.free_blocks:
            return False
        allocation.tokens += new_tokens
        allocation.blocks = grown
        self._used_blocks += growth
        self._slack_tokens += growth * self.config.block_tokens - new_tokens
        return True

    def release(self, request_id: int) -> int:
        """Free a finished request's blocks; returns the block count."""
        allocation = self._allocations.pop(request_id, None)
        if allocation is None:
            raise KeyError(f"request {request_id} has no allocation")
        self._used_blocks -= allocation.blocks
        self._slack_tokens -= allocation.blocks * self.config.block_tokens \
            - allocation.tokens
        return allocation.blocks

    def allocation_blocks(self, request_id: int) -> int:
        """Blocks currently held by one live allocation."""
        allocation = self._allocations.get(request_id)
        if allocation is None:
            raise KeyError(f"request {request_id} has no allocation")
        return allocation.blocks

    def allocation_tokens(self, request_id: int) -> int:
        """Tokens currently resident in one live allocation."""
        allocation = self._allocations.get(request_id)
        if allocation is None:
            raise KeyError(f"request {request_id} has no allocation")
        return allocation.tokens

    # ------------------------------------------------------------------ #
    # Comparison helper                                                   #
    # ------------------------------------------------------------------ #

    def max_admissible_prompts(self, prompt_tokens: int,
                               output_tokens: int) -> tuple[int, int]:
        """(paged, reserved) request capacities for identical requests.

        ``reserved`` models the whole-request reservation policy
        (prompt + full output up front); ``paged`` only needs the prompt
        resident at admission.  The gap is paging's admission win.
        """
        if prompt_tokens < 1 or output_tokens < 0:
            raise ValueError("invalid request shape")
        paged = self.total_blocks // self.blocks_for_tokens(prompt_tokens)
        reserved_blocks = self.blocks_for_tokens(
            prompt_tokens + output_tokens)
        reserved = self.total_blocks // reserved_blocks
        return paged, reserved
