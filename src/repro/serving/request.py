"""Serving requests and their lifecycle timestamps.

A request arrives with an input length and a target output length; the
engine stamps prefill completion and every emitted token, from which the
QoS calculator derives TTFT, TBT and end-to-end latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RequestState(enum.Enum):
    QUEUED = "queued"        # arrived, not yet admitted
    PREFILLING = "prefill"   # admitted, prompt being chunk-prefilled
    DECODING = "decode"      # generating tokens
    FINISHED = "finished"
    FAILED = "failed"        # abandoned: retry budget or deadline spent


@dataclass(eq=False, slots=True)
class Request:
    """One user request flowing through the simulator.

    Requests are *mutable identities*, not values: two requests with the
    same lengths and timestamps are still distinct pieces of in-flight
    work, so equality and hashing are by object identity (``eq=False``).
    That lets engines keep requests in sets and membership-test them in
    O(1) without two same-shaped requests aliasing each other.

    ``session_id`` links the turns of one multi-turn conversation; the
    cluster's session-affinity router uses it to pin a conversation (and
    its reusable KV prefix) to one replica.  Single-turn streams leave it
    ``None``.  ``turn_index`` is the turn's position within its session
    and ``history_tokens`` counts the leading prompt tokens that repeat
    the previous turns verbatim — the reusable prefix a
    :class:`~repro.serving.prefix_cache.PrefixCache` can serve from
    cached KV blocks; ``cached_prefix_tokens`` records how many of them
    a cache hit actually covered (0 on cold paths).

    Token tracking is slim by default: QoS needs only the first/last
    emission stamps and the token count (TTFT, the mean inter-token gap
    and E2E all derive from those), so ``token_times`` stays empty unless
    ``record_token_times=True`` asks for the full per-token timeline
    (trace exports, debugging).  Recording on or off, every derived
    metric is identical.
    """

    request_id: int
    arrival_time: float
    input_tokens: int
    output_tokens: int
    state: RequestState = RequestState.QUEUED
    prefilled_tokens: int = 0
    generated_tokens: int = 0
    first_token_time: float | None = None
    finish_time: float | None = None
    token_times: list = field(default_factory=list)
    session_id: int | None = None
    last_token_time: float | None = None
    record_token_times: bool = False
    turn_index: int = 0
    history_tokens: int = 0
    cached_prefix_tokens: int = 0
    retries: int = 0
    failed_time: float | None = None

    def __post_init__(self) -> None:
        if self.input_tokens < 1 or self.output_tokens < 1:
            raise ValueError("requests need at least one input and output token")
        if self.arrival_time < 0:
            raise ValueError("arrival time must be non-negative")
        if self.turn_index < 0:
            raise ValueError("turn_index must be non-negative")
        if not 0 <= self.history_tokens <= self.input_tokens:
            raise ValueError(
                "history_tokens must lie within [0, input_tokens] — the "
                "reusable prefix is part of the prompt")

    @property
    def context_len(self) -> int:
        """Current KV length: prefilled prompt plus generated tokens."""
        return self.prefilled_tokens + self.generated_tokens

    @property
    def prefill_remaining(self) -> int:
        return self.input_tokens - self.prefilled_tokens

    @property
    def done(self) -> bool:
        return self.generated_tokens >= self.output_tokens

    # ------------------------------------------------------------------ #
    # QoS per request                                                      #
    # ------------------------------------------------------------------ #

    @property
    def ttft(self) -> float:
        """Time to first token (arrival -> first emission)."""
        if self.first_token_time is None:
            raise ValueError(f"request {self.request_id} has no first token")
        return self.first_token_time - self.arrival_time

    @property
    def tbt(self) -> float:
        """Mean time between tokens after the first."""
        if self.generated_tokens < 2:
            return 0.0
        return (self.last_token_time - self.first_token_time) \
            / (self.generated_tokens - 1)

    @property
    def e2e_latency(self) -> float:
        if self.finish_time is None:
            raise ValueError(f"request {self.request_id} is not finished")
        return self.finish_time - self.arrival_time

    def reset_for_retry(self) -> None:
        """Crash recovery: every generated token is lost and the request
        re-enters a queue from scratch.

        The original ``arrival_time`` is kept on purpose — TTFT and E2E
        measure what the *user* experienced, and a crash mid-generation
        is part of that experience, not a fresh arrival.
        """
        self.retries += 1
        self.state = RequestState.QUEUED
        self.prefilled_tokens = 0
        self.generated_tokens = 0
        self.first_token_time = None
        self.last_token_time = None
        self.finish_time = None
        self.cached_prefix_tokens = 0
        if self.token_times:
            self.token_times.clear()

    def mark_failed(self, now: float) -> None:
        """Terminal failure: retry budget or deadline exhausted.

        A failed request keeps its arrival stamp and loses everything
        else; ``failed_time`` records when the system gave up on it.
        """
        self.state = RequestState.FAILED
        self.failed_time = now
        self.prefilled_tokens = 0
        self.generated_tokens = 0
        self.first_token_time = None
        self.last_token_time = None
        self.finish_time = None
        self.cached_prefix_tokens = 0
        if self.token_times:
            self.token_times.clear()

    def record_token(self, now: float) -> None:
        """Stamp one generated token at simulation time ``now``."""
        self.generated_tokens += 1
        if self.record_token_times:
            self.token_times.append(now)
        if self.first_token_time is None:
            self.first_token_time = now
        self.last_token_time = now
        if self.done:
            self.finish_time = now
            self.state = RequestState.FINISHED

    def record_token_burst(self, times: list) -> None:
        """Stamp ``len(times)`` consecutive tokens in one call.

        The engine's decode fast-forward applies a whole run of pure
        decode steps at once; ``times`` holds the per-step completion
        stamps in order, so the result is indistinguishable from calling
        :meth:`record_token` once per step.
        """
        if not times:
            return
        self.generated_tokens += len(times)
        if self.record_token_times:
            self.token_times.extend(times)
        if self.first_token_time is None:
            self.first_token_time = times[0]
        self.last_token_time = times[-1]
        if self.done:
            self.finish_time = times[-1]
            self.state = RequestState.FINISHED
