"""Batching-policy baselines (paper Fig. 2b).

The paper's Fig. 2(b) sketches how TTFT and TBT shift across three
serving disciplines; this module makes each one runnable so the
ablation bench can quantify the sketch:

* **no batching** — requests are served one at a time, FIFO: superb TBT,
  terrible throughput, queueing-dominated TTFT;
* **static batching** — requests are grouped into fixed batches; the
  whole batch prefills together and decodes until the *longest* member
  finishes (stragglers hold the batch — the classic inefficiency);
* **continuous batching** — the iteration-level scheduler of
  :mod:`repro.serving.engine` (Orca-style), the paper's default.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.models.config import ModelConfig
from repro.perf.baselines import DeviceModel
from repro.registry import Registry
from repro.serving.engine import ServingEngine, SimulationResult
from repro.serving.request import Request
from repro.serving.scheduler import SchedulerLimits


class BatchingPolicy(enum.Enum):
    NO_BATCHING = "no-batching"
    STATIC = "static"
    CONTINUOUS = "continuous"


#: A policy runner simulates one request stream under one discipline:
#: ``runner(device, model, requests, limits, num_devices, max_sim_seconds,
#: fast_forward)``.  ``fast_forward`` opts into simulator fast paths that
#: are bit-identical to the plain loop (see
#: :class:`repro.serving.engine.ServingEngine`); runners without such a
#: path accept and ignore it.  ``prefix_cache`` (a
#: :class:`~repro.serving.prefix_cache.PrefixCacheSpec`) is passed only
#: when a deployment carries one — today only the continuous runner
#: models it, and :func:`repro.api.simulate` rejects the combination
#: for other built-ins before ever calling them.
PolicyRunner = Callable[..., SimulationResult]

POLICY_REGISTRY = Registry("batching policy")


def register_policy(name: str) -> Callable[[PolicyRunner], PolicyRunner]:
    """Decorator: register a :data:`PolicyRunner` under ``name``.

    Third-party disciplines (priority queues, SLO-aware admission, ...)
    plug in here and become addressable from ``DeploymentSpec.batching``
    and experiment JSON files without touching core.
    """

    def _decorate(runner: PolicyRunner) -> PolicyRunner:
        POLICY_REGISTRY.register(name, runner)
        return runner

    return _decorate


def get_policy(name: str) -> PolicyRunner:
    """Look up a policy runner by name."""
    return POLICY_REGISTRY.get(name)


def list_policies() -> list[str]:
    """Registered policy names, sorted."""
    return POLICY_REGISTRY.names()


def _simulate_no_batching(device: DeviceModel, model: ModelConfig,
                          requests: list, num_devices: int,
                          max_sim_seconds: float) -> SimulationResult:
    """One request at a time: prefill fully, then decode to completion."""
    now = 0.0
    finished: list[Request] = []
    iterations = 0
    busy = 0.0
    decode_time = 0.0
    prefill_time = 0.0
    for request in sorted(requests, key=lambda r: r.arrival_time):
        start = max(now, request.arrival_time)
        if start >= max_sim_seconds:
            # service must start before the horizon; a late arrival must
            # not inflate total_time_s past max_sim_seconds
            break
        now = start
        prefill = device.prefill_time(model, 1, request.input_tokens,
                                      num_devices).seconds
        now += prefill
        busy += prefill
        prefill_time += prefill
        request.prefilled_tokens = request.input_tokens
        while not request.done:
            step = device.decode_step_time(model, 1, request.context_len,
                                           num_devices).seconds
            now += step
            busy += step
            decode_time += step
            iterations += 1
            request.record_token(now)
        finished.append(request)
    # Request equality is by identity (eq=False), so a set gives O(1)
    # membership without aliasing two same-shaped requests
    done = set(finished)
    unfinished = [r for r in requests if r not in done]
    return SimulationResult(
        finished=finished, unfinished=unfinished, total_time_s=now,
        iterations=iterations, decode_steps=iterations,
        busy_time_s=busy, decode_time_s=decode_time,
        prefill_time_s=prefill_time,
    )


def _simulate_static(device: DeviceModel, model: ModelConfig,
                     requests: list, batch_size: int, num_devices: int,
                     max_sim_seconds: float) -> SimulationResult:
    """Fixed batches; each batch decodes until its longest member ends."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    now = 0.0
    finished: list[Request] = []
    unfinished: list[Request] = []
    iterations = 0
    busy = 0.0
    decode_time = 0.0
    prefill_time = 0.0
    pending = sorted(requests, key=lambda r: r.arrival_time)
    while pending and now < max_sim_seconds:
        batch = pending[:batch_size]
        start = max(now, max(r.arrival_time for r in batch))
        if start >= max_sim_seconds:
            # the batch only forms after the horizon (late arrivals must
            # not inflate total_time_s past max_sim_seconds)
            break
        pending = pending[batch_size:]
        now = start
        longest_input = max(r.input_tokens for r in batch)
        prefill = device.prefill_time(model, len(batch), longest_input,
                                      num_devices).seconds
        now += prefill
        busy += prefill
        prefill_time += prefill
        for request in batch:
            request.prefilled_tokens = request.input_tokens
        longest_output = max(r.output_tokens for r in batch)
        for _ in range(longest_output):
            # mirror the continuous engine's horizon rule: a decode step
            # only starts before max_sim_seconds (it may end past it)
            if now >= max_sim_seconds:
                break
            contexts = [r.context_len for r in batch]
            mean_context = max(1, sum(contexts) // len(contexts))
            # the whole batch occupies the device even after some members
            # finish — the static policy's signature waste
            step = device.decode_step_time(model, len(batch), mean_context,
                                           num_devices).seconds
            now += step
            busy += step
            decode_time += step
            iterations += 1
            for request in batch:
                if not request.done:
                    request.record_token(now)
        for request in batch:
            # members cut off by the horizon carry no finish stamp and
            # must not be reported as finished
            (finished if request.done else unfinished).append(request)
    return SimulationResult(
        finished=finished, unfinished=unfinished + pending, total_time_s=now,
        iterations=iterations, decode_steps=iterations,
        busy_time_s=busy, decode_time_s=decode_time,
        prefill_time_s=prefill_time,
    )


@register_policy("no-batching")
def run_no_batching(device: DeviceModel, model: ModelConfig, requests: list,
                    limits: SchedulerLimits, num_devices: int = 1,
                    max_sim_seconds: float = 3600.0,
                    fast_forward: bool = True) -> SimulationResult:
    """FIFO, one request at a time (``limits`` is ignored by design)."""
    return _simulate_no_batching(device, model, requests, num_devices,
                                 max_sim_seconds)


@register_policy("static")
def run_static(device: DeviceModel, model: ModelConfig, requests: list,
               limits: SchedulerLimits, num_devices: int = 1,
               max_sim_seconds: float = 3600.0,
               fast_forward: bool = True) -> SimulationResult:
    """Fixed batches of ``limits.max_batch`` requests."""
    return _simulate_static(device, model, requests, limits.max_batch,
                            num_devices, max_sim_seconds)


@register_policy("continuous")
def run_continuous(device: DeviceModel, model: ModelConfig, requests,
                   limits: SchedulerLimits, num_devices: int = 1,
                   max_sim_seconds: float = 3600.0,
                   fast_forward: bool = True,
                   prefix_cache=None, sink=None,
                   progress=None) -> SimulationResult:
    """Iteration-level continuous batching (the paper's default).

    The only policy that accepts a lazy request stream: the engine
    consumes arrivals through a bounded look-ahead window, so
    ``requests`` may be a list or an iterator/``RequestStream``.  The
    batch-mode policies below slice and sort their inputs and stay
    list-only.  ``sink`` / ``progress`` forward to
    :meth:`ServingEngine.run`.
    """
    engine = ServingEngine(device, model, limits, num_devices,
                           fast_forward=fast_forward,
                           prefix_cache=prefix_cache)
    return engine.run(requests, max_sim_seconds=max_sim_seconds,
                      sink=sink, progress=progress)


def simulate_policy(
    policy: BatchingPolicy,
    device: DeviceModel,
    model: ModelConfig,
    requests: list,
    batch_size: int = 32,
    num_devices: int = 1,
    max_sim_seconds: float = 3600.0,
) -> SimulationResult:
    """Run ``requests`` under the chosen batching discipline.

    Compatibility wrapper over the named policy registry; new code should
    resolve runners with :func:`get_policy` (or go through
    :func:`repro.api.simulate`) instead.
    """
    runner = get_policy(policy.value)
    return runner(device, model, requests,
                  SchedulerLimits(max_batch=batch_size),
                  num_devices=num_devices, max_sim_seconds=max_sim_seconds)
