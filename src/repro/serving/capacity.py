"""Maximum capacity under an SLO (paper Fig. 16).

Searches for the highest Poisson arrival rate at which the simulated
endpoint still meets its TBT (and optionally TTFT) SLO.  The paper's
headline: the ADOR design sustains ~23 requests/sec serving LLaMA3-8B
under a relaxed SLO on one device.

One capacity point costs a dozen saturated serving simulations, and a
capacity-vs-SLO or capacity-vs-design sweep multiplies that, so the
search is engineered to waste none of them.  Five coordinated
optimizations returning **identical found rates** to the sequential
reference search (:func:`reference_capacity_search`) — the first,
second, fourth and fifth exactly by construction, the early-abort by a
strictly-conservative heuristic whose per-probe verdict parity is
machine-checked (``early_abort="verify"``) and committed at 100% by
``benchmarks/bench_capacity_speed.py``:

* **probe caching + lazy endpoints** — every probe outcome is cached by
  rate, so the final best-rate re-simulation and the bracket-endpoint
  checks reuse work instead of repeating it.  The low endpoint (the
  single most expensive probe: its horizon scales as ``1/rate``) is
  only simulated when no midpoint was feasible — by bracketing
  monotonicity its verdict is implied otherwise.
* **request-set reuse** — the workload is generated once
  (:class:`~repro.serving.generator.PoissonArrivalTemplate`) and the
  inter-arrival gaps are rescaled per probed rate, draw-for-draw
  bit-identical to per-probe regeneration with the same seed, with
  common-random-numbers variance reduction for free.
* **saturation early-abort** — clearly saturated probes are cut short
  by an online :class:`~repro.serving.engine.InstabilityMonitor`; the
  abort condition strictly implies the full run would fail the final
  stability check, and ``early_abort="verify"`` proves the verdict
  parity per probe by also running the full simulation.
* **speculative parallel bracketing** — ``parallel_probes=2..3`` probes
  the midpoint plus the next-level midpoints of both possible halves in
  worker processes, consuming two bisection steps per round while
  preserving the exact float bracket evolution of sequential bisection.
* **shared sweep caches** — probes share one memoized
  :class:`~repro.perf.cache.CachedDeviceModel` (arrival reuse makes the
  same decode contexts recur across probes), in-process and inside the
  workers of a persistent :class:`~repro.analysis.sweep.SweepPool`.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
from dataclasses import dataclass

import numpy as np

from repro.analysis.sweep import SweepPool
from repro.models.config import ModelConfig
from repro.models.kv_cache import max_batch_for_memory
from repro.perf.baselines import DeviceModel
from repro.perf.cache import CachedDeviceModel
from repro.serving.dataset import ChatTraceConfig
from repro.serving.engine import (
    InstabilityMonitor,
    ServingEngine,
    SimulationResult,
    ttft_is_stable,
)
from repro.serving.generator import (
    PoissonArrivalTemplate,
    PoissonRequestGenerator,
)
from repro.serving.qos import QoSReport, compute_qos
from repro.serving.scheduler import SchedulerLimits


class EndpointUnservable(RuntimeError):
    """The endpoint cannot finish a single request even at the minimum
    probed rate — there is no capacity to report.  Subclasses
    ``RuntimeError`` for backward compatibility, but callers (e.g. the
    CLI) should catch this type so infrastructure failures that also
    raise ``RuntimeError`` are not mislabeled as a capacity verdict."""


@dataclass(frozen=True)
class ProbeOutcome:
    """Outcome of one capacity probe (one simulated arrival rate)."""

    rate: float
    feasible: bool
    qos: QoSReport | None
    finished: int
    total_time_s: float
    #: the InstabilityMonitor cut this probe short
    aborted: bool = False
    #: only set under ``early_abort="verify"`` on aborted probes: did the
    #: full simulation reach the same feasibility verdict?
    abort_verdict_matches: bool | None = None


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of a capacity search."""

    max_requests_per_s: float
    qos_at_max: QoSReport
    slo_tbt_s: float
    slo_ttft_s: float | None
    probes: tuple
    #: serving simulations actually run (probe cache hits excluded)
    simulations: int = 0


def _scheduler_limits(device: DeviceModel, model: ModelConfig,
                      trace: ChatTraceConfig,
                      num_devices: int) -> SchedulerLimits:
    kv_budget = device.chip.dram.size_bytes * num_devices * 0.9 \
        - model.param_bytes
    return SchedulerLimits(
        max_batch=max(1, max_batch_for_memory(
            model, int(trace.mean_input + trace.mean_output),
            device.chip.dram.size_bytes, num_devices)),
        prefill_chunk_tokens=512,
        kv_budget_bytes=max(kv_budget, 1.0),
    )


def _simulate_rate(
    device: DeviceModel,
    model: ModelConfig,
    trace: ChatTraceConfig,
    rate: float,
    num_devices: int,
    request_count: int,
    seed: int,
    max_sim_seconds: float,
    workload: PoissonArrivalTemplate | None = None,
    monitor: InstabilityMonitor | None = None,
) -> tuple[SimulationResult, QoSReport | None]:
    if workload is not None:
        requests = workload.requests_at(rate)
    else:
        rng = np.random.default_rng(seed)
        generator = PoissonRequestGenerator(trace, rate, rng)
        requests = generator.generate(request_count)
    # the horizon must cover the arrival span plus a generous drain
    max_sim_seconds = max(max_sim_seconds,
                          1.5 * request_count / rate + 120.0)
    limits = _scheduler_limits(device, model, trace, num_devices)
    engine = ServingEngine(device, model, limits, num_devices)
    result = engine.run(requests, max_sim_seconds=max_sim_seconds,
                        monitor=monitor)
    if not result.finished:
        return result, None
    return result, compute_qos(result.finished, result.total_time_s)


def _queue_is_stable(result: SimulationResult) -> bool:
    """The final stability verdict (see
    :func:`~repro.serving.engine.ttft_is_stable`)."""
    return ttft_is_stable(result.finished)


def _meets(result: SimulationResult, qos: QoSReport | None,
           request_count: int, rate: float, slo_tbt_s: float,
           slo_ttft_s: float | None, percentile: str) -> bool:
    if qos is None:
        return False
    # the system must actually keep up: most requests finish in-horizon
    if len(result.finished) < 0.9 * request_count:
        return False
    if not _queue_is_stable(result):
        return False
    if not qos.meets_tbt_slo(slo_tbt_s, percentile):
        return False
    if slo_ttft_s is not None and not qos.meets_ttft_slo(slo_ttft_s, percentile):
        return False
    return True


# --------------------------------------------------------------------- #
# Probe execution (in-process and in SweepPool workers)                  #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class _ProbeContext:
    """Everything a probe needs, picklable for worker processes.

    ``device`` is ``None`` in payloads destined for a
    :class:`CapacityProbePool`, whose workers substitute the shared
    device installed at pool init.
    """

    device: DeviceModel | None
    model: ModelConfig
    trace: ChatTraceConfig
    num_devices: int
    request_count: int
    seed: int
    max_sim_seconds: float
    slo_tbt_s: float
    slo_ttft_s: float | None
    percentile: str
    workload: PoissonArrivalTemplate | None
    early_abort: bool | str


def _run_probe(ctx: _ProbeContext, rate: float) -> ProbeOutcome:
    """One probe: simulate, judge feasibility, optionally verify parity."""
    monitor = InstabilityMonitor(ctx.request_count) if ctx.early_abort \
        else None
    result, qos = _simulate_rate(
        ctx.device, ctx.model, ctx.trace, rate, ctx.num_devices,
        ctx.request_count, ctx.seed, ctx.max_sim_seconds,
        workload=ctx.workload, monitor=monitor)
    feasible = _meets(result, qos, ctx.request_count, rate, ctx.slo_tbt_s,
                      ctx.slo_ttft_s, ctx.percentile)
    parity = None
    if ctx.early_abort == "verify" and result.saturated is not None:
        full, full_qos = _simulate_rate(
            ctx.device, ctx.model, ctx.trace, rate, ctx.num_devices,
            ctx.request_count, ctx.seed, ctx.max_sim_seconds,
            workload=ctx.workload)
        parity = _meets(full, full_qos, ctx.request_count, rate,
                        ctx.slo_tbt_s, ctx.slo_ttft_s,
                        ctx.percentile) == feasible
    return ProbeOutcome(
        rate=rate,
        feasible=feasible,
        qos=qos,
        finished=len(result.finished),
        total_time_s=result.total_time_s,
        aborted=result.saturated is not None,
        abort_verdict_matches=parity,
    )


#: Worker-side probe context: one slot per worker process, replaced when
#: a task for a different search arrives.  Reusing the first-unpickled
#: context keeps the worker's CachedDeviceModel warm across every probe
#: of a search, which is exactly when arrival reuse makes decode
#: operating points recur.
_WORKER_CONTEXT: dict = {"key": None, "ctx": None}

#: Device installed once per worker by :func:`probe_pool`'s initializer —
#: shared by every probe of every search run on that pool, so its
#: memoization cache stays warm across the whole capacity study.
_WORKER_DEVICE: list = [None]

_CONTEXT_COUNTER = itertools.count()


def _install_worker_device(device: DeviceModel) -> None:
    if not isinstance(device, CachedDeviceModel):
        device = CachedDeviceModel(device)
    _WORKER_DEVICE[0] = device


class CapacityProbePool(SweepPool):
    """A :class:`~repro.analysis.sweep.SweepPool` for capacity probes.

    The workers are initialized once with a shared memoized device
    model, so probe tasks ship only the (small) per-search context and
    every probe of every search warms the same cache.  Reusable across
    the searches of a whole capacity study as long as they target the
    same device.
    """

    def __init__(self, device: DeviceModel, workers: int = 3) -> None:
        super().__init__(workers, initializer=_install_worker_device,
                         initargs=(device,))
        # the unwrapped device the workers were initialized with: probes
        # for any other device must be rejected, not silently run on
        # this one
        self._device = getattr(device, "inner", device)

    def check_device(self, device: DeviceModel) -> None:
        """Reject probes whose device differs from the workers'."""
        if getattr(device, "inner", device) is not self._device:
            raise ValueError(
                "this CapacityProbePool was initialized for a different "
                "device; build the pool with probe_pool(device) from the "
                "same device object the search uses")


def probe_pool(device: DeviceModel, workers: int = 3) -> CapacityProbePool:
    """A persistent probe pool sharing one warm device model."""
    return CapacityProbePool(device, workers)


def _probe_task(payload: tuple) -> ProbeOutcome:
    key, ctx, rate = payload
    if _WORKER_CONTEXT["key"] != key:
        _WORKER_CONTEXT["key"] = key
        if ctx.device is None:
            # pool workers hold the shared device installed at init
            ctx = dataclasses.replace(ctx, device=_WORKER_DEVICE[0])
            assert ctx.device is not None, \
                "probe pool worker has no installed device"
        _WORKER_CONTEXT["ctx"] = ctx
    return _run_probe(_WORKER_CONTEXT["ctx"], rate)


class _ProbeRunner:
    """Runs, caches and records the probes of one capacity search."""

    def __init__(self, ctx: _ProbeContext, pool: SweepPool | None) -> None:
        self.ctx = ctx
        self.pool = pool
        self.key = ("capacity", os.getpid(), next(_CONTEXT_COUNTER))
        self.outcomes: dict[float, ProbeOutcome] = {}
        self.simulations = 0

    @property
    def record(self) -> tuple:
        return tuple(self.outcomes.values())

    def _count(self, outcome: ProbeOutcome) -> ProbeOutcome:
        # verify mode re-simulates every aborted probe to the full
        # horizon; `simulations` reports what actually ran
        self.simulations += 2 if (self.ctx.early_abort == "verify"
                                  and outcome.aborted) else 1
        return outcome

    def probe(self, rate: float) -> ProbeOutcome:
        cached = self.outcomes.get(rate)
        if cached is not None:
            return cached
        outcome = self._count(_run_probe(self.ctx, rate))
        self.outcomes[rate] = outcome
        return outcome

    def probe_many(self, rates: list) -> dict[float, ProbeOutcome]:
        """Probe several candidate rates, in parallel when pooled."""
        fresh = [r for r in rates if r not in self.outcomes]
        if self.pool is not None and len(fresh) > 1:
            ctx = self.ctx
            if isinstance(self.pool, CapacityProbePool):
                # workers hold the shared device; don't re-pickle ours —
                # but only if it IS ours
                self.pool.check_device(ctx.device)
                ctx = dataclasses.replace(ctx, device=None)
            payloads = [(self.key, ctx, rate) for rate in fresh]
            for payload, outcome in self.pool.sweep(payloads, _probe_task):
                self.outcomes[payload[2]] = self._count(outcome)
        else:
            for rate in fresh:
                self.probe(rate)
        return {rate: self.outcomes[rate] for rate in rates}

    def full_qos(self, rate: float) -> QoSReport:
        """The full-run QoS of a *feasible* probed rate.

        Feasible probes are never aborted (the abort condition implies
        infeasibility), so the cached outcome already holds the QoS the
        pre-optimization search recomputed with a final simulation.
        """
        outcome = self.outcomes[rate]
        assert outcome.qos is not None and not outcome.aborted
        return outcome.qos

    def full_outcome(self, rate: float) -> QoSReport | None:
        """Full-run QoS of any rate, re-simulating if the probe aborted."""
        outcome = self.outcomes.get(rate)
        if outcome is not None and not outcome.aborted:
            return outcome.qos
        _, qos = _simulate_rate(
            self.ctx.device, self.ctx.model, self.ctx.trace, rate,
            self.ctx.num_devices, self.ctx.request_count, self.ctx.seed,
            self.ctx.max_sim_seconds, workload=self.ctx.workload)
        self.simulations += 1
        return qos


# --------------------------------------------------------------------- #
# The search                                                             #
# --------------------------------------------------------------------- #

def max_capacity_under_slo(
    device: DeviceModel,
    model: ModelConfig,
    trace: ChatTraceConfig,
    slo_tbt_s: float,
    slo_ttft_s: float | None = None,
    num_devices: int = 1,
    request_count: int = 200,
    seed: int = 7,
    percentile: str = "p95",
    rate_bounds: tuple = (0.25, 256.0),
    iterations: int = 9,
    max_sim_seconds: float = 600.0,
    *,
    reuse_arrivals: bool = True,
    early_abort: bool | str = True,
    parallel_probes: int = 1,
    pool: SweepPool | None = None,
    sim_cache: bool = True,
) -> CapacityResult:
    """Binary search for the highest SLO-compliant arrival rate.

    The search brackets on (low = feasible, high = infeasible) and
    reports the last feasible probe with its QoS.  The knobs change how
    fast the verdicts are reached, not which rate is found:
    ``reuse_arrivals``, ``parallel_probes``, ``sim_cache`` and the
    always-on probe cache are exact by construction; ``early_abort``
    judges a probe infeasible from a truncated run, which is
    conservative (an abort implies the truncated prefix already fails
    the final stability check) but heuristic with respect to the full
    simulation — use ``"verify"`` to machine-check the per-probe parity
    (the committed benches record 100%):

    * ``reuse_arrivals`` — rescale one workload template per probe
      instead of regenerating (bit-identical draws, see
      :class:`~repro.serving.generator.PoissonArrivalTemplate`);
    * ``early_abort`` — cut clearly saturated probes short
      (``"verify"`` additionally runs the full simulation per aborted
      probe and records the verdict parity on each
      :class:`ProbeOutcome`);
    * ``parallel_probes`` (2 or 3) — speculative bracketing: probe the
      midpoint plus the next-level midpoint(s) concurrently, consuming
      two bisection steps per round with the exact sequential bracket;
      uses ``pool`` (a :class:`~repro.analysis.sweep.SweepPool`) or a
      temporary pool when none is given;
    * ``sim_cache`` — wrap ``device`` in a
      :class:`~repro.perf.cache.CachedDeviceModel` (exact memoization)
      unless it already is one.
    """
    if slo_tbt_s <= 0:
        raise ValueError("TBT SLO must be positive")
    if parallel_probes < 1:
        raise ValueError("parallel_probes must be >= 1")
    parallel_probes = min(parallel_probes, 3)
    if sim_cache and not isinstance(device, CachedDeviceModel):
        device = CachedDeviceModel(device)
    low, high = rate_bounds
    ctx = _ProbeContext(
        device=device, model=model, trace=trace, num_devices=num_devices,
        request_count=request_count, seed=seed,
        max_sim_seconds=max_sim_seconds, slo_tbt_s=slo_tbt_s,
        slo_ttft_s=slo_ttft_s, percentile=percentile,
        workload=PoissonArrivalTemplate(trace, request_count, seed)
        if reuse_arrivals else None,
        early_abort=early_abort,
    )
    owns_pool = False
    if parallel_probes > 1 and pool is None:
        pool = probe_pool(device, workers=parallel_probes)
        owns_pool = True
    runner = _ProbeRunner(ctx, pool if parallel_probes > 1 else None)
    try:
        return _bracketed_search(runner, low, high, slo_tbt_s, slo_ttft_s,
                                 iterations, parallel_probes)
    finally:
        if owns_pool:
            pool.close()


def _bracketed_search(runner: _ProbeRunner, low: float, high: float,
                      slo_tbt_s: float, slo_ttft_s: float | None,
                      iterations: int,
                      parallel_probes: int) -> CapacityResult:
    def result(rate: float, qos: QoSReport) -> CapacityResult:
        return CapacityResult(rate, qos, slo_tbt_s, slo_ttft_s,
                              runner.record, runner.simulations)

    low_bound = low
    if runner.probe(high).feasible:
        return result(high, runner.full_qos(high))

    # Bisection.  The low endpoint is NOT probed up front: if any
    # midpoint turns out feasible, bracketing monotonicity makes the
    # low verdict irrelevant, and the low probe is the single most
    # expensive simulation (its horizon scales as 1/rate).
    best_rate: float | None = None
    consumed = 0
    while consumed < iterations:
        mid = (low + high) / 2.0
        if parallel_probes > 1 and iterations - consumed >= 2:
            # Speculative round: evaluate the midpoints of both halves
            # alongside mid.  Whatever mid's verdict, the follow-up
            # midpoint was already computed with the same floats the
            # sequential loop would use, so two steps resolve at the
            # wall-clock of the slowest probe.
            candidates = [mid]
            if parallel_probes >= 3:
                candidates.append((low + mid) / 2.0)
            candidates.append((mid + high) / 2.0)
            outcomes = runner.probe_many(candidates)
            if outcomes[mid].feasible:
                low, best_rate = mid, mid
                consumed += 1
                follow = (mid + high) / 2.0
                if outcomes[follow].feasible:
                    low, best_rate = follow, follow
                else:
                    high = follow
                consumed += 1
            else:
                lo_follow = (low + mid) / 2.0
                high = mid
                consumed += 1
                if lo_follow in outcomes:
                    if outcomes[lo_follow].feasible:
                        low, best_rate = lo_follow, lo_follow
                    else:
                        high = lo_follow
                    consumed += 1
        else:
            if runner.probe(mid).feasible:
                low, best_rate = mid, mid
            else:
                high = mid
            consumed += 1

    if best_rate is not None:
        return result(best_rate, runner.full_qos(best_rate))

    # No feasible midpoint: the deferred low endpoint decides between
    # "capacity = rate_bounds[0]" and "capacity = 0".
    if runner.probe(low_bound).feasible:
        return result(low_bound, runner.full_qos(low_bound))
    qos = runner.full_outcome(low_bound)
    if qos is None:
        raise EndpointUnservable(
            "endpoint cannot finish any request at the minimum rate")
    return result(0.0, qos)


def reference_capacity_search(
    device: DeviceModel,
    model: ModelConfig,
    trace: ChatTraceConfig,
    slo_tbt_s: float,
    slo_ttft_s: float | None = None,
    num_devices: int = 1,
    request_count: int = 200,
    seed: int = 7,
    percentile: str = "p95",
    rate_bounds: tuple = (0.25, 256.0),
    iterations: int = 9,
    max_sim_seconds: float = 600.0,
) -> CapacityResult:
    """The pre-optimization sequential search, kept as the parity oracle.

    Eager endpoint probes, fresh workload generation per probe, full
    simulations, and a final best-rate re-simulation — exactly the
    algorithm :func:`max_capacity_under_slo` must reproduce rate-for-
    rate.  Benchmarked as the baseline by
    ``benchmarks/bench_capacity_speed.py``.
    """
    if slo_tbt_s <= 0:
        raise ValueError("TBT SLO must be positive")
    low, high = rate_bounds
    probes: list[ProbeOutcome] = []
    simulations = 0

    def simulate(rate: float):
        nonlocal simulations
        simulations += 1
        return _simulate_rate(device, model, trace, rate, num_devices,
                              request_count, seed, max_sim_seconds)

    def probe(rate: float) -> bool:
        result, qos = simulate(rate)
        ok = _meets(result, qos, request_count, rate, slo_tbt_s, slo_ttft_s,
                    percentile)
        probes.append(ProbeOutcome(rate=rate, feasible=ok, qos=qos,
                                   finished=len(result.finished),
                                   total_time_s=result.total_time_s))
        return ok

    def result(rate: float, qos: QoSReport) -> CapacityResult:
        return CapacityResult(rate, qos, slo_tbt_s, slo_ttft_s,
                              tuple(probes), simulations)

    if not probe(low):
        _, qos = simulate(low)
        if qos is None:
            raise EndpointUnservable(
                "endpoint cannot finish any request at the minimum rate")
        return result(0.0, qos)
    if probe(high):
        _, qos = simulate(high)
        return result(high, qos)

    best_rate = low
    for _ in range(iterations):
        mid = (low + high) / 2.0
        if probe(mid):
            low = mid
            best_rate = mid
        else:
            high = mid
    _, qos = simulate(best_rate)
    assert qos is not None
    return result(best_rate, qos)


# --------------------------------------------------------------------- #
# Mixed-fleet capacity: cheapest group mix meeting the SLO               #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class FleetProbe:
    """Outcome of one mixed-fleet probe (one simulated group-count mix)."""

    counts: tuple    # replicas per group, fleet-spec order
    cost_rate: float  # sum(count * cost_per_replica_s) over groups
    feasible: bool
    qos: QoSReport | None
    finished: int
    total_time_s: float


@dataclass(frozen=True)
class FleetCapacityResult:
    """Outcome of a mixed-fleet capacity search.

    ``counts`` is the cheapest per-group replica mix that meets the SLO
    at the workload's fixed arrival rate.  ``cost_rate`` is the fleet's
    replica-cost per second of wall clock (the ranking key);
    ``replica_seconds`` and ``cost`` are that rate integrated over the
    winning run's wall clock.
    """

    counts: tuple
    cost_rate: float
    replica_seconds: float
    cost: float
    qos_at_best: QoSReport
    slo_tbt_s: float
    slo_ttft_s: float | None
    probes: tuple
    #: cluster simulations actually run (probe cache hits excluded)
    simulations: int = 0


def cost_optimal_fleet(deployment, workload, capacity=None,
                       max_sim_seconds: float = 600.0, *,
                       sim_cache: bool = True,
                       context_bucket: int = 1,
                       max_columns: int = 256) -> FleetCapacityResult:
    """Find the cheapest group mix of a fleet that meets the SLO.

    The single-endpoint search above holds the hardware fixed and
    bisects over the arrival *rate*; this one inverts the question —
    the workload's ``rate_per_s`` is fixed and the search bisects over
    a **group-count lattice**: for each group ``g`` the candidate
    counts span ``[min_count or 0, max_count or count]`` (the spec'd
    ``count`` doubles as the ceiling when no ``max_count`` is given).
    Every combination of the trailing groups forms one lattice *column*;
    within a column the leading group's count is bisected (capacity is
    monotone in fleet size), so each column costs ``O(log range)``
    cluster simulations instead of ``O(range)``.  Columns whose
    cheapest point already costs at least as much as the incumbent
    winner are skipped without simulating.

    Feasibility of a mix is judged exactly like a rate probe
    (:func:`_meets`): >= 90% of requests finish in-horizon, stable
    TTFT, and the TBT (plus optional TTFT) SLO holds at the spec'd
    percentile — measured by a full :func:`repro.api.facade.simulate_cluster`
    run of the mixed fleet, so routing, per-group capability and KV
    limits all count.

    Mixes are ranked by ``cost_rate`` (sum of ``count *
    cost_per_replica_s``), ties by total replica count, then
    lexicographically by counts — fully deterministic.  Raises
    :class:`EndpointUnservable` when no lattice point meets the SLO and
    ``ValueError`` when the trailing-group lattice exceeds
    ``max_columns`` columns (tighten per-group ``min_count`` /
    ``max_count`` bounds, or raise the cap).
    """
    from repro.api.facade import EndpointOverloaded, simulate_cluster
    from repro.api.specs import CapacitySpec, FleetSpec

    if deployment.fleet is None:
        raise ValueError(
            "mixed-fleet capacity search needs an explicit fleet; "
            "give the deployment a FleetSpec (a legacy replicas=N "
            "deployment has nothing to mix — use find_capacity)")
    if deployment.autoscale is not None:
        raise ValueError(
            "mixed-fleet capacity search sizes a *fixed* fleet; drop "
            "the autoscale spec (the search itself explores fleet "
            "sizes)")
    if deployment.faults is not None and deployment.faults.enabled:
        raise ValueError(
            "mixed-fleet capacity search models a fault-free fleet; "
            "drop the faults spec (benchmarks/bench_resilience.py "
            "sweeps goodput under faults instead)")
    if capacity is None:
        capacity = CapacitySpec()
    if workload.rate_per_s <= 0:
        raise ValueError("mixed-fleet capacity search probes the "
                         "workload's fixed rate; rate_per_s must be > 0")

    groups = deployment.fleet.groups
    bounds = []
    for group in groups:
        lo = group.min_count if group.min_count is not None else 0
        hi = group.max_count if group.max_count is not None \
            else max(group.count, lo)
        bounds.append((lo, hi))
    columns = 1
    for lo, hi in bounds[1:]:
        columns *= hi - lo + 1
    if columns > max_columns:
        raise ValueError(
            f"mixed-fleet search lattice has {columns} trailing-group "
            f"columns (> {max_columns}); tighten per-group min_count/"
            f"max_count bounds or raise max_columns")

    def cost_rate(counts) -> float:
        return sum(count * group.cost_per_replica_s
                   for count, group in zip(counts, groups))

    cache: dict = {}
    simulations = 0

    def probe(counts) -> FleetProbe:
        nonlocal simulations
        cached = cache.get(counts)
        if cached is not None:
            return cached
        if sum(counts) < 1:
            # an empty fleet serves nothing; no simulation needed
            outcome = FleetProbe(counts, 0.0, False, None, 0, 0.0)
            cache[counts] = outcome
            return outcome
        mix = FleetSpec(groups=tuple(
            dataclasses.replace(group, count=count)
            for group, count in zip(groups, counts)))
        candidate = dataclasses.replace(deployment, fleet=mix)
        simulations += 1
        try:
            report = simulate_cluster(
                candidate, workload, max_sim_seconds=max_sim_seconds,
                sim_cache=sim_cache, context_bucket=context_bucket)
        except EndpointOverloaded:
            outcome = FleetProbe(counts, cost_rate(counts), False,
                                 None, 0, 0.0)
        else:
            merged = report.cluster.merged
            ok = _meets(merged, report.qos, workload.num_requests,
                        workload.rate_per_s, capacity.slo_tbt_s,
                        capacity.slo_ttft_s, capacity.percentile)
            outcome = FleetProbe(counts, cost_rate(counts), ok,
                                 report.qos, len(merged.finished),
                                 merged.total_time_s)
        cache[counts] = outcome
        return outcome

    def rank(entry: FleetProbe):
        return (entry.cost_rate, sum(entry.counts), entry.counts)

    lo0, hi0 = bounds[0]
    best: FleetProbe | None = None
    for tail in itertools.product(*(range(lo, hi + 1)
                                    for lo, hi in bounds[1:])):
        floor_counts = (lo0, *tail)
        if best is not None and cost_rate(floor_counts) > best.cost_rate:
            continue   # even the column's cheapest point loses
        if not probe((hi0, *tail)).feasible:
            continue   # the column's best-provisioned point fails
        low, high = lo0, hi0
        while low < high:
            mid = (low + high) // 2
            if probe((mid, *tail)).feasible:
                high = mid
            else:
                low = mid + 1
        winner = cache[(high, *tail)]
        if best is None or rank(winner) < rank(best):
            best = winner
    if best is None:
        raise EndpointUnservable(
            f"no fleet in the group-count lattice sustains "
            f"{workload.rate_per_s:g} req/s under the SLO; raise the "
            f"per-group max_count ceilings or relax the SLO")
    assert best.qos is not None
    return FleetCapacityResult(
        counts=best.counts,
        cost_rate=best.cost_rate,
        replica_seconds=best.total_time_s * sum(best.counts),
        cost=best.total_time_s * best.cost_rate,
        qos_at_best=best.qos,
        slo_tbt_s=capacity.slo_tbt_s,
        slo_ttft_s=capacity.slo_ttft_s,
        probes=tuple(sorted(cache.values(), key=lambda p: p.counts)),
        simulations=simulations,
    )
