"""Maximum capacity under an SLO (paper Fig. 16).

Binary-searches the highest Poisson arrival rate at which the simulated
endpoint still meets its TBT (and optionally TTFT) SLO.  The paper's
headline: the ADOR design sustains ~23 requests/sec serving LLaMA3-8B
under a relaxed SLO on one device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.config import ModelConfig
from repro.models.kv_cache import max_batch_for_memory
from repro.perf.baselines import DeviceModel
from repro.serving.dataset import ChatTraceConfig
from repro.serving.engine import ServingEngine, SimulationResult
from repro.serving.generator import PoissonRequestGenerator
from repro.serving.qos import QoSReport, compute_qos
from repro.serving.scheduler import SchedulerLimits


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of a capacity search."""

    max_requests_per_s: float
    qos_at_max: QoSReport
    slo_tbt_s: float
    slo_ttft_s: float | None
    probes: tuple


def _simulate_rate(
    device: DeviceModel,
    model: ModelConfig,
    trace: ChatTraceConfig,
    rate: float,
    num_devices: int,
    request_count: int,
    seed: int,
    max_sim_seconds: float,
) -> tuple[SimulationResult, QoSReport | None]:
    rng = np.random.default_rng(seed)
    generator = PoissonRequestGenerator(trace, rate, rng)
    requests = generator.generate(request_count)
    # the horizon must cover the arrival span plus a generous drain
    max_sim_seconds = max(max_sim_seconds,
                          1.5 * request_count / rate + 120.0)
    kv_budget = device.chip.dram.size_bytes * num_devices * 0.9 \
        - model.param_bytes
    limits = SchedulerLimits(
        max_batch=max(1, max_batch_for_memory(
            model, int(trace.mean_input + trace.mean_output),
            device.chip.dram.size_bytes, num_devices)),
        prefill_chunk_tokens=512,
        kv_budget_bytes=max(kv_budget, 1.0),
    )
    engine = ServingEngine(device, model, limits, num_devices)
    result = engine.run(requests, max_sim_seconds=max_sim_seconds)
    if not result.finished:
        return result, None
    return result, compute_qos(result.finished, result.total_time_s)


def _queue_is_stable(result: SimulationResult) -> bool:
    """Detect an unbounded backlog: TTFT must not balloon over the run.

    At a sustainable rate TTFT is roughly flat; past saturation every
    later request waits behind a growing queue, so the second half's
    median TTFT races away from the first half's.
    """
    finished = sorted(result.finished, key=lambda r: r.arrival_time)
    if len(finished) < 8:
        return True
    half = len(finished) // 2
    first = float(np.median([r.ttft for r in finished[:half]]))
    second = float(np.median([r.ttft for r in finished[half:]]))
    return second <= max(2.5 * first, 0.25)


def _meets(result: SimulationResult, qos: QoSReport | None,
           request_count: int, rate: float, slo_tbt_s: float,
           slo_ttft_s: float | None, percentile: str) -> bool:
    if qos is None:
        return False
    # the system must actually keep up: most requests finish in-horizon
    if len(result.finished) < 0.9 * request_count:
        return False
    if not _queue_is_stable(result):
        return False
    if not qos.meets_tbt_slo(slo_tbt_s, percentile):
        return False
    if slo_ttft_s is not None and not qos.meets_ttft_slo(slo_ttft_s, percentile):
        return False
    return True


def max_capacity_under_slo(
    device: DeviceModel,
    model: ModelConfig,
    trace: ChatTraceConfig,
    slo_tbt_s: float,
    slo_ttft_s: float | None = None,
    num_devices: int = 1,
    request_count: int = 200,
    seed: int = 7,
    percentile: str = "p95",
    rate_bounds: tuple = (0.25, 256.0),
    iterations: int = 9,
    max_sim_seconds: float = 600.0,
) -> CapacityResult:
    """Binary search for the highest SLO-compliant arrival rate.

    The search brackets on (low = feasible, high = infeasible) and
    reports the last feasible probe with its QoS.
    """
    if slo_tbt_s <= 0:
        raise ValueError("TBT SLO must be positive")
    low, high = rate_bounds
    probes = []

    def probe(rate: float) -> bool:
        result, qos = _simulate_rate(device, model, trace, rate, num_devices,
                                     request_count, seed, max_sim_seconds)
        ok = _meets(result, qos, request_count, rate, slo_tbt_s, slo_ttft_s,
                    percentile)
        probes.append((rate, ok, qos))
        return ok

    if not probe(low):
        result, qos = _simulate_rate(device, model, trace, low, num_devices,
                                     request_count, seed, max_sim_seconds)
        if qos is None:
            raise RuntimeError(
                "endpoint cannot finish any request at the minimum rate")
        return CapacityResult(0.0, qos, slo_tbt_s, slo_ttft_s, tuple(probes))
    if probe(high):
        result, qos = _simulate_rate(device, model, trace, high, num_devices,
                                     request_count, seed, max_sim_seconds)
        return CapacityResult(high, qos, slo_tbt_s, slo_ttft_s, tuple(probes))

    best_rate = low
    for _ in range(iterations):
        mid = (low + high) / 2.0
        if probe(mid):
            low = mid
            best_rate = mid
        else:
            high = mid
    _, qos = _simulate_rate(device, model, trace, best_rate, num_devices,
                            request_count, seed, max_sim_seconds)
    assert qos is not None
    return CapacityResult(best_rate, qos, slo_tbt_s, slo_ttft_s, tuple(probes))
