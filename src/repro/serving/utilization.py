"""Hardware utilization accounting (the Util. Calculator of Fig. 14b).

Answers the vendor half of the QoS report: how busy the endpoint was,
how its time split between prefill and decode, and what fraction of the
DRAM bandwidth the decode traffic actually achieved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.chip import ChipSpec
from repro.models.config import ModelConfig
from repro.models.kv_cache import kv_bytes_per_token
from repro.serving.engine import SimulationResult


@dataclass(frozen=True)
class UtilizationReport:
    """Endpoint utilization over one simulation."""

    busy_fraction: float
    decode_fraction: float
    prefill_fraction: float
    decode_bandwidth_utilization: float
    mean_decode_batch: float

    def as_dict(self) -> dict[str, float]:
        return {
            "busy fraction": self.busy_fraction,
            "decode fraction": self.decode_fraction,
            "prefill fraction": self.prefill_fraction,
            "decode bandwidth utilization": self.decode_bandwidth_utilization,
            "mean decode batch": self.mean_decode_batch,
        }


def utilization_report(result: SimulationResult, model: ModelConfig,
                       chip: ChipSpec,
                       num_devices: int = 1) -> UtilizationReport:
    """Derive utilization metrics from a finished simulation."""
    if result.total_time_s <= 0:
        raise ValueError("simulation produced no time")
    tokens = result.generated_tokens
    # decode DRAM traffic: weights once per step + each token's KV history.
    # Approximate KV traffic per token by half its final context (the
    # integral of a linearly growing context).
    finished = result.finished + result.unfinished
    kv_per_token = kv_bytes_per_token(model)
    kv_traffic = sum(
        r.generated_tokens * (r.input_tokens + r.generated_tokens / 2)
        * kv_per_token for r in finished
    )
    weight_traffic = result.decode_steps * model.active_param_bytes_per_token
    ideal_seconds = (kv_traffic + weight_traffic) \
        / (chip.memory_bandwidth * num_devices)
    decode_bw_util = min(1.0, ideal_seconds / result.decode_time_s) \
        if result.decode_time_s > 0 else 0.0
    mean_batch = tokens / result.decode_steps if result.decode_steps else 0.0
    return UtilizationReport(
        busy_fraction=min(1.0, result.busy_time_s / result.total_time_s),
        decode_fraction=result.decode_time_s / result.total_time_s,
        prefill_fraction=result.prefill_time_s / result.total_time_s,
        decode_bandwidth_utilization=decode_bw_util,
        mean_decode_batch=mean_batch,
    )
