"""Request-trace serialization: save/load simulation inputs and results.

Reproducibility plumbing for the serving simulator: request streams are
written as JSON so a QoS result can be replayed bit-for-bit later or on
another machine, and finished runs export their per-request timelines
for offline analysis.
"""

from __future__ import annotations

import json
import pathlib

from repro.serving.request import Request


def save_requests(requests, path) -> None:
    """Write a request stream (inputs only) as JSON.

    Accepts any iterable — a materialized list or a lazy stream such as
    ``WorkloadSpec.iter_requests()`` — and consumes it once; the JSON
    payload is the only thing materialized here.
    """
    payload = []
    for r in requests:
        entry = {
            "request_id": r.request_id,
            "arrival_time": r.arrival_time,
            "input_tokens": r.input_tokens,
            "output_tokens": r.output_tokens,
        }
        if r.session_id is not None:
            entry["session_id"] = r.session_id
        # multi-turn fields are written only when set, so single-turn
        # traces keep their old compact shape byte-for-byte
        if r.turn_index:
            entry["turn_index"] = r.turn_index
        if r.history_tokens:
            entry["history_tokens"] = r.history_tokens
        payload.append(entry)
    pathlib.Path(path).write_text(json.dumps(payload, indent=1))


def load_requests(path) -> list:
    """Read a request stream written by :func:`save_requests`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a JSON list of requests")
    requests = []
    for entry in payload:
        try:
            session = entry.get("session_id")
            requests.append(Request(
                request_id=int(entry["request_id"]),
                arrival_time=float(entry["arrival_time"]),
                input_tokens=int(entry["input_tokens"]),
                output_tokens=int(entry["output_tokens"]),
                session_id=None if session is None else int(session),
                # absent in traces written before multi-turn metadata
                # existed: default to a first/only turn with no history
                turn_index=int(entry.get("turn_index", 0)),
                history_tokens=int(entry.get("history_tokens", 0)),
            ))
        except KeyError as missing:
            raise ValueError(f"{path}: request entry missing {missing}")
    return sorted(requests, key=lambda r: r.arrival_time)


def export_timeline(finished: list, path) -> None:
    """Write per-request QoS timelines of a finished simulation."""
    payload = [
        {
            "request_id": r.request_id,
            "arrival_time": r.arrival_time,
            "input_tokens": r.input_tokens,
            "output_tokens": r.output_tokens,
            "first_token_time": r.first_token_time,
            "finish_time": r.finish_time,
            "ttft": r.ttft,
            "tbt": r.tbt,
            "e2e": r.e2e_latency,
        }
        for r in finished
    ]
    pathlib.Path(path).write_text(json.dumps(payload, indent=1))


def load_timeline(path) -> list:
    """Read a timeline export back as a list of dicts."""
    payload = json.loads(pathlib.Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a JSON list")
    return payload
