"""Paged prefix/KV reuse across the turns of a multi-turn session.

Multi-turn chat resends the whole growing history every turn, yet a cold
endpoint re-prefills it from scratch — the single biggest TTFT/capacity
lever on ultrachat-shaped traffic.  This module models the vLLM-style
answer (Apt-Serve's hybrid cache makes the same bet): when a turn
finishes, its KV blocks — accumulated history plus the fresh answer —
stay *resident* in the paged pool, filed under the session.  When the
session's next turn arrives, the scheduler re-prefills only the fresh
question; the cached prefix is already in memory.

The cache is layered on :class:`~repro.serving.kv_allocator
.PagedKvAllocator` and obeys two invariants:

* **cached blocks are reclaimable, active allocations are not** — pool
  pressure evicts whole cached prefixes (policy-chosen, LRU by
  default) but never touches a running request's blocks; when even
  reclaiming everything cannot fit a prompt, admission stalls, and when
  a *running* request cannot grow, the scheduler preempts
  (vLLM's recompute path);
* **a reclaimable-fraction cap** bounds how much of the pool cached
  prefixes may occupy, so the cache can never starve admission.

Reuse is *exact* at block granularity: a hit covers the longest
block-aligned prefix of the turn's resident history, never more than
``input_tokens - 1`` (at least one token is always recomputed, exactly
like vLLM's prefix caching).  What is *modeled* rather than
byte-accurate is the growth/preemption timing: decode-block exhaustion
is applied at iteration (or fast-forward burst) boundaries, not
mid-step.

Eviction policies follow the repo's registry idiom, exactly like
routers, autoscalers and batching policies::

    from repro.serving.prefix_cache import register_eviction_policy

    @register_eviction_policy("my-policy")
    class MyPolicy:
        def select(self, entries):  # -> CachedPrefix to evict
            ...

Built-ins: ``lru`` (least recent session activity), ``fifo`` (oldest
session first), ``largest`` (most blocks freed per eviction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Protocol

from repro.models.config import ModelConfig
from repro.registry import Registry
from repro.serving.kv_allocator import KvBlockConfig, PagedKvAllocator
from repro.serving.request import Request
from repro.serving.scheduler import SchedulerLimits


# --------------------------------------------------------------------- #
# Spec (serialized inside DeploymentSpec)                                #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class PrefixCacheSpec:
    """How a deployment reuses KV prefixes across session turns.

    ``reclaimable_fraction`` caps the share of the paged pool that
    cached (reclaimable) prefixes may hold; ``eviction`` names a
    registered eviction policy; ``block_tokens`` is the paged-pool
    block size.  The pool itself is sized by the deployment's
    ``kv_budget_bytes`` (``None``/unlimited budget means an unbounded
    pool: everything is cached and nothing is ever evicted).  With
    ``enabled=False`` the subsystem is entirely bypassed — results are
    bit-identical to a deployment without the spec.
    """

    enabled: bool = True
    reclaimable_fraction: float = 0.5
    eviction: str = "lru"
    block_tokens: int = 16

    def __post_init__(self) -> None:
        if not 0.0 < self.reclaimable_fraction <= 1.0:
            raise ValueError(
                "reclaimable_fraction must be in (0, 1]")
        if self.block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        # unknown policy names fail here, at spec construction, not
        # deep inside the first engine iteration
        get_eviction_policy(self.eviction)

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "reclaimable_fraction": self.reclaimable_fraction,
            "eviction": self.eviction,
            "block_tokens": self.block_tokens,
        }

    _FIELDS = frozenset(
        ("enabled", "reclaimable_fraction", "eviction", "block_tokens"))

    @classmethod
    def from_dict(cls, data: dict) -> "PrefixCacheSpec":
        if not isinstance(data, dict):
            raise ValueError(
                f"prefix_cache section must be a JSON object, "
                f"got {type(data).__name__}")
        unknown = set(data) - cls._FIELDS
        if unknown:
            # same loud-typo contract as the api specs: a misspelled
            # knob silently running with defaults would fake a result
            raise ValueError(
                f"unknown prefix_cache field(s): "
                f"{', '.join(sorted(unknown))}; "
                f"allowed: {', '.join(sorted(cls._FIELDS))}")
        return cls(**{key: data[key] for key in cls._FIELDS if key in data})


# --------------------------------------------------------------------- #
# Eviction policy registry                                               #
# --------------------------------------------------------------------- #

@dataclass
class CachedPrefix:
    """One session's resident prefix: the blocks of its last finished
    turn (history + answer), reclaimable until the next turn claims or
    pressure evicts them.

    ``stored_at`` is the logical time the *session* first entered the
    cache (preserved across re-stashes, so FIFO ages sessions, not
    turns); ``last_used`` is bumped on every re-stash (so LRU tracks
    session activity).  Both are event counters, not wall clock — the
    cache is deterministic by construction.
    """

    session_id: int
    tokens: int
    blocks: int
    alloc_key: int
    stored_at: int
    last_used: int


class EvictionPolicy(Protocol):
    """Chooses which cached prefix to reclaim under pool pressure."""

    def select(self, entries: Iterable[CachedPrefix]) -> CachedPrefix:
        """Return the entry to evict (``entries`` is never empty)."""
        ...


EVICTION_REGISTRY = Registry("eviction policy")


def register_eviction_policy(name: str) -> Callable:
    """Decorator: register a zero-arg :class:`EvictionPolicy` factory."""

    def _decorate(factory: Callable[[], EvictionPolicy]):
        EVICTION_REGISTRY.register(name, factory)
        return factory

    return _decorate


def get_eviction_policy(name: str) -> Callable[[], EvictionPolicy]:
    """Look up an eviction-policy factory by name."""
    return EVICTION_REGISTRY.get(name)


def list_eviction_policies() -> list[str]:
    """Registered eviction-policy names, sorted."""
    return EVICTION_REGISTRY.names()


@register_eviction_policy("lru")
class LruEviction:
    """Evict the session with the least recent activity (ties by id)."""

    def select(self, entries: Iterable[CachedPrefix]) -> CachedPrefix:
        return min(entries, key=lambda e: (e.last_used, e.session_id))


@register_eviction_policy("fifo")
class FifoEviction:
    """Evict the session that entered the cache first (ties by id)."""

    def select(self, entries: Iterable[CachedPrefix]) -> CachedPrefix:
        return min(entries, key=lambda e: (e.stored_at, e.session_id))


@register_eviction_policy("largest")
class LargestEviction:
    """Evict the biggest prefix: most blocks freed per eviction."""

    def select(self, entries: Iterable[CachedPrefix]) -> CachedPrefix:
        return min(entries,
                   key=lambda e: (-e.blocks, e.last_used, e.session_id))


# --------------------------------------------------------------------- #
# Stats (attached to SimulationResult / merged by ClusterReport)         #
# --------------------------------------------------------------------- #

@dataclass
class PrefixCacheStats:
    """What the cache did over one run.

    ``lookups`` counts every admission; ``eligible`` the subset that
    carried a reusable history (a session turn beyond the first);
    ``hits`` the eligible lookups whose prefix was still resident.
    ``saved_prefill_tokens`` is the headline win: prompt tokens that
    were *not* re-prefilled because their blocks were cached.
    ``reclaimed_blocks`` counts blocks taken back from cached prefixes
    under pool pressure, and ``preemptions`` the running requests
    requeued for recompute when even reclaiming was not enough.
    """

    lookups: int = 0
    eligible: int = 0
    hits: int = 0
    saved_prefill_tokens: int = 0
    stashed: int = 0
    rejected_stashes: int = 0
    evictions: int = 0
    reclaimed_blocks: int = 0
    preemptions: int = 0

    @property
    def misses(self) -> int:
        return self.eligible - self.hits

    @property
    def hit_rate(self) -> float:
        """Hits over prefix-bearing lookups (0.0 when none occurred)."""
        if self.eligible == 0:
            return 0.0
        return self.hits / self.eligible

    @classmethod
    def merged(cls, parts: Iterable["PrefixCacheStats"]
               ) -> "PrefixCacheStats":
        """Fleet view: counter-wise sum of per-replica stats."""
        total = cls()
        for part in parts:
            total.lookups += part.lookups
            total.eligible += part.eligible
            total.hits += part.hits
            total.saved_prefill_tokens += part.saved_prefill_tokens
            total.stashed += part.stashed
            total.rejected_stashes += part.rejected_stashes
            total.evictions += part.evictions
            total.reclaimed_blocks += part.reclaimed_blocks
            total.preemptions += part.preemptions
        return total


# --------------------------------------------------------------------- #
# The cache                                                              #
# --------------------------------------------------------------------- #

class PrefixCache:
    """Block-granular prefix store for one endpoint's paged KV pool.

    Owns the endpoint's :class:`PagedKvAllocator`: every active request
    allocates through :meth:`acquire` / :meth:`extend` and releases
    through :meth:`stash` (finish) or :meth:`forfeit` (preemption), so
    active and cached blocks share one pool and one accounting.  A
    stashed prefix keeps its finished request's allocation alive — the
    blocks stay "used" in the allocator but become reclaimable here.
    """

    def __init__(self, allocator: PagedKvAllocator,
                 reclaimable_fraction: float = 0.5,
                 eviction: str = "lru") -> None:
        if not 0.0 < reclaimable_fraction <= 1.0:
            raise ValueError("reclaimable_fraction must be in (0, 1]")
        self.allocator = allocator
        self.block_tokens = allocator.config.block_tokens
        self.reclaimable_block_cap = int(
            reclaimable_fraction * allocator.total_blocks)
        self._policy: EvictionPolicy = get_eviction_policy(eviction)()
        self._entries: dict[int, CachedPrefix] = {}
        self.cached_blocks = 0
        self._clock = 0
        self.stats = PrefixCacheStats()

    @classmethod
    def for_deployment(cls, model: ModelConfig, limits: SchedulerLimits,
                       spec: PrefixCacheSpec) -> "PrefixCache":
        """Build the pool an endpoint's limits imply and cache on it."""
        allocator = PagedKvAllocator(model, KvBlockConfig(
            block_tokens=spec.block_tokens,
            pool_bytes=limits.kv_budget_bytes))
        return cls(allocator,
                   reclaimable_fraction=spec.reclaimable_fraction,
                   eviction=spec.eviction)

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    @property
    def cached_sessions(self) -> int:
        return len(self._entries)

    def cached_tokens(self, session_id: int) -> int:
        """Resident prefix length for one session (0 when absent)."""
        entry = self._entries.get(session_id)
        return entry.tokens if entry is not None else 0

    # ------------------------------------------------------------------ #
    # Active-request lifecycle (called by the scheduler)                  #
    # ------------------------------------------------------------------ #

    def _match(self, entry: CachedPrefix, request: Request) -> int:
        """Block-aligned reusable prefix length for ``request``.

        Capped by the resident prefix, by the tokens the turn actually
        shares (``history_tokens``) and — like vLLM — by
        ``input_tokens - 1``: at least one prompt token is always
        recomputed, so a fully-cached prompt still prefills.
        """
        upper = min(entry.tokens, request.history_tokens,
                    request.input_tokens - 1)
        if upper <= 0:
            return 0
        return (upper // self.block_tokens) * self.block_tokens

    def acquire(self, request: Request) -> int | None:
        """Allocate an admission candidate's prompt blocks.

        Returns the cached-prefix hit in tokens (0 on a miss), or
        ``None`` — with *no* state touched — when the prompt cannot fit
        even after reclaiming every cached prefix; the scheduler then
        stalls admission until running work completes.

        A preempted request re-enters here with ``generated_tokens``
        already emitted; its whole context (prompt + generated) must be
        re-resident for the recompute, and it never scores a hit (its
        session entry, if any, predates the turn).
        """
        self._clock += 1
        prompt = request.input_tokens + request.generated_tokens
        needed = self.allocator.blocks_for_tokens(prompt)
        if needed > self.allocator.free_blocks + self.cached_blocks:
            return None
        self.stats.lookups += 1
        session = request.session_id
        eligible = (session is not None and request.history_tokens > 0
                    and request.generated_tokens == 0)
        if eligible:
            self.stats.eligible += 1
        hit = 0
        entry = self._entries.pop(session, None) \
            if session is not None else None
        if entry is not None:
            if eligible:
                hit = self._match(entry, request)
            # the turn supersedes the stored prefix either way: its own
            # finish will stash the longer (history + answer) context
            self.cached_blocks -= entry.blocks
            self.allocator.release(entry.alloc_key)
        if needed > self.allocator.free_blocks:
            self._reclaim(needed)
        self.allocator.admit(request.request_id, prompt)
        if hit > 0:
            self.stats.hits += 1
            self.stats.saved_prefill_tokens += hit
        return hit

    def extend(self, request: Request, tokens: int) -> bool:
        """Grow a running request by ``tokens`` generated tokens.

        Reclaims cached prefixes under pressure; returns ``False`` only
        when even a fully-drained cache cannot supply the blocks — the
        scheduler's preemption trigger.
        """
        growth = self.allocator.growth_blocks(request.request_id, tokens)
        if growth > self.allocator.free_blocks + self.cached_blocks:
            return False
        if growth > self.allocator.free_blocks:
            self._reclaim(growth)
        return self.allocator.extend(request.request_id, tokens)

    def stash(self, request: Request) -> None:
        """Release a finished request *into* the cache.

        Sessionless requests free their blocks outright.  A session
        turn's allocation (history + answer, the next turn's prefix)
        becomes a reclaimable :class:`CachedPrefix` — unless it alone
        would bust the reclaimable cap, in which case caching it is
        pointless (it would evict itself) and the blocks are freed.
        """
        request_id = request.request_id
        session = request.session_id
        if session is None:
            self.allocator.release(request_id)
            return
        blocks = self.allocator.allocation_blocks(request_id)
        if blocks > self.reclaimable_block_cap:
            self.allocator.release(request_id)
            self.stats.rejected_stashes += 1
            return
        self._clock += 1
        stored_at = self._clock
        previous = self._entries.pop(session, None)
        if previous is not None:
            # superseded by this turn's longer prefix; keep the
            # session's original insertion time so FIFO ages sessions
            stored_at = previous.stored_at
            self.cached_blocks -= previous.blocks
            self.allocator.release(previous.alloc_key)
        while self.cached_blocks + blocks > self.reclaimable_block_cap:
            if not self._evict_one():
                break
        tokens = self.allocator.allocation_tokens(request_id)
        self._entries[session] = CachedPrefix(
            session_id=session, tokens=tokens, blocks=blocks,
            alloc_key=request_id, stored_at=stored_at,
            last_used=self._clock)
        self.cached_blocks += blocks
        self.stats.stashed += 1

    def forfeit(self, request: Request) -> None:
        """Drop a preempted request's blocks (vLLM's recompute path)."""
        self.allocator.release(request.request_id)
        self.stats.preemptions += 1

    # ------------------------------------------------------------------ #
    # Eviction (cached prefixes only — never active allocations)          #
    # ------------------------------------------------------------------ #

    def _reclaim(self, needed_blocks: int) -> None:
        """Evict cached prefixes until at least ``needed_blocks`` of the
        pool are free (the target free count, not a delta)."""
        while self.allocator.free_blocks < needed_blocks:
            if not self._evict_one():
                break

    def _evict_one(self) -> bool:
        if not self._entries:
            return False
        victim = self._policy.select(self._entries.values())
        del self._entries[victim.session_id]
        self.cached_blocks -= victim.blocks
        freed = self.allocator.release(victim.alloc_key)
        self.stats.evictions += 1
        self.stats.reclaimed_blocks += freed
        return True
