"""Serving simulator: the ADOR Simulator of Fig. 14(b).

A discrete-event simulation of a real LLM serving endpoint: Poisson
request arrivals with trace-driven token lengths, iteration-level
continuous batching with chunked prefill, and QoS accounting (TTFT, TBT,
E2E latency, throughput).  :mod:`repro.serving.capacity` binary-searches
the maximum sustainable request rate under an SLO — the Fig. 16
experiment.

This package simulates *one* endpoint; :mod:`repro.cluster` scales it to
N replicas behind a request router (``DeploymentSpec(replicas=...,
router=...)`` in the declarative API).
"""

from repro.serving.request import Request, RequestState
from repro.serving.dataset import ChatTraceConfig, ULTRACHAT_LIKE, sample_trace
from repro.serving.generator import (
    OnOffRequestGenerator,
    PoissonArrivalTemplate,
    PoissonRequestGenerator,
)
from repro.serving.scheduler import ContinuousBatchingScheduler, SchedulerLimits
from repro.serving.engine import (
    InstabilityMonitor,
    Saturated,
    ServingEngine,
    SimulationResult,
)
from repro.serving.qos import QoSReport, compute_qos
from repro.serving.capacity import (
    CapacityProbePool,
    CapacityResult,
    EndpointUnservable,
    ProbeOutcome,
    max_capacity_under_slo,
    probe_pool,
    reference_capacity_search,
)
from repro.serving.utilization import UtilizationReport, utilization_report
from repro.serving.policies import (
    BatchingPolicy,
    get_policy,
    list_policies,
    register_policy,
    simulate_policy,
)
from repro.serving.traces import get_trace, list_traces, register_trace
from repro.serving.sessions import (
    MultiTurnSessionGenerator,
    SessionConfig,
    SessionTurn,
)
from repro.serving.kv_allocator import KvBlockConfig, PagedKvAllocator
from repro.serving.prefix_cache import (
    CachedPrefix,
    PrefixCache,
    PrefixCacheSpec,
    PrefixCacheStats,
    get_eviction_policy,
    list_eviction_policies,
    register_eviction_policy,
)
from repro.serving.trace_io import (
    export_timeline,
    load_requests,
    save_requests,
)

__all__ = [
    "KvBlockConfig",
    "PagedKvAllocator",
    "CachedPrefix",
    "PrefixCache",
    "PrefixCacheSpec",
    "PrefixCacheStats",
    "get_eviction_policy",
    "list_eviction_policies",
    "register_eviction_policy",
    "export_timeline",
    "load_requests",
    "save_requests",
    "BatchingPolicy",
    "simulate_policy",
    "get_policy",
    "list_policies",
    "register_policy",
    "get_trace",
    "list_traces",
    "register_trace",
    "MultiTurnSessionGenerator",
    "SessionConfig",
    "SessionTurn",
    "Request",
    "RequestState",
    "ChatTraceConfig",
    "ULTRACHAT_LIKE",
    "sample_trace",
    "OnOffRequestGenerator",
    "PoissonArrivalTemplate",
    "PoissonRequestGenerator",
    "ContinuousBatchingScheduler",
    "SchedulerLimits",
    "InstabilityMonitor",
    "Saturated",
    "ServingEngine",
    "SimulationResult",
    "QoSReport",
    "compute_qos",
    "CapacityProbePool",
    "CapacityResult",
    "EndpointUnservable",
    "ProbeOutcome",
    "max_capacity_under_slo",
    "probe_pool",
    "reference_capacity_search",
    "UtilizationReport",
    "utilization_report",
]
