"""The serving engine: a discrete-event loop over scheduler iterations.

Each iteration executes one decode step for the running batch plus one
prefill chunk (continuous batching).  On an HDA chip the two overlap —
the MAC tree streams decode attention from DRAM while the systolic array
chews the prefill chunk (Fig. 8); on baseline hardware they serialize
almost completely.  Iteration latency comes from the same
:class:`~repro.perf.baselines.DeviceModel` estimators as every other
experiment, so the serving results are consistent with Figs. 11 and 15.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.chip import ChipKind
from repro.models.config import ModelConfig
from repro.perf.baselines import DeviceModel
from repro.serving.request import Request
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    IterationPlan,
    SchedulerLimits,
)

#: Fraction of the shorter of (decode step, prefill chunk) hidden by the
#: HDA's heterogeneous overlap; baselines get a small pipelining credit.
_OVERLAP_BY_KIND = {
    ChipKind.ADOR_HDA: 0.60,
    ChipKind.GPU: 0.15,
    ChipKind.SYSTOLIC_NPU: 0.15,
    ChipKind.STREAMING_SRAM: 0.30,
}


@dataclass
class SimulationResult:
    """Outcome of one serving simulation."""

    finished: list
    unfinished: list
    total_time_s: float
    iterations: int
    decode_steps: int
    busy_time_s: float
    decode_time_s: float
    prefill_time_s: float

    @property
    def completed_requests_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return len(self.finished) / self.total_time_s

    @property
    def generated_tokens(self) -> int:
        return sum(r.generated_tokens for r in self.finished + self.unfinished)

    @property
    def tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.generated_tokens / self.total_time_s


class ServingEngine:
    """Simulates one endpoint (one device group) serving one model."""

    def __init__(
        self,
        device: DeviceModel,
        model: ModelConfig,
        limits: SchedulerLimits,
        num_devices: int = 1,
    ) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        self.device = device
        self.model = model
        self.limits = limits
        self.num_devices = num_devices
        self.overlap = _OVERLAP_BY_KIND.get(device.chip.kind, 0.15)

    # ------------------------------------------------------------------ #
    # Iteration timing                                                     #
    # ------------------------------------------------------------------ #

    def _iteration_seconds(self, plan: IterationPlan) -> tuple[float, float, float]:
        """(total, decode_part, prefill_part) latency of one iteration."""
        decode = 0.0
        if plan.decode_requests:
            contexts = [r.context_len for r in plan.decode_requests]
            mean_context = max(1, int(sum(contexts) / len(contexts)))
            decode = self.device.decode_step_time(
                self.model, len(plan.decode_requests), mean_context,
                self.num_devices).seconds
        prefill = 0.0
        if plan.prefill_tokens > 0:
            prefill = self.device.prefill_time(
                self.model, 1, plan.prefill_tokens, self.num_devices).seconds
        if decode and prefill:
            hidden = self.overlap * min(decode, prefill)
            return decode + prefill - hidden, decode, prefill
        return decode + prefill, decode, prefill

    # ------------------------------------------------------------------ #
    # Main loop                                                            #
    # ------------------------------------------------------------------ #

    def run(self, requests: list[Request],
            max_sim_seconds: float = 600.0) -> SimulationResult:
        """Simulate until all requests finish or the horizon expires."""
        pending = sorted(requests, key=lambda r: r.arrival_time)
        scheduler = ContinuousBatchingScheduler(self.model, self.limits)
        now = 0.0
        finished: list[Request] = []
        iterations = 0
        decode_steps = 0
        busy = 0.0
        decode_time = 0.0
        prefill_time = 0.0

        while now < max_sim_seconds:
            while pending and pending[0].arrival_time <= now:
                scheduler.enqueue(pending.pop(0))
            plan = scheduler.plan_iteration()
            if not plan.has_work:
                if not pending:
                    break
                # idle until the next arrival, never past the horizon
                # (a late arrival must not inflate total_time_s)
                now = min(pending[0].arrival_time, max_sim_seconds)
                continue
            step, decode_part, prefill_part = self._iteration_seconds(plan)
            now += step
            busy += step
            decode_time += decode_part
            prefill_time += prefill_part
            iterations += 1
            if plan.decode_requests:
                decode_steps += 1
                for request in plan.decode_requests:
                    request.record_token(now)
                    if request.done:
                        finished.append(request)
            scheduler.complete_iteration(plan)

        unfinished = scheduler.prefilling + scheduler.decoding \
            + scheduler.queued + pending
        return SimulationResult(
            finished=finished,
            unfinished=unfinished,
            total_time_s=now,
            iterations=iterations,
            decode_steps=decode_steps,
            busy_time_s=busy,
            decode_time_s=decode_time,
            prefill_time_s=prefill_time,
        )
