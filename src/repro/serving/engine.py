"""The serving engine: a discrete-event loop over scheduler iterations.

Each iteration executes one decode step for the running batch plus one
prefill chunk (continuous batching).  On an HDA chip the two overlap —
the MAC tree streams decode attention from DRAM while the systolic array
chews the prefill chunk (Fig. 8); on baseline hardware they serialize
almost completely.  Iteration latency comes from the same
:class:`~repro.perf.baselines.DeviceModel` estimators as every other
experiment, so the serving results are consistent with Figs. 11 and 15.

Two coordinated fast paths keep simulated iterations near-free without
changing a single result bit:

* **incremental state** — the decode-context sum and batch size ride on
  the :class:`IterationPlan` as running counters, so iteration timing
  never rebuilds per-request lists;
* **decode fast-forward** — when the upcoming iterations are pure decode
  (no prefill chunk, nothing admissible, no pending arrival yet), the
  engine applies the whole run of steps in one shot, synthesizing each
  step's timestamp from the same per-step latencies the plain loop would
  have used.  Token times, QoS percentiles and counters are identical;
  only the Python-loop overhead disappears.  Construct the engine with
  ``fast_forward=False`` to force the reference one-iteration-at-a-time
  loop (the parity suite compares the two bit-for-bit).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.hardware.chip import ChipKind
from repro.models.config import ModelConfig
from repro.perf.baselines import DeviceModel
from repro.serving.request import Request
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    IterationPlan,
    SchedulerLimits,
)

#: Fraction of the shorter of (decode step, prefill chunk) hidden by the
#: HDA's heterogeneous overlap; baselines get a small pipelining credit.
_OVERLAP_BY_KIND = {
    ChipKind.ADOR_HDA: 0.60,
    ChipKind.GPU: 0.15,
    ChipKind.SYSTOLIC_NPU: 0.15,
    ChipKind.STREAMING_SRAM: 0.30,
}


@dataclass
class SimulationResult:
    """Outcome of one serving simulation."""

    finished: list
    unfinished: list
    total_time_s: float
    iterations: int
    decode_steps: int
    busy_time_s: float
    decode_time_s: float
    prefill_time_s: float

    @property
    def completed_requests_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return len(self.finished) / self.total_time_s

    @property
    def generated_tokens(self) -> int:
        return sum(r.generated_tokens for r in self.finished + self.unfinished)

    @property
    def tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.generated_tokens / self.total_time_s


def run_decode_burst(scheduler, plan, pending, device, model, num_devices,
                     now, limit, busy, decode_time, finished,
                     on_finish=None):
    """Fast-forward one pure-decode run and apply it, in one place.

    Steps a fixed decode batch until the earliest completion
    (``until_finish`` steps), the clock passing ``limit`` (checked
    before each step, like the plain loops), or the next pending arrival
    landing (checked after each step, so the step that overruns it still
    executes — the plain loops only see arrivals at the next iteration
    top).  ``busy``/``decode_time`` are threaded through and accumulated
    per step, preserving the reference float-summation order bit for
    bit.  Completions are appended to ``finished`` in batch order
    (``on_finish`` is an optional extra per-completion hook) and the
    scheduler state is advanced via ``complete_burst``.  Returns
    ``(now, steps, busy, decode_time)``.

    Shared by :meth:`ServingEngine.run` and
    ``repro.cluster.engine.ReplicaSim.advance_to`` so the burst
    semantics cannot drift between the single-engine and cluster paths.
    """
    batch = plan.decode_requests
    size = plan.decode_batch
    ctx_sum = plan.decode_context_sum
    until_finish = min(r.output_tokens - r.generated_tokens
                       for r in batch)
    next_arrival = pending[0].arrival_time if pending else None
    times: list[float] = []
    steps = 0
    while steps < until_finish and now < limit:
        mean_context = max(1, int(ctx_sum / size))
        step = device.decode_step_time(
            model, size, mean_context, num_devices).seconds
        now += step
        busy += step
        decode_time += step
        times.append(now)
        ctx_sum += size
        steps += 1
        if next_arrival is not None and next_arrival <= now:
            break
    burst_finished: list[Request] = []
    if steps == until_finish:
        for request in batch:
            request.record_token_burst(times)
            if request.done:
                finished.append(request)
                burst_finished.append(request)
                if on_finish is not None:
                    on_finish(request)
    else:
        # interrupted by an arrival or the limit before the earliest
        # completion: nobody can have finished
        for request in batch:
            request.record_token_burst(times)
    scheduler.complete_burst(plan, steps, burst_finished)
    return now, steps, busy, decode_time


class ServingEngine:
    """Simulates one endpoint (one device group) serving one model."""

    def __init__(
        self,
        device: DeviceModel,
        model: ModelConfig,
        limits: SchedulerLimits,
        num_devices: int = 1,
        fast_forward: bool = True,
    ) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        self.device = device
        self.model = model
        self.limits = limits
        self.num_devices = num_devices
        self.fast_forward = fast_forward
        self.overlap = _OVERLAP_BY_KIND.get(device.chip.kind, 0.15)

    # ------------------------------------------------------------------ #
    # Iteration timing                                                     #
    # ------------------------------------------------------------------ #

    def _iteration_seconds(self, plan: IterationPlan) -> tuple[float, float, float]:
        """(total, decode_part, prefill_part) latency of one iteration."""
        decode = 0.0
        if plan.decode_batch:
            mean_context = max(
                1, int(plan.decode_context_sum / plan.decode_batch))
            decode = self.device.decode_step_time(
                self.model, plan.decode_batch, mean_context,
                self.num_devices).seconds
        prefill = 0.0
        if plan.prefill_tokens > 0:
            prefill = self.device.prefill_time(
                self.model, 1, plan.prefill_tokens, self.num_devices).seconds
        if decode and prefill:
            hidden = self.overlap * min(decode, prefill)
            return decode + prefill - hidden, decode, prefill
        return decode + prefill, decode, prefill

    # ------------------------------------------------------------------ #
    # Main loop                                                            #
    # ------------------------------------------------------------------ #

    def run(self, requests: list[Request],
            max_sim_seconds: float = 600.0) -> SimulationResult:
        """Simulate until all requests finish or the horizon expires."""
        pending = deque(sorted(requests, key=lambda r: r.arrival_time))
        scheduler = ContinuousBatchingScheduler(self.model, self.limits)
        now = 0.0
        finished: list[Request] = []
        iterations = 0
        decode_steps = 0
        busy = 0.0
        decode_time = 0.0
        prefill_time = 0.0
        device = self.device
        model = self.model
        num_devices = self.num_devices

        while now < max_sim_seconds:
            while pending and pending[0].arrival_time <= now:
                scheduler.enqueue(pending.popleft())
            plan = scheduler.plan_iteration()
            if not plan.has_work:
                if not pending:
                    break
                # idle until the next arrival, never past the horizon
                # (a late arrival must not inflate total_time_s)
                now = min(pending[0].arrival_time, max_sim_seconds)
                continue
            if self.fast_forward and plan.decode_batch \
                    and plan.prefill_tokens == 0:
                # Pure decode: nothing prefilling, and anything still
                # queued stayed blocked during _admit, which only
                # unblocks after a completion.  Fast-forward whole steps
                # until the earliest completion, the next arrival, or
                # the horizon — whichever the per-step clock hits first.
                now, steps, busy, decode_time = run_decode_burst(
                    scheduler, plan, pending, device, model, num_devices,
                    now, max_sim_seconds, busy, decode_time, finished)
                iterations += steps
                decode_steps += steps
                continue
            step, decode_part, prefill_part = self._iteration_seconds(plan)
            now += step
            busy += step
            decode_time += decode_part
            prefill_time += prefill_part
            iterations += 1
            if plan.decode_batch:
                decode_steps += 1
                finished_now: list[Request] = []
                for request in plan.decode_requests:
                    request.record_token(now)
                    if request.done:
                        finished.append(request)
                        finished_now.append(request)
                plan.finished_decodes = finished_now
            scheduler.complete_iteration(plan)

        unfinished = scheduler.prefilling + scheduler.decoding \
            + list(scheduler.queued) + list(pending)
        return SimulationResult(
            finished=finished,
            unfinished=unfinished,
            total_time_s=now,
            iterations=iterations,
            decode_steps=decode_steps,
            busy_time_s=busy,
            decode_time_s=decode_time,
            prefill_time_s=prefill_time,
        )
