"""The serving engine: a discrete-event loop over scheduler iterations.

Each iteration executes one decode step for the running batch plus one
prefill chunk (continuous batching).  On an HDA chip the two overlap —
the MAC tree streams decode attention from DRAM while the systolic array
chews the prefill chunk (Fig. 8); on baseline hardware they serialize
almost completely.  Iteration latency comes from the same
:class:`~repro.perf.baselines.DeviceModel` estimators as every other
experiment, so the serving results are consistent with Figs. 11 and 15.

Two coordinated fast paths keep simulated iterations near-free without
changing a single result bit:

* **incremental state** — the decode-context sum and batch size ride on
  the :class:`IterationPlan` as running counters, so iteration timing
  never rebuilds per-request lists;
* **decode fast-forward** — when the upcoming iterations are pure decode
  (no prefill chunk, nothing admissible, no pending arrival yet), the
  engine applies the whole run of steps in one shot, synthesizing each
  step's timestamp from the same per-step latencies the plain loop would
  have used.  Token times, QoS percentiles and counters are identical;
  only the Python-loop overhead disappears.  Construct the engine with
  ``fast_forward=False`` to force the reference one-iteration-at-a-time
  loop (the parity suite compares the two bit-for-bit).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.hardware.chip import ChipKind
from repro.models.config import ModelConfig
from repro.perf.baselines import DeviceModel
from repro.serving.prefix_cache import (
    PrefixCache,
    PrefixCacheSpec,
    PrefixCacheStats,
)
from repro.serving.request import Request, RequestState
from repro.serving.stream import RequestStream, as_stream
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    IterationPlan,
    SchedulerLimits,
)

#: Fraction of the shorter of (decode step, prefill chunk) hidden by the
#: HDA's heterogeneous overlap; baselines get a small pipelining credit.
_OVERLAP_BY_KIND = {
    ChipKind.ADOR_HDA: 0.60,
    ChipKind.GPU: 0.15,
    ChipKind.SYSTOLIC_NPU: 0.15,
    ChipKind.STREAMING_SRAM: 0.30,
}


@dataclass(frozen=True)
class Saturated:
    """Typed verdict of an online saturation abort.

    Attached to :attr:`SimulationResult.saturated` when an
    :class:`InstabilityMonitor` cut the run short: the endpoint's
    admission backlog grew across consecutive observation windows while
    late requests' TTFT escaped far past the early requests' — the
    signature of an unbounded queue.  A saturated run can never satisfy
    the capacity search's feasibility test (the abort condition strictly
    implies the final :func:`ttft_is_stable` check fails), so the probe
    verdict is decided without simulating the rest of the horizon.
    """

    time_s: float
    queued: int
    finished: int
    reason: str


def ttft_is_stable(finished: list, ratio: float = 2.5,
                   floor: float = 0.25, min_count: int = 8) -> bool:
    """Detect an unbounded backlog: TTFT must not balloon over the run.

    At a sustainable rate TTFT is roughly flat; past saturation every
    later request waits behind a growing queue, so the second half's
    median TTFT (in arrival order) races away from the first half's.
    Shared by the capacity search's final stability verdict (default
    thresholds) and the :class:`InstabilityMonitor`'s stricter online
    escape test.
    """
    if len(finished) < min_count:
        return True
    ordered = sorted(finished, key=lambda r: r.arrival_time)
    half = len(ordered) // 2
    first = float(np.median([r.ttft for r in ordered[:half]]))
    second = float(np.median([r.ttft for r in ordered[half:]]))
    return second <= max(ratio * first, floor)


class InstabilityMonitor:
    """Online saturation detector for :meth:`ServingEngine.run`.

    Samples the backlog (arrived requests still waiting for their first
    token) every ``check_every`` engine iterations and aborts the run
    once **all** of the following hold, so a doomed probe stops burning
    wall-clock on a foregone verdict:

    1. the backlog stayed above ``max(min_backlog, backlog_fraction *
       request_count)`` requests across the last ``windows``
       consecutive samples (sustained, not a transient burst),
    2. it is not draining: the newest sample is at least
       ``drain_tolerance`` of the oldest windowed one (a stable queue
       empties fast; a saturated one grows, plateaus, or creeps down at
       the capacity deficit),
    3. at least ``min_finished`` requests finished, and their
       arrival-ordered TTFT halves fail :func:`ttft_is_stable` at the
       strict ``escape_ratio`` / ``escape_floor`` thresholds.

    Condition 3 deliberately uses *stricter* thresholds than the
    capacity search's final stability check (2.75x vs 2.5x, 0.4 s vs
    0.25 s): an abort therefore implies the truncated run already fails
    the final check, so the feasibility verdict of an aborted probe is
    structurally identical to finishing the simulation and failing it.
    The monitor only observes — a run it never fires on is bit-identical
    to one without a monitor.
    """

    def __init__(self, request_count: int, check_every: int = 32,
                 windows: int = 4, min_backlog: int = 16,
                 backlog_fraction: float = 0.1,
                 drain_tolerance: float = 0.75, escape_ratio: float = 2.75,
                 escape_floor: float = 0.4, min_finished: int = 16) -> None:
        if request_count < 1:
            raise ValueError("request_count must be >= 1")
        if check_every < 1 or windows < 1:
            raise ValueError("check_every and windows must be >= 1")
        self.request_count = request_count
        self.check_every = check_every
        self.windows = windows
        self.min_backlog = min_backlog
        self.backlog_fraction = backlog_fraction
        self.drain_tolerance = drain_tolerance
        self.escape_ratio = escape_ratio
        self.escape_floor = escape_floor
        self.min_finished = min_finished
        self._iterations = 0
        self._samples: deque[int] = deque(maxlen=windows + 1)
        self.verdict: Saturated | None = None

    def observe(self, now: float, backlog: int, finished: list) -> bool:
        """Record one engine iteration; ``True`` means abort (saturated)."""
        self._iterations += 1
        if self._iterations % self.check_every:
            return False
        self._samples.append(backlog)
        if len(self._samples) <= self.windows:
            return False
        samples = list(self._samples)
        threshold = max(self.min_backlog,
                        self.backlog_fraction * self.request_count)
        if min(samples) < threshold:
            return False
        if samples[-1] < self.drain_tolerance * samples[0]:
            return False
        if len(finished) < self.min_finished:
            return False
        if ttft_is_stable(finished, ratio=self.escape_ratio,
                          floor=self.escape_floor,
                          min_count=self.min_finished):
            return False
        self.verdict = Saturated(
            time_s=now,
            queued=backlog,
            finished=len(finished),
            reason=(f"backlog of {backlog} held across {self.windows} "
                    f"windows with TTFT escape > {self.escape_ratio:g}x"),
        )
        return True


@dataclass
class SimulationResult:
    """Outcome of one serving simulation."""

    finished: list
    unfinished: list
    total_time_s: float
    iterations: int
    decode_steps: int
    busy_time_s: float
    decode_time_s: float
    prefill_time_s: float
    #: non-None when an InstabilityMonitor aborted the run early
    saturated: Saturated | None = None
    #: non-None when the endpoint ran with a prefix cache enabled
    prefix_cache: PrefixCacheStats | None = None
    #: completed requests handed to a ``sink`` instead of being retained
    #: (constant-memory streaming runs); zero on the default path
    sunk_finished: int = 0
    sunk_tokens: int = 0

    @property
    def completed_requests_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return (len(self.finished) + self.sunk_finished) / self.total_time_s

    @property
    def generated_tokens(self) -> int:
        return sum(r.generated_tokens
                   for r in self.finished + self.unfinished) \
            + self.sunk_tokens

    @property
    def tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.generated_tokens / self.total_time_s


def run_decode_burst(scheduler, plan, pending, device, model, num_devices,
                     now, limit, busy, decode_time, finished,
                     on_finish=None):
    """Fast-forward one pure-decode run and apply it, in one place.

    Steps a fixed decode batch until the earliest completion
    (``until_finish`` steps), the clock passing ``limit`` (checked
    before each step, like the plain loops), or the next pending arrival
    landing (checked after each step, so the step that overruns it still
    executes — the plain loops only see arrivals at the next iteration
    top).  ``busy``/``decode_time`` are threaded through and accumulated
    per step, preserving the reference float-summation order bit for
    bit.  Completions are appended to ``finished`` in batch order
    (``on_finish`` is an optional extra per-completion hook) and the
    scheduler state is advanced via ``complete_burst``.  Returns
    ``(now, steps, busy, decode_time)``.

    Shared by :meth:`ServingEngine.run` and
    ``repro.cluster.engine.ReplicaSim.advance_to`` so the burst
    semantics cannot drift between the single-engine and cluster paths.
    """
    batch = plan.decode_requests
    size = plan.decode_batch
    ctx_sum = plan.decode_context_sum
    until_finish = min(r.output_tokens - r.generated_tokens
                       for r in batch)
    next_arrival = pending[0].arrival_time if pending else None
    times: list[float] = []
    steps = 0
    seconds_map = getattr(device, "decode_seconds_map", None)
    if seconds_map is not None:
        # raw-context -> seconds map: one dict probe per step instead of
        # a decode_step_time call (re-bucketing + key tuple + breakdown
        # fetch).  Misses are filled *through* decode_step_time so the
        # breakdown cache and its miss counter stay exact; the probe
        # hits are bulk-accounted below — each one stands in for a call
        # that would have hit the breakdown cache.
        seconds = seconds_map(model, size, num_devices)
        fills = 0
        while steps < until_finish and now < limit:
            mean_context = max(1, int(ctx_sum / size))
            step = seconds.get(mean_context)
            if step is None:
                step = seconds[mean_context] = device.decode_step_time(
                    model, size, mean_context, num_devices).seconds
                fills += 1
            now += step
            busy += step
            decode_time += step
            times.append(now)
            ctx_sum += size
            steps += 1
            if next_arrival is not None and next_arrival <= now:
                break
        if steps > fills:
            device.stats.decode_hits += steps - fills
    else:
        while steps < until_finish and now < limit:
            mean_context = max(1, int(ctx_sum / size))
            step = device.decode_step_time(
                model, size, mean_context, num_devices).seconds
            now += step
            busy += step
            decode_time += step
            times.append(now)
            ctx_sum += size
            steps += 1
            if next_arrival is not None and next_arrival <= now:
                break
    # stamp the whole burst inline (record_token_burst unrolled with the
    # shared first/last hoisted): the batch loop runs once per request
    # per *burst*, not per step, but at million-request scale its call
    # overhead still dominated the profile
    burst_finished: list[Request] = []
    if steps:
        first = times[0]
        last = times[-1]
        if steps == until_finish:
            for request in batch:
                request.generated_tokens += steps
                if request.record_token_times:
                    request.token_times.extend(times)
                if request.first_token_time is None:
                    request.first_token_time = first
                request.last_token_time = last
                if request.generated_tokens >= request.output_tokens:
                    request.finish_time = last
                    request.state = RequestState.FINISHED
                    finished.append(request)
                    burst_finished.append(request)
                    if on_finish is not None:
                        on_finish(request)
        else:
            # interrupted by an arrival or the limit before the earliest
            # completion: steps < every member's remaining tokens, so
            # nobody can have finished
            for request in batch:
                request.generated_tokens += steps
                if request.record_token_times:
                    request.token_times.extend(times)
                if request.first_token_time is None:
                    request.first_token_time = first
                request.last_token_time = last
    scheduler.complete_burst(plan, steps, burst_finished)
    return now, steps, busy, decode_time


class _FinishedSink:
    """List-shim that hands completed requests to a sink callable.

    Streaming runs that retain every finished :class:`Request` grow
    memory linearly no matter how lazily arrivals are generated; a
    ``sink`` keeps only aggregates.  The shim exposes the two list
    operations the engine performs on ``finished`` — ``append`` and
    ``len`` — and forwards each completion to the sink, counting
    requests and tokens so :class:`SimulationResult` stays exact.
    """

    __slots__ = ("_sink", "count", "tokens")

    def __init__(self, sink) -> None:
        self._sink = sink
        self.count = 0
        self.tokens = 0

    def append(self, request: Request) -> None:
        self.count += 1
        self.tokens += request.generated_tokens
        self._sink(request)

    def __len__(self) -> int:
        return self.count


class ServingEngine:
    """Simulates one endpoint (one device group) serving one model."""

    def __init__(
        self,
        device: DeviceModel,
        model: ModelConfig,
        limits: SchedulerLimits,
        num_devices: int = 1,
        fast_forward: bool = True,
        prefix_cache: PrefixCacheSpec | None = None,
    ) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        self.device = device
        self.model = model
        self.limits = limits
        self.num_devices = num_devices
        self.fast_forward = fast_forward
        # a disabled spec is the same as no spec: the cold path, bit
        # for bit (the scheduler never even sees a cache object)
        self.prefix_cache_spec = prefix_cache \
            if prefix_cache is not None and prefix_cache.enabled else None
        self.overlap = _OVERLAP_BY_KIND.get(device.chip.kind, 0.15)

    def build_prefix_cache(self) -> PrefixCache | None:
        """A fresh per-run cache (``None`` when the feature is off).

        Each run — and each cluster replica — gets its own cache and
        paged pool, so two runs on one engine never share residency and
        a fleet's hit rate honestly reflects its router (session
        affinity concentrates a session's turns on one replica's cache;
        round-robin scatters them).
        """
        if self.prefix_cache_spec is None:
            return None
        return PrefixCache.for_deployment(self.model, self.limits,
                                          self.prefix_cache_spec)

    # ------------------------------------------------------------------ #
    # Iteration timing                                                     #
    # ------------------------------------------------------------------ #

    def _iteration_seconds(self, plan: IterationPlan) -> tuple[float, float, float]:
        """(total, decode_part, prefill_part) latency of one iteration."""
        decode = 0.0
        if plan.decode_batch:
            mean_context = max(
                1, int(plan.decode_context_sum / plan.decode_batch))
            decode = self.device.decode_step_time(
                self.model, plan.decode_batch, mean_context,
                self.num_devices).seconds
        prefill = 0.0
        if plan.prefill_tokens > 0:
            prefill = self.device.prefill_time(
                self.model, 1, plan.prefill_tokens, self.num_devices).seconds
        if decode and prefill:
            hidden = self.overlap * min(decode, prefill)
            return decode + prefill - hidden, decode, prefill
        return decode + prefill, decode, prefill

    # ------------------------------------------------------------------ #
    # Main loop                                                            #
    # ------------------------------------------------------------------ #

    def run(self, requests,
            max_sim_seconds: float = 600.0,
            monitor: InstabilityMonitor | None = None, *,
            sink=None, progress=None) -> SimulationResult:
        """Simulate until all requests finish or the horizon expires.

        ``requests`` is a list (sorted here, the classic path) or a lazy
        iterable/:class:`~repro.serving.stream.RequestStream` consumed
        one arrival at a time at constant memory — both produce
        bit-identical results for the same request sequence.

        An optional :class:`InstabilityMonitor` observes the admission
        backlog and the finished set each loop pass; when it fires, the
        run stops early and the result carries a :class:`Saturated`
        verdict.  A run the monitor never fires on is bit-identical to
        one without a monitor.

        ``sink`` (streaming runs) receives each completed request
        instead of it being retained on the result — aggregates stay
        exact via ``sunk_finished``/``sunk_tokens``.  A sink cannot be
        combined with a monitor, which needs the retained finished list.
        ``progress`` is called as ``progress(sim_time, done_count)``
        once per outer loop pass; wall-clock throttling lives in the
        caller (see ``repro.perf.scale.ProgressReporter``) so the engine
        itself stays deterministic.
        """
        if isinstance(requests, RequestStream):
            pending = requests
        elif isinstance(requests, (list, tuple)):
            pending = deque(sorted(requests, key=lambda r: r.arrival_time))
        else:
            pending = as_stream(requests)
        if sink is not None and monitor is not None:
            raise ValueError(
                "a finished-request sink cannot be combined with an "
                "InstabilityMonitor: the monitor inspects the retained "
                "finished list the sink exists to avoid")
        cache = self.build_prefix_cache()
        scheduler = ContinuousBatchingScheduler(self.model, self.limits,
                                                prefix_cache=cache)
        now = 0.0
        finished = _FinishedSink(sink) if sink is not None else []
        iterations = 0
        decode_steps = 0
        busy = 0.0
        decode_time = 0.0
        prefill_time = 0.0
        saturated: Saturated | None = None
        device = self.device
        model = self.model
        num_devices = self.num_devices

        while now < max_sim_seconds:
            while pending and pending[0].arrival_time <= now:
                scheduler.enqueue(pending.popleft())
            if progress is not None:
                progress(now, len(finished))
            # backlog = arrived requests still waiting for a first token
            # (admission may be generous, so saturation can pile up in
            # the prefill queue rather than the admission queue)
            if monitor is not None and monitor.observe(
                    now, len(scheduler.queued) + len(scheduler.prefilling),
                    finished):
                saturated = monitor.verdict
                break
            plan = scheduler.plan_iteration()
            if not plan.has_work:
                if not pending:
                    break
                # idle until the next arrival, never past the horizon
                # (a late arrival must not inflate total_time_s)
                now = min(pending[0].arrival_time, max_sim_seconds)
                continue
            if self.fast_forward and plan.decode_batch \
                    and plan.prefill_tokens == 0:
                # Pure decode: nothing prefilling, and anything still
                # queued stayed blocked during _admit, which only
                # unblocks after a completion.  Fast-forward whole steps
                # until the earliest completion, the next arrival, or
                # the horizon — whichever the per-step clock hits first.
                now, steps, busy, decode_time = run_decode_burst(
                    scheduler, plan, pending, device, model, num_devices,
                    now, max_sim_seconds, busy, decode_time, finished)
                iterations += steps
                decode_steps += steps
                continue
            step, decode_part, prefill_part = self._iteration_seconds(plan)
            now += step
            busy += step
            decode_time += decode_part
            prefill_time += prefill_part
            iterations += 1
            if plan.decode_batch:
                decode_steps += 1
                finished_now: list[Request] = []
                for request in plan.decode_requests:
                    request.record_token(now)
                    if request.done:
                        finished.append(request)
                        finished_now.append(request)
                plan.finished_decodes = finished_now
            scheduler.complete_iteration(plan)

        unfinished = scheduler.prefilling + scheduler.decoding \
            + list(scheduler.queued) + list(pending)
        if progress is not None:
            progress(now, len(finished))
        sunk_finished = sunk_tokens = 0
        if isinstance(finished, _FinishedSink):
            sunk_finished, sunk_tokens = finished.count, finished.tokens
            finished = []
        return SimulationResult(
            finished=finished,
            unfinished=unfinished,
            total_time_s=now,
            iterations=iterations,
            decode_steps=decode_steps,
            busy_time_s=busy,
            decode_time_s=decode_time,
            prefill_time_s=prefill_time,
            saturated=saturated,
            prefix_cache=cache.stats if cache is not None else None,
            sunk_finished=sunk_finished,
            sunk_tokens=sunk_tokens,
        )
