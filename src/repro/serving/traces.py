"""Named workload-trace registry.

Traces are the token-length distributions driving the request generator.
Built-ins cover the paper's two workload shapes — the ultrachat-like
chat trace and the fixed-length grid traces of Fig. 17 — and third-party
traces plug in by name::

    from repro.serving.traces import register_trace

    @register_trace("sharegpt-like")
    def sharegpt_like() -> ChatTraceConfig:
        return ChatTraceConfig(...)

Fixed-length traces need no registration: any name of the form
``fixed-<input>x<output>`` (e.g. ``fixed-512x128``) resolves dynamically,
so experiment files can sweep the Fig. 17 grid declaratively.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.registry import Registry
from repro.serving.dataset import ULTRACHAT_LIKE, ChatTraceConfig, fixed_trace

TRACE_REGISTRY = Registry("trace")

_FIXED_PATTERN = re.compile(r"^fixed-(\d+)x(\d+)$")


def register_trace(name: str, config: ChatTraceConfig | None = None):
    """Register a trace under ``name``.

    Accepts a ready :class:`ChatTraceConfig` directly, or decorates a
    zero-arg factory returning one.
    """
    if config is not None:
        return TRACE_REGISTRY.register(name, config)

    def _decorate(factory: Callable[[], ChatTraceConfig]):
        TRACE_REGISTRY.register(name, factory)
        return factory

    return _decorate


def get_trace(name: str) -> ChatTraceConfig:
    """Resolve a trace name to its :class:`ChatTraceConfig`."""
    match = _FIXED_PATTERN.match(name.lower())
    if match and name.lower() not in TRACE_REGISTRY:
        return fixed_trace(int(match.group(1)), int(match.group(2)))
    entry = TRACE_REGISTRY.get(name)
    return entry() if callable(entry) else entry


def list_traces() -> list[str]:
    """Registered trace names (dynamic ``fixed-AxB`` names excluded)."""
    return TRACE_REGISTRY.names()


register_trace("ultrachat", ULTRACHAT_LIKE)
register_trace("ultrachat-like", ULTRACHAT_LIKE)
