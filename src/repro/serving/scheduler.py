"""Iteration-level continuous-batching scheduler (the Task Manager +
Scheduler of Fig. 14b).

Each engine iteration the scheduler:

1. admits queued requests while the decode batch and KV memory allow,
2. selects a chunk of prefill tokens (Sarathi-style chunked prefill, so
   decode steps are never starved by long prompts),
3. hands the engine the decode batch and prefill chunk to execute.

Admission control uses the KV-capacity math of
:mod:`repro.models.kv_cache`.

The scheduler's per-iteration state is maintained incrementally: the
decode batch is handed out as a stable reference (no per-iteration
copies), the sum of decode context lengths is a running integer counter
(so the engine never rebuilds an O(batch) context list), and the
admission queue is a :class:`collections.deque` (O(1) FIFO pops).  All
counters are exact — integer arithmetic has no drift — so the
incremental state is bit-identical to recomputing from scratch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.models.config import ModelConfig
from repro.models.kv_cache import kv_bytes_per_token
from repro.serving.request import Request, RequestState


@dataclass(frozen=True)
class SchedulerLimits:
    """Operational limits of the serving endpoint."""

    max_batch: int = 256
    prefill_chunk_tokens: int = 512
    kv_budget_bytes: float = float("inf")

    def __post_init__(self) -> None:
        if self.max_batch < 1 or self.prefill_chunk_tokens < 1:
            raise ValueError("limits must be >= 1")


@dataclass(slots=True)
class IterationPlan:
    """What one engine iteration will execute.

    ``decode_requests`` may alias the scheduler's live decode list (the
    engine consumes the plan before the scheduler mutates it again), so
    ``decode_batch`` and ``decode_context_sum`` capture the batch size
    and the summed context lengths at planning time.  The engine reports
    the requests that finished during the iteration via
    ``finished_decodes``; when left ``None`` (direct scheduler drivers),
    :meth:`ContinuousBatchingScheduler.complete_iteration` scans for
    finished members itself.
    """

    decode_requests: list = field(default_factory=list)
    prefill_request: Request | None = None
    prefill_tokens: int = 0
    decode_batch: int = 0
    decode_context_sum: int = 0
    finished_decodes: list | None = None

    def __post_init__(self) -> None:
        if self.decode_requests and self.decode_batch == 0:
            # hand-built plans get the derived fields filled in
            self.decode_batch = len(self.decode_requests)
            self.decode_context_sum = sum(
                r.context_len for r in self.decode_requests)

    @property
    def has_work(self) -> bool:
        return self.decode_batch > 0 or self.prefill_tokens > 0


class ContinuousBatchingScheduler:
    """FIFO admission, chunked prefill, iteration-level batching.

    With a :class:`~repro.serving.prefix_cache.PrefixCache` attached
    the scheduler additionally runs block-granular KV accounting:
    admission allocates the prompt's blocks through the cache (scoring
    a prefix hit that shrinks the chunked-prefill work to the uncached
    suffix), decode growth claims blocks per emitted token, finished
    session turns are released *into* the cache, and block exhaustion
    stalls admission or preempts a running request for recompute.
    Without a cache (``prefix_cache=None``) not one of those code paths
    is entered — the scheduler is bit-identical to the cold path.
    """

    def __init__(self, model: ModelConfig, limits: SchedulerLimits,
                 prefix_cache=None) -> None:
        self.model = model
        self.limits = limits
        self.prefix_cache = prefix_cache
        self.queued: deque[Request] = deque()
        self.prefilling: list[Request] = []
        self.decoding: list[Request] = []
        self._kv_per_token = kv_bytes_per_token(model)
        self._reserved_kv_bytes = 0.0
        # running sum of decode context lengths at planning time; exact
        # (integer) and updated on admit/finish/per-step so the engine
        # never rebuilds an O(batch) context list per iteration
        self._decode_context_sum = 0

    # ------------------------------------------------------------------ #
    # Bookkeeping                                                          #
    # ------------------------------------------------------------------ #

    @property
    def active_count(self) -> int:
        return len(self.prefilling) + len(self.decoding)

    @property
    def has_work(self) -> bool:
        return bool(self.queued) or bool(self.prefilling) \
            or bool(self.decoding)

    def _request_kv_bytes(self, request: Request) -> float:
        return (request.input_tokens + request.output_tokens) \
            * self._kv_per_token

    def kv_bytes_in_use(self) -> float:
        """Reserved KV bytes: each active request holds its full final
        context (prompt + all output tokens) so admission never has to
        evict mid-generation.  Maintained incrementally on admit/finish —
        recomputing the sum per admission candidate made every engine
        iteration O(active^2)."""
        return self._reserved_kv_bytes

    def decode_context_sum(self) -> int:
        """Summed context lengths of the decode batch (running counter)."""
        return self._decode_context_sum

    def enqueue(self, request: Request) -> None:
        if request.state != RequestState.QUEUED:
            raise ValueError("only queued requests can be enqueued")
        self.queued.append(request)

    # ------------------------------------------------------------------ #
    # Iteration planning                                                   #
    # ------------------------------------------------------------------ #

    def _admit(self) -> None:
        cache = self.prefix_cache
        while self.queued and self.active_count < self.limits.max_batch:
            candidate = self.queued[0]
            projected = self._reserved_kv_bytes \
                + self._request_kv_bytes(candidate)
            if projected > self.limits.kv_budget_bytes:
                break
            if cache is not None:
                hit = cache.acquire(candidate)
                if hit is None:
                    # block pool exhausted even after reclaiming every
                    # cached prefix: stall until running work completes
                    break
                if hit > 0:
                    # the cached prefix is already resident — chunked
                    # prefill only charges the uncached suffix
                    candidate.prefilled_tokens = hit
                    candidate.cached_prefix_tokens = hit
            self.queued.popleft()
            candidate.state = RequestState.PREFILLING
            self.prefilling.append(candidate)
            self._reserved_kv_bytes = projected

    def plan_iteration(self) -> IterationPlan:
        """Admit, pick the prefill chunk and the decode batch."""
        self._admit()
        plan = IterationPlan(
            decode_requests=self.decoding,
            decode_batch=len(self.decoding),
            decode_context_sum=self._decode_context_sum,
        )
        if self.prefilling:
            head = self.prefilling[0]
            plan.prefill_request = head
            plan.prefill_tokens = min(self.limits.prefill_chunk_tokens,
                                      head.prefill_remaining)
        return plan

    def _retire_one(self, request: Request) -> None:
        self._reserved_kv_bytes -= self._request_kv_bytes(request)
        self._decode_context_sum -= request.context_len
        if self.prefix_cache is not None:
            # released *into* the cache: a session turn's blocks stay
            # resident as the next turn's prefix
            self.prefix_cache.stash(request)

    def _drop_from_decoding(self, finished: list) -> None:
        finished_set = set(finished)  # identity-keyed (Request has eq=False)
        self.decoding = [r for r in self.decoding
                         if r not in finished_set]

    def _remove_finished(self, finished: list) -> None:
        for request in finished:
            self._retire_one(request)
        self._drop_from_decoding(finished)

    # ------------------------------------------------------------------ #
    # Block growth + preemption (prefix-cache mode only)                   #
    # ------------------------------------------------------------------ #

    def _grow_and_retire(self, batch: list, steps: int,
                         finished: list) -> None:
        """Claim the blocks the batch's ``steps`` new tokens occupy,
        then retire the finished members.

        Finished members grow and retire first, one at a time — each
        stash makes its blocks reclaimable for the next — so finished
        work is never stranded while survivors starve.  A finishing
        member whose final-step growth cannot be supplied even then is
        retired without it (its blocks are being released this instant;
        the cached prefix just ends ``< steps`` tokens short).  When a
        *survivor*'s growth cannot be supplied, another active request
        is preempted for recompute (vLLM's recompute path) and the
        growth retried; finished members are never victims.
        """
        exempt = set(finished)  # identity-keyed (Request has eq=False)
        preempted: set = set()
        for request in finished:
            self._claim_growth(request, steps, exempt, preempted,
                               required=False)
            self._retire_one(request)
        if finished:
            self._drop_from_decoding(finished)
        for request in list(batch):
            if request in exempt or request in preempted:
                continue
            self._claim_growth(request, steps, exempt, preempted)

    def _claim_growth(self, request: Request, steps: int,
                      exempt: set, preempted: set,
                      required: bool = True) -> None:
        while not self.prefix_cache.extend(request, steps):
            victim = self._preemption_victim(request, exempt)
            if victim is None:
                if not required:
                    return
                raise MemoryError(
                    "KV block pool cannot hold a single request's "
                    "context; grow kv_budget_bytes")
            self._preempt(victim)
            preempted.add(victim)

    def _preemption_victim(self, growing: Request,
                           exempt: set) -> Request | None:
        """Youngest-first victim: last-admitted prefill, then the
        newest decode — never the growing request or a finished one."""
        for pool in (self.prefilling, self.decoding):
            for candidate in reversed(pool):
                if candidate is growing or candidate in exempt:
                    continue
                return candidate
        return None

    def _preempt(self, victim: Request) -> None:
        """Requeue ``victim`` for full recompute, freeing its blocks.

        The already-generated tokens keep their emission stamps (they
        were served); re-admission re-prefills prompt + generated
        context, encoded as a negative ``prefilled_tokens`` so
        ``prefill_remaining`` charges the whole recompute.
        """
        if victim.state == RequestState.DECODING:
            self.decoding.remove(victim)
            self._decode_context_sum -= victim.context_len
        else:
            self.prefilling.remove(victim)
        self._reserved_kv_bytes -= self._request_kv_bytes(victim)
        self.prefix_cache.forfeit(victim)
        victim.prefilled_tokens = -victim.generated_tokens
        victim.cached_prefix_tokens = 0
        victim.state = RequestState.QUEUED
        self.queued.appendleft(victim)

    def _clamp_when_drained(self) -> None:
        if not self.prefilling and not self.decoding:
            # clamp float drift whenever the endpoint fully drains
            self._reserved_kv_bytes = 0.0
            self._decode_context_sum = 0

    def complete_iteration(self, plan: IterationPlan) -> None:
        """Apply state transitions after the engine executed ``plan``."""
        if plan.prefill_request is not None:
            request = plan.prefill_request
            request.prefilled_tokens += plan.prefill_tokens
            if request.prefill_remaining == 0:
                self.prefilling.remove(request)
                request.state = RequestState.DECODING
                self.decoding.append(request)
                self._decode_context_sum += request.context_len
        if plan.decode_batch:
            # every decode-batch member emitted one token this iteration
            self._decode_context_sum += plan.decode_batch
            finished = plan.finished_decodes
            if finished is None:
                finished = [r for r in self.decoding
                            if r.state == RequestState.FINISHED]
            if self.prefix_cache is not None:
                self._grow_and_retire(plan.decode_requests, 1, finished)
            elif finished:
                self._remove_finished(finished)
        self._clamp_when_drained()

    def complete_burst(self, plan: IterationPlan, steps: int,
                       finished: list) -> None:
        """Apply ``steps`` consecutive pure-decode iterations at once.

        The engine's fast-forward path guarantees no prefill work and no
        admissions happened during the burst; each decode member emitted
        ``steps`` tokens and ``finished`` lists the members that
        completed on the final step.  In prefix-cache mode the whole
        burst's block growth is claimed here in one bulk extend per
        member — exhaustion is resolved at the burst boundary, not
        mid-step (the documented modeling simplification).
        """
        self._decode_context_sum += plan.decode_batch * steps
        if self.prefix_cache is not None and steps > 0:
            self._grow_and_retire(plan.decode_requests, steps, finished)
        elif finished:
            self._remove_finished(finished)
        self._clamp_when_drained()
