"""Iteration-level continuous-batching scheduler (the Task Manager +
Scheduler of Fig. 14b).

Each engine iteration the scheduler:

1. admits queued requests while the decode batch and KV memory allow,
2. selects a chunk of prefill tokens (Sarathi-style chunked prefill, so
   decode steps are never starved by long prompts),
3. hands the engine the decode batch and prefill chunk to execute.

Admission control uses the KV-capacity math of
:mod:`repro.models.kv_cache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.config import ModelConfig
from repro.models.kv_cache import kv_bytes_per_token
from repro.serving.request import Request, RequestState


@dataclass(frozen=True)
class SchedulerLimits:
    """Operational limits of the serving endpoint."""

    max_batch: int = 256
    prefill_chunk_tokens: int = 512
    kv_budget_bytes: float = float("inf")

    def __post_init__(self) -> None:
        if self.max_batch < 1 or self.prefill_chunk_tokens < 1:
            raise ValueError("limits must be >= 1")


@dataclass
class IterationPlan:
    """What one engine iteration will execute."""

    decode_requests: list = field(default_factory=list)
    prefill_request: Request | None = None
    prefill_tokens: int = 0

    @property
    def decode_batch(self) -> int:
        return len(self.decode_requests)

    @property
    def has_work(self) -> bool:
        return bool(self.decode_requests) or self.prefill_tokens > 0


class ContinuousBatchingScheduler:
    """FIFO admission, chunked prefill, iteration-level batching."""

    def __init__(self, model: ModelConfig, limits: SchedulerLimits) -> None:
        self.model = model
        self.limits = limits
        self.queued: list[Request] = []
        self.prefilling: list[Request] = []
        self.decoding: list[Request] = []
        self._kv_per_token = kv_bytes_per_token(model)
        self._reserved_kv_bytes = 0.0

    # ------------------------------------------------------------------ #
    # Bookkeeping                                                          #
    # ------------------------------------------------------------------ #

    @property
    def active_count(self) -> int:
        return len(self.prefilling) + len(self.decoding)

    def _request_kv_bytes(self, request: Request) -> float:
        return (request.input_tokens + request.output_tokens) \
            * self._kv_per_token

    def kv_bytes_in_use(self) -> float:
        """Reserved KV bytes: each active request holds its full final
        context (prompt + all output tokens) so admission never has to
        evict mid-generation.  Maintained incrementally on admit/finish —
        recomputing the sum per admission candidate made every engine
        iteration O(active^2)."""
        return self._reserved_kv_bytes

    def enqueue(self, request: Request) -> None:
        if request.state != RequestState.QUEUED:
            raise ValueError("only queued requests can be enqueued")
        self.queued.append(request)

    # ------------------------------------------------------------------ #
    # Iteration planning                                                   #
    # ------------------------------------------------------------------ #

    def _admit(self) -> None:
        while self.queued and self.active_count < self.limits.max_batch:
            candidate = self.queued[0]
            projected = self._reserved_kv_bytes \
                + self._request_kv_bytes(candidate)
            if projected > self.limits.kv_budget_bytes:
                break
            self.queued.pop(0)
            candidate.state = RequestState.PREFILLING
            self.prefilling.append(candidate)
            self._reserved_kv_bytes = projected

    def plan_iteration(self) -> IterationPlan:
        """Admit, pick the prefill chunk and the decode batch."""
        self._admit()
        plan = IterationPlan(decode_requests=list(self.decoding))
        if self.prefilling:
            head = self.prefilling[0]
            plan.prefill_request = head
            plan.prefill_tokens = min(self.limits.prefill_chunk_tokens,
                                      head.prefill_remaining)
        return plan

    def complete_iteration(self, plan: IterationPlan) -> None:
        """Apply state transitions after the engine executed ``plan``."""
        if plan.prefill_request is not None:
            request = plan.prefill_request
            request.prefilled_tokens += plan.prefill_tokens
            if request.prefill_remaining == 0:
                self.prefilling.remove(request)
                request.state = RequestState.DECODING
                self.decoding.append(request)
        for request in self.decoding:
            if request.state == RequestState.FINISHED:
                self._reserved_kv_bytes -= self._request_kv_bytes(request)
        self.decoding = [r for r in self.decoding
                         if r.state != RequestState.FINISHED]
        if not self.prefilling and not self.decoding:
            # clamp float drift whenever the endpoint fully drains
            self._reserved_kv_bytes = 0.0
