"""``repro.cluster`` — multi-replica serving behind a request router.

The serving stack (:mod:`repro.serving`) simulates *one* endpoint; this
package scales it to a fleet, the way Ray Serve fronts N replicas of an
LLM deployment with a router.  A :class:`ClusterEngine` advances N
per-replica continuous-batching endpoints under one simulated clock,
consults a named :class:`RouterPolicy` (``round-robin``,
``least-outstanding``, ``session-affinity``, ``slo-aware`` — see
:mod:`repro.cluster.router`) at every arrival, and aggregates the
per-replica outcomes into fleet QoS plus load-imbalance stats
(:mod:`repro.cluster.report`).

The declarative API reaches it via ``DeploymentSpec(replicas=4,
router="least-outstanding")``; :func:`repro.api.simulate` dispatches to
:func:`repro.api.simulate_cluster` automatically when ``replicas > 1``.
"""

from repro.cluster.engine import ClusterEngine, ReplicaSim
from repro.cluster.report import (
    ClusterResult,
    LoadImbalanceStats,
    aggregate_cluster,
    load_imbalance,
    merge_results,
)
from repro.cluster.router import (
    ROUTER_REGISTRY,
    ReplicaSnapshot,
    RouterPolicy,
    get_router,
    list_routers,
    make_router,
    register_router,
)

__all__ = [
    "ClusterEngine",
    "ReplicaSim",
    "ClusterResult",
    "LoadImbalanceStats",
    "aggregate_cluster",
    "load_imbalance",
    "merge_results",
    "ROUTER_REGISTRY",
    "ReplicaSnapshot",
    "RouterPolicy",
    "get_router",
    "list_routers",
    "make_router",
    "register_router",
]
