"""``repro.cluster`` — multi-replica serving behind a request router.

The serving stack (:mod:`repro.serving`) simulates *one* endpoint; this
package scales it to a fleet, the way Ray Serve fronts N replicas of an
LLM deployment with a router.  A :class:`ClusterEngine` advances N
per-replica continuous-batching endpoints under one simulated clock,
consults a named :class:`RouterPolicy` (``round-robin``,
``least-outstanding``, ``session-affinity``, ``slo-aware`` — see
:mod:`repro.cluster.router`) at every arrival, and aggregates the
per-replica outcomes into fleet QoS plus load-imbalance stats
(:mod:`repro.cluster.report`).

Routers address replicas by *position in the snapshot sequence* they
are handed; the engine maps positions back to concrete replicas.  That
contract matters because the fleet can be **dynamic**: with an
:class:`AutoscaleSpec`, a registered :class:`AutoscalerPolicy`
(``queue-depth``, ``slo-attainment`` — see
:mod:`repro.cluster.autoscaler`) resizes the fleet on a decision
interval, and replicas move through a lifecycle —

* **provisioning** — launched, paying the modeled provision latency
  (shortened by the warm pool), not yet routable;
* **ready** — routable, serving traffic;
* **draining** — picked by a scale-down: receives no new routed
  requests but finishes every admitted one (no request is dropped);
* **retired** — drained and decommissioned; its replica-seconds stop
  accruing at the instant its last admitted request finished.

Autoscaled results carry an :class:`AutoscaleTrace` (scale events,
fleet-size/utilization timeline, replica-seconds) next to the usual
fleet QoS.

With a :class:`FaultSpec` (:mod:`repro.cluster.faults`) the run injects
deterministic, seeded faults — replica crashes (in-flight work lost,
requests requeued under a retry budget), slowdown windows and transient
stalls — and the result carries a :class:`FaultTrace` with the event
log, retry counters and the requests that ended *failed*.

The declarative API reaches it via ``DeploymentSpec(replicas=4,
router="least-outstanding")`` — plus ``autoscale=AutoscaleSpec(...)``
for an elastic fleet; :func:`repro.api.simulate` dispatches to
:func:`repro.api.simulate_cluster` automatically when ``replicas > 1``
or an autoscale spec is present.
"""

from repro.cluster.autoscaler import (
    AUTOSCALER_REGISTRY,
    AutoscalerPolicy,
    AutoscaleSpec,
    FleetObservation,
    get_autoscaler,
    list_autoscalers,
    make_autoscaler,
    register_autoscaler,
)
from repro.cluster.engine import ClusterEngine, ReplicaSim
from repro.cluster.faults import (
    FaultEvent,
    FaultInjector,
    FaultRecord,
    FaultSpec,
    FaultTrace,
    ReplicaFaultPlan,
)
from repro.cluster.report import (
    AutoscaleTrace,
    ClusterResult,
    FleetSample,
    LoadImbalanceStats,
    ScaleEvent,
    aggregate_cluster,
    load_imbalance,
    merge_results,
)
from repro.cluster.router import (
    ROUTER_REGISTRY,
    ReplicaSnapshot,
    RouterPolicy,
    get_router,
    list_routers,
    make_router,
    register_router,
)

__all__ = [
    "ClusterEngine",
    "ReplicaSim",
    "ClusterResult",
    "LoadImbalanceStats",
    "AutoscaleTrace",
    "FleetSample",
    "ScaleEvent",
    "FaultEvent",
    "FaultInjector",
    "FaultRecord",
    "FaultSpec",
    "FaultTrace",
    "ReplicaFaultPlan",
    "aggregate_cluster",
    "load_imbalance",
    "merge_results",
    "ROUTER_REGISTRY",
    "ReplicaSnapshot",
    "RouterPolicy",
    "get_router",
    "list_routers",
    "make_router",
    "register_router",
    "AUTOSCALER_REGISTRY",
    "AutoscalerPolicy",
    "AutoscaleSpec",
    "FleetObservation",
    "get_autoscaler",
    "list_autoscalers",
    "make_autoscaler",
    "register_autoscaler",
]
