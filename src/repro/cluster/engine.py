"""Multi-replica cluster simulation under one clock.

A :class:`ClusterEngine` is the simulated analogue of a Ray-Serve-style
LLM deployment: N identical replicas (each a continuous-batching
endpoint with its own scheduler and device group) behind a router.  The
global event order is the arrival stream; before each request is routed,
every replica is advanced to the arrival instant so the router's load
snapshot is current.  Replica iterations are indivisible, exactly as in
:class:`repro.serving.engine.ServingEngine`, so a single-replica cluster
reproduces the single-engine results.

Per-iteration timing is delegated to each replica's ``ServingEngine`` —
one source of truth for the HDA overlap model and device estimators.
The replica stepper shares the engine's decode fast-forward (pure-decode
runs apply in one shot, bit-identically), idle replicas skip their
advance/snapshot bookkeeping entirely, and an already-sorted arrival
stream is not re-sorted — together the per-arrival cost of a mostly-idle
fleet drops to the router call itself.

With an :class:`~repro.cluster.autoscaler.AutoscaleSpec` the fleet is
*dynamic*: an autoscaler policy is evaluated on a fixed decision
interval under the same simulated clock, and replicas move through a
lifecycle — **provisioning** (launched, paying provision latency, not
routable) → **ready** (routable) → **draining** (scale-down target:
stops receiving routed requests but finishes every admitted one) →
**retired** (drained and decommissioned).  Routers only ever see the
ready, non-draining replicas, and they address them by *position in the
snapshot sequence* (see :mod:`repro.cluster.router`), which the engine
maps back to the concrete replica — ids stay correct even when the id
space goes non-contiguous after a scale-down.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.cluster.autoscaler import (
    AutoscalerPolicy,
    AutoscaleSpec,
    FleetObservation,
    make_autoscaler,
)
from repro.cluster.faults import (
    FaultInjector,
    FaultSpec,
    FaultTrace,
    ReplicaFaultPlan,
)
from repro.cluster.report import (
    AutoscaleTrace,
    ClusterResult,
    FleetSample,
    GroupBreakdown,
    ScaleEvent,
    aggregate_cluster,
    group_breakdowns,
)
from repro.cluster.router import ReplicaSnapshot, RouterPolicy, make_router
from repro.models.config import ModelConfig
from repro.perf.baselines import DeviceModel
from repro.serving.engine import (
    ServingEngine,
    SimulationResult,
    run_decode_burst,
)
from repro.serving.prefix_cache import PrefixCacheStats
from repro.serving.request import Request
from repro.serving.scheduler import ContinuousBatchingScheduler, SchedulerLimits
from repro.serving.stream import RequestStream, as_stream


class ReplicaSim:
    """One steppable replica: a continuous-batching endpoint with a
    local clock that the cluster advances between arrivals.

    Lifecycle (all timestamps on the cluster's simulated clock):
    ``launched_at`` is when the autoscaler (or the initial fleet)
    created the replica, ``ready_at`` when it finishes provisioning and
    becomes routable, ``drain_started_at`` when a scale-down marked it
    draining (no new routed requests; admitted work still finishes) and
    ``retired_at`` when it drained and left the fleet.  A static fleet
    never moves past "ready": every replica has ``launched_at ==
    ready_at == 0.0`` and retires implicitly at the end of the run.
    """

    def __init__(self, replica_id: int, engine: ServingEngine) -> None:
        self.replica_id = replica_id
        self.engine = engine
        # each replica owns its cache and paged pool — prefix residency
        # is per-endpoint, which is exactly what makes the router
        # choice (session-affinity vs round-robin) show up in hit rates
        self.prefix_cache = engine.build_prefix_cache()
        self.scheduler = ContinuousBatchingScheduler(
            engine.model, engine.limits, prefix_cache=self.prefix_cache)
        self.now = 0.0
        self.pending: deque[Request] = deque()  # routed, not yet enqueued
        self.finished: list[Request] = []
        # --- group identity (set by the cluster engine on hetero fleets;
        # the defaults keep a directly-built replica homogeneous) ---
        self.group: "EngineGroup | None" = None
        self.group_index = 0
        self.chip_label = ""
        self.prefill_rate = 0.0
        self.decode_rate = 0.0
        self.assigned_requests = 0
        self.assigned_tokens = 0
        self._outstanding_tokens = 0
        self.iterations = 0
        self.decode_steps = 0
        self.busy = 0.0
        self.decode_time = 0.0
        self.prefill_time = 0.0
        self._snapshot: ReplicaSnapshot | None = None
        # --- lifecycle (managed by the cluster engine) ---
        self.launched_at = 0.0
        self.ready_at = 0.0
        self.from_warm_pool = False
        self.draining = False
        self.drain_started_at: float | None = None
        self.retired_at: float | None = None
        self.reported_finished = 0  # completions already seen by a decision
        # --- faults (armed only on the fault-enabled run paths) ---
        self.fault_plan: ReplicaFaultPlan | None = None
        self.restart_at = 0.0  # crashed-until instant; 0.0 = never down
        self._prior_cache_stats: list[PrefixCacheStats] = []

    # ------------------------------------------------------------------ #
    # Router-facing state                                                  #
    # ------------------------------------------------------------------ #

    @property
    def outstanding_requests(self) -> int:
        return self.assigned_requests - len(self.finished)

    @property
    def outstanding_tokens(self) -> int:
        return self._outstanding_tokens

    @property
    def has_work(self) -> bool:
        """Anything routed here that has not finished yet."""
        return bool(self.pending) or self.scheduler.has_work

    def snapshot(self) -> ReplicaSnapshot:
        # idle replicas are snapshotted once and served from cache until
        # the next submit/advance dirties them — on a lightly loaded
        # fleet this removes most of the per-arrival bookkeeping
        snap = self._snapshot
        if snap is None:
            snap = ReplicaSnapshot(
                replica_id=self.replica_id,
                clock_s=self.now,
                outstanding_requests=self.outstanding_requests,
                outstanding_tokens=self._outstanding_tokens,
                queued_requests=len(self.pending)
                + len(self.scheduler.queued),
                active_requests=self.scheduler.active_count,
                assigned_requests=self.assigned_requests,
                assigned_tokens=self.assigned_tokens,
                chip=self.chip_label,
                group=self.group_index,
                prefill_tokens_per_s=self.prefill_rate,
                decode_tokens_per_s=self.decode_rate,
            )
            self._snapshot = snap
        return snap

    # ------------------------------------------------------------------ #
    # Simulation                                                           #
    # ------------------------------------------------------------------ #

    def _note_finished(self, request: Request) -> None:
        """Per-completion hook for the shared decode burst."""
        self._outstanding_tokens -= (request.input_tokens
                                     + request.output_tokens)

    def submit(self, request: Request) -> None:
        """Route ``request`` here; it arrives when the clock reaches it.

        The cluster routes in global arrival order, so ``pending`` stays
        sorted by arrival time without re-sorting.
        """
        self.pending.append(request)
        self.assigned_requests += 1
        tokens = request.input_tokens + request.output_tokens
        self.assigned_tokens += tokens
        self._outstanding_tokens += tokens
        self._snapshot = None

    def advance_to(self, target: float, horizon: float) -> None:
        """Run iterations until the clock reaches ``min(target, horizon)``
        or the replica goes idle with nothing arriving before then.

        Mirrors ``ServingEngine.run``: an iteration starts whenever the
        clock is still below the limit, even if it ends past it, and an
        idle replica's clock stays at its last event (never inflated to
        the horizon).
        """
        if not self.has_work:
            return
        limit = min(target, horizon)
        if not self.now < limit:
            # the clock already reached the limit: zero iterations can
            # run, so the replica state — and therefore the snapshot the
            # router would rebuild — is unchanged.  Keeping the cached
            # snapshot removes most per-arrival bookkeeping on busy
            # fleets where arrivals outpace the iteration clock.
            return
        self._snapshot = None
        scheduler = self.scheduler
        pending = self.pending
        engine = self.engine
        device = engine.device
        model = engine.model
        num_devices = engine.num_devices
        fast_forward = engine.fast_forward
        while self.now < limit:
            while pending and pending[0].arrival_time <= self.now:
                scheduler.enqueue(pending.popleft())
            plan = scheduler.plan_iteration()
            if not plan.has_work:
                if not pending:
                    break
                # idle-jump to the next routed arrival, clamped to the
                # limit — the same rule as ServingEngine.run, so a
                # post-horizon arrival leaves the clock at the horizon,
                # never past it
                self.now = min(pending[0].arrival_time, limit)
                continue
            if fast_forward and plan.decode_batch \
                    and plan.prefill_tokens == 0:
                # same pure-decode fast-forward as ServingEngine.run,
                # additionally bounded by the advance limit
                self.now, steps, self.busy, self.decode_time = \
                    run_decode_burst(
                        scheduler, plan, pending, device, model,
                        num_devices, self.now, limit, self.busy,
                        self.decode_time, self.finished,
                        on_finish=self._note_finished)
                self.iterations += steps
                self.decode_steps += steps
                continue
            step, decode_part, prefill_part = \
                engine._iteration_seconds(plan)
            self.now += step
            self.busy += step
            self.decode_time += decode_part
            self.prefill_time += prefill_part
            self.iterations += 1
            if plan.decode_batch:
                self.decode_steps += 1
                finished_now: list[Request] = []
                for request in plan.decode_requests:
                    request.record_token(self.now)
                    if request.done:
                        self.finished.append(request)
                        finished_now.append(request)
                        self._outstanding_tokens -= (
                            request.input_tokens + request.output_tokens)
                plan.finished_decodes = finished_now
            scheduler.complete_iteration(plan)

    # ------------------------------------------------------------------ #
    # Fault-aware stepping (only entered when faults are enabled)          #
    # ------------------------------------------------------------------ #

    def advance_faulty(self, target: float, horizon: float) -> None:
        """Fault-aware :meth:`advance_to`: honors the replica's stall
        windows, slowdown multipliers and next crash boundary.

        The clock never crosses the plan's ``crash_at`` — the cluster
        fires the crash there — and inside clean segments the advance
        delegates to the plain path (same fast-forward, same timing).
        """
        plan = self.fault_plan
        if plan is None:
            self.advance_to(target, horizon)
            return
        limit = min(target, horizon)
        crash = plan.crash_at
        if crash is not None:
            limit = min(limit, crash)
        if self.now < self.restart_at:
            # down after a crash: the clock holds until new work routed
            # post-restart pulls it across the outage (same idle-clock
            # rule as advance_to — downtime with no work costs nothing)
            if not self.has_work:
                return
            self._snapshot = None
            self.now = min(self.restart_at, limit)
            if self.now < self.restart_at:
                return
        while self.now < limit:
            if not self.has_work:
                return
            window = plan.window_at(self.now)
            if window is not None and window.kind == "stall":
                self._snapshot = None
                self.now = min(window.end_s, limit)
                continue
            segment = plan.next_boundary(self.now, limit)
            before = self.now
            if window is None:
                self.advance_to(segment, horizon)
            else:
                self._advance_slow(segment, window.factor)
            if not self.now > before:
                # idle with nothing arriving before the boundary — the
                # inner advance already concluded there is no progress
                return

    def _advance_slow(self, limit: float, factor: float) -> None:
        """Straggler window: per-iteration advance with every step time
        multiplied by ``factor``.

        No decode fast-forward here — a burst is timed at full speed and
        would cross the window boundary at the wrong rate.  The loop is
        otherwise the same iteration body as :meth:`advance_to`.
        """
        self._snapshot = None
        scheduler = self.scheduler
        pending = self.pending
        engine = self.engine
        while self.now < limit:
            while pending and pending[0].arrival_time <= self.now:
                scheduler.enqueue(pending.popleft())
            plan = scheduler.plan_iteration()
            if not plan.has_work:
                if not pending:
                    return
                self.now = min(pending[0].arrival_time, limit)
                continue
            step, decode_part, prefill_part = \
                engine._iteration_seconds(plan)
            step *= factor
            decode_part *= factor
            prefill_part *= factor
            self.now += step
            self.busy += step
            self.decode_time += decode_part
            self.prefill_time += prefill_part
            self.iterations += 1
            if plan.decode_batch:
                self.decode_steps += 1
                finished_now: list[Request] = []
                for request in plan.decode_requests:
                    request.record_token(self.now)
                    if request.done:
                        self.finished.append(request)
                        finished_now.append(request)
                        self._outstanding_tokens -= (
                            request.input_tokens + request.output_tokens)
                plan.finished_decodes = finished_now
            scheduler.complete_iteration(plan)

    def crash_reset(self, when: float, restart_at: float) -> list[Request]:
        """Crash at ``when``: every in-flight request loses its generated
        work and leaves the replica; scheduler and per-replica prefix
        cache restart cold.  Returns the lost requests (sorted by
        arrival, then id — a stable requeue order independent of
        scheduler internals) for cluster-level retry accounting.
        Completed work and busy/iteration counters survive — a crash
        destroys state, not history.
        """
        lost = (list(self.scheduler.prefilling)
                + list(self.scheduler.decoding)
                + list(self.scheduler.queued)
                + list(self.pending))
        tokens = sum(r.input_tokens + r.output_tokens for r in lost)
        self.assigned_requests -= len(lost)
        self.assigned_tokens -= tokens
        self._outstanding_tokens -= tokens
        engine = self.engine
        if self.prefix_cache is not None:
            self._prior_cache_stats.append(self.prefix_cache.stats)
            self.prefix_cache = engine.build_prefix_cache()
        self.scheduler = ContinuousBatchingScheduler(
            engine.model, engine.limits, prefix_cache=self.prefix_cache)
        self.pending = deque()
        self.now = max(self.now, when)
        self.restart_at = restart_at
        self._snapshot = None
        lost.sort(key=lambda r: (r.arrival_time, r.request_id))
        return lost

    def result(self) -> SimulationResult:
        """This replica's outcome in the single-engine result shape."""
        unfinished = (self.scheduler.prefilling + self.scheduler.decoding
                      + list(self.scheduler.queued) + list(self.pending))
        cache_stats = None
        if self.prefix_cache is not None:
            # a crash restarts the cache cold; pre-crash stats are
            # stashed so the replica's reuse history stays complete
            if self._prior_cache_stats:
                cache_stats = PrefixCacheStats.merged(
                    self._prior_cache_stats + [self.prefix_cache.stats])
            else:
                cache_stats = self.prefix_cache.stats
        return SimulationResult(
            finished=list(self.finished),
            unfinished=unfinished,
            total_time_s=self.now,
            iterations=self.iterations,
            decode_steps=self.decode_steps,
            busy_time_s=self.busy,
            decode_time_s=self.decode_time,
            prefill_time_s=self.prefill_time,
            prefix_cache=cache_stats,
        )


def _sorted_by_arrival(requests):
    """The arrival stream in time order.

    Lists and tuples keep the pre-streaming behavior: scanned once and
    returned as-is when already sorted (repeat runs over one stream skip
    the re-sort), sorted into a copy otherwise.  A
    :class:`~repro.serving.stream.RequestStream` — or any other lazy
    iterable, which gets wrapped into one — must *not* be materialized
    or re-sorted here: the stream checks monotonicity online as each
    request is pulled and raises
    :class:`~repro.serving.stream.OutOfOrderArrival` naming the
    offending timestamp the moment a producer emits out of order.
    """
    if isinstance(requests, RequestStream):
        return requests
    if not isinstance(requests, (list, tuple)):
        return as_stream(requests)
    previous = None
    for request in requests:
        if previous is not None and request.arrival_time < previous:
            return sorted(requests, key=lambda r: r.arrival_time)
        previous = request.arrival_time
    return requests


class EngineGroup:
    """Runtime descriptor of one homogeneous slice of the fleet.

    The engine-side mirror of
    :class:`repro.api.specs.ReplicaGroupSpec`, with the chip reference
    already resolved to a :class:`~repro.perf.baselines.DeviceModel`
    and the scheduling knobs to :class:`SchedulerLimits`.  The two
    capability rates are filled by the cluster engine's one-time
    capability probe — only when the fleet actually mixes groups, so a
    homogeneous fleet never pays (or exposes) them.
    """

    __slots__ = ("index", "name", "chip", "device", "model", "limits",
                 "num_devices", "count", "cost_per_replica_s",
                 "min_count", "max_count", "provision_latency_s",
                 "prefill_tokens_per_s", "decode_tokens_per_s")

    def __init__(self, index: int, name: str, chip: str,
                 device: DeviceModel, model: ModelConfig,
                 limits: SchedulerLimits, num_devices: int = 1,
                 count: int = 1, cost_per_replica_s: float = 1.0,
                 min_count: int | None = None,
                 max_count: int | None = None,
                 provision_latency_s: float | None = None) -> None:
        if count < 0:
            raise ValueError("group count must be >= 0")
        if cost_per_replica_s <= 0:
            raise ValueError("cost_per_replica_s must be positive")
        self.index = index
        self.name = name
        self.chip = chip
        self.device = device
        self.model = model
        self.limits = limits
        self.num_devices = num_devices
        self.count = count
        self.cost_per_replica_s = cost_per_replica_s
        self.min_count = min_count
        self.max_count = max_count
        self.provision_latency_s = provision_latency_s
        self.prefill_tokens_per_s = 0.0
        self.decode_tokens_per_s = 0.0

    def floor(self) -> int:
        """Scale-down floor: the group never shrinks below this."""
        return self.min_count if self.min_count is not None else 0


class ClusterEngine:
    """N replicas of one endpoint behind a router, one simulated clock.

    ``run`` is reusable: every call builds fresh replicas and (for
    routers given by name) a fresh router instance, so two runs on one
    engine never share clocks, schedulers or session pins.  A router
    passed as an *instance* is reused as-is — the caller owns its state.

    With ``autoscale`` set, ``replicas`` is the *initial* fleet size and
    the named :class:`~repro.cluster.autoscaler.AutoscalerPolicy` is
    consulted every ``decision_interval_s`` of simulated time; the run
    then returns a :class:`ClusterResult` whose ``autoscale`` field
    carries the scale-event log, fleet-size timeline and replica-seconds
    accounting.  All built-ins are deterministic: the same stream and
    spec always reproduce the identical assignment and scaling history.

    A *heterogeneous* fleet is built via :meth:`from_groups` (or the
    keyword-only ``groups`` argument): replica ids are assigned group by
    group, every replica runs its group's device/model/limits, and —
    only when more than one group exists — a one-time capability probe
    stamps each group's prefill/decode rate estimate into the router
    snapshots.  A single-group fleet takes exactly the legacy code path
    and is bit-identical to ``replicas=N``.
    """

    def __init__(
        self,
        device: DeviceModel,
        model: ModelConfig,
        limits: SchedulerLimits,
        num_devices: int = 1,
        replicas: int = 2,
        router: str | RouterPolicy = "round-robin",
        fast_forward: bool = True,
        autoscale: AutoscaleSpec | None = None,
        autoscaler: AutoscalerPolicy | None = None,
        prefix_cache=None,
        faults: FaultSpec | None = None,
        *,
        groups: list[EngineGroup] | None = None,
    ) -> None:
        if groups is not None:
            if not groups:
                raise ValueError("groups must be a non-empty list")
            replicas = sum(group.count for group in groups)
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if autoscale is not None and not (
                autoscale.min_replicas <= replicas
                <= autoscale.max_replicas):
            raise ValueError(
                f"initial replicas={replicas} outside the autoscale "
                f"range [{autoscale.min_replicas}, "
                f"{autoscale.max_replicas}]")
        if autoscaler is not None and autoscale is None:
            raise ValueError("autoscaler instance given without an "
                             "AutoscaleSpec")
        if faults is not None and not isinstance(faults, FaultSpec):
            raise ValueError(
                f"faults must be a FaultSpec or None, got {faults!r}")
        self.device = device
        self.model = model
        self.limits = limits
        self.num_devices = num_devices
        self.replicas = replicas
        self.router = router
        self.fast_forward = fast_forward
        self.autoscale = autoscale
        self.autoscaler = autoscaler
        self.prefix_cache = prefix_cache
        self.faults = faults
        if groups is None:
            chip_name = getattr(getattr(device, "chip", None), "name", "")
            groups = [EngineGroup(0, chip_name, chip_name, device, model,
                                  limits, num_devices, count=replicas)]
        self.groups = groups
        if len(groups) > 1:
            self._probe_capabilities()
        make_router(router)  # fail on unknown names at construction
        if autoscale is not None and autoscaler is None:
            make_autoscaler(autoscale.policy)

    @classmethod
    def from_groups(
        cls,
        groups: list[EngineGroup],
        router: str | RouterPolicy = "round-robin",
        fast_forward: bool = True,
        autoscale: AutoscaleSpec | None = None,
        autoscaler: AutoscalerPolicy | None = None,
        prefix_cache=None,
        faults: FaultSpec | None = None,
    ) -> "ClusterEngine":
        """Build an engine over an explicit (possibly mixed) fleet."""
        if not groups:
            raise ValueError("groups must be a non-empty list")
        lead = groups[0]
        return cls(lead.device, lead.model, lead.limits,
                   num_devices=lead.num_devices,
                   router=router, fast_forward=fast_forward,
                   autoscale=autoscale, autoscaler=autoscaler,
                   prefix_cache=prefix_cache, faults=faults,
                   groups=groups)

    def _probe_capabilities(self) -> None:
        """Single-request microbenchmark per group: estimated prefill
        and decode token rates, comparable across chips.

        Entered only for mixed fleets — these rates flow into every
        router snapshot, and the homogeneous contract is that snapshots
        (and code paths) stay byte-identical to the pre-group engine.
        """
        for group in self.groups:
            prefill_s = group.device.prefill_time(
                group.model, 1, 512, group.num_devices).seconds
            group.prefill_tokens_per_s = 512.0 / prefill_s \
                if prefill_s > 0 else 0.0
            decode_s = group.device.decode_step_time(
                group.model, 8, 512, group.num_devices).seconds
            group.decode_tokens_per_s = 8.0 / decode_s \
                if decode_s > 0 else 0.0

    def _new_replica(self, replica_id: int,
                     group: EngineGroup | None = None) -> ReplicaSim:
        if group is None:
            group = self.groups[0]
        replica = ReplicaSim(
            replica_id,
            ServingEngine(group.device, group.model,
                          group.limits, group.num_devices,
                          fast_forward=self.fast_forward,
                          prefix_cache=self.prefix_cache))
        replica.group = group
        replica.group_index = group.index
        replica.chip_label = group.name
        replica.prefill_rate = group.prefill_tokens_per_s
        replica.decode_rate = group.decode_tokens_per_s
        return replica

    def _initial_fleet(self) -> list[ReplicaSim]:
        """Replica ids run 0..N-1 group by group, in spec order."""
        fleet: list[ReplicaSim] = []
        for group in self.groups:
            for _ in range(group.count):
                fleet.append(self._new_replica(len(fleet), group))
        return fleet

    def _static_breakdowns(
            self, fleet: list[ReplicaSim],
            results: list[SimulationResult],
    ) -> tuple[tuple[GroupBreakdown, ...] | None, tuple[int, ...] | None]:
        """Per-group shares of a fixed-fleet run (hetero fleets only)."""
        if len(self.groups) == 1:
            return None, None
        wall = max(result.total_time_s for result in results)
        group_ids = tuple(replica.group_index for replica in fleet)
        meta = [(g.name, g.chip, g.cost_per_replica_s)
                for g in self.groups]
        seconds = [wall * g.count for g in self.groups]
        return group_breakdowns(results, group_ids, meta,
                                seconds), group_ids

    @staticmethod
    def _route(router: RouterPolicy, request: Request,
               routable: list[ReplicaSim]) -> ReplicaSim:
        """One routing decision: snapshot, ask, map position -> replica.

        The router returns a position in the snapshot sequence (see
        :mod:`repro.cluster.router`); the engine owns the translation
        back to the concrete replica, so router code never needs to
        know that fleet ids can be non-contiguous.
        """
        snapshots = [replica.snapshot() for replica in routable]
        position = router.route(request, snapshots)
        if not 0 <= position < len(snapshots):
            raise ValueError(
                f"router returned replica index {position}, "
                f"snapshot lists {len(snapshots)} replicas")
        return routable[position]

    def run(self, requests, max_sim_seconds: float = 600.0, *,
            progress=None) -> ClusterResult:
        """Route the arrival stream, drain every replica, aggregate.

        ``requests`` is a list (the classic path) or a lazy iterable /
        :class:`~repro.serving.stream.RequestStream`, consumed one
        arrival at a time — bit-identical results either way (the
        fault paths buffer arrivals in their event heap regardless).
        ``progress`` is called as ``progress(sim_time, done_count)``
        once per routed arrival; wall-clock throttling lives in the
        caller, keeping the engine deterministic.
        """
        router = make_router(self.router)
        faults = self.faults \
            if self.faults is not None and self.faults.enabled else None
        if faults is None:
            # the fault-free paths are byte-identical to the pre-fault
            # engine: a disabled spec enters zero new code
            if self.autoscale is None:
                return self._run_static(requests, max_sim_seconds, router,
                                        progress)
            return self._run_autoscaled(requests, max_sim_seconds, router,
                                        progress)
        if self.autoscale is None:
            return self._run_static_faulty(requests, max_sim_seconds,
                                           router, faults, progress)
        return self._run_autoscaled_faulty(requests, max_sim_seconds,
                                           router, faults, progress)

    def _run_static(self, requests, max_sim_seconds: float,
                    router: RouterPolicy, progress=None) -> ClusterResult:
        fleet = self._initial_fleet()
        for request in _sorted_by_arrival(requests):
            arrival = request.arrival_time
            for replica in fleet:
                replica.advance_to(arrival, max_sim_seconds)
            self._route(router, request, fleet).submit(request)
            if progress is not None:
                progress(arrival, sum(len(r.finished) for r in fleet))
        for replica in fleet:
            replica.advance_to(float("inf"), max_sim_seconds)
        results = [r.result() for r in fleet]
        breakdowns, group_ids = self._static_breakdowns(fleet, results)
        return aggregate_cluster(results, groups=breakdowns,
                                 group_ids=group_ids)

    def _run_autoscaled(self, requests, max_sim_seconds: float,
                        router: RouterPolicy,
                        progress=None) -> ClusterResult:
        spec = self.autoscale
        policy = self.autoscaler if self.autoscaler is not None \
            else make_autoscaler(spec.policy)
        fleet = _DynamicFleet(self._new_replica, spec, self.groups)
        next_decision = spec.decision_interval_s
        for request in _sorted_by_arrival(requests):
            arrival = request.arrival_time
            while next_decision <= arrival \
                    and next_decision <= max_sim_seconds:
                fleet.decide(next_decision, max_sim_seconds, policy)
                next_decision += spec.decision_interval_s
            for replica in fleet.live:
                replica.advance_to(arrival, max_sim_seconds)
            routable = fleet.routable(arrival)
            if not routable:
                # structurally unreachable: scale-down cancels
                # provisioning replicas before draining ready ones and
                # clamps at min_replicas >= 1, so at least one ready,
                # non-draining replica always exists
                raise RuntimeError(
                    "no routable replica in the autoscaled fleet")
            self._route(router, request, routable).submit(request)
            fleet.note_arrival()
            if progress is not None:
                progress(arrival,
                         sum(len(r.finished) for r in fleet.live))
        # keep the control loop ticking until the fleet drains, so
        # post-traffic scale-downs (and their replica-second savings)
        # are part of the simulated history
        while fleet.has_work() and next_decision <= max_sim_seconds:
            fleet.decide(next_decision, max_sim_seconds, policy)
            next_decision += spec.decision_interval_s
        return fleet.finalize(max_sim_seconds)

    # ------------------------------------------------------------------ #
    # Fault-enabled run paths (never entered with faults disabled)         #
    # ------------------------------------------------------------------ #

    def _run_static_faulty(self, requests, max_sim_seconds: float,
                           router: RouterPolicy, spec: FaultSpec,
                           progress=None) -> ClusterResult:
        """Fixed fleet under fault injection: event-driven routing.

        The arrival stream seeds a time-ordered event heap; crashes push
        retries back onto it, so routing, retries and failures interleave
        in one deterministic order.  Crashed replicas restart in place
        after ``restart_delay_s`` — the fleet size is fixed, the machine
        reboots — and are unroutable while down.
        """
        injector = FaultInjector(spec, max_sim_seconds)
        coordinator = _FaultCoordinator(spec, injector)
        fleet = self._initial_fleet()
        for replica in fleet:
            replica.fault_plan = injector.plan_for(replica.replica_id, 0.0)
        for request in _sorted_by_arrival(requests):
            coordinator.push(request.arrival_time, request)
        last = 0.0
        while True:
            while coordinator.events:
                now, seq, request = heapq.heappop(coordinator.events)
                last = max(last, now)
                for replica in fleet:
                    replica.advance_faulty(now, max_sim_seconds)
                coordinator.fire(fleet, now)
                if coordinator.events and coordinator.events[0][0] < now:
                    # a crash pushed retries behind this event in time:
                    # requeue it (original seq) and serve them first
                    heapq.heappush(coordinator.events,
                                   (now, seq, request))
                    continue
                if coordinator.timed_out(request, now):
                    continue
                routable = [r for r in fleet if r.restart_at <= now]
                if not routable:
                    # whole fleet down: park the request until the first
                    # restart, or give up if that lies past the horizon
                    wake = min(r.restart_at for r in fleet)
                    if wake > max_sim_seconds:
                        injector.fail(request, now)
                        continue
                    coordinator.push(wake, request)
                    continue
                self._route(router, request, routable).submit(request)
                if progress is not None:
                    progress(now, sum(len(r.finished) for r in fleet))
            for replica in fleet:
                replica.advance_faulty(float("inf"), max_sim_seconds)
            if not coordinator.fire(fleet, last):
                break
        results = [r.result() for r in fleet]
        wall = max(result.total_time_s for result in results)
        breakdowns, group_ids = self._static_breakdowns(fleet, results)
        return aggregate_cluster(results, faults=injector.trace(wall),
                                 groups=breakdowns, group_ids=group_ids)

    def _run_autoscaled_faulty(self, requests, max_sim_seconds: float,
                               router: RouterPolicy, spec: FaultSpec,
                               progress=None) -> ClusterResult:
        """Elastic fleet under fault injection.

        Crashed replicas retire immediately (dead hardware is not a warm
        machine) and the very next decision sees the capacity loss as
        ``launched < desired``, replacing them through the normal
        provisioning/warm-pool lifecycle.  Unlike the fault-free path,
        crashes can leave the routable set empty, so requests park until
        provisioning capacity arrives or fail when none can.
        """
        autoscale = self.autoscale
        policy = self.autoscaler if self.autoscaler is not None \
            else make_autoscaler(autoscale.policy)
        injector = FaultInjector(spec, max_sim_seconds)
        coordinator = _FaultCoordinator(spec, injector)
        fleet = _FaultyDynamicFleet(self._new_replica, autoscale,
                                    self.groups, coordinator)
        interval = autoscale.decision_interval_s
        next_decision = interval
        for request in _sorted_by_arrival(requests):
            coordinator.push(request.arrival_time, request)
        last = 0.0
        while True:
            while coordinator.events:
                now, seq, request = heapq.heappop(coordinator.events)
                last = max(last, now)
                while next_decision <= now \
                        and next_decision <= max_sim_seconds:
                    fleet.decide(next_decision, max_sim_seconds, policy)
                    next_decision += interval
                for replica in list(fleet.live):
                    fleet._advance(replica, now, max_sim_seconds)
                fleet.fire_crashes(now)
                if coordinator.events and coordinator.events[0][0] < now:
                    heapq.heappush(coordinator.events,
                                   (now, seq, request))
                    continue
                if coordinator.timed_out(request, now):
                    continue
                routable = fleet.routable(now)
                if not routable:
                    wake = fleet.next_capacity_at(now, next_decision,
                                                  max_sim_seconds)
                    if wake is None:
                        injector.fail(request, now)
                        continue
                    coordinator.push(wake, request)
                    continue
                self._route(router, request, routable).submit(request)
                fleet.note_arrival()
                if progress is not None:
                    progress(now,
                             sum(len(r.finished) for r in fleet.live))
            if fleet.has_work() and next_decision <= max_sim_seconds:
                # keep the control loop ticking while draining, exactly
                # like the fault-free path — crashes during the tail are
                # fired inside decide() and feed the event heap above
                fleet.decide(next_decision, max_sim_seconds, policy)
                next_decision += interval
                continue
            for replica in list(fleet.live):
                fleet._advance(replica, float("inf"), max_sim_seconds)
            if not fleet.fire_crashes(last):
                break
        return fleet.finalize(max_sim_seconds)


class _FaultCoordinator:
    """Retry heap + crash firing for one fault-injected cluster run.

    ``events`` holds ``(time, seq, request)`` routing events — arrivals
    and crash retries — in one deterministic total order; ``seq`` is a
    monotonic tiebreaker, so equal-time events keep insertion order and
    the heap never compares two :class:`Request` objects.
    """

    def __init__(self, spec: FaultSpec, injector: FaultInjector) -> None:
        self.spec = spec
        self.injector = injector
        self.events: list[tuple[float, int, Request]] = []
        self._seq = 0

    def push(self, time: float, request: Request) -> None:
        heapq.heappush(self.events, (time, self._seq, request))
        self._seq += 1

    def timed_out(self, request: Request, now: float) -> bool:
        """Deadline check at routing time; a missed deadline is a
        recorded terminal failure, not a silent drop."""
        timeout = self.spec.request_timeout_s
        if timeout is not None and now - request.arrival_time > timeout:
            self.injector.fail(request, now)
            return True
        return False

    def fire(self, replicas, global_now: float, on_crash=None) -> bool:
        """Fire every due crash; returns whether any fired.

        A crash is due once the run's event clock passes it, or — for a
        replica that stopped at its crash boundary with work in hand —
        as soon as the replica's own clock reaches it.  An idle
        replica's *future* crash never fires during the drain: nothing
        is there to lose and nothing waits on the machine.

        ``on_crash`` selects the recovery model: ``None`` restarts the
        machine in place after ``restart_delay_s`` (fixed fleet); a
        callback retires it (autoscaled fleet — replacement capacity
        comes from the policy).
        """
        spec = self.spec
        fired = False
        for replica in list(replicas):
            plan = replica.fault_plan
            if plan is None or plan.crash_at is None:
                continue
            crash = plan.crash_at
            if crash > self.injector.horizon:
                continue
            due = crash <= global_now \
                or (replica.has_work and replica.now >= crash)
            if not due:
                continue
            # iterations are indivisible: a crash mid-iteration takes
            # effect when the iteration ends (replica.now), never before
            # the scheduled instant itself
            when = max(crash, replica.now)
            fired = True
            if on_crash is None:
                restart = when + spec.restart_delay_s
                lost = replica.crash_reset(when, restart)
                plan.note_crash(restart)
                downtime = spec.restart_delay_s
            else:
                lost = replica.crash_reset(when, float("inf"))
                plan.note_crash(float("inf"))
                on_crash(replica, when)
                downtime = 0.0
            self.injector.record_crash(replica.replica_id, when,
                                       len(lost), downtime)
            for request in lost:
                self._requeue(request, when)
        return fired

    def _requeue(self, request: Request, when: float) -> None:
        """Retry a crash-lost request, or record it failed when its
        retry budget or deadline is spent."""
        spec = self.spec
        if request.retries >= spec.max_retries:
            self.injector.fail(request, when)
        elif spec.request_timeout_s is not None \
                and when - request.arrival_time > spec.request_timeout_s:
            self.injector.fail(request, when)
        else:
            request.reset_for_retry()
            self.injector.retries += 1
            self.push(when, request)


class _DynamicFleet:
    """Replica lifecycle bookkeeping for one autoscaled cluster run.

    Owns the live fleet, the warm pool stock, the scale-event log and
    the per-interval timeline; :class:`ClusterEngine` drives it at
    arrivals and decision instants.  Scale-ups pay the cold provision
    latency unless warm stock is available; scale-downs cancel
    still-provisioning replicas first (newest first — they hold no
    work), then drain the ready replica with the fewest outstanding
    requests (ties to the newest id).  Retiring a replica returns one
    slot to the warm pool, capped at ``warm_pool_size``.

    On a multi-group fleet the same lifecycle runs per group: each
    scale-up unit launches into the *cheapest* group still under its
    ``max_count`` (cost ties to the earliest group), each scale-down
    unit removes from the most expensive group above its ``min_count``
    (ties to the latest group), a group-level ``provision_latency_s``
    overrides the fleet-wide cold latency, and warm stock is kept per
    group (a warm GPU is not a warm ADOR).  With one group every choice
    collapses to the legacy single-pool behavior, bit for bit.
    """

    def __init__(self, new_replica, spec: AutoscaleSpec,
                 groups: list[EngineGroup]) -> None:
        self.new_replica = new_replica
        self.spec = spec
        self.groups = groups
        self.live: list[ReplicaSim] = []
        for group in groups:
            for _ in range(group.count):
                self.live.append(new_replica(len(self.live), group))
        self.everyone: list[ReplicaSim] = list(self.live)
        self.initial = len(self.live)
        self.next_id = self.initial
        self.warm_stock = [spec.warm_pool_size for _ in groups]
        self.events: list[ScaleEvent] = []
        self.samples: list[FleetSample] = []
        self.warm_launches = 0
        self.cold_launches = 0
        self._interval_arrivals = 0
        self._last_decision = 0.0
        self._busy_prev = 0.0
        self._retired_busy = 0.0

    # ------------------------------------------------------------------ #
    # Queries                                                              #
    # ------------------------------------------------------------------ #

    def routable(self, now: float) -> list[ReplicaSim]:
        """Ready, non-draining replicas — what the router may target."""
        return [r for r in self.live
                if not r.draining and r.ready_at <= now]

    def has_work(self) -> bool:
        return any(r.has_work for r in self.live)

    def note_arrival(self) -> None:
        self._interval_arrivals += 1

    def _launched(self) -> list[ReplicaSim]:
        """Ready + provisioning replicas: what counts toward ``desired``
        (draining ones are already on their way out)."""
        return [r for r in self.live if not r.draining]

    def _launched_per_group(self) -> list[int]:
        counts = [0] * len(self.groups)
        for replica in self._launched():
            counts[replica.group_index] += 1
        return counts

    def _advance(self, replica: ReplicaSim, target: float,
                 horizon: float) -> None:
        """Advance hook — the fault-injected fleet overrides this."""
        replica.advance_to(target, horizon)

    def _fault_trace(self, wall: float) -> FaultTrace | None:
        """Fault-log hook — ``None`` on fault-free runs."""
        return None

    # ------------------------------------------------------------------ #
    # One decision instant                                                 #
    # ------------------------------------------------------------------ #

    def decide(self, now: float, horizon: float,
               policy: AutoscalerPolicy) -> None:
        spec = self.spec
        for replica in self.live:
            self._advance(replica, now, horizon)
        interval_ttfts = self._collect_interval_ttfts()
        self._retire_drained()
        routable = self.routable(now)
        launched = self._launched()
        observation = FleetObservation(
            clock_s=now,
            interval_s=now - self._last_decision,
            replicas=tuple(r.snapshot() for r in routable),
            provisioning=len(launched) - len(routable),
            draining=len(self.live) - len(launched),
            min_replicas=spec.min_replicas,
            max_replicas=spec.max_replicas,
            interval_arrivals=self._interval_arrivals,
            interval_ttft_s=tuple(interval_ttfts),
        )
        desired = int(policy.desired_replicas(observation))
        desired = min(max(desired, spec.min_replicas), spec.max_replicas)
        delta = desired - len(launched)
        if delta > 0:
            self._scale_up(now, delta)
        elif delta < 0:
            self._scale_down(now, -delta)
        self._sample(now, observation)
        self._interval_arrivals = 0
        self._last_decision = now

    def _collect_interval_ttfts(self) -> list[float]:
        """TTFT of every request that completed since the last decision
        (including on replicas that drained in the meantime)."""
        ttfts: list[float] = []
        for replica in self.live:
            new = replica.finished[replica.reported_finished:]
            replica.reported_finished = len(replica.finished)
            ttfts.extend(r.ttft for r in new)
        return ttfts

    def _retire_drained(self) -> None:
        kept = []
        for replica in self.live:
            if replica.draining and not replica.has_work:
                # decommission backdated to when the last admitted
                # request actually finished, not when the control loop
                # noticed — replica-seconds stay honest
                self._retire(replica,
                             max(replica.now, replica.drain_started_at))
            else:
                kept.append(replica)
        self.live = kept

    def _retire(self, replica: ReplicaSim, when: float) -> None:
        replica.retired_at = when
        self._retired_busy += replica.busy
        # a drained (once-ready) replica is a warm machine and refills
        # its group's pool; a cancelled warm launch returns the slot it
        # took.  A cancelled *cold* launch never finished provisioning,
        # so no warm machine exists to return.
        if replica.ready_at <= when or replica.from_warm_pool:
            group = replica.group_index
            self.warm_stock[group] = min(self.warm_stock[group] + 1,
                                         self.spec.warm_pool_size)

    def _scale_up(self, now: float, count: int) -> None:
        spec = self.spec
        warm_used = 0
        ids = []
        launched = self._launched_per_group()
        for _ in range(count):
            # cheapest group with headroom wins each unit; ties break
            # to the earliest group, so a one-group fleet always picks
            # its only group and reproduces the legacy single-pool path
            eligible = [g for g in self.groups
                        if g.max_count is None
                        or launched[g.index] < g.max_count]
            if not eligible:
                break
            group = min(eligible,
                        key=lambda g: (g.cost_per_replica_s, g.index))
            warm = self.warm_stock[group.index] > 0
            if warm:
                self.warm_stock[group.index] -= 1
                warm_used += 1
                self.warm_launches += 1
                latency = spec.warm_provision_s
            else:
                self.cold_launches += 1
                latency = group.provision_latency_s \
                    if group.provision_latency_s is not None \
                    else spec.provision_latency_s
            replica = self.new_replica(self.next_id, group)
            replica.launched_at = now
            replica.ready_at = now + latency
            replica.from_warm_pool = warm
            ids.append(self.next_id)
            self.next_id += 1
            self.live.append(replica)
            self.everyone.append(replica)
            launched[group.index] += 1
        if ids:
            self.events.append(ScaleEvent(
                clock_s=now, kind="up", delta=len(ids),
                replicas_after=len(self._launched()),
                warm_used=warm_used, replica_ids=tuple(ids)))

    def _scale_down_victim(self, now: float,
                           launched: list[int]
                           ) -> tuple[ReplicaSim, bool] | None:
        """Pick one replica to remove: ``(replica, cancel)`` where
        ``cancel`` means it was still provisioning (never served).

        The most expensive group above its floor gives up a replica
        first (cost ties to the latest group — the mirror of scale-up's
        earliest-group preference, so a fleet converges back to its
        cheap groups); within a group, still-provisioning replicas are
        cancelled newest-id first before any ready replica drains.
        """
        eligible = [g for g in self.groups
                    if launched[g.index] > g.floor()]
        while eligible:
            group = max(eligible,
                        key=lambda g: (g.cost_per_replica_s, g.index))
            provisioning = [r for r in self.live
                            if not r.draining and r.ready_at > now
                            and r.group_index == group.index]
            if provisioning:
                return max(provisioning,
                           key=lambda r: r.replica_id), True
            ready = [r for r in self.live
                     if not r.draining and r.ready_at <= now
                     and r.group_index == group.index]
            if ready:
                return min(ready,
                           key=lambda r: (r.outstanding_requests,
                                          -r.replica_id)), False
            eligible.remove(group)
        return None

    def _scale_down(self, now: float, count: int) -> None:
        ids = []
        drained = False
        launched = self._launched_per_group()
        for _ in range(count):
            victim = self._scale_down_victim(now, launched)
            if victim is None:
                break
            replica, cancel = victim
            if cancel:
                # never served traffic: cancel, don't drain
                self._retire(replica, now)
                self.live.remove(replica)
            else:
                replica.draining = True
                replica.drain_started_at = now
                drained = True
            launched[replica.group_index] -= 1
            ids.append(replica.replica_id)
        if drained:
            self._retire_drained()  # already-idle ones retire instantly
        if ids:
            self.events.append(ScaleEvent(
                clock_s=now, kind="down", delta=-len(ids),
                replicas_after=len(self._launched()),
                warm_used=0, replica_ids=tuple(ids)))

    def _sample(self, now: float, observation: FleetObservation) -> None:
        """Timeline entry: the fleet composition *after* the decision
        was enacted, plus the load/utilization the policy based it on."""
        interval = now - self._last_decision
        busy_total = sum(r.busy for r in self.live) + self._retired_busy
        alive = self._alive_seconds(now - interval, now)
        launched = self._launched()
        ready = self.routable(now)
        self.samples.append(FleetSample(
            clock_s=now,
            ready=len(ready),
            provisioning=len(launched) - len(ready),
            draining=len(self.live) - len(launched),
            outstanding_requests=observation.outstanding_requests,
            utilization=(busy_total - self._busy_prev) / alive
            if alive > 0 else 0.0,
        ))
        self._busy_prev = busy_total

    def _alive_seconds(self, start: float, end: float,
                       group: int | None = None) -> float:
        """Replica-seconds spent inside the window ``[start, end]``,
        optionally restricted to one replica group."""
        total = 0.0
        for replica in self.everyone:
            if group is not None and replica.group_index != group:
                continue
            stop = replica.retired_at if replica.retired_at is not None \
                else end
            total += max(0.0, min(stop, end) - max(replica.launched_at,
                                                   start))
        return total

    # ------------------------------------------------------------------ #
    # End of run                                                           #
    # ------------------------------------------------------------------ #

    def finalize(self, horizon: float) -> ClusterResult:
        for replica in self.live:
            self._advance(replica, float("inf"), horizon)
        self._retire_drained()
        # the fleet wall clock: a never-ready replica never worked, so
        # its zero-valued clock cannot set it
        outcomes = [(replica, replica.result())
                    for replica in self.everyone]
        wall = max((result.total_time_s for _, result in outcomes),
                   default=0.0)
        served = [(replica, result) for replica, result in outcomes
                  if self._ever_ready(replica, wall)]
        results = [result for _, result in served]
        breakdowns: tuple[GroupBreakdown, ...] | None = None
        group_ids: tuple[int, ...] | None = None
        if len(self.groups) > 1:
            group_ids = tuple(replica.group_index
                              for replica, _ in served)
            meta = [(g.name, g.chip, g.cost_per_replica_s)
                    for g in self.groups]
            seconds = [self._alive_seconds(0.0, wall, group=g.index)
                       for g in self.groups]
            breakdowns = group_breakdowns(results, group_ids, meta,
                                          seconds)
        trace = AutoscaleTrace(
            events=tuple(self.events),
            timeline=tuple(self.samples),
            replica_seconds=self._alive_seconds(0.0, wall),
            launched=len(self.everyone),
            retired=sum(1 for r in self.everyone
                        if r.retired_at is not None),
            # the timeline samples post-decision states only, so the
            # fleet that ran before the first decision is the floor
            peak_replicas=max([self.initial]
                              + [s.ready + s.provisioning
                                 for s in self.samples]),
            warm_launches=self.warm_launches,
            cold_launches=self.cold_launches,
        )
        return aggregate_cluster(results, autoscale=trace,
                                 faults=self._fault_trace(wall),
                                 groups=breakdowns, group_ids=group_ids)

    @staticmethod
    def _ever_ready(replica: ReplicaSim, wall: float) -> bool:
        """False for replicas that never finished provisioning — whether
        cancelled by a scale-down or still mid-provision when the run
        ended.  They never existed from the traffic's point of view, so
        they carry no per-replica result (an all-zero entry would skew
        the load-imbalance stats); they still cost replica-seconds."""
        end = replica.retired_at if replica.retired_at is not None \
            else wall
        return replica.ready_at <= end


class _FaultyDynamicFleet(_DynamicFleet):
    """A dynamic fleet whose replicas can crash, straggle and stall.

    A crashed replica retires on the spot — dead hardware is not a warm
    machine, so the warm pool is *not* refilled — and the next decision
    sees the loss as ``launched < desired``, replacing it through the
    normal provisioning/warm-pool path.  Fault plans are armed lazily at
    a replica's first advance, once its launch time is known, so a
    replica's schedule is independent of fleet dynamics.
    """

    def __init__(self, new_replica, spec: AutoscaleSpec,
                 groups: list[EngineGroup],
                 coordinator: _FaultCoordinator) -> None:
        self.coordinator = coordinator
        super().__init__(new_replica, spec, groups)

    def _advance(self, replica: ReplicaSim, target: float,
                 horizon: float) -> None:
        if replica.fault_plan is None:
            replica.fault_plan = self.coordinator.injector.plan_for(
                replica.replica_id, replica.launched_at)
        replica.advance_faulty(target, horizon)

    def decide(self, now: float, horizon: float,
               policy: AutoscalerPolicy) -> None:
        # fire due crashes before the policy looks: lost capacity must
        # be visible as launched < desired at this very decision
        for replica in list(self.live):
            self._advance(replica, now, horizon)
        self.fire_crashes(now)
        super().decide(now, horizon, policy)

    def fire_crashes(self, global_now: float) -> bool:
        return self.coordinator.fire(self.live, global_now,
                                     on_crash=self._crash_retire)

    def _crash_retire(self, replica: ReplicaSim, when: float) -> None:
        replica.retired_at = when
        self._retired_busy += replica.busy
        self.live.remove(replica)

    def next_capacity_at(self, now: float, next_decision: float,
                         horizon: float) -> float | None:
        """When routable capacity can next appear: the earliest
        still-provisioning replica, or the next decision instant (which
        can launch replacements).  ``None`` when neither exists within
        the horizon — the fleet can never serve the request."""
        candidates = [r.ready_at for r in self.live
                      if not r.draining and r.ready_at > now]
        if next_decision <= horizon:
            candidates.append(next_decision)
        if not candidates:
            return None
        return min(candidates)

    def _fault_trace(self, wall: float) -> FaultTrace:
        return self.coordinator.injector.trace(wall)
