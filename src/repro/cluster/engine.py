"""Multi-replica cluster simulation under one clock.

A :class:`ClusterEngine` is the simulated analogue of a Ray-Serve-style
LLM deployment: N identical replicas (each a continuous-batching
endpoint with its own scheduler and device group) behind a router.  The
global event order is the arrival stream; before each request is routed,
every replica is advanced to the arrival instant so the router's load
snapshot is current.  Replica iterations are indivisible, exactly as in
:class:`repro.serving.engine.ServingEngine`, so a single-replica cluster
reproduces the single-engine results.

Per-iteration timing is delegated to each replica's ``ServingEngine`` —
one source of truth for the HDA overlap model and device estimators.
The replica stepper shares the engine's decode fast-forward (pure-decode
runs apply in one shot, bit-identically), idle replicas skip their
advance/snapshot bookkeeping entirely, and an already-sorted arrival
stream is not re-sorted — together the per-arrival cost of a mostly-idle
fleet drops to the router call itself.
"""

from __future__ import annotations

from collections import deque

from repro.cluster.report import ClusterResult, aggregate_cluster
from repro.cluster.router import ReplicaSnapshot, RouterPolicy, make_router
from repro.models.config import ModelConfig
from repro.perf.baselines import DeviceModel
from repro.serving.engine import (
    ServingEngine,
    SimulationResult,
    run_decode_burst,
)
from repro.serving.request import Request
from repro.serving.scheduler import ContinuousBatchingScheduler, SchedulerLimits


class ReplicaSim:
    """One steppable replica: a continuous-batching endpoint with a
    local clock that the cluster advances between arrivals."""

    def __init__(self, replica_id: int, engine: ServingEngine) -> None:
        self.replica_id = replica_id
        self.engine = engine
        self.scheduler = ContinuousBatchingScheduler(engine.model,
                                                     engine.limits)
        self.now = 0.0
        self.pending: deque[Request] = deque()  # routed, not yet enqueued
        self.finished: list[Request] = []
        self.assigned_requests = 0
        self.assigned_tokens = 0
        self._outstanding_tokens = 0
        self.iterations = 0
        self.decode_steps = 0
        self.busy = 0.0
        self.decode_time = 0.0
        self.prefill_time = 0.0
        self._snapshot: ReplicaSnapshot | None = None

    # ------------------------------------------------------------------ #
    # Router-facing state                                                  #
    # ------------------------------------------------------------------ #

    @property
    def outstanding_requests(self) -> int:
        return self.assigned_requests - len(self.finished)

    @property
    def outstanding_tokens(self) -> int:
        return self._outstanding_tokens

    @property
    def has_work(self) -> bool:
        """Anything routed here that has not finished yet."""
        return bool(self.pending) or self.scheduler.has_work

    def snapshot(self) -> ReplicaSnapshot:
        # idle replicas are snapshotted once and served from cache until
        # the next submit/advance dirties them — on a lightly loaded
        # fleet this removes most of the per-arrival bookkeeping
        snap = self._snapshot
        if snap is None:
            snap = ReplicaSnapshot(
                replica_id=self.replica_id,
                clock_s=self.now,
                outstanding_requests=self.outstanding_requests,
                outstanding_tokens=self._outstanding_tokens,
                queued_requests=len(self.pending)
                + len(self.scheduler.queued),
                active_requests=self.scheduler.active_count,
                assigned_requests=self.assigned_requests,
                assigned_tokens=self.assigned_tokens,
            )
            self._snapshot = snap
        return snap

    # ------------------------------------------------------------------ #
    # Simulation                                                           #
    # ------------------------------------------------------------------ #

    def _note_finished(self, request: Request) -> None:
        """Per-completion hook for the shared decode burst."""
        self._outstanding_tokens -= (request.input_tokens
                                     + request.output_tokens)

    def submit(self, request: Request) -> None:
        """Route ``request`` here; it arrives when the clock reaches it.

        The cluster routes in global arrival order, so ``pending`` stays
        sorted by arrival time without re-sorting.
        """
        self.pending.append(request)
        self.assigned_requests += 1
        tokens = request.input_tokens + request.output_tokens
        self.assigned_tokens += tokens
        self._outstanding_tokens += tokens
        self._snapshot = None

    def advance_to(self, target: float, horizon: float) -> None:
        """Run iterations until the clock reaches ``min(target, horizon)``
        or the replica goes idle with nothing arriving before then.

        Mirrors ``ServingEngine.run``: an iteration starts whenever the
        clock is still below the limit, even if it ends past it, and an
        idle replica's clock stays at its last event (never inflated to
        the horizon).
        """
        if not self.has_work:
            return
        self._snapshot = None
        limit = min(target, horizon)
        scheduler = self.scheduler
        pending = self.pending
        engine = self.engine
        device = engine.device
        model = engine.model
        num_devices = engine.num_devices
        fast_forward = engine.fast_forward
        while self.now < limit:
            while pending and pending[0].arrival_time <= self.now:
                scheduler.enqueue(pending.popleft())
            plan = scheduler.plan_iteration()
            if not plan.has_work:
                if not pending:
                    break
                # idle-jump to the next routed arrival, clamped to the
                # limit — the same rule as ServingEngine.run, so a
                # post-horizon arrival leaves the clock at the horizon,
                # never past it
                self.now = min(pending[0].arrival_time, limit)
                continue
            if fast_forward and plan.decode_batch \
                    and plan.prefill_tokens == 0:
                # same pure-decode fast-forward as ServingEngine.run,
                # additionally bounded by the advance limit
                self.now, steps, self.busy, self.decode_time = \
                    run_decode_burst(
                        scheduler, plan, pending, device, model,
                        num_devices, self.now, limit, self.busy,
                        self.decode_time, self.finished,
                        on_finish=self._note_finished)
                self.iterations += steps
                self.decode_steps += steps
                continue
            step, decode_part, prefill_part = \
                engine._iteration_seconds(plan)
            self.now += step
            self.busy += step
            self.decode_time += decode_part
            self.prefill_time += prefill_part
            self.iterations += 1
            if plan.decode_batch:
                self.decode_steps += 1
                finished_now: list[Request] = []
                for request in plan.decode_requests:
                    request.record_token(self.now)
                    if request.done:
                        self.finished.append(request)
                        finished_now.append(request)
                        self._outstanding_tokens -= (
                            request.input_tokens + request.output_tokens)
                plan.finished_decodes = finished_now
            scheduler.complete_iteration(plan)

    def result(self) -> SimulationResult:
        """This replica's outcome in the single-engine result shape."""
        unfinished = (self.scheduler.prefilling + self.scheduler.decoding
                      + list(self.scheduler.queued) + list(self.pending))
        return SimulationResult(
            finished=list(self.finished),
            unfinished=unfinished,
            total_time_s=self.now,
            iterations=self.iterations,
            decode_steps=self.decode_steps,
            busy_time_s=self.busy,
            decode_time_s=self.decode_time,
            prefill_time_s=self.prefill_time,
        )


def _sorted_by_arrival(requests: list[Request]) -> list[Request]:
    """The arrival stream in time order, without copying when already
    sorted — repeat runs over one stream skip the re-sort entirely."""
    previous = None
    for request in requests:
        if previous is not None and request.arrival_time < previous:
            return sorted(requests, key=lambda r: r.arrival_time)
        previous = request.arrival_time
    return requests


class ClusterEngine:
    """N replicas of one endpoint behind a router, one simulated clock.

    ``run`` is reusable: every call builds fresh replicas and (for
    routers given by name) a fresh router instance, so two runs on one
    engine never share clocks, schedulers or session pins.  A router
    passed as an *instance* is reused as-is — the caller owns its state.
    """

    def __init__(
        self,
        device: DeviceModel,
        model: ModelConfig,
        limits: SchedulerLimits,
        num_devices: int = 1,
        replicas: int = 2,
        router: str | RouterPolicy = "round-robin",
        fast_forward: bool = True,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.device = device
        self.model = model
        self.limits = limits
        self.num_devices = num_devices
        self.replicas = replicas
        self.router = router
        self.fast_forward = fast_forward
        make_router(router)  # fail on unknown names at construction

    def run(self, requests: list[Request],
            max_sim_seconds: float = 600.0) -> ClusterResult:
        """Route the arrival stream, drain every replica, aggregate."""
        fleet = [
            ReplicaSim(i, ServingEngine(self.device, self.model,
                                        self.limits, self.num_devices,
                                        fast_forward=self.fast_forward))
            for i in range(self.replicas)
        ]
        router = make_router(self.router)
        for request in _sorted_by_arrival(requests):
            arrival = request.arrival_time
            for replica in fleet:
                replica.advance_to(arrival, max_sim_seconds)
            snapshots = [replica.snapshot() for replica in fleet]
            index = router.route(request, snapshots)
            if not 0 <= index < len(fleet):
                raise ValueError(
                    f"router returned replica index {index}, "
                    f"cluster has {len(fleet)} replicas")
            fleet[index].submit(request)
        for replica in fleet:
            replica.advance_to(float("inf"), max_sim_seconds)
        return aggregate_cluster([r.result() for r in fleet])
