"""Router policies: which replica a newly arrived request joins.

The cluster front-end sees every request before any replica does; a
*router policy* picks the replica from a per-replica load snapshot taken
at the request's arrival instant.  Policies follow the repo's registry
idiom (:class:`repro.registry.Registry`): a decorator registers a
zero-arg factory under a string name, and experiment JSON / the CLI
address it as ``DeploymentSpec.router``::

    from repro.cluster.router import register_router

    @register_router("my-policy")
    class MyRouter:
        def route(self, request, replicas):  # -> position in `replicas`
            ...

**The routing contract**: ``route`` returns a *position in the snapshot
sequence it was handed*, not a ``ReplicaSnapshot.replica_id``.  The two
coincide on a fixed fleet (ids are assigned 0..N-1 in position order),
but an autoscaled fleet retires replicas from the middle of the id
space, so the snapshot sequence is the only stable frame of reference a
policy has.  Policies that want to remember a replica across calls
(e.g. session affinity) must store the ``replica_id`` and translate it
back to a position through the snapshots they are given — ids are
durable, positions are per-call.

Built-ins:

* ``round-robin``       — cycle through replicas in arrival order;
* ``least-outstanding`` — join the shortest queue (JSQ): fewest requests
  submitted-but-unfinished, ties to the lowest replica id;
* ``session-affinity``  — pin each ``Request.session_id`` to the replica
  its first turn joined (KV-prefix locality); sessionless requests fall
  back to least-outstanding;
* ``slo-aware``         — short prompts (TTFT-critical) join the
  shortest queue by *request count*; long prompts join the replica with
  the least outstanding *token mass*, spreading heavy prefills by work
  rather than arrival order;
* ``hetero-aware``      — the mixed-fleet generalization of
  ``slo-aware``: queue state is divided by each replica's probed
  prefill/decode capability, so prefill-heavy prompts prefer
  prefill-fast groups (falls back to ``slo-aware`` behavior when no
  capability estimates are present).

The threshold routers also resolve parametric names — ``"slo-aware:N"``
/ ``"hetero-aware:N"`` set the short-prompt boundary to ``N`` input
tokens (see :func:`make_router`).

All built-ins are deterministic: the same request stream always produces
the same assignment, so cluster experiments replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from repro.registry import Registry
from repro.serving.request import Request


@dataclass(frozen=True, slots=True)
class ReplicaSnapshot:
    """One replica's load as the router sees it at an arrival instant.

    The capability fields (``chip``, ``group``, and the two rate
    estimates) describe *what kind* of replica this is, not its load;
    on a homogeneous fleet the engine leaves them at their defaults, so
    group-blind policies — everything except ``hetero-aware`` — behave
    bit-identically whether or not a fleet was spec'd as groups.  The
    rates are single-request microbenchmark estimates the engine probes
    once per group (tokens/s of a 512-token prefill, tokens/s of a
    batch-8 decode step), comparable across chips but not a throughput
    promise under load.
    """

    replica_id: int
    clock_s: float
    outstanding_requests: int   # submitted to the replica, not finished
    outstanding_tokens: int     # input+output tokens of those requests
    queued_requests: int        # waiting for admission on the replica
    active_requests: int        # prefilling + decoding right now
    assigned_requests: int      # everything ever routed here
    assigned_tokens: int
    chip: str = ""              # chip label of the replica's group
    group: int = 0              # position of the group in the fleet spec
    prefill_tokens_per_s: float = 0.0   # 0.0 = capability unknown
    decode_tokens_per_s: float = 0.0    # 0.0 = capability unknown


class RouterPolicy(Protocol):
    """A (possibly stateful) routing decision function."""

    def route(self, request: Request,
              replicas: Sequence[ReplicaSnapshot]) -> int:
        """Return the position in ``replicas`` the request joins."""
        ...


ROUTER_REGISTRY = Registry("router policy")


def register_router(name: str) -> Callable:
    """Decorator: register a zero-arg :class:`RouterPolicy` factory."""

    def _decorate(factory: Callable[[], RouterPolicy]):
        ROUTER_REGISTRY.register(name, factory)
        return factory

    return _decorate


def get_router(name: str) -> Callable[[], RouterPolicy]:
    """Look up a router factory by name."""
    return ROUTER_REGISTRY.get(name)


def make_router(router: str | RouterPolicy) -> RouterPolicy:
    """Resolve a name to a fresh policy instance; pass instances through.

    Threshold routers accept a parametric form ``"name:N"`` (e.g.
    ``"slo-aware:128"``) setting the short/long prompt boundary to
    ``N`` input tokens — the name stays a plain string, so it rides
    through experiment JSON and sharded-run pickling unchanged.
    """
    if isinstance(router, str):
        base, sep, raw = router.partition(":")
        if sep and base in _PARAMETRIC_ROUTERS:
            try:
                short = int(raw)
            except ValueError:
                raise ValueError(
                    f"router {router!r}: expected an integer token "
                    f"threshold after ':', got {raw!r}") from None
            return _PARAMETRIC_ROUTERS[base](short_input_tokens=short)
        return get_router(router)()
    return router


def list_routers() -> list[str]:
    """Registered router-policy names, sorted."""
    return ROUTER_REGISTRY.names()


def _least_outstanding(replicas: Sequence[ReplicaSnapshot]) -> int:
    # position, not replica_id: the two only coincide on a fixed fleet.
    # Ties still break on the (durable) id so the choice is deterministic
    # regardless of how the engine happens to order its snapshots.
    return min(range(len(replicas)),
               key=lambda i: (replicas[i].outstanding_requests,
                              replicas[i].replica_id))


def _least_outstanding_tokens(replicas: Sequence[ReplicaSnapshot]) -> int:
    return min(range(len(replicas)),
               key=lambda i: (replicas[i].outstanding_tokens,
                              replicas[i].replica_id))


@register_router("round-robin")
class RoundRobinRouter:
    """Cycle through replicas in arrival order (load-blind).

    The cursor cycles over *current snapshot positions*, keeping its
    phase across fleet-size changes and clamping back to 0 only when a
    shrink leaves it out of range.  Each size-epoch therefore
    round-robins cleanly — a bare ``counter % len(replicas)`` would
    skew after a resize (an unclamped counter lands on an arbitrary
    phase and can starve or double-feed positions for a full lap),
    while resetting to 0 on *every* size change would bias position 0
    whenever the routable count oscillates between arrivals (replicas
    finishing provisioning or starting to drain).  On a fixed fleet
    neither correction fires and the assignment is the classic
    0,1,...,N-1 cycle.
    """

    def __init__(self) -> None:
        self._next = 0

    def route(self, request: Request,
              replicas: Sequence[ReplicaSnapshot]) -> int:
        if self._next >= len(replicas):
            self._next = 0
        index = self._next
        self._next = (self._next + 1) % len(replicas)
        return index


@register_router("least-outstanding")
class LeastOutstandingRouter:
    """Join the shortest queue: fewest submitted-but-unfinished requests."""

    def route(self, request: Request,
              replicas: Sequence[ReplicaSnapshot]) -> int:
        return _least_outstanding(replicas)


@register_router("session-affinity")
class SessionAffinityRouter:
    """Sticky sessions: every turn of a conversation hits one replica.

    The first turn of a session joins the shortest queue; later turns
    follow it regardless of load, modeling the KV-prefix locality a real
    deployment buys with consistent hashing.  Requests without a
    ``session_id`` degrade to least-outstanding.

    Homes are remembered by ``replica_id`` — the durable name — and
    translated to a position through the snapshots of each call.  A
    session whose home replica was scaled away (its id no longer
    appears in the snapshot sequence) is re-pinned to the current
    shortest queue; checking id *membership* rather than ``home <
    len(replicas)`` matters because a post-scale-down fleet keeps
    non-contiguous ids (e.g. ``[0, 2, 3]``), where the old length guard
    would both evict live homes and follow stale ones.
    """

    def __init__(self) -> None:
        self._home: dict[int, int] = {}   # session_id -> replica_id

    def route(self, request: Request,
              replicas: Sequence[ReplicaSnapshot]) -> int:
        if request.session_id is None:
            return _least_outstanding(replicas)
        position_of = {snapshot.replica_id: position
                       for position, snapshot in enumerate(replicas)}
        home = self._home.get(request.session_id)
        position = position_of.get(home) if home is not None else None
        if position is None:
            position = _least_outstanding(replicas)
            self._home[request.session_id] = replicas[position].replica_id
        return position


@register_router("slo-aware")
class SloAwareRouter:
    """TTFT-aware split routing.

    Short prompts are latency-critical (their TTFT is dominated by
    queueing, not prefill), so they join the replica with the fewest
    outstanding *requests*.  Long prompts bring large prefill work, so
    they join the replica with the least outstanding *token mass* —
    balancing by work keeps a run of heavy prompts from stacking up on
    one replica while short interactive traffic queues behind them.
    """

    def __init__(self, short_input_tokens: int = 256) -> None:
        if short_input_tokens < 1:
            raise ValueError("short_input_tokens must be >= 1")
        self.short_input_tokens = short_input_tokens

    def route(self, request: Request,
              replicas: Sequence[ReplicaSnapshot]) -> int:
        if request.input_tokens <= self.short_input_tokens:
            return _least_outstanding(replicas)
        return _least_outstanding_tokens(replicas)


def _prefill_drain_s(snapshot: ReplicaSnapshot, input_tokens: int) -> float:
    """Estimated seconds to prefill the queue plus this request."""
    if snapshot.prefill_tokens_per_s <= 0.0:
        return float("inf")
    return (snapshot.outstanding_tokens + input_tokens) \
        / snapshot.prefill_tokens_per_s


def _fastest_prefill(replicas: Sequence[ReplicaSnapshot],
                     input_tokens: int) -> int:
    return min(range(len(replicas)),
               key=lambda i: (_prefill_drain_s(replicas[i], input_tokens),
                              replicas[i].replica_id))


def _fastest_decode(replicas: Sequence[ReplicaSnapshot]) -> int:
    def drain(snapshot: ReplicaSnapshot) -> float:
        if snapshot.decode_tokens_per_s <= 0.0:
            return float("inf")
        return (snapshot.outstanding_requests + 1) \
            / snapshot.decode_tokens_per_s

    return min(range(len(replicas)),
               key=lambda i: (drain(replicas[i]),
                              replicas[i].replica_id))


@register_router("hetero-aware")
class HeteroAwareRouter:
    """Capability-aware split routing for mixed-chip fleets.

    Generalizes ``slo-aware`` by weighting queue state with each
    replica's probed capability: long prompts join the replica whose
    *prefill-normalized* backlog (outstanding tokens plus this prompt,
    divided by the group's prefill rate) drains soonest — sending
    prefill-heavy traffic to prefill-fast groups — while short prompts
    join the replica whose request queue drains soonest by decode rate.

    On a fleet whose snapshots carry no capability estimates (the
    homogeneous single-group path leaves the rates at 0.0), both
    choices collapse to the ``slo-aware`` tie-breaks, so the policy is
    bit-identical to ``slo-aware`` there — capability awareness costs
    nothing until a fleet actually mixes groups.
    """

    def __init__(self, short_input_tokens: int = 256) -> None:
        if short_input_tokens < 1:
            raise ValueError("short_input_tokens must be >= 1")
        self.short_input_tokens = short_input_tokens

    def route(self, request: Request,
              replicas: Sequence[ReplicaSnapshot]) -> int:
        # "any rate known" not "all known": a fleet mixing probed and
        # unknown groups should still prefer the probed ones (unknown
        # drains compare as +inf) rather than ignore capability.
        known = any(snapshot.prefill_tokens_per_s > 0.0
                    for snapshot in replicas)
        if request.input_tokens <= self.short_input_tokens:
            if not known:
                return _least_outstanding(replicas)
            return _fastest_decode(replicas)
        if not known:
            return _least_outstanding_tokens(replicas)
        return _fastest_prefill(replicas, request.input_tokens)


# Routers whose registry name accepts a ":N" token-threshold suffix.
_PARAMETRIC_ROUTERS = {
    "slo-aware": SloAwareRouter,
    "hetero-aware": HeteroAwareRouter,
}
