"""Autoscaler policies: how many replicas the fleet *should* have.

The cluster engine evaluates an *autoscaler policy* on a fixed decision
interval of simulated time; the policy sees a
:class:`FleetObservation` — the routable replicas' load snapshots plus
what happened since the last decision — and returns the desired number
of launched (ready + provisioning) replicas.  The engine clamps the
answer to ``[min_replicas, max_replicas]`` and enacts the difference:
scale-ups launch replicas that pay a modeled provision latency (a warm
pool shortens it), scale-downs *drain* — a retiring replica stops
receiving routed requests but finishes every admitted one, so no
request is ever dropped.

Policies follow the repo's registry idiom
(:class:`repro.registry.Registry`), exactly like routers and chips::

    from repro.cluster.autoscaler import register_autoscaler

    @register_autoscaler("my-policy")
    class MyPolicy:
        def desired_replicas(self, observation):  # -> int
            ...

Built-ins:

* ``queue-depth``     — size the fleet so each ready replica carries
  about ``target_per_replica`` outstanding requests, with hysteresis on
  the way down (shrink only when the smaller fleet would still sit
  comfortably under target);
* ``slo-attainment``  — grow when the fraction of requests completed in
  the last interval that met the TTFT SLO falls below the target,
  shrink when attainment holds and the fleet is nearly idle — the
  SLO-feedback loop of Ray-Serve-style deployments.

All built-ins are deterministic: the same request stream and spec always
produce the identical scaling history, so autoscaled experiments replay
bit-identically.

Policies size the fleet as a *total*; on a heterogeneous fleet
(:class:`~repro.api.specs.FleetSpec`) the engine decides **which group**
each unit of the difference lands on — scale-ups go to the cheapest
group with ``max_count`` headroom, scale-downs retire from the most
expensive group above its ``min_count`` floor, and each group's
``provision_latency_s`` (when set) overrides the spec-wide one.  A
one-group fleet collapses to the legacy behavior exactly, so existing
policies and their scaling histories are untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.cluster.router import ReplicaSnapshot
from repro.registry import Registry


# --------------------------------------------------------------------- #
# What a policy sees                                                     #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class FleetObservation:
    """The fleet as an autoscaler policy sees it at one decision instant.

    ``replicas`` snapshots only the *routable* replicas (ready and not
    draining) — the capacity that is actually taking traffic.
    ``interval_*`` fields cover the window since the previous decision:
    how many requests were routed, and the TTFT of every request that
    *completed* in the window (completion-based because that is when the
    simulated control plane learns a request's latency).
    """

    clock_s: float
    interval_s: float
    replicas: tuple[ReplicaSnapshot, ...]
    provisioning: int                    # launched, not ready yet
    draining: int                        # retiring, finishing admitted work
    min_replicas: int
    max_replicas: int
    interval_arrivals: int
    interval_ttft_s: tuple[float, ...]

    @property
    def ready(self) -> int:
        return len(self.replicas)

    @property
    def launched(self) -> int:
        """Ready + provisioning: the count ``desired_replicas`` targets."""
        return len(self.replicas) + self.provisioning

    @property
    def outstanding_requests(self) -> int:
        """Routed-but-unfinished requests across the routable fleet."""
        return sum(s.outstanding_requests for s in self.replicas)

    @property
    def queue_depth_per_replica(self) -> float:
        """Mean outstanding requests per ready replica."""
        return self.outstanding_requests / max(self.ready, 1)

    def ready_per_group(self) -> dict[int, int]:
        """Ready replicas per fleet group (``{group_index: count}``).

        On a legacy homogeneous fleet every snapshot carries group 0,
        so the dict has one entry and policies that ignore it lose
        nothing.  Group-aware policies can weigh this against the
        groups' capabilities; which *group* a scale decision lands on
        stays the engine's call (cheapest group up, most expensive
        down — see :class:`repro.cluster.engine.EngineGroup`).
        """
        counts: dict[int, int] = {}
        for snapshot in self.replicas:
            counts[snapshot.group] = counts.get(snapshot.group, 0) + 1
        return counts


class AutoscalerPolicy(Protocol):
    """A (possibly stateful) fleet-sizing decision function."""

    def desired_replicas(self, observation: FleetObservation) -> int:
        """Return the desired launched (ready + provisioning) count."""
        ...


# --------------------------------------------------------------------- #
# Registry                                                               #
# --------------------------------------------------------------------- #

AUTOSCALER_REGISTRY = Registry("autoscaler policy")


def register_autoscaler(name: str) -> Callable:
    """Decorator: register a zero-arg :class:`AutoscalerPolicy` factory."""

    def _decorate(factory: Callable[[], AutoscalerPolicy]):
        AUTOSCALER_REGISTRY.register(name, factory)
        return factory

    return _decorate


def get_autoscaler(name: str) -> Callable[[], AutoscalerPolicy]:
    """Look up an autoscaler factory by name."""
    return AUTOSCALER_REGISTRY.get(name)


def make_autoscaler(policy: str | AutoscalerPolicy) -> AutoscalerPolicy:
    """Resolve a name to a fresh policy instance; pass instances through."""
    if isinstance(policy, str):
        return get_autoscaler(policy)()
    return policy


def list_autoscalers() -> list[str]:
    """Registered autoscaler-policy names, sorted."""
    return AUTOSCALER_REGISTRY.names()


# --------------------------------------------------------------------- #
# The serializable scaling spec                                          #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class AutoscaleSpec:
    """How a deployment's fleet grows and shrinks (all simulated).

    ``policy`` names a registry entry; its decision is evaluated every
    ``decision_interval_s`` of simulated time and clamped to
    ``[min_replicas, max_replicas]``.  A scale-up pays
    ``provision_latency_s`` before the new replica takes traffic, unless
    warm stock is available — the warm pool starts with
    ``warm_pool_size`` slots, each cutting the latency to
    ``warm_provision_s``, and every retired replica returns one slot
    (capped at the pool size).  Scale-downs always drain; no admitted
    request is ever dropped.
    """

    policy: str = "queue-depth"
    min_replicas: int = 1
    max_replicas: int = 8
    decision_interval_s: float = 2.0
    provision_latency_s: float = 10.0
    warm_pool_size: int = 0
    warm_provision_s: float = 1.0

    def __post_init__(self) -> None:
        for name in ("min_replicas", "max_replicas", "warm_pool_size"):
            value = getattr(self, name)
            # JSON happily yields 8.0 where 8 was meant; a float count
            # would crash deep in the engine's range() instead of here
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"{name} must be an integer, got {value!r}")
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.decision_interval_s <= 0:
            raise ValueError("decision_interval_s must be positive")
        if self.provision_latency_s < 0:
            raise ValueError("provision_latency_s must be non-negative")
        if self.warm_pool_size < 0:
            raise ValueError("warm_pool_size must be non-negative")
        if self.warm_provision_s < 0:
            raise ValueError("warm_provision_s must be non-negative")
        if self.warm_pool_size > 0 \
                and self.warm_provision_s > self.provision_latency_s:
            # only meaningful when warm starts can actually happen — a
            # disabled pool must not force users to tune its latency
            raise ValueError(
                "warm_provision_s must not exceed provision_latency_s "
                "(a warm start cannot be slower than a cold one)")

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "decision_interval_s": self.decision_interval_s,
            "provision_latency_s": self.provision_latency_s,
            "warm_pool_size": self.warm_pool_size,
            "warm_provision_s": self.warm_provision_s,
        }

    _FIELDS = frozenset(
        ("policy", "min_replicas", "max_replicas", "decision_interval_s",
         "provision_latency_s", "warm_pool_size", "warm_provision_s"))

    @classmethod
    def from_dict(cls, data: dict) -> "AutoscaleSpec":
        if not isinstance(data, dict):
            raise ValueError(
                f"autoscale section must be a JSON object, "
                f"got {type(data).__name__}")
        unknown = set(data) - cls._FIELDS
        if unknown:
            # same loud-typo contract as the api specs: a misspelled
            # knob silently running with defaults would fake a result
            raise ValueError(
                f"unknown autoscale field(s): "
                f"{', '.join(sorted(unknown))}; "
                f"allowed: {', '.join(sorted(cls._FIELDS))}")
        return cls(**{key: data[key] for key in cls._FIELDS if key in data})


# --------------------------------------------------------------------- #
# Built-in policies                                                      #
# --------------------------------------------------------------------- #

@register_autoscaler("queue-depth")
class QueueDepthAutoscaler:
    """Size the fleet to a target outstanding-requests-per-replica.

    Scale-up is immediate: as soon as the fleet would need more than
    ``target_per_replica`` outstanding requests per launched replica,
    the desired size jumps straight to ``ceil(outstanding / target)`` —
    no incremental stepping, because queue depth already measures *how
    much* capacity is missing.  Scale-down is hysteretic: the fleet only
    shrinks to the size that keeps every replica under
    ``target_per_replica * down_headroom`` (headroom < 1, i.e. a
    stricter bar), so a load level hovering near the threshold does not
    flap the fleet.
    """

    def __init__(self, target_per_replica: float = 4.0,
                 down_headroom: float = 0.5) -> None:
        if target_per_replica <= 0:
            raise ValueError("target_per_replica must be positive")
        if not 0 < down_headroom <= 1:
            raise ValueError("down_headroom must be in (0, 1]")
        self.target_per_replica = target_per_replica
        self.down_headroom = down_headroom

    def desired_replicas(self, observation: FleetObservation) -> int:
        outstanding = observation.outstanding_requests
        launched = observation.launched
        up = math.ceil(outstanding / self.target_per_replica)
        if up > launched:
            return up
        down = math.ceil(outstanding / (self.target_per_replica
                                        * self.down_headroom))
        return min(down, launched)


@register_autoscaler("slo-attainment")
class SloAttainmentAutoscaler:
    """Grow on missed TTFT SLOs, shrink when attainment holds while idle.

    Attainment is the fraction of requests completed in the last
    interval whose TTFT met ``slo_ttft_s``.  Below
    ``target_attainment`` the fleet grows by ``step_up``; while
    attainment holds *and* the fleet could absorb its outstanding work
    with one replica fewer (at most ``drain_occupancy`` outstanding per
    remaining replica), it shrinks by one.  With no completions to
    judge, a queue deeper than two per launched replica counts as an SLO
    risk and triggers the same ``step_up`` — that is what a burst onset
    looks like before any request finishes — while a (nearly) empty
    fleet shrinks by one, so an idle fleet still converges to the
    minimum instead of idling at its burst peak.
    """

    def __init__(self, slo_ttft_s: float = 0.5,
                 target_attainment: float = 0.95,
                 step_up: int = 2,
                 drain_occupancy: float = 1.0) -> None:
        if slo_ttft_s <= 0:
            raise ValueError("slo_ttft_s must be positive")
        if not 0 < target_attainment <= 1:
            raise ValueError("target_attainment must be in (0, 1]")
        if step_up < 1:
            raise ValueError("step_up must be >= 1")
        if drain_occupancy < 0:
            raise ValueError("drain_occupancy must be non-negative")
        self.slo_ttft_s = slo_ttft_s
        self.target_attainment = target_attainment
        self.step_up = step_up
        self.drain_occupancy = drain_occupancy

    def desired_replicas(self, observation: FleetObservation) -> int:
        launched = observation.launched
        ttfts = observation.interval_ttft_s
        if not ttfts:
            if observation.outstanding_requests > 2 * launched:
                return launched + self.step_up
            if observation.outstanding_requests \
                    <= (launched - 1) * self.drain_occupancy:
                # nothing completed because (almost) nothing is here:
                # an idle fleet must still converge to the minimum
                return launched - 1
            return launched
        attained = sum(1 for t in ttfts if t <= self.slo_ttft_s) \
            / len(ttfts)
        if attained < self.target_attainment:
            return launched + self.step_up
        if observation.outstanding_requests \
                <= (launched - 1) * self.drain_occupancy:
            return launched - 1
        return launched
