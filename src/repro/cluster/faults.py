"""Deterministic fault injection for cluster runs.

A :class:`FaultSpec` describes *what goes wrong* with a fleet — replica
crashes, slowdown (straggler) windows and transient stalls — either as
seeded MTBF/MTTR renewal processes or as an explicit event list for
regression tests.  Everything is drawn from per-replica
``default_rng((seed, replica_id))`` substreams, so the schedule of one
replica never depends on how many others exist or when they launch:
the same spec + seed always reproduces the identical fault history,
retry sequence and QoS.

Semantics, matched to what the serving layer can honestly model:

* **crash** — the replica's in-flight work (queued, prefilling,
  decoding, routed-but-pending) is lost; its scheduler and per-replica
  prefix cache restart cold.  In a fixed fleet the machine restarts
  after ``restart_delay_s``; in an autoscaled fleet it retires (dead
  hardware is not a warm machine) and the autoscaler replaces the lost
  capacity through the normal provisioning/warm-pool lifecycle.  Lost
  requests are requeued with retry accounting under ``max_retries`` and
  the optional ``request_timeout_s`` deadline, after which they are
  recorded as *failed* — a terminal state, never silently dropped.
* **slowdown** — a straggler window: every iteration's step time on the
  replica is multiplied by ``slowdown_factor`` for
  ``slowdown_duration_s``; work keeps flowing, just slower.
* **stall** — the replica stops advancing for ``stall_duration_s``
  (a GC pause / network partition), then resumes where it left off.
  Stalled replicas stay routable — a router cannot see a stall that has
  not happened yet, only the queue it causes.

The cluster engine consults the spec only on its fault-enabled run
paths; ``faults=None`` (or ``enabled=False``) enters zero new code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.serving.request import Request

_EVENT_KINDS = ("crash", "slowdown", "stall")


@dataclass(frozen=True)
class FaultEvent:
    """One explicitly scheduled fault, for regression-style specs.

    ``duration_s`` is the window length for ``slowdown``/``stall`` and
    ignored for ``crash`` (downtime comes from the spec's
    ``restart_delay_s``); ``factor`` only applies to ``slowdown``.
    Events naming replica ids that never exist in the run simply never
    fire — a spec can be reused across fleet sizes.
    """

    kind: str
    replica_id: int
    time_s: float
    duration_s: float = 0.0
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in _EVENT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"supported: {', '.join(_EVENT_KINDS)}")
        if not isinstance(self.replica_id, int) \
                or isinstance(self.replica_id, bool):
            raise ValueError(
                f"replica_id must be an integer, got {self.replica_id!r}")
        if self.replica_id < 0:
            raise ValueError("replica_id must be non-negative")
        if self.time_s < 0:
            raise ValueError("fault time_s must be non-negative")
        if self.kind in ("slowdown", "stall") and self.duration_s <= 0:
            raise ValueError(
                f"a {self.kind} window needs duration_s > 0")
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if self.factor < 1:
            raise ValueError(
                "slowdown factor must be >= 1 (a straggler is slower, "
                "not faster)")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "replica_id": self.replica_id,
            "time_s": self.time_s,
            "duration_s": self.duration_s,
            "factor": self.factor,
        }

    _FIELDS = frozenset(
        ("kind", "replica_id", "time_s", "duration_s", "factor"))

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultEvent":
        if not isinstance(data, dict):
            raise ValueError(
                f"fault event must be a JSON object, "
                f"got {type(data).__name__}")
        unknown = set(data) - cls._FIELDS
        if unknown:
            raise ValueError(
                f"unknown fault event field(s): "
                f"{', '.join(sorted(unknown))}; "
                f"allowed: {', '.join(sorted(cls._FIELDS))}")
        return cls(**{key: data[key] for key in cls._FIELDS if key in data})


@dataclass(frozen=True)
class FaultSpec:
    """What goes wrong, when, and what the serving layer owes each request.

    Rates are mean-time-between-failures of independent per-replica
    exponential renewal processes (``None`` disables that fault class);
    ``events`` adds explicitly scheduled faults on top — the regression
    escape hatch.  ``max_retries`` is the per-request retry budget after
    crashes and ``request_timeout_s`` the wall-clock deadline (measured
    from the original arrival) after which a request is recorded as
    failed instead of retried.  ``slo_ttft_s`` defines goodput: finished
    requests whose TTFT met the SLO, per second of fleet wall time.
    """

    enabled: bool = True
    seed: int = 0
    crash_mtbf_s: float | None = None
    restart_delay_s: float = 10.0
    slowdown_mtbf_s: float | None = None
    slowdown_factor: float = 2.0
    slowdown_duration_s: float = 5.0
    stall_mtbf_s: float | None = None
    stall_duration_s: float = 2.0
    max_retries: int = 2
    request_timeout_s: float | None = None
    slo_ttft_s: float = 1.0
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise ValueError(
                "seed must be non-negative (it feeds per-replica rng "
                "substreams)")
        for name in ("crash_mtbf_s", "slowdown_mtbf_s", "stall_mtbf_s",
                     "request_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None)")
        if self.restart_delay_s < 0:
            raise ValueError("restart_delay_s must be non-negative")
        if self.slowdown_factor < 1:
            raise ValueError("slowdown_factor must be >= 1")
        if self.slowdown_duration_s <= 0:
            raise ValueError("slowdown_duration_s must be positive")
        if self.stall_duration_s <= 0:
            raise ValueError("stall_duration_s must be positive")
        if not isinstance(self.max_retries, int) \
                or isinstance(self.max_retries, bool):
            raise ValueError(
                f"max_retries must be an integer, got {self.max_retries!r}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.slo_ttft_s <= 0:
            raise ValueError("slo_ttft_s must be positive")
        events = self.events
        if isinstance(events, list):
            events = tuple(events)
            object.__setattr__(self, "events", events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise ValueError(
                    f"events must hold FaultEvent entries, got {event!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "seed": self.seed,
            "crash_mtbf_s": self.crash_mtbf_s,
            "restart_delay_s": self.restart_delay_s,
            "slowdown_mtbf_s": self.slowdown_mtbf_s,
            "slowdown_factor": self.slowdown_factor,
            "slowdown_duration_s": self.slowdown_duration_s,
            "stall_mtbf_s": self.stall_mtbf_s,
            "stall_duration_s": self.stall_duration_s,
            "max_retries": self.max_retries,
            "request_timeout_s": self.request_timeout_s,
            "slo_ttft_s": self.slo_ttft_s,
            "events": [event.to_dict() for event in self.events],
        }

    _FIELDS = frozenset(
        ("enabled", "seed", "crash_mtbf_s", "restart_delay_s",
         "slowdown_mtbf_s", "slowdown_factor", "slowdown_duration_s",
         "stall_mtbf_s", "stall_duration_s", "max_retries",
         "request_timeout_s", "slo_ttft_s", "events"))

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise ValueError(
                f"faults section must be a JSON object, "
                f"got {type(data).__name__}")
        unknown = set(data) - cls._FIELDS
        if unknown:
            # same loud-typo contract as the api specs: a misspelled
            # knob silently running with defaults would fake a result
            raise ValueError(
                f"unknown faults field(s): {', '.join(sorted(unknown))}; "
                f"allowed: {', '.join(sorted(cls._FIELDS))}")
        kwargs = {key: data[key] for key in cls._FIELDS if key in data}
        events = kwargs.get("events")
        if events is not None:
            if not isinstance(events, (list, tuple)):
                raise ValueError(
                    f"faults events must be a JSON array, "
                    f"got {type(events).__name__}")
            kwargs["events"] = tuple(
                event if isinstance(event, FaultEvent)
                else FaultEvent.from_dict(event)
                for event in events)
        return cls(**kwargs)


# --------------------------------------------------------------------- #
# The realized schedule                                                  #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class _Window:
    """One degraded interval ``[start_s, end_s)`` on one replica."""

    start_s: float
    end_s: float
    kind: str            # "slowdown" | "stall"
    factor: float


class ReplicaFaultPlan:
    """The realized fault schedule of one replica.

    Slowdown and stall windows are drawn up-front as renewal processes
    from ``start`` to the horizon; crash times merge the spec's explicit
    events with lazy MTBF draws (the next drawn crash is sampled after
    each restart — a machine that is down cannot crash again).  All
    draws come from this replica's own rng substream, so the schedule is
    a pure function of (spec, seed, replica id, launch time).
    """

    def __init__(self, spec: FaultSpec, replica_id: int, start: float,
                 horizon: float) -> None:
        self.spec = spec
        self.replica_id = replica_id
        rng = np.random.default_rng((spec.seed, replica_id))
        self._rng = rng
        windows: list[_Window] = []
        self._draw_windows(windows, rng, start, horizon,
                           spec.slowdown_mtbf_s, spec.slowdown_duration_s,
                           "slowdown", spec.slowdown_factor)
        self._draw_windows(windows, rng, start, horizon,
                           spec.stall_mtbf_s, spec.stall_duration_s,
                           "stall", 1.0)
        explicit_crashes: list[float] = []
        for event in spec.events:
            if event.replica_id != replica_id:
                continue
            if event.kind == "crash":
                explicit_crashes.append(event.time_s)
            else:
                windows.append(_Window(
                    start_s=event.time_s,
                    end_s=min(event.time_s + event.duration_s, horizon),
                    kind=event.kind,
                    factor=event.factor if event.kind == "slowdown"
                    else 1.0))
        windows.sort(key=lambda w: (w.start_s, w.end_s, w.kind))
        self.windows: tuple[_Window, ...] = tuple(windows)
        self._explicit_crashes = sorted(explicit_crashes)
        self._drawn_crash: float | None = None
        if spec.crash_mtbf_s is not None:
            self._drawn_crash = start + float(
                rng.exponential(spec.crash_mtbf_s))
        self.crash_at: float | None = self._next_crash()

    @staticmethod
    def _draw_windows(windows: list[_Window], rng, start: float,
                      horizon: float, mtbf_s: float | None,
                      duration_s: float, kind: str,
                      factor: float) -> None:
        if mtbf_s is None:
            return
        t = start
        while True:
            t += float(rng.exponential(mtbf_s))
            if t >= horizon:
                return
            windows.append(_Window(
                start_s=t, end_s=min(t + duration_s, horizon),
                kind=kind, factor=factor))
            t += duration_s  # the next gap starts after recovery

    def _next_crash(self) -> float | None:
        candidates = []
        if self._explicit_crashes:
            candidates.append(self._explicit_crashes[0])
        if self._drawn_crash is not None:
            candidates.append(self._drawn_crash)
        return min(candidates) if candidates else None

    def note_crash(self, restart_at: float) -> None:
        """Advance the crash schedule past a crash that just fired.

        Crashes scheduled while the machine is still down are skipped;
        the next drawn crash is sampled from the restart instant.  An
        infinite ``restart_at`` means the replica is gone for good
        (autoscaled fleets retire crashed replicas) and clears the
        schedule.
        """
        while self._explicit_crashes \
                and self._explicit_crashes[0] <= restart_at:
            self._explicit_crashes.pop(0)
        if math.isinf(restart_at):
            self._explicit_crashes = []
            self._drawn_crash = None
        elif self.spec.crash_mtbf_s is not None:
            self._drawn_crash = restart_at + float(
                self._rng.exponential(self.spec.crash_mtbf_s))
        else:
            self._drawn_crash = None
        self.crash_at = self._next_crash()

    def window_at(self, t: float) -> _Window | None:
        """The degraded window covering ``t`` (stall wins on overlap —
        a stopped replica cannot be merely slow)."""
        active = None
        for window in self.windows:
            if window.start_s <= t < window.end_s:
                if window.kind == "stall":
                    return window
                if active is None:
                    active = window
            elif window.start_s > t:
                break
        return active

    def next_boundary(self, t: float, limit: float) -> float:
        """The next window edge after ``t``, clamped to ``limit`` —
        the farthest the replica may advance under one regime."""
        best = limit
        for window in self.windows:
            if window.start_s >= best:
                break
            if t < window.start_s:
                best = window.start_s
            elif t < window.end_s < best:
                best = window.end_s
        return best


# --------------------------------------------------------------------- #
# Run-level accounting                                                   #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class FaultRecord:
    """One fault that actually affected the run."""

    time_s: float
    kind: str              # "crash" | "slowdown" | "stall"
    replica_id: int
    duration_s: float      # downtime (crash/stall) or window length
    factor: float          # slowdown multiplier (1.0 otherwise)
    lost_requests: int     # in-flight requests a crash wiped


@dataclass(frozen=True)
class FaultTrace:
    """What the injected faults did to one cluster run.

    ``records`` is the chronological event log; ``failed`` holds every
    request that ended in the failed terminal state (retry budget
    exhausted, deadline passed, or no capacity left to retry on) —
    admitted work is either in the fleet's finished/unfinished results
    or here, never silently gone.  ``downtime_by_replica`` sums crash
    and stall downtime per replica id.
    """

    records: tuple[FaultRecord, ...]
    retries: int
    failed: tuple["Request", ...]
    downtime_by_replica: tuple[tuple[int, float], ...]

    @property
    def crashes(self) -> int:
        return sum(1 for r in self.records if r.kind == "crash")

    @property
    def slowdowns(self) -> int:
        return sum(1 for r in self.records if r.kind == "slowdown")

    @property
    def stalls(self) -> int:
        return sum(1 for r in self.records if r.kind == "stall")

    @property
    def failed_count(self) -> int:
        return len(self.failed)

    @property
    def lost_requests(self) -> int:
        """In-flight requests wiped by crashes (before retry/fail)."""
        return sum(r.lost_requests for r in self.records
                   if r.kind == "crash")


class FaultInjector:
    """Fault bookkeeping for one cluster run.

    Owns the per-replica plans (one rng substream each), the crash log,
    and the retry/failure counters; the engine's fault-enabled run paths
    drive it and collect the final :class:`FaultTrace`.
    """

    def __init__(self, spec: FaultSpec, horizon: float) -> None:
        self.spec = spec
        self.horizon = horizon
        self.plans: list[ReplicaFaultPlan] = []
        self.crash_records: list[FaultRecord] = []
        self.retries = 0
        self.failed: list["Request"] = []

    def plan_for(self, replica_id: int, start: float) -> ReplicaFaultPlan:
        plan = ReplicaFaultPlan(self.spec, replica_id, start, self.horizon)
        self.plans.append(plan)
        return plan

    def record_crash(self, replica_id: int, when: float,
                     lost_requests: int, downtime_s: float) -> None:
        self.crash_records.append(FaultRecord(
            time_s=when, kind="crash", replica_id=replica_id,
            duration_s=downtime_s, factor=1.0,
            lost_requests=lost_requests))

    def fail(self, request: "Request", when: float) -> None:
        request.mark_failed(when)
        self.failed.append(request)

    def trace(self, wall: float) -> FaultTrace:
        """The final event log, with every window that started within
        the run's wall clock folded in chronologically."""
        records = list(self.crash_records)
        for plan in self.plans:
            for window in plan.windows:
                if window.start_s <= wall:
                    records.append(FaultRecord(
                        time_s=window.start_s, kind=window.kind,
                        replica_id=plan.replica_id,
                        duration_s=window.end_s - window.start_s,
                        factor=window.factor, lost_requests=0))
        records.sort(key=lambda r: (r.time_s, r.replica_id, r.kind))
        downtime: dict[int, float] = {}
        for record in records:
            if record.kind in ("crash", "stall"):
                downtime[record.replica_id] = downtime.get(
                    record.replica_id, 0.0) + record.duration_s
        return FaultTrace(
            records=tuple(records),
            retries=self.retries,
            failed=tuple(self.failed),
            downtime_by_replica=tuple(sorted(downtime.items())),
        )
