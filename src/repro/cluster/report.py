"""Cluster-level aggregation: merge per-replica results into fleet QoS.

A cluster run produces one :class:`~repro.serving.engine.SimulationResult`
per replica; users care about the *fleet*: the QoS every request saw
(regardless of which replica served it), the aggregate throughput, and
how evenly the router spread the load.  This module merges the replica
results into a single ``SimulationResult`` (wall time = the slowest
replica, counters summed), computes the cluster :class:`QoSReport`, and
derives :class:`LoadImbalanceStats` — the Fig. 13/16-style scalability
numbers extended from one device group to a fleet.

Autoscaled runs additionally record an :class:`AutoscaleTrace`: the
scale-event log (:class:`ScaleEvent`), the per-decision fleet-size /
utilization timeline (:class:`FleetSample`) and the replica-seconds the
fleet consumed — the cost metric an elastic fleet is supposed to beat a
fixed max-size fleet on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.cluster.faults import FaultTrace
from repro.serving.engine import SimulationResult
from repro.serving.prefix_cache import PrefixCacheStats
from repro.serving.qos import QoSReport, compute_qos


@dataclass(frozen=True)
class LoadImbalanceStats:
    """How evenly the router spread work across replicas.

    On a heterogeneous fleet the per-group tuples break the same
    assigned-work totals out by replica group (index = group position
    in the fleet spec); they stay empty on homogeneous runs, whose
    reports are byte-identical to the pre-group engine.
    """

    requests_per_replica: tuple[int, ...]     # assigned (finished + not)
    tokens_per_replica: tuple[int, ...]       # assigned input+output tokens
    busy_fraction_per_replica: tuple[float, ...]
    request_imbalance: float                  # max/mean assigned requests
    token_imbalance: float                    # max/mean assigned tokens
    token_cv: float                           # coeff. of variation of tokens
    requests_per_group: tuple[int, ...] = ()
    tokens_per_group: tuple[int, ...] = ()

    @property
    def replica_count(self) -> int:
        return len(self.requests_per_replica)


def _max_over_mean(values: Sequence[float]) -> float:
    mean = sum(values) / len(values)
    if mean <= 0:
        return 1.0
    return max(values) / mean


def _coefficient_of_variation(values: Sequence[float]) -> float:
    mean = sum(values) / len(values)
    if mean <= 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / mean


def load_imbalance(replica_results: Sequence[SimulationResult],
                   group_ids: Sequence[int] | None = None
                   ) -> LoadImbalanceStats:
    """Per-replica load spread of one cluster run.

    ``group_ids`` (aligned with ``replica_results``) additionally folds
    the per-replica totals into per-group tuples — the heterogeneous
    fleets' view of where the router actually sent the work.
    """
    if not replica_results:
        raise ValueError("need at least one replica result")
    # one common denominator — the fleet wall clock — so replica busy
    # fractions are comparable (an early-idle replica's own clock stops
    # at its last event and would overstate its utilization)
    wall = max(r.total_time_s for r in replica_results)
    requests, tokens, busy = [], [], []
    for result in replica_results:
        assigned = result.finished + result.unfinished
        requests.append(len(assigned))
        tokens.append(sum(r.input_tokens + r.output_tokens
                          for r in assigned))
        busy.append(result.busy_time_s / wall if wall > 0 else 0.0)
    requests_per_group: tuple[int, ...] = ()
    tokens_per_group: tuple[int, ...] = ()
    if group_ids is not None:
        if len(group_ids) != len(replica_results):
            raise ValueError(
                f"group_ids lists {len(group_ids)} entries for "
                f"{len(replica_results)} replica results")
        span = max(group_ids) + 1
        group_requests = [0] * span
        group_tokens = [0] * span
        for group, count, mass in zip(group_ids, requests, tokens):
            group_requests[group] += count
            group_tokens[group] += mass
        requests_per_group = tuple(group_requests)
        tokens_per_group = tuple(group_tokens)
    return LoadImbalanceStats(
        requests_per_replica=tuple(requests),
        tokens_per_replica=tuple(tokens),
        busy_fraction_per_replica=tuple(busy),
        request_imbalance=_max_over_mean(requests),
        token_imbalance=_max_over_mean(tokens),
        token_cv=_coefficient_of_variation(tokens),
        requests_per_group=requests_per_group,
        tokens_per_group=tokens_per_group,
    )


def merge_results(replica_results: Sequence[SimulationResult]
                  ) -> SimulationResult:
    """One fleet-level ``SimulationResult``.

    Wall time is the slowest replica's clock (replicas run in parallel);
    iteration counters and busy/decode/prefill seconds are summed, so
    fleet busy time can exceed wall time by up to the replica count.
    Per-replica prefix-cache stats (when the feature ran) sum into one
    fleet view — the hit rate the whole deployment delivered.
    """
    if not replica_results:
        raise ValueError("need at least one replica result")
    cache_stats = [r.prefix_cache for r in replica_results
                   if r.prefix_cache is not None]
    return SimulationResult(
        finished=[r for result in replica_results for r in result.finished],
        unfinished=[r for result in replica_results
                    for r in result.unfinished],
        total_time_s=max(r.total_time_s for r in replica_results),
        iterations=sum(r.iterations for r in replica_results),
        decode_steps=sum(r.decode_steps for r in replica_results),
        busy_time_s=sum(r.busy_time_s for r in replica_results),
        decode_time_s=sum(r.decode_time_s for r in replica_results),
        prefill_time_s=sum(r.prefill_time_s for r in replica_results),
        prefix_cache=PrefixCacheStats.merged(cache_stats)
        if cache_stats else None,
    )


@dataclass(frozen=True)
class GroupBreakdown:
    """One replica group's share of a heterogeneous cluster run.

    ``qos`` is the group's own latency/throughput report over the fleet
    wall clock (``None`` when the group finished nothing — an unused
    group has no latencies to misreport).  ``replica_seconds`` is the
    capacity the group consumed and ``cost`` prices it at the group's
    ``cost_per_replica_s`` — the mixed-fleet comparison currency.
    """

    group: int                   # position of the group in the fleet spec
    name: str                    # group label (defaults to the chip name)
    chip: str
    replica_count: int           # replicas of this group that served
    finished_requests: int
    generated_tokens: int
    replica_seconds: float
    cost_per_replica_s: float
    cost: float                  # replica_seconds * cost_per_replica_s
    qos: QoSReport | None

    @property
    def requests_per_replica_second(self) -> float:
        """Finished requests per replica-second — group efficiency."""
        if self.replica_seconds <= 0:
            return 0.0
        return self.finished_requests / self.replica_seconds


def group_breakdowns(replica_results: Sequence[SimulationResult],
                     group_ids: Sequence[int],
                     meta: Sequence[tuple[str, str, float]],
                     replica_seconds: Sequence[float]
                     ) -> tuple[GroupBreakdown, ...]:
    """Fold per-replica results into per-group shares.

    ``group_ids`` aligns with ``replica_results``; ``meta`` is one
    ``(name, chip, cost_per_replica_s)`` per group position and
    ``replica_seconds`` the capacity each group consumed (the caller
    knows whether that is wall-clock * count or an autoscale
    integration).  Per-group QoS uses the *fleet* wall clock, so group
    throughputs are comparable and sum to the fleet's.
    """
    if len(group_ids) != len(replica_results):
        raise ValueError(
            f"group_ids lists {len(group_ids)} entries for "
            f"{len(replica_results)} replica results")
    if len(meta) != len(replica_seconds):
        raise ValueError(
            f"meta lists {len(meta)} groups but replica_seconds "
            f"lists {len(replica_seconds)}")
    wall = max((r.total_time_s for r in replica_results), default=0.0)
    breakdowns = []
    for index, (name, chip, cost_rate) in enumerate(meta):
        results = [result for group, result
                   in zip(group_ids, replica_results) if group == index]
        finished = [r for result in results for r in result.finished]
        seconds = replica_seconds[index]
        breakdowns.append(GroupBreakdown(
            group=index,
            name=name,
            chip=chip,
            replica_count=len(results),
            finished_requests=len(finished),
            generated_tokens=sum(r.generated_tokens for r in finished),
            replica_seconds=seconds,
            cost_per_replica_s=cost_rate,
            cost=seconds * cost_rate,
            qos=compute_qos(finished, wall)
            if finished and wall > 0 else None,
        ))
    return tuple(breakdowns)


@dataclass(frozen=True)
class ScaleEvent:
    """One enacted autoscaler decision."""

    clock_s: float
    kind: str                    # "up" | "down"
    delta: int                   # signed replica-count change
    replicas_after: int          # launched (ready + provisioning) after
    warm_used: int               # scale-up launches served from the pool
    replica_ids: tuple[int, ...]  # launched / drained / cancelled ids


@dataclass(frozen=True)
class FleetSample:
    """The fleet at one decision instant of an autoscaled run.

    Composition (``ready`` / ``provisioning`` / ``draining``) is the
    state *after* the decision was enacted; ``outstanding_requests`` is
    the load the policy based the decision on, and ``utilization`` is
    the fleet busy time over the replica-seconds alive in the elapsed
    interval — the per-interval efficiency an autoscaler exists to keep
    high.
    """

    clock_s: float
    ready: int
    provisioning: int
    draining: int
    outstanding_requests: int
    utilization: float


@dataclass(frozen=True)
class AutoscaleTrace:
    """Scaling history of one autoscaled cluster run.

    ``replica_seconds`` integrates fleet size over the run's wall clock
    (provisioning time included — capacity is paid for from launch, and
    a drained replica stops costing the moment its last admitted request
    finished).  A fixed fleet of N over wall time T costs exactly
    ``N * T``; the committed autoscale bench compares the two.
    """

    events: tuple[ScaleEvent, ...]
    timeline: tuple[FleetSample, ...]
    replica_seconds: float
    launched: int                # replicas ever created (initial + ups)
    retired: int                 # drained or cancelled before the end
    peak_replicas: int           # max launched count over the timeline
    warm_launches: int
    cold_launches: int

    @property
    def scale_ups(self) -> int:
        return sum(1 for e in self.events if e.kind == "up")

    @property
    def scale_downs(self) -> int:
        return sum(1 for e in self.events if e.kind == "down")


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one cluster simulation.

    ``autoscale`` is ``None`` for fixed fleets; autoscaled runs carry
    the full scaling history.  ``faults`` is ``None`` for fault-free
    runs; fault-injected runs carry the event log, retry counters and
    the failed (abandoned) requests.  ``groups`` is ``None`` on
    homogeneous fleets; heterogeneous runs carry one
    :class:`GroupBreakdown` per replica group.
    """

    replica_results: tuple[SimulationResult, ...]
    merged: SimulationResult
    load: LoadImbalanceStats
    autoscale: AutoscaleTrace | None = None
    faults: FaultTrace | None = None
    groups: tuple[GroupBreakdown, ...] | None = None

    @property
    def replica_count(self) -> int:
        return len(self.replica_results)

    def qos(self) -> QoSReport:
        """Fleet QoS over every finished request, against the fleet wall
        time — the cluster analogue of the single-endpoint report.
        Fault-injected runs also carry the failed-request count."""
        failed = len(self.faults.failed) if self.faults is not None else 0
        return compute_qos(self.merged.finished, self.merged.total_time_s,
                           failed_requests=failed)


def aggregate_cluster(replica_results: Sequence[SimulationResult],
                      autoscale: AutoscaleTrace | None = None,
                      faults: FaultTrace | None = None,
                      groups: tuple[GroupBreakdown, ...] | None = None,
                      group_ids: Sequence[int] | None = None
                      ) -> ClusterResult:
    """Bundle per-replica results with their merged view and load stats.

    ``groups`` / ``group_ids`` (heterogeneous runs only) attach the
    per-group breakdowns and per-group load totals; the homogeneous
    call shape — and its result — is unchanged.
    """
    return ClusterResult(
        replica_results=tuple(replica_results),
        merged=merge_results(replica_results),
        load=load_imbalance(replica_results, group_ids=group_ids),
        autoscale=autoscale,
        faults=faults,
        groups=groups,
    )
