"""Ablation — weight/KV quantization (fp16 vs fp8).

Decode on the ADOR design is memory-stream-bound, so halving the element
size should roughly double TBT at high batch and raise serving capacity.
This exercises the analytical models' dtype plumbing end to end.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.scheduling import AdorDeviceModel
from repro.hardware.presets import ador_table3
from repro.models.zoo import get_model

BATCHES = (16, 64, 150)
SEQ = 1024


def _compare():
    device = AdorDeviceModel(ador_table3())
    fp16 = get_model("llama3-8b")
    fp8 = fp16.with_dtype(1)
    rows = []
    for batch in BATCHES:
        t16 = device.decode_step_time(fp16, batch, SEQ).seconds
        t8 = device.decode_step_time(fp8, batch, SEQ).seconds
        rows.append([batch, 1.0 / t16, 1.0 / t8, t16 / t8])
    prefill16 = device.prefill_time(fp16, 1, SEQ).seconds
    prefill8 = device.prefill_time(fp8, 1, SEQ).seconds
    return rows, prefill16, prefill8


def test_ablation_quantization(benchmark, report):
    rows, prefill16, prefill8 = run_once(benchmark, _compare)
    report("ablation_quantization", format_table(
        ["batch", "fp16 TBT (tok/s)", "fp8 TBT (tok/s)", "speedup (x)"],
        rows,
        title="Ablation: fp8 weights+KV on the ADOR design, LLaMA3-8B",
    ) + (f"\n\nprefill: fp16 {prefill16 * 1e3:.1f} ms vs "
         f"fp8 {prefill8 * 1e3:.1f} ms (compute-bound, so little change)"))
    # decode is stream-bound at every batch: fp8 gains approach 2x
    speedups = [row[3] for row in rows]
    assert all(1.5 < s <= 2.1 for s in speedups), speedups
    assert max(speedups) > 1.7
    # prefill is compute-bound: fp8 changes it far less
    assert prefill8 > 0.8 * prefill16
