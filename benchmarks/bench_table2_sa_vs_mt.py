"""Table II — key features of systolic array vs. MAC tree, quantified.

The paper's table is qualitative (throughput- vs. latency-oriented);
this bench backs each row with numbers at an equal MAC budget:

* latency of a latency-shaped GEMV — the MAC tree wins outright;
* *area-normalized* GEMM throughput — the systolic array wins because
  MT MACs are ~7.6x less dense in silicon (the calibrated area model),
  which is exactly the paper's "lower compute unit density ... economic
  inefficiency in terms of throughput" argument.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.hardware.area import AreaModel
from repro.hardware.components import MacTree, SystolicArray
from repro.perf.mac_tree import MacTreeTimingModel
from repro.perf.systolic import SystolicTimingModel

FREQ = 1.5e9
BW = 2e12
MACS = 4096  # equal budget: one 64x64 SA vs 16 trees of 16x16


def _compare():
    area = AreaModel()
    sa = SystolicTimingModel(SystolicArray(64, 64), cores=1,
                             frequency_hz=FREQ)
    mt = MacTreeTimingModel(MacTree(16, 16), cores=16, frequency_hz=FREQ,
                            dram_bandwidth=BW)
    sa_area = MACS * area.sa_mac_mm2
    mt_area = MACS * area.mt_mac_mm2

    flops_gemm = 2.0 * 4096 ** 3
    flops_gemv = 2.0 * 4096 ** 2

    sa_gemm = sa.gemm(4096, 4096, 4096, dram_bandwidth=BW)
    sa_gemv = sa.gemm(1, 4096, 4096, dram_bandwidth=BW,
                      double_buffered=False)
    mt_gemm = mt.gemv(batch=4096, k=4096, n=4096)
    mt_gemv = mt.gemv(batch=1, k=4096, n=4096)

    sa_gemm_per_area = flops_gemm / sa_gemm.seconds / sa_area / 1e9
    mt_gemm_per_area = flops_gemm / mt_gemm.seconds / mt_area / 1e9

    rows = [
        ["target operation", "matrix multiplication", "dot product"],
        ["silicon per MAC (um^2)", area.sa_mac_mm2 * 1e6,
         area.mt_mac_mm2 * 1e6],
        ["GEMV 4096^2 latency (us)", sa_gemv.seconds * 1e6,
         mt_gemv.seconds * 1e6],
        ["GEMM 4096^3 latency (ms)", sa_gemm.seconds * 1e3,
         mt_gemm.seconds * 1e3],
        ["GEMM throughput (GFLOPS/mm^2)", sa_gemm_per_area,
         mt_gemm_per_area],
        ["suitable workload", "throughput-sensitive", "latency-sensitive"],
    ]
    return rows, sa_gemm_per_area, mt_gemm_per_area, sa_gemv, mt_gemv


def test_table2_sa_vs_mt(benchmark, report):
    rows, sa_density, mt_density, sa_gemv, mt_gemv = run_once(
        benchmark, _compare)
    report("table2_sa_vs_mt", format_table(
        ["metric", "systolic array (64x64)", "MAC tree (16x16 x16)"],
        rows,
        title="Table II: systolic array vs. MAC tree at equal MAC budget",
    ))
    # MT wins latency work outright (paper: "Overall Latency: Low")
    assert mt_gemv.seconds < sa_gemv.seconds
    # SA wins throughput economics (paper: "Compute Intensity: High")
    assert sa_density > 5 * mt_density
