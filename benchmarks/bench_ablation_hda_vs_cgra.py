"""Ablation — HDA vs. CGRA (paper Section II-C).

The paper motivates the heterogeneous-dataflow template over a
reconfigurable single-fabric design, citing up to 80.4 % latency
improvement and 41.3 % power savings for HDA.  This bench builds an
equal-die-area CGRA from the Table III chip and measures both gaps with
our models.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.scheduling import AdorDeviceModel
from repro.hardware.power import PowerModel
from repro.hardware.presets import ador_table3
from repro.models.kv_cache import kv_cache_bytes
from repro.models.zoo import get_model
from repro.perf.cgra import CgraDeviceModel, CgraOverheads

BATCH = 32
SEQ = 1024


def _compare():
    model = get_model("llama3-8b")
    chip = ador_table3()
    hda = AdorDeviceModel(chip)
    overheads = CgraOverheads()
    cgra = CgraDeviceModel(chip, overheads)
    pm = PowerModel()

    rows = []
    gains = {}
    step_flops = 2.0 * BATCH * model.active_params_per_token
    step_bytes = model.active_param_bytes_per_token \
        + kv_cache_bytes(model, BATCH, SEQ)
    for label, device, energy_factor in (("HDA (SA+MT)", hda, 1.0),
                                         ("CGRA", cgra,
                                          overheads.energy_overhead)):
        decode = device.decode_step_time(model, BATCH, SEQ).seconds
        prefill = device.prefill_time(model, 1, SEQ).seconds
        energy = pm.workload_energy(
            device.chip, decode, step_flops, step_bytes).total * energy_factor
        power = energy / decode
        rows.append([label, prefill * 1e3, decode * 1e3, power,
                     energy / BATCH * 1e3])
        gains[label] = (prefill, decode, power)

    hda_row = next(r for r in rows if r[0] == "HDA (SA+MT)")
    cgra_row = next(r for r in rows if r[0] == "CGRA")
    latency_improvement = 100.0 * (cgra_row[2] - hda_row[2]) / cgra_row[2]
    # same tokens, different energy: the iso-work power/energy comparison
    energy_savings = 100.0 * (cgra_row[4] - hda_row[4]) / cgra_row[4]
    return rows, latency_improvement, energy_savings


def test_ablation_hda_vs_cgra(benchmark, report):
    rows, latency_improvement, energy_savings = run_once(benchmark, _compare)
    report("ablation_hda_vs_cgra", format_table(
        ["fabric", "prefill (ms)", "decode step (ms)", "power (W)",
         "energy/token (mJ)"],
        rows,
        title="Ablation: HDA vs equal-area CGRA, LLaMA3-8B, batch 32",
    ) + (f"\n\nHDA decode-latency improvement: {latency_improvement:.1f}% "
         f"(paper cites up to 80.4% in multi-DNN scenarios); "
         f"HDA energy-per-token savings: {energy_savings:.1f}% "
         f"(paper cites 41.3% power savings)"))
    assert latency_improvement > 15.0
    assert energy_savings > 15.0
