"""Cluster scaling — replicas x router policy, beyond the paper's Fig. 13.

The paper's scalability analysis stops at one device group; this bench
extends it to a fleet of replicas behind a router, the deployment shape
of a Ray-Serve-style LLM endpoint.  Two experiments:

1. **Scaling sweep** — replicas x router policy under a Poisson load
   scaled proportionally (rate = replicas x base rate): fleet p95 TTFT
   should stay roughly flat while throughput scales.
2. **Bursty traffic** — an on/off (Markov-modulated) arrival process
   with heavy-tailed outputs and a constrained per-replica batch: the
   regime where load-aware routing (join-shortest-queue) beats blind
   round-robin on tail TTFT, the AdaServe/Apt-Serve observation.
"""

import numpy as np
from conftest import run_once

from repro.analysis.tables import format_table
from repro.api import DeploymentSpec, WorkloadSpec, simulate
from repro.cluster import ClusterEngine
from repro.core.scheduling import device_model_for
from repro.hardware.registry import get_chip
from repro.models.zoo import get_model
from repro.serving.dataset import ChatTraceConfig
from repro.serving.generator import OnOffRequestGenerator
from repro.serving.scheduler import SchedulerLimits

BASE_RATE = 10.0
REPLICA_COUNTS = (1, 2, 4)
ROUTERS = ("round-robin", "least-outstanding", "session-affinity",
           "slo-aware")

#: Heavier-tailed outputs than ultrachat: the stragglers that imbalance
#: replica queues under blind routing.
BURSTY_TRACE = ChatTraceConfig(
    name="bursty-heavy",
    input_median=550.0,
    input_sigma=0.8,
    output_median=180.0,
    output_sigma=1.1,
)
BURSTY_SEEDS = (3, 7, 19)


def _scaling_rows():
    rows = []
    for replicas in REPLICA_COUNTS:
        for router in ROUTERS:
            report = simulate(
                DeploymentSpec(chip="ador", replicas=replicas,
                               router=router),
                WorkloadSpec(rate_per_s=BASE_RATE * replicas,
                             num_requests=100 * replicas, seed=7),
            )
            load = getattr(report, "load", None)
            rows.append([
                replicas,
                router,
                report.qos.ttft_p95_s * 1e3,
                report.qos.ttft_p99_s * 1e3,
                report.qos.tokens_per_s,
                1.0 if load is None else load.request_imbalance,
            ])
            if replicas == 1:
                break  # routers are equivalent on a single replica
    return rows


def _bursty_p99(router: str) -> float:
    """Mean p99 TTFT over seeds for one router on the bursty trace."""
    model = get_model("llama3-8b")
    device = device_model_for(get_chip("ador"))
    limits = SchedulerLimits(max_batch=12, prefill_chunk_tokens=512)
    p99s = []
    for seed in BURSTY_SEEDS:
        rng = np.random.default_rng(seed)
        requests = OnOffRequestGenerator(
            BURSTY_TRACE, on_rate_per_s=60.0, off_rate_per_s=4.0,
            phase_seconds=3.0, rng=rng).generate(400)
        engine = ClusterEngine(device, model, limits, replicas=4,
                               router=router)
        result = engine.run(requests, max_sim_seconds=600.0)
        p99s.append(result.qos().ttft_p99_s)
    return float(np.mean(p99s))


def test_cluster_scaling_sweep(benchmark, report):
    rows = run_once(benchmark, _scaling_rows)
    report("cluster_scaling", format_table(
        ["replicas", "router", "p95 TTFT (ms)", "p99 TTFT (ms)",
         "tokens/s", "req imbalance"],
        rows,
        title=f"Cluster scaling: replicas x router policy, LLaMA3-8B on "
              f"ADOR, {BASE_RATE:g} req/s per replica",
    ))
    by_replicas = {}
    for replicas, router, p95, _p99, tokens, _imb in rows:
        by_replicas.setdefault(replicas, []).append((router, p95, tokens))
    # throughput scales with the fleet
    assert max(t for _, _, t in by_replicas[4]) \
        > 2.5 * max(t for _, _, t in by_replicas[1])
    # fleet p95 TTFT stays within 25% of the single replica (round-robin)
    single_p95 = by_replicas[1][0][1]
    rr_p95 = next(p95 for router, p95, _ in by_replicas[4]
                  if router == "round-robin")
    assert rr_p95 <= 1.25 * single_p95


def test_cluster_bursty_routing(benchmark, report):
    p99 = run_once(benchmark, lambda: {router: _bursty_p99(router)
                                       for router in
                                       ("round-robin", "least-outstanding")})
    rows = [[router, value * 1e3] for router, value in p99.items()]
    report("cluster_bursty_routing", format_table(
        ["router", "mean p99 TTFT (ms)"],
        rows,
        title="Bursty on/off traffic, 4x ADOR, max_batch=12: "
              "join-shortest-queue vs round-robin",
    ))
    # the headline: load-aware routing beats blind routing on tail TTFT
    assert p99["least-outstanding"] < p99["round-robin"]
