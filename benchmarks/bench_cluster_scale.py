"""Cluster scale — streaming arrivals, sink-mode serving, and sharding.

Not a paper figure: this bench measures the *simulator's* million-request
regime and seeds the recorded perf trajectory
(``BENCH_cluster_scale.json``).  Three sections:

1. **stream** — a single continuous-batching ADOR endpoint fed a lazy
   wave-shaped arrival stream in sink mode (finished requests are
   aggregated by :class:`~repro.perf.scale.StreamStats` and dropped), in
   simulated-tokens-per-wall-second.  Full mode pushes >= 1e6 requests
   through without ever materializing the list; the wave shape (small
   simultaneous cohorts, long outputs) maximizes pure-decode bursts,
   which is where the event-compressed core pays.

2. **parity** — streaming vs. materialized on a 4-replica cluster
   workload, and ``shards=1`` vs. the unsharded engine: both must be
   bit-identical (every replica counter, every request timeline) before
   any number here is trusted.

3. **shard** — ``shards=2`` worker processes vs. the in-process engine
   on the same fixed fleet.  The speedup is recorded *honestly*: on a
   single-core runner process sharding buys nothing (expect <= 1x); the
   row exists so multi-core runs have a baseline to compare against.

Run standalone for CI smoke: ``python benchmarks/bench_cluster_scale.py
--quick`` (small counts, same assertions except the million-request
floor, still writes the JSON).
"""

import argparse
import json
import pathlib
import sys
import time

from repro.analysis.tables import format_table
from repro.api import DeploymentSpec, WorkloadSpec, simulate
from repro.api.facade import _device_for
from repro.cluster.engine import ClusterEngine
from repro.hardware.registry import get_chip
from repro.models.zoo import get_model
from repro.perf.scale import StreamStats, run_sharded_cluster
from repro.serving.engine import ServingEngine
from repro.serving.request import Request
from repro.serving.scheduler import SchedulerLimits

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_cluster_scale.json"

#: Stream-section shape: cohorts of WAVE requests arrive together, far
#: enough apart that each cohort drains before the next.  Long outputs
#: with short prompts keep the engine in pure-decode bursts — one event
#: per completed cohort instead of one per token — which is the regime
#: the event-compressed core is built for.
WAVE = 64
WAVE_INPUT = 16
WAVE_OUTPUT = 512
WAVE_SPACING_S = 10_000.0

STREAM_FULL = 1_000_000
STREAM_QUICK = 50_000

CLUSTER = (DeploymentSpec(chip="ador", replicas=4,
                          router="least-outstanding", max_batch=32),
           WorkloadSpec(rate_per_s=60.0, num_requests=2000, seed=7))
QUICK_CLUSTER = (DeploymentSpec(chip="ador", replicas=4,
                                router="least-outstanding", max_batch=16),
                 WorkloadSpec(rate_per_s=40.0, num_requests=400, seed=7))


def wave_arrivals(count):
    """Lazy wave-shaped arrival stream (never a list)."""
    for i in range(count):
        yield Request(request_id=i,
                      arrival_time=(i // WAVE) * WAVE_SPACING_S,
                      input_tokens=WAVE_INPUT, output_tokens=WAVE_OUTPUT)


def request_fingerprints(requests):
    return sorted(
        (r.request_id, r.generated_tokens, r.prefilled_tokens,
         r.first_token_time, r.last_token_time, r.finish_time,
         r.state.value)
        for r in requests)


def cluster_fingerprint(result):
    return tuple(
        (rep.total_time_s, rep.iterations, rep.decode_steps,
         request_fingerprints(rep.finished),
         request_fingerprints(rep.unfinished))
        for rep in result.replica_results)


def _measure_stream(count):
    """Sink-mode streaming run; the request list never exists."""
    device = _device_for(get_chip("ador"), True, 1)
    engine = ServingEngine(device, get_model("llama3-8b"),
                           SchedulerLimits(max_batch=WAVE))
    stats = StreamStats()
    horizon = (count // WAVE + 2) * WAVE_SPACING_S
    start = time.perf_counter()
    result = engine.run(wave_arrivals(count), max_sim_seconds=horizon,
                        sink=stats)
    wall = time.perf_counter() - start
    assert stats.finished == count, \
        f"stream run dropped requests: {stats.finished}/{count}"
    return {
        "requests": count,
        "simulated_tokens": stats.tokens,
        "simulated_seconds": result.total_time_s,
        "wall_s": wall,
        "tokens_per_wall_s": stats.tokens / wall,
        "requests_per_wall_s": count / wall,
        "mean_ttft_s": stats.mean_ttft_s,
        "mean_e2e_s": stats.mean_e2e_s,
    }


def _measure_parity(deployment, workload):
    """Streaming-vs-materialized and shard=1-vs-unsharded bit-identity."""
    device = _device_for(get_chip("ador"), True, 1)
    model = get_model(deployment.model)

    def engine():
        return ClusterEngine(device, model, deployment.scheduler_limits(),
                             num_devices=deployment.num_devices,
                             replicas=deployment.replicas,
                             router=deployment.router)

    streamed = engine().run(workload.request_stream())
    materialized = engine().run(workload.build_requests())
    stream_identical = cluster_fingerprint(streamed) \
        == cluster_fingerprint(materialized)

    shard1 = run_sharded_cluster(deployment, workload, shards=1)
    reference = simulate(deployment, workload)
    shard1_identical = cluster_fingerprint(shard1) \
        == cluster_fingerprint(reference.cluster)
    return {
        "replicas": deployment.replicas,
        "num_requests": workload.num_requests,
        "stream_vs_materialized_identical": stream_identical,
        "shard1_vs_unsharded_identical": shard1_identical,
        "bit_identical": stream_identical and shard1_identical,
    }


def _measure_shards(deployment, workload):
    """In-process engine vs. 2 shard worker processes, wall clock."""
    start = time.perf_counter()
    unsharded = run_sharded_cluster(deployment, workload, shards=1)
    unsharded_s = time.perf_counter() - start
    start = time.perf_counter()
    sharded = run_sharded_cluster(deployment, workload, shards=2)
    sharded_s = time.perf_counter() - start
    conserved = (
        len(sharded.merged.finished) + len(sharded.merged.unfinished)
        == len(unsharded.merged.finished)
        + len(unsharded.merged.unfinished))
    return {
        "shards": 2,
        "replicas": deployment.replicas,
        "num_requests": workload.num_requests,
        "unsharded_wall_s": unsharded_s,
        "sharded_wall_s": sharded_s,
        "speedup": unsharded_s / sharded_s,
        "requests_conserved": conserved,
    }


def run_cluster_scale(quick: bool = False) -> dict:
    stream_count = STREAM_QUICK if quick else STREAM_FULL
    deployment, workload = QUICK_CLUSTER if quick else CLUSTER
    return {
        "benchmark": "cluster_scale",
        "mode": "quick" if quick else "full",
        "stream": _measure_stream(stream_count),
        "parity": _measure_parity(deployment, workload),
        "shard": _measure_shards(deployment, workload),
    }


def render(payload: dict) -> str:
    stream = payload["stream"]
    parity = payload["parity"]
    shard = payload["shard"]
    return "\n\n".join([
        format_table(
            ["requests", "sim tokens", "sim seconds", "wall (s)",
             "tokens/wall s", "requests/wall s"],
            [[stream["requests"], stream["simulated_tokens"],
              stream["simulated_seconds"], stream["wall_s"],
              stream["tokens_per_wall_s"],
              stream["requests_per_wall_s"]]],
            title="Streaming sink-mode serving (constant memory, "
                  "wave arrivals)"),
        format_table(
            ["replicas", "requests", "stream==list", "shard1==engine"],
            [[parity["replicas"], parity["num_requests"],
              str(parity["stream_vs_materialized_identical"]),
              str(parity["shard1_vs_unsharded_identical"])]],
            title="Bit-identity (fingerprints over every replica and "
                  "request)"),
        format_table(
            ["shards", "replicas", "requests", "in-proc wall (s)",
             "sharded wall (s)", "speedup", "conserved"],
            [[shard["shards"], shard["replicas"], shard["num_requests"],
              shard["unsharded_wall_s"], shard["sharded_wall_s"],
              shard["speedup"], str(shard["requests_conserved"])]],
            title="Sharded worker processes vs in-process engine "
                  "(modeled partition; speedup is honest — expect <= 1x "
                  "on a single-core runner)"),
    ])


def check(payload: dict) -> None:
    parity = payload["parity"]
    assert parity["bit_identical"], \
        "streaming/sharding parity broken — numbers above are untrusted"
    stream = payload["stream"]
    shard = payload["shard"]
    assert shard["requests_conserved"], "sharded run lost requests"
    if payload["mode"] == "full":
        assert stream["requests"] >= 1_000_000, \
            f"full mode must stream >= 1e6 requests, " \
            f"got {stream['requests']}"
        assert stream["tokens_per_wall_s"] >= 10_000_000, \
            f"stream throughput {stream['tokens_per_wall_s']:,.0f} " \
            f"tok/s < 10M floor"
    else:
        assert stream["tokens_per_wall_s"] >= 1_000_000, \
            f"quick stream throughput " \
            f"{stream['tokens_per_wall_s']:,.0f} tok/s < 1M floor"


def test_cluster_scale(benchmark, report):
    # imported lazily: the CI smoke runs this file standalone in an
    # environment without pytest
    from conftest import run_once

    payload = run_once(benchmark, lambda: run_cluster_scale(quick=False))
    report("cluster_scale", render(payload))
    DEFAULT_OUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {DEFAULT_OUT}]")
    check(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small counts for CI smoke")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    payload = run_cluster_scale(quick=args.quick)
    print(render(payload))
    args.out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {args.out}]")
    check(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
