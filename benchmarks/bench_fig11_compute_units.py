"""Fig. 11 — compute-unit exploration.

(a) decoder-layer latency breakdown for three systolic-array shapes at
the same MAC budget (32^2 x 128c / 64^2 x 32c / 128^2 x 8c), prefill and
decode;
(b) self-attention latency vs. MAC-tree lanes for the MHA / GQA / MQA
exemplars at 2 TB/s;
(c) the performance gain of the HDA (SA + MT) over an SA-only chip.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.scheduling import AdorDeviceModel
from repro.hardware.components import MacTree, SystolicArray
from repro.hardware.presets import ador_table3
from repro.models.layers import Phase
from repro.models.zoo import get_model
from repro.perf.mac_tree import MacTreeTimingModel

SA_CONFIGS = ((32, 128), (64, 32), (128, 8))
OPS = ("qkv_proj", "attention", "out_proj", "mlp_gate", "mlp_up", "mlp_down")


def _chip_with_sa(size, cores):
    base = ador_table3()
    return base.with_updates(
        name=f"ADOR {size}x{size}x{cores}c",
        cores=cores,
        systolic_array=SystolicArray(size, size),
    )


def _fig11a():
    model = get_model("llama3-8b")
    tables = {}
    for phase, batch, q, ctx in ((Phase.PREFILL, 1, 1024, 1024),
                                 (Phase.DECODE, 32, 1, 1024)):
        rows = []
        for size, cores in SA_CONFIGS:
            device = AdorDeviceModel(_chip_with_sa(size, cores))
            breakdown = device.scheduler.layer_breakdown(
                model, phase, batch, q, ctx)
            row = [f"{size}x{size} x{cores}c"]
            row += [breakdown.get(op, 0.0) * model.num_layers * 1e3
                    for op in OPS]
            row.append(sum(breakdown.values()) * model.num_layers * 1e3)
            rows.append(row)
        tables[phase] = rows
    return tables


def test_fig11a_sa_configurations(benchmark, report):
    tables = run_once(benchmark, _fig11a)
    text = []
    for phase, rows in tables.items():
        text.append(format_table(
            ["SA config"] + [f"{op} (ms)" for op in OPS] + ["total (ms)"],
            rows,
            title=f"Fig. 11(a): LLaMA3-8B {phase.value} decoder latency "
                  "breakdown (batch 32 decode / seq 1024 prefill)",
        ))
    report("fig11a_sa_configs", "\n\n".join(text))
    decode_totals = {row[0]: row[-1] for row in tables[Phase.DECODE]}
    # huge arrays with few cores lose decode latency to fill/drain
    assert decode_totals["64x64 x32c"] <= decode_totals["128x128 x8c"]


def _fig11b():
    rows = []
    for model_name, label in (("llama2-7b", "MHA"), ("llama3-8b", "GQA"),
                              ("falcon-7b", "MQA")):
        model = get_model(model_name)
        row = [f"{model_name} ({label})"]
        for lanes in (1, 8, 16):
            mt = MacTreeTimingModel(MacTree(16, lanes), cores=32,
                                    frequency_hz=1.5e9, dram_bandwidth=2e12)
            est = mt.decode_attention(
                batch=32, num_heads=model.num_heads,
                num_kv_heads=model.num_kv_heads,
                head_dim=model.head_dim, context_len=1024)
            row.append(est.seconds * model.num_layers * 1e3)
        rows.append(row)
    return rows


def test_fig11b_mac_tree_lanes(benchmark, report):
    rows = run_once(benchmark, _fig11b)
    report("fig11b_mt_lanes", format_table(
        ["model", "16x1 (ms)", "16x8 (ms)", "16x16 (ms)"],
        rows,
        title="Fig. 11(b): self-attention latency vs. MAC-tree lanes, "
              "batch 32, seq 1024, 2 TB/s",
    ))
    mha, gqa, mqa = rows
    # final ordering matches the figure: MHA slowest, MQA fastest
    assert mha[3] > gqa[3] > mqa[3]
    # GQA and MQA benefit from lanes; MQA keeps gaining to 16
    assert gqa[1] > gqa[2]
    assert mqa[2] > mqa[3]


def _fig11c():
    model = get_model("llama3-8b")
    hda = AdorDeviceModel(ador_table3(), use_mac_tree=True)
    sa_only = AdorDeviceModel(ador_table3(), use_mac_tree=False)
    rows = []
    for batch in (16, 32, 64, 128):
        with_mt = hda.decode_step_time(model, batch, 1024).seconds
        without = sa_only.decode_step_time(model, batch, 1024).seconds
        rows.append([batch, without * 1e3, with_mt * 1e3, without / with_mt])
    return rows


def test_fig11c_hda_gain(benchmark, report):
    rows = run_once(benchmark, _fig11c)
    report("fig11c_hda_gain", format_table(
        ["batch", "SA-only (ms)", "SA+MT (ms)", "gain (x)"],
        rows,
        title="Fig. 11(c): decode-step gain of the HDA design "
              "(SA+MT) over SA-only, LLaMA3-8B",
    ))
    assert all(row[3] > 1.2 for row in rows), "HDA must win at every batch"
