"""Autoscaled fleet vs fixed max-size fleet on bursty traffic.

Not a paper figure: ADOR's serving analysis (Fig. 13/16) assumes a
fixed device count; this bench measures what elasticity buys.  A
bursty on/off (Markov-modulated) arrival stream alternates saturating
bursts with near-idle lulls — the diurnal shape of real chat traffic —
and two deployments serve the identical request streams:

1. **fixed** — ``max_replicas`` endpoints behind join-shortest-queue,
   provisioned for the burst peak and idle through every lull;
2. **autoscaled** — the ``queue-depth`` policy growing the fleet from
   ``min_replicas`` within the same ``max_replicas`` cap, paying a
   10 s cold provision latency unless the warm pool (0.1 s) covers the
   launch, and draining replicas through the lulls.

The headline: the autoscaled fleet matches the fixed fleet's p99 TTFT
(saturated bursts dominate the tail either way, and mid-burst
scale-ups inject empty replicas that JSQ exploits immediately) while
consuming **>= 20% fewer replica-seconds** — capacity that tracks load
instead of the peak.  Both runs are deterministic, so the committed
numbers (``BENCH_autoscale.json``) regenerate exactly.

Run standalone for CI smoke: ``python benchmarks/bench_autoscale.py
--quick`` (smaller fleet and stream, looser bars, still writes the
JSON).
"""

import argparse
import json
import pathlib
import sys

import numpy as np

from repro.analysis.tables import format_table
from repro.cluster import AutoscaleSpec, ClusterEngine
from repro.core.scheduling import device_model_for
from repro.hardware.registry import get_chip
from repro.models.zoo import get_model
from repro.perf.cache import CachedDeviceModel
from repro.serving.dataset import ULTRACHAT_LIKE
from repro.serving.generator import OnOffRequestGenerator
from repro.serving.scheduler import SchedulerLimits

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_autoscale.json"

#: Bursts at 45 req/s saturate even the 8-replica fleet (per-replica
#: capacity is ~4-5 req/s at max_batch=12 on the ultrachat trace), so
#: p99 TTFT is set by in-burst queueing for both deployments; the
#: 20 s lulls at 0.25 req/s are where the fixed fleet burns idle
#: replica-seconds the autoscaler reclaims.
FULL = {
    "seeds": (3, 7, 11, 19, 23),
    "on_rate_per_s": 45.0,
    "off_rate_per_s": 0.25,
    "phase_seconds": 20.0,
    "num_requests": 1000,
    "max_batch": 12,
    "min_replicas": 2,
    "max_replicas": 8,
}
QUICK = {
    "seeds": (3, 7),
    "on_rate_per_s": 45.0,
    "off_rate_per_s": 0.25,
    "phase_seconds": 12.0,
    "num_requests": 300,
    "max_batch": 12,
    "min_replicas": 1,
    "max_replicas": 4,
}


def _autoscale_spec(config) -> AutoscaleSpec:
    return AutoscaleSpec(
        policy="queue-depth",
        min_replicas=config["min_replicas"],
        max_replicas=config["max_replicas"],
        decision_interval_s=0.25,
        provision_latency_s=10.0,
        warm_pool_size=config["max_replicas"],
        warm_provision_s=0.1,
    )


def _stream(config, seed):
    rng = np.random.default_rng(seed)
    return OnOffRequestGenerator(
        ULTRACHAT_LIKE,
        on_rate_per_s=config["on_rate_per_s"],
        off_rate_per_s=config["off_rate_per_s"],
        phase_seconds=config["phase_seconds"],
        rng=rng).generate(config["num_requests"])


def _run_pair(config, device, model, seed) -> dict:
    """Fixed max-size fleet vs autoscaled fleet on one request stream."""
    limits = SchedulerLimits(max_batch=config["max_batch"],
                             prefill_chunk_tokens=512)
    fixed = ClusterEngine(device, model, limits,
                          replicas=config["max_replicas"],
                          router="least-outstanding").run(
        _stream(config, seed), max_sim_seconds=600.0)
    auto = ClusterEngine(device, model, limits,
                         replicas=config["min_replicas"],
                         router="least-outstanding",
                         autoscale=_autoscale_spec(config)).run(
        _stream(config, seed), max_sim_seconds=600.0)
    trace = auto.autoscale
    fixed_rs = config["max_replicas"] * fixed.merged.total_time_s
    fixed_busy = sum(r.busy_time_s for r in fixed.replica_results)
    return {
        "seed": seed,
        "requests": config["num_requests"],
        "fixed_finished": len(fixed.merged.finished),
        "auto_finished": len(auto.merged.finished),
        "fixed_p99_ttft_s": fixed.qos().ttft_p99_s,
        "auto_p99_ttft_s": auto.qos().ttft_p99_s,
        "fixed_replica_seconds": fixed_rs,
        "auto_replica_seconds": trace.replica_seconds,
        "fixed_utilization": fixed_busy / fixed_rs,
        "peak_replicas": trace.peak_replicas,
        "scale_ups": trace.scale_ups,
        "scale_downs": trace.scale_downs,
        "warm_launches": trace.warm_launches,
        "cold_launches": trace.cold_launches,
    }


def _determinism_probe(config, device, model) -> bool:
    """Same stream + spec => identical scaling history and QoS."""
    def run_once():
        engine = ClusterEngine(
            device, model,
            SchedulerLimits(max_batch=config["max_batch"],
                            prefill_chunk_tokens=512),
            replicas=config["min_replicas"], router="least-outstanding",
            autoscale=_autoscale_spec(config))
        result = engine.run(_stream(config, config["seeds"][0]),
                            max_sim_seconds=600.0)
        return result.autoscale, result.qos()

    return run_once() == run_once()


def run_autoscale(quick: bool = False) -> dict:
    config = QUICK if quick else FULL
    model = get_model("llama3-8b")
    device = CachedDeviceModel(device_model_for(get_chip("ador")))
    runs = [_run_pair(config, device, model, seed)
            for seed in config["seeds"]]
    fixed_p99 = float(np.mean([r["fixed_p99_ttft_s"] for r in runs]))
    auto_p99 = float(np.mean([r["auto_p99_ttft_s"] for r in runs]))
    fixed_rs = float(np.mean([r["fixed_replica_seconds"] for r in runs]))
    auto_rs = float(np.mean([r["auto_replica_seconds"] for r in runs]))
    return {
        "benchmark": "autoscale",
        "mode": "quick" if quick else "full",
        "config": {key: (list(value) if isinstance(value, tuple)
                         else value)
                   for key, value in config.items()},
        "runs": runs,
        "summary": {
            "fixed_p99_ttft_s": fixed_p99,
            "auto_p99_ttft_s": auto_p99,
            "p99_ratio": auto_p99 / fixed_p99,
            "fixed_replica_seconds": fixed_rs,
            "auto_replica_seconds": auto_rs,
            "replica_seconds_saved": 1.0 - auto_rs / fixed_rs,
            "fixed_utilization": float(np.mean(
                [r["fixed_utilization"] for r in runs])),
            "deterministic": _determinism_probe(config, device, model),
        },
    }


def render(payload: dict) -> str:
    rows = [[r["seed"],
             r["fixed_p99_ttft_s"] * 1e3,
             r["auto_p99_ttft_s"] * 1e3,
             r["auto_p99_ttft_s"] / r["fixed_p99_ttft_s"],
             r["fixed_replica_seconds"],
             r["auto_replica_seconds"],
             1.0 - r["auto_replica_seconds"] / r["fixed_replica_seconds"],
             r["peak_replicas"],
             f"{r['scale_ups']}/{r['scale_downs']}"]
            for r in payload["runs"]]
    summary = payload["summary"]
    config = payload["config"]
    return "\n\n".join([
        format_table(
            ["seed", "fixed p99 TTFT (ms)", "auto p99 TTFT (ms)",
             "p99 ratio", "fixed rep-s", "auto rep-s", "saved",
             "peak", "ups/downs"],
            rows,
            title=f"Autoscaled vs fixed {config['max_replicas']}x ADOR, "
                  f"bursty on/off ultrachat "
                  f"({config['on_rate_per_s']:g}/"
                  f"{config['off_rate_per_s']:g} req/s, "
                  f"{config['phase_seconds']:g} s phases)"),
        f"mean: p99 ratio {summary['p99_ratio']:.3f} "
        f"(<= 1 means the elastic fleet matches the fixed tail), "
        f"replica-seconds saved {summary['replica_seconds_saved']:.1%} "
        f"(fixed fleet utilization {summary['fixed_utilization']:.2f}), "
        f"deterministic={summary['deterministic']}",
    ])


def check(payload: dict) -> None:
    summary = payload["summary"]
    quick = payload["mode"] == "quick"
    assert summary["deterministic"], \
        "autoscaled run diverged between identical replays"
    for r in payload["runs"]:
        assert r["fixed_finished"] == r["requests"], \
            f"seed {r['seed']}: fixed fleet dropped requests"
        assert r["auto_finished"] == r["requests"], \
            f"seed {r['seed']}: autoscaled fleet lost requests " \
            f"(drain contract violated)"
        assert r["scale_ups"] >= 1 and r["scale_downs"] >= 1, \
            f"seed {r['seed']}: fleet never scaled"
    # the headline claims; the quick config is too small for the full
    # bars but must show the same direction
    max_ratio = 1.15 if quick else 1.0
    min_saved = 0.08 if quick else 0.20
    assert summary["p99_ratio"] <= max_ratio, \
        f"autoscaled p99 TTFT {summary['p99_ratio']:.3f}x the fixed " \
        f"fleet (bar: {max_ratio})"
    assert summary["replica_seconds_saved"] >= min_saved, \
        f"replica-seconds saved {summary['replica_seconds_saved']:.1%} " \
        f"below the {min_saved:.0%} bar"


def test_autoscale_elasticity(benchmark, report):
    # imported lazily: the CI smoke runs this file standalone in an
    # environment without pytest
    from conftest import run_once

    payload = run_once(benchmark, lambda: run_autoscale(quick=False))
    report("autoscale_elasticity", render(payload))
    DEFAULT_OUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {DEFAULT_OUT}]")
    check(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small config for CI smoke")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    payload = run_autoscale(quick=args.quick)
    print(render(payload))
    args.out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {args.out}]")
    check(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
