"""Fig. 10 — MAC-tree effective memory bandwidth vs. workload size.

Recreates the FPGA calibration study: OPT models sharded over 1-8
devices give per-device op counts spanning 1e9-1e11; the effective
bandwidth follows the fitted logarithmic curve, with synthetic
measurement noise standing in for the FPGA scatter (DESIGN.md
substitution).
"""

import numpy as np
from conftest import run_once

from repro.analysis.tables import format_table
from repro.models.zoo import get_model
from repro.perf.effective_bandwidth import MT_BANDWIDTH_CURVE

HBM2_PEAK = 460e9  # the paper's Alveo U55C: two HBM2 stacks
OPT_MODELS = ("opt-1.3b", "opt-6.7b", "opt-13b", "opt-30b", "opt-66b")
DEVICE_COUNTS = (1, 2, 4, 8)


def _measurements():
    rng = np.random.default_rng(10)
    rows = []
    for name in OPT_MODELS:
        model = get_model(name)
        ops_total = 2.0 * model.active_params_per_token
        for devices in DEVICE_COUNTS:
            if model.num_heads % devices:
                continue
            ops = ops_total / devices
            clean = MT_BANDWIDTH_CURVE.utilization(ops)
            measured = float(MT_BANDWIDTH_CURVE.noisy_measurements(
                np.array([ops]), rng)[0])
            rows.append([name, devices, ops, 100 * clean, 100 * measured,
                         HBM2_PEAK * measured / 1e9])
    return rows


def test_fig10_effective_bandwidth(benchmark, report):
    rows = run_once(benchmark, _measurements)
    report("fig10_eff_bandwidth", format_table(
        ["model", "devices", "ops/device", "trend (%)", "measured (%)",
         "eff. BW (GB/s)"],
        rows,
        title="Fig. 10: MAC-tree effective bandwidth vs. decode op count "
              "(HBM2 peak 460 GB/s; paper regions: 70-80 % and 80-90 %)",
    ))
    utils = {row[0]: row[3] for row in rows if row[1] == 1}
    # single-device: bigger models push utilization up the curve
    assert utils["opt-66b"] > utils["opt-1.3b"]
    # every point sits in the paper's plotted band
    for row in rows:
        assert 55.0 <= row[4] <= 95.0
    # the biggest workloads reach the 80-90 % region
    big = [row for row in rows if row[2] > 5e10]
    assert big and all(row[3] >= 80.0 for row in big)
