"""Extension — multimodal GenAI workloads (paper Figs. 2a, 9 inputs).

ADOR's inputs include LMMs and DiT generators.  This bench times the
LMM pipeline (ViT-L encode + LLaMA3-8B prefill with image tokens) and a
DiT-XL image generation on the ADOR design vs. the A100.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.scheduling import device_model_for
from repro.hardware.presets import a100, ador_table3
from repro.models.multimodal import DitWorkload, LmmWorkload

TEXT_TOKENS = 128


def _multimodal():
    lmm = LmmWorkload.default()
    dit = DitWorkload.default()
    rows = []
    for chip in (ador_table3(), a100()):
        device = device_model_for(chip)
        # LMM: encoder pass (prefill-shaped on the encoder config) then
        # LLM prefill over text + image tokens
        encode = device.prefill_time(lmm.encoder_workload.encoder, 1,
                                     lmm.encoder_workload.num_tokens).seconds
        llm_prefill = device.prefill_time(
            lmm.llm, 1, lmm.effective_input_tokens(TEXT_TOKENS)).seconds
        text_only = device.prefill_time(lmm.llm, 1, TEXT_TOKENS).seconds
        # DiT: sampling_steps denoising passes over the latent tokens
        dit_step = device.prefill_time(dit.dit, 1, dit.latent_tokens).seconds
        rows.append([
            chip.name,
            encode * 1e3,
            llm_prefill * 1e3,
            (encode + llm_prefill) * 1e3,
            (encode + llm_prefill) / text_only,
            dit_step * dit.sampling_steps * 1e3,
        ])
    return rows


def test_multimodal_workloads(benchmark, report):
    rows = run_once(benchmark, _multimodal)
    report("multimodal", format_table(
        ["device", "ViT encode (ms)", "LMM prefill (ms)", "LMM TTFT (ms)",
         "vs text-only (x)", "DiT image gen (ms)"],
        rows,
        title="Extension: multimodal workloads — LMM (ViT-L + LLaMA3-8B, "
              "1 image + 128 text tokens) and DiT-XL generation",
    ))
    ador_row, a100_row = rows
    # compute-shaped LMM prefill favours the HDA's systolic capacity
    assert ador_row[3] < a100_row[3]
    # DiT-XL's narrow 1152-wide layers underutilize the 64x64 arrays, so
    # ADOR is merely competitive there, not dominant — a genuine finding
    # about serving-LLM-tuned geometry on non-LLM workloads
    assert ador_row[5] < 1.3 * a100_row[5]
    # one image adds substantial prefill: TTFT grows by >2x vs text-only
    assert ador_row[4] > 2.0
