"""Fig. 13 — tensor-parallel scalability.

(a) latency speedup of all-gather / all-reduce / Megatron over 1-16
devices at 2 TB/s memory and 128 GB/s P2P (Megatron best at 2 devices,
all-gather best at 4+, all-reduce saturates);
(b) speedup vs. P2P bandwidth (16-128 GB/s) for prefill / decode /
continuous (3:1) workloads — decode overlaps best.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.hardware.interconnect import P2pSpec
from repro.models.zoo import get_model
from repro.parallel.collectives import SyncMethod
from repro.parallel.overlap import OverlapModel, WorkloadPhase
from repro.parallel.tensor_parallel import tp_scalability_curve

DEVICES = [1, 2, 4, 8, 16]
P2P_BANDWIDTHS = (16, 32, 64, 128)


def _fig13a():
    model = get_model("llama3-8b")
    p2p = P2pSpec(128e9)
    rows = []
    for method in SyncMethod:
        curve = tp_scalability_curve(model, 32, 1024, DEVICES, 2e12, p2p,
                                     method)
        rows.append([method.value] + curve)
    return rows


def test_fig13a_tp_methods(benchmark, report):
    rows = run_once(benchmark, _fig13a)
    report("fig13a_tp_scalability", format_table(
        ["method"] + [f"{d} dev" for d in DEVICES],
        rows,
        title="Fig. 13(a): TP latency speedup, 2 TB/s mem, 128 GB/s P2P",
    ))
    by_name = {row[0]: row[1:] for row in rows}
    ag, ar, meg = (by_name["all-gather"], by_name["all-reduce"],
                   by_name["megatron"])
    assert meg[1] >= ag[1], "Megatron must lead at 2 devices"
    assert ag[3] > meg[3] > ar[3], "all-gather must lead at 8 devices"
    assert ag[4] > 10.0, "all-gather must keep scaling to 16"
    assert ar[4] < 8.0, "all-reduce must saturate"


def _fig13b():
    model = get_model("llama3-8b")
    rows = []
    for phase in WorkloadPhase:
        overlap = OverlapModel(model, 2e12, 417e12, phase, batch=8,
                               seq_len=1024)
        row = [phase.value]
        for gbps in P2P_BANDWIDTHS:
            row.append(overlap.speedup(16, P2pSpec(gbps * 1e9)))
        rows.append(row)
    return rows


def test_fig13b_p2p_bandwidth(benchmark, report):
    rows = run_once(benchmark, _fig13b)
    report("fig13b_p2p_scalability", format_table(
        ["workload"] + [f"{g} GB/s" for g in P2P_BANDWIDTHS],
        rows,
        title="Fig. 13(b): 16-device speedup vs. P2P bandwidth "
              "(prefill:decode = 3:1 for continuous)",
    ))
    by_name = {row[0]: row[1:] for row in rows}
    decode, prefill = by_name["decode"], by_name["prefill"]
    # decode overlaps: nearly flat across bandwidths, high everywhere
    assert decode[0] > 0.85 * decode[-1]
    # prefill needs bandwidth
    assert prefill[-1] > 2 * prefill[0]
    # continuous sits between
    cont = by_name["continuous"]
    for i in range(len(P2P_BANDWIDTHS)):
        assert prefill[i] <= cont[i] + 1e-9
        assert cont[i] <= decode[i] + 1e-9
