"""Extension — local sensitivity of the Table III design.

Perturbs each template knob around the proposed chip and reports the
TTFT / TBT / area response: which resources the serving QoS actually
depends on (bandwidth, per the paper's thesis) and which are slack (NoC,
single-device P2P).
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.sensitivity import most_sensitive_knob, sensitivity_table
from repro.hardware.presets import ador_table3
from repro.models.zoo import get_model


def _table():
    model = get_model("llama3-8b")
    rows = sensitivity_table(ador_table3(), model, batch=128, seq_len=1024)
    return rows


def test_sensitivity(benchmark, report):
    rows = run_once(benchmark, _table)
    report("sensitivity", format_table(
        ["knob", "change", "TTFT (%)", "TBT (%)", "area (%)"],
        [row.as_list() for row in rows],
        title="Extension: one-knob sensitivity around the Table III "
              "design (LLaMA3-8B, batch 128)",
    ))
    assert most_sensitive_knob(rows, "tbt") == "memory bandwidth"
    assert most_sensitive_knob(rows, "ttft") in ("systolic array", "cores",
                                                 "memory bandwidth")
