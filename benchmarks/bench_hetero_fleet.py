"""Mixed ADOR+GPU fleet vs homogeneous fleets at equal cost.

Not a paper figure: ADOR's cluster analysis (Fig. 13/16) assumes N
copies of one chip; this bench measures what an explicitly
heterogeneous fleet (``FleetSpec``) buys.  Three fleets with the same
replica-second cost rate (12 cost-units/s) serve the identical
heavy-tailed trace — short decode-heavy chat bulk plus a long
prefill-heavy prompt tail — at a moderate and a saturating rate:

1. **bulk** — 12x ADOR (cheap, prefill-capped: an 8k-token prompt's
   own prefill is ~0.47 s, a p99 TTFT floor no replica count fixes);
2. **premium** — 4x H100 (1.9x ADOR prefill speed, but the fewest
   replicas per cost-unit: the fleet saturates first as rate grows);
3. **mixed** — 1x H100 + 9x ADOR behind the ``hetero-aware`` router,
   which sends prefill-heavy prompts to the prefill-fast group by
   capability-normalized backlog.

The headline: each homogeneous fleet has a rate where it clearly loses
(bulk's p99 floor at the moderate rate, premium's goodput collapse at
the saturating rate), while the mixed fleet tracks the best
homogeneous fleet at **both** rates — so on worst-case-across-rates
p99 TTFT and SLO goodput the mixed fleet beats both pure fleets at
equal cost.  The mixed-fleet capacity search
(:func:`repro.api.find_fleet_capacity`) then recovers a cost-optimal
group mix for a fixed demand on the same trace.  All runs are
deterministic, so the committed numbers (``BENCH_hetero_fleet.json``)
regenerate exactly.

Run standalone for CI smoke: ``python benchmarks/bench_hetero_fleet.py
--quick`` (smaller streams, looser bars, still writes the JSON).
"""

import argparse
import json
import pathlib
import sys

import numpy as np

from repro.analysis.tables import format_table
from repro.api import (
    DeploymentSpec,
    FleetSpec,
    ReplicaGroupSpec,
    WorkloadSpec,
    find_fleet_capacity,
    simulate,
)
from repro.serving.dataset import ChatTraceConfig
from repro.serving.qos import goodput_per_s

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_hetero_fleet.json"

#: Short decode-heavy bulk (median 400-token prompts) plus a long
#: prefill-heavy tail (sigma 1.5 puts ~9% of prompts past 2k tokens,
#: clipped at 8k) — the regime where per-group capability matters.
TRACE = ChatTraceConfig(
    name="mixed-prefill-decode",
    input_median=400.0,
    input_sigma=1.5,
    output_median=180.0,
    output_sigma=0.9,
    max_input=8192,
    max_output=1024,
)

ADOR_COST = 1.0   # replica-second cost units
H100_COST = 3.0   # premium chip: 1.9x ADOR prefill, 1.5x decode

#: At the high rate the generated-token demand (~11k tok/s) sits
#: between the premium fleet's aggregate capacity (~9k tok/s, it
#: saturates and its queue grows for the whole arrival window) and the
#: bulk/mixed fleets' (~13k tok/s, both stay stable).
FULL = {
    "seeds": (13, 29, 47),
    "num_requests": {"moderate": 900, "saturating": 900},
    "rates_per_s": {"moderate": 20.0, "saturating": 42.0},
    "slo_ttft_s": 0.2,
    "cost_rate": 12.0,
    "capacity": {"rate_per_s": 10.0, "num_requests": 240,
                 "slo_tbt_s": 0.05},
}
#: The saturating rate needs the full ~21 s arrival window for the
#: premium fleet's queue to actually build (shorter streams drain
#: before the collapse shows), so quick mode only trims the moderate
#: rate and the seed count.
QUICK = {
    "seeds": (13,),
    "num_requests": {"moderate": 240, "saturating": 900},
    "rates_per_s": {"moderate": 20.0, "saturating": 42.0},
    "slo_ttft_s": 0.2,
    "cost_rate": 12.0,
    "capacity": {"rate_per_s": 6.0, "num_requests": 120,
                 "slo_tbt_s": 0.05},
}


def _group(chip, count, cost, name, **kwargs):
    return ReplicaGroupSpec(chip=chip, count=count, max_batch=32,
                            cost_per_replica_s=cost, name=name, **kwargs)


def _fleets() -> dict:
    """Three fleets at the identical 12 cost-units/s rate."""
    return {
        "bulk-12xador": (
            FleetSpec(groups=(_group("ador", 12, ADOR_COST, "ador-pool"),)),
            "slo-aware"),
        "premium-4xh100": (
            FleetSpec(groups=(_group("h100", 4, H100_COST, "gpu-pool"),)),
            "slo-aware"),
        "mixed-1xh100+9xador": (
            FleetSpec(groups=(_group("h100", 1, H100_COST, "gpu-pool"),
                              _group("ador", 9, ADOR_COST, "ador-pool"))),
            "hetero-aware:2048"),
    }


def _fleet_cost_rate(fleet: FleetSpec) -> float:
    return sum(g.count * g.cost_per_replica_s for g in fleet.groups)


def _run_one(config, fleet, router, rate_label, seed) -> dict:
    rate = config["rates_per_s"][rate_label]
    workload = WorkloadSpec(trace=TRACE, rate_per_s=rate,
                            num_requests=config["num_requests"][rate_label],
                            seed=seed)
    report = simulate(DeploymentSpec(fleet=fleet, router=router), workload)
    qos = report.qos
    result = report.result
    goodput = goodput_per_s(result.finished, result.total_time_s,
                            config["slo_ttft_s"])
    return {
        "seed": seed,
        "rate_per_s": rate,
        "p95_ttft_s": qos.ttft_p95_s,
        "p99_ttft_s": qos.ttft_p99_s,
        "tokens_per_s": qos.tokens_per_s,
        "goodput_per_s": goodput,
        "slo_attainment": goodput / rate,
        "finished": len(result.finished),
        "unfinished": len(result.unfinished),
    }


def _determinism_probe(config) -> bool:
    """Same spec + seed => identical QoS and per-group breakdown."""
    fleet, router = _fleets()["mixed-1xh100+9xador"]

    def run_once():
        workload = WorkloadSpec(
            trace=TRACE,
            rate_per_s=config["rates_per_s"]["saturating"],
            num_requests=config["num_requests"]["saturating"],
            seed=config["seeds"][0])
        report = simulate(DeploymentSpec(fleet=fleet, router=router),
                          workload)
        return report.qos, report.groups

    return run_once() == run_once()


def _search_capacity(config) -> dict:
    """Cost-optimal mix for a fixed demand on the same trace.

    Group 0 (ADOR) is the bisected axis; the premium group spans the
    {0, 1} lattice, so the search decides whether one H100 is worth
    three ADORs at this demand.
    """
    spec = config["capacity"]
    fleet = FleetSpec(groups=(
        _group("ador", 6, ADOR_COST, "ador-pool", min_count=0, max_count=8),
        _group("h100", 1, H100_COST, "gpu-pool", min_count=0, max_count=1),
    ))
    workload = WorkloadSpec(trace=TRACE, rate_per_s=spec["rate_per_s"],
                            num_requests=spec["num_requests"], seed=13)
    report = find_fleet_capacity(
        DeploymentSpec(fleet=fleet, router="hetero-aware:2048"),
        workload, slo_tbt_s=spec["slo_tbt_s"])
    best = report.fleet
    return {
        "rate_per_s": spec["rate_per_s"],
        "slo_tbt_s": spec["slo_tbt_s"],
        "mix": report.mix_label(),
        "counts": list(best.counts),
        "cost_rate": best.cost_rate,
        "probes": len(best.probes),
        "simulations": best.simulations,
    }


def run_hetero_fleet(quick: bool = False) -> dict:
    config = QUICK if quick else FULL
    fleets = _fleets()
    runs = []
    for label, (fleet, router) in fleets.items():
        assert _fleet_cost_rate(fleet) == config["cost_rate"]
        for rate_label in config["rates_per_s"]:
            for seed in config["seeds"]:
                row = _run_one(config, fleet, router, rate_label, seed)
                row["fleet"] = label
                row["router"] = router
                row["rate_label"] = rate_label
                runs.append(row)

    def median(label, rate_label, key):
        return float(np.median([r[key] for r in runs
                                if r["fleet"] == label
                                and r["rate_label"] == rate_label]))

    per_fleet = {}
    for label in fleets:
        rates = {
            rate_label: {
                "p99_ttft_s": median(label, rate_label, "p99_ttft_s"),
                "slo_attainment": median(label, rate_label,
                                         "slo_attainment"),
            }
            for rate_label in config["rates_per_s"]
        }
        per_fleet[label] = {
            **rates,
            "worst_p99_ttft_s": max(r["p99_ttft_s"]
                                    for r in rates.values()),
            "worst_slo_attainment": min(r["slo_attainment"]
                                        for r in rates.values()),
        }
    return {
        "benchmark": "hetero_fleet",
        "mode": "quick" if quick else "full",
        "config": {
            "seeds": list(config["seeds"]),
            "num_requests": dict(config["num_requests"]),
            "rates_per_s": dict(config["rates_per_s"]),
            "slo_ttft_s": config["slo_ttft_s"],
            "cost_rate": config["cost_rate"],
            "trace": TRACE.name,
            "capacity": dict(config["capacity"]),
        },
        "runs": runs,
        "summary": {
            "per_fleet": per_fleet,
            "capacity": _search_capacity(config),
            "deterministic": _determinism_probe(config),
        },
    }


def render(payload: dict) -> str:
    rows = [[r["fleet"], r["rate_label"], r["seed"],
             r["p95_ttft_s"] * 1e3, r["p99_ttft_s"] * 1e3,
             r["tokens_per_s"], r["goodput_per_s"],
             r["slo_attainment"]]
            for r in payload["runs"]]
    summary = payload["summary"]
    config = payload["config"]
    worst = [[label,
              stats["worst_p99_ttft_s"] * 1e3,
              stats["worst_slo_attainment"]]
             for label, stats in summary["per_fleet"].items()]
    capacity = summary["capacity"]
    return "\n\n".join([
        format_table(
            ["fleet", "rate", "seed", "p95 TTFT (ms)", "p99 TTFT (ms)",
             "tokens/s", "goodput/s", "SLO attain"],
            rows,
            title=f"Equal-cost fleets ({config['cost_rate']:g} "
                  f"cost-units/s) on the {config['trace']} trace"),
        format_table(
            ["fleet", "worst-case p99 TTFT (ms)", "worst-case attain"],
            worst, title="Worst case across rates (median over seeds)"),
        f"capacity search at {capacity['rate_per_s']:g} req/s "
        f"(TBT SLO {capacity['slo_tbt_s']:g} s): cheapest mix "
        f"{capacity['mix']} at {capacity['cost_rate']:g} cost-units/s "
        f"({capacity['simulations']} simulations, "
        f"{capacity['probes']} probes), "
        f"deterministic={summary['deterministic']}",
    ])


def check(payload: dict) -> None:
    summary = payload["summary"]
    quick = payload["mode"] == "quick"
    per_fleet = summary["per_fleet"]
    bulk = per_fleet["bulk-12xador"]
    premium = per_fleet["premium-4xh100"]
    mixed = per_fleet["mixed-1xh100+9xador"]

    assert summary["deterministic"], \
        "mixed-fleet run diverged between identical replays"
    for r in payload["runs"]:
        assert r["unfinished"] == 0, \
            f"{r['fleet']} seed {r['seed']} at {r['rate_label']} " \
            f"dropped {r['unfinished']} requests"

    # each homogeneous fleet has a rate where it clearly loses
    floor_ratio = 1.15 if quick else 1.25
    collapse_ratio = 1.3 if quick else 1.5
    assert bulk["moderate"]["p99_ttft_s"] \
        >= floor_ratio * premium["moderate"]["p99_ttft_s"], \
        "bulk fleet's prefill-floor p99 penalty vanished at the " \
        "moderate rate"
    assert premium["saturating"]["p99_ttft_s"] \
        >= collapse_ratio * mixed["saturating"]["p99_ttft_s"], \
        "premium fleet no longer saturates at the high rate"

    # the headline: worst-case-across-rates, mixed beats both
    p99_slack = 1.10 if quick else 1.03
    attain_slack = 0.93 if quick else 0.97
    homog_best_p99 = min(bulk["worst_p99_ttft_s"],
                         premium["worst_p99_ttft_s"])
    homog_best_attain = max(bulk["worst_slo_attainment"],
                            premium["worst_slo_attainment"])
    assert mixed["worst_p99_ttft_s"] <= p99_slack * homog_best_p99, \
        f"mixed worst-case p99 {mixed['worst_p99_ttft_s']:.3f}s above " \
        f"the best homogeneous fleet's {homog_best_p99:.3f}s"
    assert mixed["worst_slo_attainment"] \
        >= attain_slack * homog_best_attain, \
        f"mixed worst-case attainment {mixed['worst_slo_attainment']:.3f}" \
        f" below the best homogeneous fleet's {homog_best_attain:.3f}"

    capacity = summary["capacity"]
    assert capacity["counts"][0] >= 1, \
        "capacity search returned an empty fleet"
    assert 0.0 < capacity["cost_rate"] <= payload["config"]["cost_rate"], \
        "cost-optimal mix costs more than the benched fleets"
    assert capacity["simulations"] <= capacity["probes"], \
        "probe cache re-simulated a repeated mix"


def test_hetero_fleet_cost_parity(benchmark, report):
    # imported lazily: the CI smoke runs this file standalone in an
    # environment without pytest
    from conftest import run_once

    payload = run_once(benchmark, lambda: run_hetero_fleet(quick=False))
    report("hetero_fleet", render(payload))
    DEFAULT_OUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {DEFAULT_OUT}]")
    check(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small config for CI smoke")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    payload = run_hetero_fleet(quick=args.quick)
    print(render(payload))
    args.out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {args.out}]")
    check(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
