"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, prints the
rows, and writes them to ``benchmarks/results/<name>.txt`` so the output
survives pytest's capture.  Timing is reported through pytest-benchmark
(run with ``--benchmark-only``).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report():
    """Print a rendered experiment table and persist it to results/."""

    def _report(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _report


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
