"""Fig. 4 — limitations of current serving hardware.

(a) area efficiency (measured prefill GFLOPS per mm^2) for A100, H100,
TPUv4 and Groq TSP, absolute and normalized to a 4 nm process;
(b) effective memory bandwidth achieved in decode for four GenAI models
on GPU/NPU baselines (<60 % of spec).
"""

from conftest import run_once

from repro.analysis.metrics import (
    area_efficiency_gflops_mm2,
    normalized_area_efficiency,
)
from repro.analysis.tables import format_table
from repro.core.scheduling import device_model_for
from repro.hardware.presets import a100, groq_tsp, h100, tpu_v4
from repro.models.zoo import get_model

SEQ = 1024


def _area_efficiency():
    model = get_model("llama3-8b")
    rows = []
    for chip, devices in ((a100(), 1), (h100(), 1), (tpu_v4(), 1),
                          (groq_tsp(), 88)):
        device = device_model_for(chip)
        throughput = device.prefill_throughput_flops(model, 1, SEQ, devices)
        rows.append([
            chip.name,
            chip.process.label,
            area_efficiency_gflops_mm2(throughput, chip),
            normalized_area_efficiency(throughput, chip),
        ])
    return rows


def test_fig4a_area_efficiency(benchmark, report):
    rows = run_once(benchmark, _area_efficiency)
    report("fig04a_area_efficiency", format_table(
        ["device", "node", "GFLOPS/mm2 (absolute)", "GFLOPS/mm2 (@4nm)"],
        rows,
        title="Fig. 4(a): prefill area efficiency, LLaMA3-8B",
    ))
    by_name = {row[0]: row for row in rows}
    # absolute: H100 leads; TSP trails (many low-utilization devices)
    assert by_name["NVIDIA H100"][2] == max(r[2] for r in rows)
    assert by_name["Groq TSP"][2] == min(r[2] for r in rows)
    # normalization helps the 14 nm TSP by exactly 4.712x
    tsp = by_name["Groq TSP"]
    assert abs(tsp[3] / tsp[2] - 4.712) < 0.01
    # the 4 nm H100 gains nothing from normalization
    h = by_name["NVIDIA H100"]
    assert abs(h[3] - h[2]) < 1e-6


def _effective_bandwidth():
    rows = []
    for model_name in ("gptj-6b", "llama2-7b", "llama3-8b", "mistral-7b"):
        model = get_model(model_name)
        row = [model_name]
        for chip in (a100(), h100(), tpu_v4()):
            device = device_model_for(chip)
            util = device.decode_bandwidth_utilization(model, 64, SEQ)
            row.append(100.0 * util)
        rows.append(row)
    return rows


def test_fig4b_effective_bandwidth(benchmark, report):
    rows = run_once(benchmark, _effective_bandwidth)
    report("fig04b_effective_bandwidth", format_table(
        ["model", "A100 (%)", "H100 (%)", "TPUv4 (%)"],
        rows,
        title="Fig. 4(b): decode memory-bandwidth utilization at batch 64 "
              "(paper: both GPU and TPU below 60 %)",
    ))
    for row in rows:
        gpu_util, h100_util, tpu_util = row[1], row[2], row[3]
        assert gpu_util < 60.0, f"{row[0]}: GPU must be under 60 %"
        assert tpu_util < gpu_util, f"{row[0]}: TPU must be worse than GPU"
