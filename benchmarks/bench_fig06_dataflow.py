"""Fig. 6(d) — all-gather vs. all-reduce core synchronization.

Chained GEMVs on the latency dataflow: all-gather pipelines its small
final-sum messages behind compute, all-reduce exposes a bubble for
accumulating full partial sums.  The bench quantifies the exposed bubble
per layer for the Table III ADOR chip.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.dataflow import (
    CoreSyncMethod,
    DataflowKind,
    MultiCoreDataflow,
)
from repro.core.scheduling import AdorDeviceModel
from repro.hardware.presets import ador_table3
from repro.models.layers import Phase
from repro.models.zoo import get_model

BATCH = 32


def _bubbles():
    chip = ador_table3()
    flow = MultiCoreDataflow(chip, DataflowKind.LATENCY)
    model = get_model("llama3-8b")
    scheduler = AdorDeviceModel(chip).scheduler
    breakdown = scheduler.layer_breakdown(model, Phase.DECODE, BATCH, 1, 1024)
    compute = breakdown["out_proj"]
    rows = []
    for method in CoreSyncMethod:
        bubble = flow.sync_bubble(BATCH, model.hidden_size, compute, method)
        rows.append([
            method.value,
            flow.sync_bytes_per_gemv(BATCH, model.hidden_size, method) / 1e3,
            bubble.wire_seconds * 1e6,
            bubble.exposed_seconds * 1e6,
            100.0 * bubble.hidden_fraction,
        ])
    return rows


def test_fig6d_sync_bubbles(benchmark, report):
    rows = run_once(benchmark, _bubbles)
    report("fig06d_sync_bubbles", format_table(
        ["method", "bytes/GEMV (KB)", "wire (us)", "exposed (us)",
         "hidden (%)"],
        rows,
        title="Fig. 6(d): core-synchronization bubble per GEMV, "
              "ADOR 32 cores, batch 32",
    ))
    gather = next(r for r in rows if r[0] == "all-gather")
    reduce = next(r for r in rows if r[0] == "all-reduce")
    assert gather[1] < reduce[1], "all-gather must move less data"
    assert gather[3] < reduce[3], "all-gather must expose a smaller bubble"
    assert gather[4] > 85.0, "all-gather pipelining must hide most wire time"
