"""Fig. 7 — model-parallelism analysis.

(c) per-device synchronization volume vs. device count for all-gather,
all-reduce and Megatron (all-gather stays flat, all-reduce scales);
(a) the minimum P2P bandwidth at which decode communication fully
overlaps — the paper lands on PCIe-class links.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.models.zoo import get_model
from repro.parallel.collectives import SyncMethod, layer_sync_plan
from repro.parallel.overlap import (
    OverlapModel,
    WorkloadPhase,
    minimum_p2p_bandwidth,
)

DEVICES = (1, 2, 4, 8, 16)
BATCH = 32


def _volumes():
    model = get_model("llama3-8b")
    tensor = BATCH * model.hidden_size * model.dtype_bytes
    rows = []
    for method in SyncMethod:
        row = [method.value]
        for devices in DEVICES:
            plan = layer_sync_plan(method, tensor, devices)
            row.append(plan.bytes_per_layer / 1e6)
        rows.append(row)
    return rows


def test_fig7c_sync_volumes(benchmark, report):
    rows = run_once(benchmark, _volumes)
    report("fig07c_sync_volumes", format_table(
        ["method"] + [f"{d} dev (MB)" for d in DEVICES],
        rows,
        title="Fig. 7(c): per-device sync volume per decoder layer "
              "(all-gather flat; all-reduce scales with devices)",
    ))
    by_name = {row[0]: row[1:] for row in rows}
    ag, ar = by_name["all-gather"], by_name["all-reduce"]
    assert ag[-1] < 2 * ag[1], "all-gather must stay near-constant"
    assert ar[-1] > 6 * ar[1], "all-reduce must scale with devices"
    meg = by_name["megatron"]
    assert ag[-1] < meg[-1] < ar[-1]


def _min_p2p():
    model = get_model("llama3-8b")
    rows = []
    for devices in (2, 4, 8, 16):
        overlap = OverlapModel(model, 2e12, 417e12, WorkloadPhase.DECODE,
                               batch=BATCH, seq_len=1024)
        needed = minimum_p2p_bandwidth(overlap, devices,
                                       efficiency_target=0.95)
        rows.append([devices, needed / 1e9])
    return rows


def test_fig7a_minimum_p2p(benchmark, report):
    rows = run_once(benchmark, _min_p2p)
    report("fig07a_min_p2p", format_table(
        ["devices", "min P2P bandwidth (GB/s)"],
        rows,
        title="Fig. 7(a): minimum P2P bandwidth for full decode overlap "
              "(paper: ~32-64 GB/s, PCIe class, suffices)",
    ))
    # PCIe-class links suffice at every scale the paper considers
    assert all(row[1] <= 128.0 for row in rows)
    assert rows[0][1] <= 32.0
