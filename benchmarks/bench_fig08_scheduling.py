"""Fig. 8 — the dynamic HDA schedule, observed at instruction level.

Executes compiled instruction streams on the instruction-level simulator
and reports per-unit busy time: in decode the MAC tree owns the DRAM
stream while the systolic array only assists; in prefill the systolic
array dominates — exactly the mapping Fig. 8 draws.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.compiler.generator import InstructionGenerator
from repro.compiler.instructions import TargetUnit
from repro.hardware.presets import ador_table3
from repro.models.layers import Phase
from repro.models.zoo import get_model
from repro.simulator.machine import InstructionLevelSimulator


def _schedule():
    chip = ador_table3()
    model = get_model("llama3-8b")
    generator = InstructionGenerator(chip)
    sim = InstructionLevelSimulator(chip)
    rows = []
    reports = {}
    for phase, batch, q, ctx in ((Phase.PREFILL, 1, 1024, 1024),
                                 (Phase.DECODE, 64, 1, 1024)):
        program = generator.compile(model, phase, batch, q, ctx)
        report_obj = sim.run(program)
        reports[phase] = report_obj
        rows.append([
            phase.value,
            report_obj.seconds * 1e3,
            100 * report_obj.utilization(TargetUnit.MAC_TREE),
            100 * report_obj.utilization(TargetUnit.SYSTOLIC_ARRAY),
            100 * report_obj.utilization(TargetUnit.VECTOR_UNIT),
            report_obj.instruction_count,
        ])
    return rows, reports


def test_fig8_hda_schedule(benchmark, report):
    rows, reports = run_once(benchmark, _schedule)
    report("fig08_scheduling", format_table(
        ["stage", "makespan (ms)", "MT busy (%)", "SA busy (%)",
         "VU busy (%)", "instructions"],
        rows,
        title="Fig. 8: per-unit occupancy of the HDA schedule "
              "(instruction-level simulation, LLaMA3-8B)",
    ))
    decode = reports[Phase.DECODE]
    prefill = reports[Phase.PREFILL]
    # decode: the MAC tree owns the DRAM stream
    assert decode.utilization(TargetUnit.MAC_TREE) > 0.8
    # prefill: the systolic array is the workhorse
    assert prefill.utilization(TargetUnit.SYSTOLIC_ARRAY) \
        > prefill.utilization(TargetUnit.MAC_TREE)
