"""Extension — the ADOR design space as a Pareto study (Fig. 1 right).

Sweeps the template's systolic-array geometry and core count, evaluates
each candidate's TTFT (latency axis), TBT (throughput axis) and die
area, extracts the latency/throughput/area Pareto frontier, and checks
that the paper's Table III choice sits on it at the balanced optimum.
"""

from conftest import run_once

from repro.analysis.pareto import (
    normalized_distance_to_utopia,
    pareto_frontier,
)
from repro.analysis.tables import format_table
from repro.core.requirements import SearchRequest, ServiceLevelObjectives
from repro.core.search import AdorSearch

SLOS = ServiceLevelObjectives(ttft_slo_s=10.0, tbt_slo_s=10.0,
                              batch_size=128, seq_len=1024)


def _design_space():
    # run one enumeration pass of the search with non-binding SLOs so
    # every candidate is evaluated and reported
    search = AdorSearch(SearchRequest(model_names=("llama3-8b",), slos=SLOS))
    result = search.run(max_iterations=1)
    points = []
    for candidate in result.candidates:
        evaluation = candidate.evaluations[0]
        points.append({
            "name": candidate.chip.name,
            "ttft_ms": evaluation.ttft_s * 1e3,
            "tbt_ms": evaluation.tbt_s * 1e3,
            "area_mm2": candidate.area_mm2,
        })
    frontier = pareto_frontier(
        points, lambda p: (p["ttft_ms"], p["tbt_ms"], p["area_mm2"]))
    vectors = [(p["ttft_ms"], p["tbt_ms"], p["area_mm2"]) for p in frontier]
    for point in points:
        point["on_frontier"] = point in frontier
        if point["on_frontier"]:
            point["utopia_distance"] = normalized_distance_to_utopia(
                (point["ttft_ms"], point["tbt_ms"], point["area_mm2"]),
                vectors)
    return points, frontier


def test_design_space_pareto(benchmark, report):
    points, frontier = run_once(benchmark, _design_space)
    rows = [[p["name"], p["ttft_ms"], p["tbt_ms"], p["area_mm2"],
             "yes" if p["on_frontier"] else ""]
            for p in sorted(points, key=lambda p: p["area_mm2"])]
    report("design_space_pareto", format_table(
        ["candidate", "TTFT (ms)", "TBT (ms)", "area (mm2)", "frontier"],
        rows,
        title="Extension: ADOR template design space and its Pareto "
              "frontier (LLaMA3-8B, batch 128)",
    ))
    table3 = next(p for p in points if "64x64x32c" in p["name"])
    assert table3["on_frontier"], "Table III's choice must be non-dominated"
    # and it is among the most balanced frontier designs
    balanced = sorted((p for p in frontier), key=lambda p: p["utopia_distance"])
    top = [p["name"] for p in balanced[:max(3, len(balanced) // 3)]]
    assert table3["name"] in top, top
