"""Table I — analysis of current serving hardware.

Regenerates the spec table from the encoded presets and checks the
constants the rest of the reproduction depends on.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.hardware.presets import groq_tsp, h100, tpu_v4

GIB = 1024 ** 3
MIB = 1024 ** 2


def _spec_rows():
    rows = []
    for chip in (h100(), tpu_v4(), groq_tsp()):
        rows.append([
            chip.name,
            chip.frequency_hz / 1e6,
            chip.process.label,
            chip.peak_flops / 1e12,
            chip.total_sram_bytes / MIB,
            chip.dram.kind.value,
            chip.dram.size_bytes / GIB,
            chip.memory_bandwidth / 1e9,
            chip.p2p.bandwidth_bytes_per_s / 1e9,
            chip.tdp_w,
            chip.die_area_mm2,
        ])
    return rows


def test_table1_specifications(benchmark, report):
    rows = run_once(benchmark, _spec_rows)
    report("table1_specs", format_table(
        ["device", "freq (MHz)", "node", "peak (TFLOPS)", "SRAM (MiB)",
         "DRAM", "DRAM (GiB)", "mem BW (GB/s)", "P2P (GB/s)", "TDP (W)",
         "die (mm2)"],
        rows,
        title="Table I: analysis of current serving hardware",
    ))
    by_name = {row[0]: row for row in rows}
    h = by_name["NVIDIA H100"]
    assert h[3] == 1000.0 and h[10] == 814.0
    t = by_name["Google TPUv4"]
    assert t[3] == 275.0 and t[10] == 400.0
    g = by_name["Groq TSP"]
    assert g[3] == 205.0 and g[10] == 725.0
    # the TSP's "memory" is its on-chip SRAM at 80 TB/s
    assert g[7] == 80000.0
