"""Fig. 3 — model-level analysis driving the paper's motivation.

(a) the KV cache's share of decode DRAM reads vs. batch size for four
models at sequence length 8192 (>90 % at batch 128);
(b) self-attention's share of decode operations vs. context length for
LLaMA3-8B (grows toward dominance at 64k).
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.models.graph import operation_share
from repro.models.kv_cache import kv_fraction_of_traffic
from repro.models.zoo import get_model

MODELS = ("qwen2-7b", "llama3-8b", "gemma2-9b", "mixtral-8x7b")
BATCHES = (1, 16, 64, 128)
SEQ = 8192


def _kv_ratio():
    rows = []
    for name in MODELS:
        model = get_model(name)
        rows.append([name] + [
            100.0 * kv_fraction_of_traffic(model, batch, SEQ)
            for batch in BATCHES
        ])
    return rows


def test_fig3a_kv_share(benchmark, report):
    rows = run_once(benchmark, _kv_ratio)
    report("fig03a_kv_share", format_table(
        ["model"] + [f"batch {b} (%)" for b in BATCHES],
        rows,
        title="Fig. 3(a): KV-cache share of decode DRAM reads, seq 8192",
    ))
    for row in rows:
        shares = row[1:]
        assert shares == sorted(shares), f"{row[0]}: share must grow"
        assert shares[-1] > 80.0, f"{row[0]}: batch-128 share must dominate"
    by_name = {row[0]: row for row in rows}
    # the paper's ">90 % of DRAM reads" claim for recent GQA models
    assert by_name["llama3-8b"][-1] > 90.0


def _op_share():
    model = get_model("llama3-8b")
    rows = []
    for seq in (4096, 8192, 65536):
        share = operation_share(model, seq)
        rows.append([f"{seq // 1024}k",
                     100.0 * share.attention_fraction,
                     100.0 * share.mlp_fraction])
    return rows


def test_fig3b_operation_share(benchmark, report):
    rows = run_once(benchmark, _op_share)
    report("fig03b_op_share", format_table(
        ["context", "self-attention (%)", "MLP & projections (%)"],
        rows,
        title="Fig. 3(b): decode operation share by context length, "
              "LLaMA3-8B (paper: 28.2/36.2/75.1 %)",
    ))
    attention = [row[1] for row in rows]
    assert attention == sorted(attention)
    assert attention[-1] > 50.0
