"""Fig. 16 — maximum request capacity under SLOs in real serving.

The full serving simulation: Poisson arrivals with the ultrachat-like
trace, continuous batching, binary search for the highest sustainable
rate.  Paper headlines: ~23.3 req/s for LLaMA3-8B under the relaxed SLO
on one ADOR device; strict < relaxed; Yi-34B (2 devices) far lower.

Runs on the fast capacity engine (probe caching, arrival reuse,
saturation early-abort, one memoized device model shared by all four
searches) — ``bench_capacity_speed.py`` proves the found rates identical
to the sequential reference search, and this report regenerates
byte-identically either way.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.scheduling import AdorDeviceModel
from repro.hardware.presets import ador_table3
from repro.models.zoo import get_model
from repro.perf.cache import CachedDeviceModel
from repro.serving.capacity import max_capacity_under_slo
from repro.serving.dataset import ULTRACHAT_LIKE

#: (model, devices, strict TBT SLO, relaxed TBT SLO) — the figure's table
SCENARIOS = (
    ("llama3-8b", 1, 0.025, 0.050),
    ("yi-34b", 2, 0.030, 0.060),
)


def _capacities():
    device = CachedDeviceModel(AdorDeviceModel(ador_table3()))
    rows = []
    results = {}
    for model_name, devices, strict, relaxed in SCENARIOS:
        model = get_model(model_name)
        for label, slo in (("strict", strict), ("relaxed", relaxed)):
            outcome = max_capacity_under_slo(
                device, model, ULTRACHAT_LIKE, slo_tbt_s=slo,
                num_devices=devices, request_count=250, iterations=7,
                seed=7)
            rows.append([
                model_name, devices, label, slo * 1e3,
                outcome.max_requests_per_s,
                outcome.qos_at_max.tbt_p95_s * 1e3,
                outcome.qos_at_max.ttft_p95_s * 1e3,
                outcome.qos_at_max.tokens_per_s,
            ])
            results[(model_name, label)] = outcome.max_requests_per_s
    return rows, results


def test_fig16_max_capacity(benchmark, report):
    rows, results = run_once(benchmark, _capacities)
    report("fig16_capacity", format_table(
        ["model", "devices", "SLO", "TBT SLO (ms)", "capacity (req/s)",
         "TBT p95 (ms)", "TTFT p95 (ms)", "tokens/s"],
        rows,
        title="Fig. 16: max capacity under SLO, ADOR design, "
              "ultrachat-like chatbot trace (paper: 23.3 req/s for "
              "LLaMA3-8B relaxed)",
    ))
    # the paper's headline: ~23 req/s under the relaxed SLO
    relaxed_8b = results[("llama3-8b", "relaxed")]
    assert 15.0 < relaxed_8b < 35.0
    # strict SLO cannot admit more than relaxed
    assert results[("llama3-8b", "strict")] <= relaxed_8b
    assert results[("yi-34b", "strict")] <= results[("yi-34b", "relaxed")]
    # the 34B model on 2 devices serves far fewer requests than 8B on 1
    assert results[("yi-34b", "relaxed")] < 0.5 * relaxed_8b
