"""Extension — hybrid TP x PP factorizations for LLaMA3-70B.

Scores every tp x pp factorization of 8 and 16 devices with the TP/PP
latency models; the paper's Section IV-D conclusion (TP for latency, PP
adds none) must fall out as the latency-optimal plan being pure TP.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.hardware.interconnect import P2pSpec
from repro.models.zoo import get_model
from repro.parallel.hybrid import HybridParallelPlanner

BATCH = 64
CTX = 1024


def _plans():
    planner = HybridParallelPlanner(get_model("llama3-70b"), 2e12,
                                    P2pSpec(64e9))
    rows = []
    best = {}
    for devices in (8, 16):
        for plan in planner.plans(devices, BATCH, CTX):
            rows.append([
                devices, f"TP{plan.tp} x PP{plan.pp}",
                plan.sync_method.value,
                plan.decode_step_seconds * 1e3,
                plan.throughput_tokens_per_s,
            ])
        best[devices] = planner.best_for_latency(devices, BATCH, CTX)
    return rows, best


def test_hybrid_parallelism(benchmark, report):
    rows, best = run_once(benchmark, _plans)
    report("hybrid_parallelism", format_table(
        ["devices", "plan", "sync", "decode step (ms)", "tokens/s"],
        rows,
        title="Extension: hybrid TP x PP plans, LLaMA3-70B, batch 64 "
              "(64 GB/s P2P)",
    ))
    # the paper's conclusion: pure TP is the latency-optimal mapping
    assert best[8].pp == 1 and best[8].tp == 8
    assert best[16].pp == 1 and best[16].tp == 16
