"""Fig. 15 — QoS comparison across designs.

TTFT and TBT for LLaMA3-8B (1 device) and LLaMA3-70B (8 devices, TP)
across the A100, LLMCompass-L, LLMCompass-T and the ADOR design, over
batch sizes 16-150.  The paper's headlines: ADOR ~= A100 at batch 16;
at batch 150 ADOR reaches 2.36x (8B) / 2.51x (70B) the A100's TBT, and
1.93x / 3.78-4.01x its TTFT / TBT area efficiency.
"""

from conftest import run_once

from repro.analysis.metrics import area_efficiency_gain
from repro.analysis.tables import format_table
from repro.core.scheduling import device_model_for
from repro.hardware.area import AreaModel
from repro.hardware.presets import ader_reference_designs
from repro.models.zoo import get_model

BATCHES = (16, 64, 128, 150)
SEQ = 1024


def _qos(model_name, devices):
    model = get_model(model_name)
    designs = ader_reference_designs()
    ttft_rows, tbt_rows = [], []
    for name, chip in designs.items():
        device = device_model_for(chip)
        ttft = [device.prefill_time(model, 1, SEQ, devices).seconds * 1e3
                for _ in BATCHES]
        tbt = [1.0 / device.decode_step_time(model, b, SEQ, devices).seconds
               for b in BATCHES]
        ttft_rows.append([name] + ttft)
        tbt_rows.append([name] + tbt)
    return ttft_rows, tbt_rows


def _gains(tbt_rows, area_model, designs):
    ador = next(r for r in tbt_rows if r[0] == "ADOR")
    a100_row = next(r for r in tbt_rows if r[0] == "A100")
    tbt_gain = ador[-1] / a100_row[-1]
    area_gain = area_efficiency_gain(
        candidate_seconds=1.0 / ador[-1],
        candidate_area=area_model.die_area_mm2(designs["ADOR"]),
        baseline_seconds=1.0 / a100_row[-1],
        baseline_area=area_model.die_area_mm2(designs["A100"]),
    )
    return tbt_gain, area_gain


def test_fig15a_llama3_8b(benchmark, report):
    ttft_rows, tbt_rows = run_once(benchmark, lambda: _qos("llama3-8b", 1))
    designs = ader_reference_designs()
    tbt_gain, area_gain = _gains(tbt_rows, AreaModel(), designs)
    text = format_table(
        ["design"] + [f"batch {b}" for b in BATCHES],
        ttft_rows, title="Fig. 15(a) TTFT (ms), LLaMA3-8B, 1 device",
    ) + "\n\n" + format_table(
        ["design"] + [f"batch {b}" for b in BATCHES],
        tbt_rows, title="Fig. 15(a) TBT (tokens/s), LLaMA3-8B, 1 device",
    ) + (f"\n\nADOR vs A100 at batch 150: TBT {tbt_gain:.2f}x "
         f"(paper 2.36x), TBT area efficiency {area_gain:.2f}x "
         f"(paper 3.78x)")
    report("fig15a_llama3_8b", text)

    by_name = {row[0]: row[1:] for row in tbt_rows}
    # parity at batch 16, ADOR leads at 150
    assert by_name["ADOR"][0] < 1.5 * by_name["A100"][0]
    assert 2.0 < tbt_gain < 2.8
    assert 3.2 < area_gain < 4.5
    # every design's TBT degrades with batch
    for name, series in by_name.items():
        assert list(series) == sorted(series, reverse=True), name
    # TTFT ordering: T best, L worst
    ttft = {row[0]: row[1] for row in ttft_rows}
    assert ttft["LLMCompass-T"] < ttft["ADOR"] < ttft["A100"] \
        < ttft["LLMCompass-L"]


def test_fig15b_llama3_70b(benchmark, report):
    ttft_rows, tbt_rows = run_once(benchmark, lambda: _qos("llama3-70b", 8))
    designs = ader_reference_designs()
    tbt_gain, area_gain = _gains(tbt_rows, AreaModel(), designs)
    text = format_table(
        ["design"] + [f"batch {b}" for b in BATCHES],
        ttft_rows, title="Fig. 15(b) TTFT (ms), LLaMA3-70B, 8 devices",
    ) + "\n\n" + format_table(
        ["design"] + [f"batch {b}" for b in BATCHES],
        tbt_rows, title="Fig. 15(b) TBT (tokens/s), LLaMA3-70B, 8 devices",
    ) + (f"\n\nADOR vs A100 at batch 150: TBT {tbt_gain:.2f}x "
         f"(paper 2.51x), TBT area efficiency {area_gain:.2f}x "
         f"(paper 4.01x)")
    report("fig15b_llama3_70b", text)

    assert 2.1 < tbt_gain < 2.9
    assert 3.4 < area_gain < 4.6
