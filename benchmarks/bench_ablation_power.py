"""Extension — power and energy-per-token across designs.

Fig. 9 lists a power budget among ADOR's vendor inputs and Table I
records TDPs; this bench reports decode power and energy per generated
token for every Table III design, the vendor-side economics beyond die
area.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.scheduling import device_model_for
from repro.hardware.power import PowerModel
from repro.hardware.presets import ader_reference_designs
from repro.models.kv_cache import kv_cache_bytes
from repro.models.zoo import get_model

BATCH = 128
SEQ = 1024


def _power_rows():
    model = get_model("llama3-8b")
    pm = PowerModel()
    step_flops = 2.0 * BATCH * model.active_params_per_token
    step_bytes = model.active_param_bytes_per_token \
        + kv_cache_bytes(model, BATCH, SEQ)
    rows = []
    for name, chip in ader_reference_designs().items():
        device = device_model_for(chip)
        step = device.decode_step_time(model, BATCH, SEQ).seconds
        energy = pm.workload_energy(chip, step, step_flops, step_bytes)
        rows.append([
            name,
            pm.tdp_w(chip),
            energy.total / step,
            energy.total / BATCH * 1e3,
            BATCH / step / (energy.total / step),
        ])
    return rows


def test_ablation_power(benchmark, report):
    rows = run_once(benchmark, _power_rows)
    report("ablation_power", format_table(
        ["design", "TDP (W)", "decode power (W)", "energy/token (mJ)",
         "tokens/joule"],
        rows,
        title="Extension: decode power & energy per token, LLaMA3-8B, "
              "batch 128",
    ))
    by_name = {row[0]: row for row in rows}
    # same work, less time: ADOR burns the same stream energy faster and
    # wastes the least static energy per token
    assert by_name["ADOR"][3] == min(row[3] for row in rows)
    # every design's decode power stays under its TDP estimate
    for row in rows:
        assert row[2] < row[1] * 1.05, row[0]
