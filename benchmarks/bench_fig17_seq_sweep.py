"""Fig. 17 — QoS across input/output sequence lengths.

Serving LLaMA3-8B on the ADOR design with continuous batching, sweeping
the (input, output) token-length grid and reporting TTFT and TBT
matrices.  Paper headline: from output length 1 to 1024 the TBT degrades
by only ~3.87x (and TTFT by ~3.85x) thanks to the MAC tree absorbing the
decode stream while prefill overlaps.
"""

import numpy as np
from conftest import run_once

from repro.analysis.tables import format_table
from repro.api import DeploymentSpec, WorkloadSpec, simulate

INPUT_LENGTHS = (128, 256, 512, 1024)
OUTPUT_LENGTHS = (1, 32, 128, 512, 1024)
RATE = 4.5          # req/s — a steadily loaded endpoint
REQUESTS = 40

DEPLOYMENT = DeploymentSpec(chip="ador", model="llama3-8b", max_batch=128)


def _cell(input_len, output_len):
    # the dynamic "fixed-AxB" trace name resolves without registration
    workload = WorkloadSpec(trace=f"fixed-{input_len}x{output_len}",
                            rate_per_s=RATE, num_requests=REQUESTS, seed=17)
    report = simulate(DEPLOYMENT, workload, max_sim_seconds=1200.0)
    return report.qos.ttft_mean_s, report.qos.tbt_mean_s


def _sweep():
    ttft = {}
    tbt = {}
    for input_len in INPUT_LENGTHS:
        for output_len in OUTPUT_LENGTHS:
            t, b = _cell(input_len, output_len)
            ttft[(input_len, output_len)] = t * 1e3
            tbt[(input_len, output_len)] = (1.0 / b) if b > 0 else float("nan")
    return ttft, tbt


def test_fig17_sequence_sweep(benchmark, report):
    ttft, tbt = run_once(benchmark, _sweep)
    header = ["input \\ output"] + [str(o) for o in OUTPUT_LENGTHS]
    ttft_rows = [[str(i)] + [ttft[(i, o)] for o in OUTPUT_LENGTHS]
                 for i in INPUT_LENGTHS]
    tbt_rows = [[str(i)] + [tbt[(i, o)] for o in OUTPUT_LENGTHS]
                for i in INPUT_LENGTHS]
    degr_tbt = np.mean([tbt[(i, OUTPUT_LENGTHS[1])] / tbt[(i, 1024)]
                        for i in INPUT_LENGTHS])
    degr_ttft = np.mean([ttft[(i, 1024)] / ttft[(i, OUTPUT_LENGTHS[0])]
                         for i in INPUT_LENGTHS])
    text = format_table(header, ttft_rows,
                        title="Fig. 17: TTFT (ms) by input x output length, "
                              "LLaMA3-8B on ADOR") \
        + "\n\n" + format_table(header, tbt_rows,
                                title="Fig. 17: TBT (tokens/s)") \
        + (f"\n\nmean TBT degradation out 32 -> 1024: {degr_tbt:.2f}x "
           f"(paper: 3.87x over 1 -> 1024); "
           f"mean TTFT growth out 1 -> 1024: {degr_ttft:.2f}x "
           f"(paper: 3.85x)")
    report("fig17_seq_sweep", text)

    # TBT decreases (tokens/s falls) as output length grows at fixed
    # input; short-output cells are noisy (few tokens per request), so
    # compare the endpoints
    for i in INPUT_LENGTHS:
        assert tbt[(i, 1024)] < tbt[(i, 32)], f"input {i}"
    # TTFT grows with input length at fixed output
    for o in (1, 128, 1024):
        series = [ttft[(i, o)] for i in INPUT_LENGTHS]
        assert series == sorted(series), f"output {o}"
    # bounded degradation — the paper's resilience headline
    assert degr_tbt < 6.0
    assert degr_ttft < 6.0
