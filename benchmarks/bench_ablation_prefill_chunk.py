"""Ablation — chunked-prefill granularity.

DESIGN.md calls out the chunked-prefill policy (Sarathi-style) as a
design choice of the serving engine.  Sweeping the chunk size exposes
the trade: big chunks finish prefills sooner (better TTFT) but make
iterations long and spiky (worse TBT for decoding requests).
"""

import copy

import numpy as np
from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.scheduling import AdorDeviceModel
from repro.hardware.presets import ador_table3
from repro.models.zoo import get_model
from repro.serving.dataset import ULTRACHAT_LIKE
from repro.serving.engine import ServingEngine
from repro.serving.generator import PoissonRequestGenerator
from repro.serving.qos import compute_qos
from repro.serving.scheduler import SchedulerLimits

CHUNKS = (128, 256, 512, 1024, 2048)
RATE = 12.0
COUNT = 120


def _sweep():
    model = get_model("llama3-8b")
    device = AdorDeviceModel(ador_table3())
    rng = np.random.default_rng(5)
    requests = PoissonRequestGenerator(ULTRACHAT_LIKE, RATE, rng).generate(COUNT)
    rows = []
    for chunk in CHUNKS:
        engine = ServingEngine(
            device, model,
            SchedulerLimits(max_batch=256, prefill_chunk_tokens=chunk))
        result = engine.run(copy.deepcopy(requests))
        qos = compute_qos(result.finished, result.total_time_s)
        rows.append([chunk, qos.ttft_p95_s * 1e3, qos.tbt_p95_s * 1e3,
                     qos.tokens_per_s])
    return rows


def test_ablation_prefill_chunk(benchmark, report):
    rows = run_once(benchmark, _sweep)
    report("ablation_prefill_chunk", format_table(
        ["chunk (tokens)", "TTFT p95 (ms)", "TBT p95 (ms)", "tokens/s"],
        rows,
        title=f"Ablation: prefill chunk size, LLaMA3-8B on ADOR, "
              f"{RATE} req/s",
    ))
    tbts = [row[2] for row in rows]
    # small chunks keep iterations short: best tail TBT at the small end
    assert min(tbts[:2]) <= min(tbts[3:])
    # every configuration still clears the relaxed 50 ms SLO
    assert all(tbt < 50.0 for tbt in tbts)
