"""Ablation — chunked-prefill granularity.

DESIGN.md calls out the chunked-prefill policy (Sarathi-style) as a
design choice of the serving engine.  Sweeping the chunk size exposes
the trade: big chunks finish prefills sooner (better TTFT) but make
iterations long and spiky (worse TBT for decoding requests).  The sweep
is pure spec manipulation through ``repro.api``: one
:class:`DeploymentSpec` per chunk size over a fixed workload.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.api import DeploymentSpec, WorkloadSpec, simulate

CHUNKS = (128, 256, 512, 1024, 2048)
RATE = 12.0
COUNT = 120


def _sweep():
    workload = WorkloadSpec(trace="ultrachat", rate_per_s=RATE,
                            num_requests=COUNT, seed=5)
    rows = []
    for chunk in CHUNKS:
        deployment = DeploymentSpec(chip="ador", model="llama3-8b",
                                    max_batch=256,
                                    prefill_chunk_tokens=chunk)
        report = simulate(deployment, workload)
        qos = report.qos
        rows.append([chunk, qos.ttft_p95_s * 1e3, qos.tbt_p95_s * 1e3,
                     qos.tokens_per_s])
    return rows


def test_ablation_prefill_chunk(benchmark, report):
    rows = run_once(benchmark, _sweep)
    report("ablation_prefill_chunk", format_table(
        ["chunk (tokens)", "TTFT p95 (ms)", "TBT p95 (ms)", "tokens/s"],
        rows,
        title=f"Ablation: prefill chunk size, LLaMA3-8B on ADOR, "
              f"{RATE} req/s",
    ))
    tbts = [row[2] for row in rows]
    # small chunks keep iterations short: best tail TBT at the small end
    assert min(tbts[:2]) <= min(tbts[3:])
    # every configuration still clears the relaxed 50 ms SLO
    assert all(tbt < 50.0 for tbt in tbts)
