"""Fig. 12 — peak local-memory usage per layer type.

LLaMA3-8B at batch 32: every layer type but the LM head fits in 1.5 MiB,
and the LM head peaks near 4 MiB — the data behind ADOR's 2 MiB local
memory choice (Table III).
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.models.footprint import peak_local_memory
from repro.models.zoo import get_model

KIB = 1024
MIB = 1024 * 1024


def _footprint():
    model = get_model("llama3-8b")
    report_obj = peak_local_memory(model, batch=32)
    rows = [[name, bytes_ / KIB]
            for name, bytes_ in report_obj.as_dict().items()]
    rows.sort(key=lambda row: row[1])
    return rows, report_obj


def test_fig12_local_memory(benchmark, report):
    rows, footprint = run_once(benchmark, _footprint)
    report("fig12_local_memory", format_table(
        ["layer type", "peak usage (KiB)"],
        rows,
        title="Fig. 12: peak local-memory usage, LLaMA3-8B, batch 32 "
              "(paper: all under 1.5 MiB except the LM head)",
    ))
    assert footprint.peak_excluding_lm_head <= 1.5 * MIB
    assert 3.5 * MIB <= footprint.lm_head <= 4.5 * MIB
    # the Table III sizing: peak (ex LM head) x 1.25 rounds to 2 MiB
    sized = footprint.peak_excluding_lm_head * 1.25
    assert 1 * MIB < sized <= 2 * MIB
