"""Shared-prefix KV reuse vs cold re-prefill on multi-turn sessions.

Not a paper figure: ADOR's serving analysis (Fig. 13/16) re-prefills
every request from scratch; this bench measures what block-granular
prefix reuse buys on the workload where it matters — multi-turn chat
sessions whose turn *t* prompt repeats the whole conversation so far.
Three questions, same deployment (ADOR chip, llama3-8b, paged KV pool):

1. **QoS** — at a moderate session rate, how much TTFT does serving
   the history from cached KV blocks save?  (The uncached suffix is a
   short fresh question; the cold path re-prefills thousands of
   history tokens per turn.)
2. **Capacity** — bisecting the session arrival rate under a TTFT SLO
   (``find_capacity`` models single-turn Poisson streams only, so the
   bench bisects :func:`repro.api.simulate` directly): how much higher
   a rate does the cached endpoint sustain?
3. **Placement** — across a 4-replica cluster, how much hit rate does
   session-affinity routing preserve that round-robin scatters?
   (Caches are per-replica; a turn routed away from its session's
   replica always misses.)

The headline (full config): >= 70% of prefix-bearing turns hit, TTFT
p95 at <= 0.6x the cold path, >= 1.3x the cold SLO-capacity, and
session-affinity beats round-robin's hit rate by >= 15 points.  Every
run is deterministic, so the committed numbers
(``BENCH_prefix_reuse.json``) regenerate exactly.

Run standalone for CI smoke: ``python benchmarks/bench_prefix_reuse.py
--quick`` (fewer seeds and sessions, looser bars, still writes the
JSON).
"""

import argparse
import dataclasses
import json
import pathlib
import sys

import numpy as np

from repro.analysis.tables import format_table
from repro.api import (
    DeploymentSpec,
    PrefixCacheSpec,
    SessionConfig,
    WorkloadSpec,
    simulate,
    simulate_cluster,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_prefix_reuse.json"

GIB = 1 << 30

#: Long conversations with short fresh questions make the cold path
#: prefill-dominated (the regime prefix reuse targets): ~6 turns keep
#: ~4k tokens of history alive while each turn adds only ~60 question
#: tokens, and 5 s think times keep many sessions concurrently warm.
SESSIONS = SessionConfig(mean_turns=6.0, answer_median=100.0,
                         think_time_mean_s=5.0, max_context=4096)

FULL = {
    "seeds": (3, 7, 11),
    "qos_rate_per_s": 2.0,
    "num_sessions": 150,
    # the capacity knee needs steady-state pressure: sessions live
    # ~40 s (6 turns, 5 s think times), so short streams never load
    # the endpoint enough to separate the variants
    "capacity_sessions": 150,
    "max_batch": 32,
    "kv_budget_gib": 16,
    "slo_ttft_p95_s": 0.5,
    "rate_low": 0.5,
    "rate_high": 16.0,
    "bisect_iterations": 7,
    "replicas": 4,
    "cluster_rate_per_s": 6.0,
}
QUICK = {
    "seeds": (3,),
    "qos_rate_per_s": 2.0,
    "num_sessions": 60,
    "capacity_sessions": 150,
    "max_batch": 32,
    "kv_budget_gib": 16,
    "slo_ttft_p95_s": 0.5,
    "rate_low": 0.5,
    "rate_high": 16.0,
    "bisect_iterations": 5,
    "replicas": 4,
    "cluster_rate_per_s": 6.0,
}


def _deployment(config, cached, replicas=1, router="round-robin"):
    return DeploymentSpec(
        chip="ador", model="llama3-8b",
        max_batch=config["max_batch"],
        kv_budget_bytes=config["kv_budget_gib"] * GIB,
        replicas=replicas, router=router,
        prefix_cache=PrefixCacheSpec(reclaimable_fraction=0.9)
        if cached else None,
    )


def _workload(config, rate, seed, sessions=None):
    return WorkloadSpec(trace="ultrachat", arrival="sessions",
                        session=SESSIONS, rate_per_s=rate,
                        num_requests=sessions or config["num_sessions"],
                        seed=seed)


def _qos_pair(config, seed) -> dict:
    """Cold vs cached endpoint on one identical session stream."""
    workload = _workload(config, config["qos_rate_per_s"], seed)
    cold = simulate(_deployment(config, cached=False), workload)
    hot = simulate(_deployment(config, cached=True), workload)
    stats = hot.result.prefix_cache
    return {
        "seed": seed,
        "requests": len(cold.result.finished),
        "cold_ttft_p95_s": cold.qos.ttft_p95_s,
        "hot_ttft_p95_s": hot.qos.ttft_p95_s,
        "cold_unfinished": len(cold.result.unfinished),
        "hot_unfinished": len(hot.result.unfinished),
        "hit_rate": stats.hit_rate,
        "saved_prefill_tokens": stats.saved_prefill_tokens,
        "evictions": stats.evictions,
        "preemptions": stats.preemptions,
    }


def _slo_capacity(config, cached, seed) -> float:
    """Highest session rate whose TTFT p95 meets the SLO (bisection).

    ``find_capacity`` deliberately rejects prefix-cached deployments
    (its probe engine models single-turn Poisson streams), so the
    bench bisects full session simulations for both variants — same
    search, same workload shape, only the cache differs.
    """
    deployment = _deployment(config, cached)

    def meets_slo(rate: float) -> bool:
        report = simulate(deployment, _workload(
            config, rate, seed, sessions=config["capacity_sessions"]))
        return (not report.result.unfinished
                and report.qos.ttft_p95_s <= config["slo_ttft_p95_s"])

    low, high = config["rate_low"], config["rate_high"]
    if not meets_slo(low):
        return 0.0
    if meets_slo(high):
        return high
    for _ in range(config["bisect_iterations"]):
        mid = (low + high) / 2.0
        if meets_slo(mid):
            low = mid
        else:
            high = mid
    return low


def _cluster_hit_rates(config, seed) -> dict:
    """Per-replica caches: session-affinity vs round-robin routing."""
    workload = _workload(config, config["cluster_rate_per_s"], seed)
    results = {}
    for router in ("session-affinity", "round-robin"):
        report = simulate_cluster(
            _deployment(config, cached=True,
                        replicas=config["replicas"], router=router),
            workload)
        results[router] = report.result.prefix_cache.hit_rate
    return {
        "seed": seed,
        "affinity_hit_rate": results["session-affinity"],
        "round_robin_hit_rate": results["round-robin"],
    }


def _determinism_probe(config) -> bool:
    """Same stream + spec => identical QoS and cache counters."""
    def run_once():
        report = simulate(
            _deployment(config, cached=True),
            _workload(config, config["qos_rate_per_s"],
                      config["seeds"][0]))
        return report.qos, report.result.prefix_cache

    return run_once() == run_once()


def run_prefix_reuse(quick: bool = False) -> dict:
    config = QUICK if quick else FULL
    qos_runs = [_qos_pair(config, seed) for seed in config["seeds"]]
    capacity_runs = [
        {
            "seed": seed,
            "cold_capacity_per_s": _slo_capacity(config, False, seed),
            "hot_capacity_per_s": _slo_capacity(config, True, seed),
        }
        for seed in config["seeds"]
    ]
    cluster_runs = [_cluster_hit_rates(config, seed)
                    for seed in config["seeds"]]

    cold_ttft = float(np.mean([r["cold_ttft_p95_s"] for r in qos_runs]))
    hot_ttft = float(np.mean([r["hot_ttft_p95_s"] for r in qos_runs]))
    cold_cap = float(np.mean(
        [r["cold_capacity_per_s"] for r in capacity_runs]))
    hot_cap = float(np.mean(
        [r["hot_capacity_per_s"] for r in capacity_runs]))
    affinity = float(np.mean(
        [r["affinity_hit_rate"] for r in cluster_runs]))
    round_robin = float(np.mean(
        [r["round_robin_hit_rate"] for r in cluster_runs]))
    return {
        "benchmark": "prefix_reuse",
        "mode": "quick" if quick else "full",
        "config": {
            **{key: (list(value) if isinstance(value, tuple) else value)
               for key, value in config.items()},
            "session": dataclasses.asdict(SESSIONS),
        },
        "qos_runs": qos_runs,
        "capacity_runs": capacity_runs,
        "cluster_runs": cluster_runs,
        "summary": {
            "cold_ttft_p95_s": cold_ttft,
            "hot_ttft_p95_s": hot_ttft,
            "ttft_ratio": hot_ttft / cold_ttft,
            "hit_rate": float(np.mean(
                [r["hit_rate"] for r in qos_runs])),
            "saved_prefill_tokens": int(np.mean(
                [r["saved_prefill_tokens"] for r in qos_runs])),
            "cold_capacity_per_s": cold_cap,
            "hot_capacity_per_s": hot_cap,
            "capacity_ratio": hot_cap / cold_cap if cold_cap else 0.0,
            "affinity_hit_rate": affinity,
            "round_robin_hit_rate": round_robin,
            "affinity_gap": affinity - round_robin,
            "deterministic": _determinism_probe(config),
        },
    }


def render(payload: dict) -> str:
    config = payload["config"]
    qos_rows = [[r["seed"],
                 r["cold_ttft_p95_s"] * 1e3,
                 r["hot_ttft_p95_s"] * 1e3,
                 r["hot_ttft_p95_s"] / r["cold_ttft_p95_s"],
                 f"{r['hit_rate']:.1%}",
                 r["saved_prefill_tokens"],
                 r["evictions"]]
                for r in payload["qos_runs"]]
    cap_rows = [[r["seed"],
                 r["cold_capacity_per_s"],
                 r["hot_capacity_per_s"],
                 r["hot_capacity_per_s"] / r["cold_capacity_per_s"]
                 if r["cold_capacity_per_s"] else 0.0]
                for r in payload["capacity_runs"]]
    cluster_rows = [[r["seed"],
                     f"{r['affinity_hit_rate']:.1%}",
                     f"{r['round_robin_hit_rate']:.1%}"]
                    for r in payload["cluster_runs"]]
    summary = payload["summary"]
    return "\n\n".join([
        format_table(
            ["seed", "cold p95 TTFT (ms)", "hot p95 TTFT (ms)", "ratio",
             "hit rate", "tokens saved", "evictions"],
            qos_rows,
            title=f"Prefix reuse on multi-turn ultrachat sessions "
                  f"({config['qos_rate_per_s']:g} sessions/s, "
                  f"{config['num_sessions']} sessions, ADOR llama3-8b, "
                  f"{config['kv_budget_gib']} GiB KV)"),
        format_table(
            ["seed", "cold cap (sess/s)", "hot cap (sess/s)", "ratio"],
            cap_rows,
            title=f"SLO capacity (TTFT p95 <= "
                  f"{config['slo_ttft_p95_s']:g} s, bisected over "
                  f"session rate)"),
        format_table(
            ["seed", "affinity hit rate", "round-robin hit rate"],
            cluster_rows,
            title=f"{config['replicas']}-replica cluster at "
                  f"{config['cluster_rate_per_s']:g} sessions/s "
                  f"(per-replica caches)"),
        f"mean: TTFT ratio {summary['ttft_ratio']:.3f}, "
        f"hit rate {summary['hit_rate']:.1%}, "
        f"capacity {summary['cold_capacity_per_s']:.2f} -> "
        f"{summary['hot_capacity_per_s']:.2f} sessions/s "
        f"({summary['capacity_ratio']:.2f}x), "
        f"affinity gap "
        f"{summary['affinity_gap']:+.1%} over round-robin, "
        f"deterministic={summary['deterministic']}",
    ])


def check(payload: dict) -> None:
    summary = payload["summary"]
    quick = payload["mode"] == "quick"
    assert summary["deterministic"], \
        "cached run diverged between identical replays"
    for r in payload["qos_runs"]:
        assert r["cold_unfinished"] == 0 and r["hot_unfinished"] == 0, \
            f"seed {r['seed']}: endpoint dropped requests"
        assert r["hit_rate"] > 0, \
            f"seed {r['seed']}: the cache never hit"
    # the headline claims; the quick config is too small for the full
    # bars but must show the same direction
    min_hit = 0.3 if quick else 0.7
    max_ttft_ratio = 0.85 if quick else 0.6
    min_capacity_ratio = 1.1 if quick else 1.3
    min_gap = 0.05 if quick else 0.15
    assert summary["hit_rate"] >= min_hit, \
        f"hit rate {summary['hit_rate']:.1%} below the {min_hit:.0%} bar"
    assert summary["ttft_ratio"] <= max_ttft_ratio, \
        f"hot TTFT {summary['ttft_ratio']:.3f}x cold " \
        f"(bar: {max_ttft_ratio})"
    assert summary["capacity_ratio"] >= min_capacity_ratio, \
        f"capacity ratio {summary['capacity_ratio']:.2f}x below the " \
        f"{min_capacity_ratio}x bar"
    assert summary["affinity_gap"] >= min_gap, \
        f"session-affinity hit-rate gap {summary['affinity_gap']:+.1%} " \
        f"below the {min_gap:.0%} bar"


def test_prefix_reuse(benchmark, report):
    # imported lazily: the CI smoke runs this file standalone in an
    # environment without pytest
    from conftest import run_once

    payload = run_once(benchmark, lambda: run_prefix_reuse(quick=False))
    report("prefix_reuse", render(payload))
    DEFAULT_OUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {DEFAULT_OUT}]")
    check(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small config for CI smoke")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    payload = run_prefix_reuse(quick=args.quick)
    print(render(payload))
    args.out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {args.out}]")
    check(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
