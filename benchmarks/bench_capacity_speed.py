"""Capacity-planning speed — the fast SLO-capacity search vs reference.

Not a paper figure: this bench measures the *capacity search itself* on
a Fig. 16-style study (four model/SLO scenarios, 250 requests per
probe) and extends the repo's recorded perf trajectory
(``BENCH_capacity_speed.json``, the second entry after
``BENCH_sim_speed.json``).  It compares:

* **reference** — :func:`repro.serving.capacity.reference_capacity_search`,
  the pre-optimization sequential algorithm: eager endpoint probes,
  fresh workload generation per probe, full-horizon simulations and a
  final best-rate re-simulation;
* **fast** — :func:`repro.serving.capacity.max_capacity_under_slo` at
  default settings: probe caching with lazy endpoints, arrival-template
  reuse, saturation early-abort, and one shared memoized device model
  across every probe of the study.

The found rates must be **identical** per scenario (the bench asserts
it), and a separate untimed pass runs ``early_abort="verify"`` to prove
per-probe that every abort verdict matches the full simulation — the
reported parity must be 100%.  A full-mode extra measures speculative
parallel bracketing (``parallel_probes=3`` over a shared probe pool),
asserting rate identity only: with memoized ~50-100 ms probes the
in-process cache usually beats scattering work over worker processes,
so its wall-clock is informational.

Run standalone for CI smoke: ``python benchmarks/bench_capacity_speed.py
--quick`` (two scenarios, 150 requests, asserts fast >= reference,
still writes the JSON).
"""

import argparse
import json
import pathlib
import sys
import time

from repro.analysis.tables import format_table
from repro.core.scheduling import AdorDeviceModel
from repro.hardware.presets import ador_table3
from repro.models.zoo import get_model
from repro.perf.cache import CachedDeviceModel
from repro.serving.capacity import (
    max_capacity_under_slo,
    probe_pool,
    reference_capacity_search,
)
from repro.serving.dataset import ULTRACHAT_LIKE

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_capacity_speed.json"

#: (model, devices, SLO label, TBT SLO) — the Fig. 16 study, at the
#: committed bench's exact operating point (250 requests, 7 bisection
#: steps, seed 7, default rate bounds).
SCENARIOS = (
    ("llama3-8b", 1, "strict", 0.025),
    ("llama3-8b", 1, "relaxed", 0.050),
    ("yi-34b", 2, "strict", 0.030),
    ("yi-34b", 2, "relaxed", 0.060),
)
QUICK_SCENARIOS = SCENARIOS[:2]

FULL_SEARCH = dict(request_count=250, iterations=7, seed=7)
QUICK_SEARCH = dict(request_count=150, iterations=5, seed=7,
                    rate_bounds=(0.5, 128.0))


def _study(scenarios, search, device, **kwargs):
    """Run one capacity study; returns (results, wall_seconds)."""
    results = []
    start = time.perf_counter()
    for model_name, devices, label, slo in scenarios:
        model = get_model(model_name)
        results.append(search(device, model, ULTRACHAT_LIKE, slo_tbt_s=slo,
                              num_devices=devices, **kwargs))
    return results, time.perf_counter() - start


def run_capacity_speed(quick: bool = False, workers: int = 3) -> dict:
    scenarios = QUICK_SCENARIOS if quick else SCENARIOS
    search_kwargs = QUICK_SEARCH if quick else FULL_SEARCH

    baseline, baseline_wall = _study(
        scenarios, reference_capacity_search, AdorDeviceModel(ador_table3()),
        **search_kwargs)
    # one memoized device shared by every probe of every scenario — the
    # sweep-cache half of the optimization (fresh wrapper, cold start
    # included in the measured wall)
    fast_device = CachedDeviceModel(AdorDeviceModel(ador_table3()))
    fast, fast_wall = _study(
        scenarios, max_capacity_under_slo, fast_device, **search_kwargs)

    rows = []
    for (model_name, devices, label, slo), ref, opt in \
            zip(scenarios, baseline, fast):
        rows.append({
            "model": model_name,
            "devices": devices,
            "slo": label,
            "slo_tbt_ms": slo * 1e3,
            "reference_rate": ref.max_requests_per_s,
            "fast_rate": opt.max_requests_per_s,
            "rate_identical": ref.max_requests_per_s
            == opt.max_requests_per_s,
            "qos_identical": ref.qos_at_max == opt.qos_at_max,
            "reference_simulations": ref.simulations,
            "fast_simulations": opt.simulations,
            "fast_aborted_probes": sum(1 for p in opt.probes if p.aborted),
        })

    # untimed parity pass: every abort verdict re-checked against the
    # full simulation, per probe
    verify_device = CachedDeviceModel(AdorDeviceModel(ador_table3()))
    probes = aborted = matches = 0
    for model_name, devices, label, slo in scenarios:
        model = get_model(model_name)
        outcome = max_capacity_under_slo(
            verify_device, model, ULTRACHAT_LIKE, slo_tbt_s=slo,
            num_devices=devices, early_abort="verify", **search_kwargs)
        probes += len(outcome.probes)
        for probe in outcome.probes:
            if probe.aborted:
                aborted += 1
                matches += bool(probe.abort_verdict_matches)

    payload = {
        "benchmark": "capacity_speed",
        "mode": "quick" if quick else "full",
        "scenarios": rows,
        "reference_wall_s": baseline_wall,
        "fast_wall_s": fast_wall,
        "speedup": baseline_wall / fast_wall,
        "found_rate_identical": all(r["rate_identical"] for r in rows),
        "early_abort": {
            "probes": probes,
            "aborted": aborted,
            "parity_matches": matches,
            "parity_rate": matches / aborted if aborted else 1.0,
        },
    }

    if not quick:
        # speculative parallel bracketing over a shared probe pool:
        # rate identity asserted, wall-clock informational (see module
        # docstring)
        base_device = AdorDeviceModel(ador_table3())
        with probe_pool(base_device, workers=workers) as pool:
            parallel, parallel_wall = _study(
                scenarios, max_capacity_under_slo, base_device,
                parallel_probes=3, pool=pool, **search_kwargs)
        payload["parallel_wall_s"] = parallel_wall
        payload["parallel_rate_identical"] = all(
            ref.max_requests_per_s == par.max_requests_per_s
            for ref, par in zip(baseline, parallel))
    return payload


def render(payload: dict) -> str:
    rows = [[r["model"], r["devices"], r["slo"], r["slo_tbt_ms"],
             r["reference_rate"], r["fast_rate"],
             str(r["rate_identical"]), r["reference_simulations"],
             r["fast_simulations"], r["fast_aborted_probes"]]
            for r in payload["scenarios"]]
    abort = payload["early_abort"]
    lines = [
        format_table(
            ["model", "devices", "SLO", "TBT SLO (ms)", "ref rate (req/s)",
             "fast rate (req/s)", "identical", "ref sims", "fast sims",
             "aborted"],
            rows,
            title="Capacity-search speed: fast search (probe cache + lazy "
                  "endpoints + arrival reuse + early abort + shared device "
                  "cache) vs sequential reference"),
        f"study wall: reference {payload['reference_wall_s']:.2f} s, "
        f"fast {payload['fast_wall_s']:.2f} s "
        f"({payload['speedup']:.1f}x), found rates identical: "
        f"{payload['found_rate_identical']}",
        f"early-abort parity: {abort['parity_matches']}/{abort['aborted']} "
        f"aborted probes match the full-simulation verdict "
        f"({abort['parity_rate']:.0%}) across {abort['probes']} probes",
    ]
    if "parallel_wall_s" in payload:
        lines.append(
            f"parallel bracketing (3 probes/round): "
            f"{payload['parallel_wall_s']:.2f} s, rates identical: "
            f"{payload['parallel_rate_identical']}")
    return "\n\n".join(lines)


def check(payload: dict, min_speedup: float) -> None:
    assert payload["found_rate_identical"], \
        "fast capacity search diverged from the sequential reference"
    for row in payload["scenarios"]:
        assert row["qos_identical"], \
            f"{row['model']}/{row['slo']}: QoS at max diverged"
    abort = payload["early_abort"]
    assert abort["parity_rate"] == 1.0, \
        f"early-abort verdict parity {abort['parity_rate']:.0%} < 100%"
    assert payload["speedup"] >= min_speedup, \
        f"capacity speedup {payload['speedup']:.2f}x < {min_speedup:.1f}x"
    if "parallel_rate_identical" in payload:
        assert payload["parallel_rate_identical"], \
            "parallel bracketing diverged from the sequential reference"


def test_capacity_speed(benchmark, report):
    # imported lazily: the CI smoke runs this file standalone in an
    # environment without pytest
    from conftest import run_once

    payload = run_once(benchmark, lambda: run_capacity_speed(quick=False))
    report("capacity_speed", render(payload))
    DEFAULT_OUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {DEFAULT_OUT}]")
    check(payload, min_speedup=3.0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small config for CI smoke")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--workers", type=int, default=3,
                        help="probe-pool workers for the parallel extra")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail below this study speedup "
                             "(default: 3.0 full, 1.0 quick)")
    args = parser.parse_args(argv)
    payload = run_capacity_speed(quick=args.quick, workers=args.workers)
    print(render(payload))
    args.out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {args.out}]")
    minimum = args.min_speedup
    if minimum is None:
        minimum = 1.0 if args.quick else 3.0
    check(payload, min_speedup=minimum)
    return 0


if __name__ == "__main__":
    sys.exit(main())
