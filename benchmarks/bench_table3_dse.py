"""Table III — the hardware ADOR's search proposes.

Runs the full three-step DSE under the paper's A100-class constraints
and regenerates the Table III comparison: the search must rediscover the
64x64 x 32-core, MT 16x16 design at ~516 mm^2 / ~417 TFLOPS.
"""

import time

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.requirements import (
    SearchRequest,
    ServiceLevelObjectives,
    VendorConstraints,
)
from repro.core.search import AdorSearch
from repro.hardware.area import AreaModel
from repro.hardware.presets import ader_reference_designs

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 ** 3


def _request():
    return SearchRequest(
        model_names=("llama3-8b",),
        slos=ServiceLevelObjectives(ttft_slo_s=0.05, tbt_slo_s=0.030,
                                    batch_size=128, seq_len=1024),
        vendor=VendorConstraints(area_budget_mm2=550.0),
    )


def _run_search():
    return AdorSearch(_request()).run()


def _table_rows(result):
    area_model = AreaModel()
    designs = ader_reference_designs()
    designs["ADOR (searched)"] = result.best.chip
    rows = []
    for name, chip in designs.items():
        sa = str(chip.systolic_array) if chip.systolic_array else "-"
        mt = str(chip.mac_tree) if chip.mac_tree else "-"
        rows.append([
            name, sa, mt, chip.cores,
            chip.local_memory.size_bytes / KIB,
            chip.global_memory.size_bytes / MIB,
            chip.dram.size_bytes / GIB,
            chip.memory_bandwidth / 1e12,
            chip.p2p.bandwidth_bytes_per_s / 1e9,
            chip.peak_flops / 1e12,
            area_model.die_area_mm2(chip),
        ])
    return rows


def test_table3_design_search(benchmark, report):
    result = run_once(benchmark, _run_search)

    # DSE memoization speedup: choose_mt_lanes depends only on
    # (tree_size, cores) and local_memory_requirement on nothing, so
    # caching them must leave the searched design identical while
    # skipping the per-candidate recomputation.  Wall times go to stdout
    # only — the committed report must stay deterministic.
    start = time.perf_counter()
    unmemoized = AdorSearch(_request(), memoize=False).run()
    unmemoized_s = time.perf_counter() - start
    start = time.perf_counter()
    memoized = AdorSearch(_request()).run()
    memoized_s = time.perf_counter() - start
    assert memoized.best.chip == unmemoized.best.chip
    assert memoized.log == unmemoized.log
    print(f"\n[DSE memoization speedup: {unmemoized_s / memoized_s:.1f}x "
          f"({unmemoized_s:.2f} s unmemoized, {memoized_s:.2f} s "
          f"memoized), identical search result]")

    rows = _table_rows(result)
    report("table3_dse", format_table(
        ["design", "SA", "MT", "cores", "local (KiB)", "global (MiB)",
         "DRAM (GiB)", "mem BW (TB/s)", "P2P (GB/s)", "perf (TFLOPS)",
         "die (mm2)"],
        rows,
        title="Table III: designs compared (searched row must match the "
              "paper's ADOR column)",
    ) + "\n\nsearch log (tail):\n" + "\n".join(result.log[-6:]))

    assert result.requirements_met
    chip = result.best.chip
    assert chip.systolic_array.rows == 64 and chip.cores == 32
    assert chip.mac_tree.tree_size == 16 and chip.mac_tree.lanes == 16
    assert chip.local_memory.size_bytes == 2048 * KIB
    assert chip.global_memory.size_bytes == 16 * MIB
    assert abs(result.best.area_mm2 - 516.0) < 5.0
    assert abs(chip.peak_flops / 1e12 - 417.8) < 5.0
