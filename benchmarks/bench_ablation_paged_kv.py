"""Ablation — paged KV allocation vs. whole-request reservation.

The paper's serving background builds on vLLM's paged KV management;
this bench quantifies why on the ADOR design's 80 GiB device: paged
admission only needs the prompt resident, so concurrent-request capacity
multiplies, and internal fragmentation stays bounded by one block per
request.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.hardware.presets import ador_table3
from repro.models.zoo import get_model
from repro.serving.kv_allocator import KvBlockConfig, PagedKvAllocator

GIB = 1024 ** 3


def _compare():
    model = get_model("llama3-8b")
    chip = ador_table3()
    pool = chip.dram.size_bytes * 0.9 - model.param_bytes
    allocator = PagedKvAllocator(model, KvBlockConfig(block_tokens=16,
                                                      pool_bytes=pool))
    rows = []
    for prompt, output in ((128, 256), (256, 768), (757, 263), (1024, 1024)):
        paged, reserved = allocator.max_admissible_prompts(prompt, output)
        rows.append([f"{prompt} in / {output} out", reserved, paged,
                     paged / reserved])
    # fragmentation at a realistic mix
    for rid, prompt in enumerate((100, 250, 600, 900) * 25):
        if allocator.can_admit(prompt):
            allocator.admit(rid, prompt)
    frag_gib = allocator.internal_fragmentation() / GIB
    return rows, frag_gib, allocator.active_requests


def test_ablation_paged_kv(benchmark, report):
    rows, frag_gib, active = run_once(benchmark, _compare)
    report("ablation_paged_kv", format_table(
        ["request shape", "reserved admits", "paged admits", "gain (x)"],
        rows,
        title="Ablation: paged KV vs whole-request reservation, "
              "LLaMA3-8B on one ADOR device (80 GiB)",
    ) + (f"\n\ninternal fragmentation with {active} mixed requests "
         f"resident: {frag_gib:.3f} GiB (bounded by one 16-token block "
         f"per request)"))
    # paging multiplies admission capacity whenever outputs are long
    assert all(row[3] >= 1.0 for row in rows)
    long_output = next(r for r in rows if "256 in" in r[0])
    assert long_output[3] > 3.0
    assert frag_gib < 0.2
