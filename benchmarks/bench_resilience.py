"""Goodput under replica crashes, and recovery: elastic vs fixed fleet.

Not a paper figure: ADOR's serving analysis (Fig. 13/16) assumes a
healthy fixed fleet; this bench measures what deterministic fault
injection (``repro.cluster.faults``) reveals about serving *through*
failures.  Two questions:

1. **Degradation** — a 4x ADOR fleet serves the identical steady
   ultrachat stream while per-replica crash MTBF sweeps from "never"
   down to well inside the run length.  Crashes lose every in-flight
   request (requeued under the retry budget, original arrival time
   kept), so raw throughput sags and the TTFT tail — and with it
   **goodput**, completions meeting the TTFT SLO per second — degrades
   monotonically as crashes become more frequent.
2. **Recovery** — one crash, two fleets.  The fixed fleet waits out
   the full restart delay with a hole in its capacity; the autoscaled
   fleet sees the crash as capacity loss at the next decision tick and
   fills the hole from its warm pool in a couple of seconds.  Recovery
   time is read off the fleet timeline: first instant the ready count
   is back to its pre-crash value.

Fault schedules are seeded per replica, so every row regenerates
bit-identically (``BENCH_resilience.json``); the determinism probe
reruns the heaviest-crash config and compares the full fault trace
and QoS.

Run standalone for CI smoke: ``python benchmarks/bench_resilience.py
--quick`` (one seed, shorter stream, same shape).
"""

import argparse
import json
import pathlib
import sys

import numpy as np

from repro.analysis.tables import format_table
from repro.cluster import AutoscaleSpec, ClusterEngine
from repro.cluster.faults import FaultEvent, FaultSpec
from repro.core.scheduling import device_model_for
from repro.hardware.registry import get_chip
from repro.models.zoo import get_model
from repro.perf.cache import CachedDeviceModel
from repro.serving.dataset import ULTRACHAT_LIKE
from repro.serving.generator import PoissonRequestGenerator
from repro.serving.qos import goodput_per_s
from repro.serving.scheduler import SchedulerLimits

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_resilience.json"

#: 14 req/s across 4 replicas runs each at ~80% of its ~4.5 req/s
#: capacity, so the fault-free fleet meets a 1 s TTFT SLO comfortably
#: and every crash-induced requeue burst shows up in the tail.  MTBFs
#: are per replica: 30 s over a ~35 s run means every replica is
#: expected to crash about once.
FULL = {
    "seeds": (3, 7, 11),
    "rate_per_s": 14.0,
    "num_requests": 400,
    "replicas": 4,
    "max_batch": 12,
    "crash_mtbfs_s": (None, 120.0, 60.0, 30.0),
    "restart_delay_s": 8.0,
    "max_retries": 3,
    "slo_ttft_s": 1.0,
    "crash_time_s": 10.0,
}
QUICK = {
    "seeds": (3,),
    "rate_per_s": 14.0,
    "num_requests": 150,
    "replicas": 4,
    "max_batch": 12,
    "crash_mtbfs_s": (None, 60.0, 20.0),
    "restart_delay_s": 8.0,
    "max_retries": 3,
    "slo_ttft_s": 1.0,
    "crash_time_s": 5.0,
}


def _stream(config, seed):
    rng = np.random.default_rng(seed)
    return PoissonRequestGenerator(
        ULTRACHAT_LIKE, config["rate_per_s"], rng).generate(
        config["num_requests"])


def _limits(config) -> SchedulerLimits:
    return SchedulerLimits(max_batch=config["max_batch"],
                           prefill_chunk_tokens=512)


def _fault_spec(config, mtbf_s) -> FaultSpec | None:
    if mtbf_s is None:
        return None
    return FaultSpec(seed=1, crash_mtbf_s=mtbf_s,
                     restart_delay_s=config["restart_delay_s"],
                     max_retries=config["max_retries"],
                     slo_ttft_s=config["slo_ttft_s"])


def _run_degradation(config, device, model, seed, mtbf_s) -> dict:
    engine = ClusterEngine(device, model, _limits(config),
                           replicas=config["replicas"],
                           router="least-outstanding",
                           faults=_fault_spec(config, mtbf_s))
    result = engine.run(_stream(config, seed), max_sim_seconds=600.0)
    wall = result.merged.total_time_s
    finished = result.merged.finished
    trace = result.faults
    return {
        "seed": seed,
        "crash_mtbf_s": mtbf_s,
        "finished": len(finished),
        "failed": trace.failed_count if trace else 0,
        "crashes": trace.crashes if trace else 0,
        "retries": trace.retries if trace else 0,
        "lost_requests": trace.lost_requests if trace else 0,
        "throughput_req_s": len(finished) / wall,
        "goodput_req_s": goodput_per_s(finished, wall,
                                       config["slo_ttft_s"]),
        "p99_ttft_s": result.qos().ttft_p99_s,
    }


def _recovery_spec(config) -> FaultSpec:
    return FaultSpec(
        seed=1, restart_delay_s=config["restart_delay_s"],
        max_retries=config["max_retries"],
        slo_ttft_s=config["slo_ttft_s"],
        events=(FaultEvent(kind="crash", replica_id=0,
                           time_s=config["crash_time_s"]),))


def _recovery_from_timeline(trace, crash_time_s) -> float:
    """Seconds from the crash until the ready count is back to its
    pre-crash value (timeline samples land on decision ticks)."""
    before = max((sample.ready for sample in trace.timeline
                  if sample.clock_s < crash_time_s), default=0)
    for sample in trace.timeline:
        if sample.clock_s > crash_time_s and sample.ready >= before:
            return sample.clock_s - crash_time_s
    return float("inf")


def _run_recovery(config, device, model) -> dict:
    """One crash at a fixed instant: fixed fleet vs warm elastic fleet."""
    seed = config["seeds"][0]
    spec = _recovery_spec(config)
    fixed = ClusterEngine(device, model, _limits(config),
                          replicas=config["replicas"],
                          router="least-outstanding",
                          faults=spec).run(
        _stream(config, seed), max_sim_seconds=600.0)
    # min == max pins the fleet size: the only scaling the policy can
    # do is replace crashed capacity, so the recovery measurement is
    # not confounded by load-driven ups/downs draining the warm pool
    autoscale = AutoscaleSpec(
        policy="queue-depth",
        min_replicas=config["replicas"],
        max_replicas=config["replicas"],
        decision_interval_s=1.0,
        provision_latency_s=10.0,
        warm_pool_size=2,
        warm_provision_s=1.0)
    elastic = ClusterEngine(device, model, _limits(config),
                            replicas=config["replicas"],
                            router="least-outstanding",
                            autoscale=autoscale, faults=spec).run(
        _stream(config, seed), max_sim_seconds=600.0)
    fixed_downtime = dict(fixed.faults.downtime_by_replica).get(0, 0.0)
    return {
        "crash_time_s": config["crash_time_s"],
        "fixed_recovery_s": fixed_downtime,
        "elastic_recovery_s": _recovery_from_timeline(
            elastic.autoscale, config["crash_time_s"]),
        "fixed_finished": len(fixed.merged.finished),
        "elastic_finished": len(elastic.merged.finished),
        "fixed_failed": fixed.faults.failed_count,
        "elastic_failed": elastic.faults.failed_count,
        "elastic_launches": elastic.autoscale.launched,
        "elastic_warm_launches": elastic.autoscale.warm_launches,
    }


def _determinism_probe(config, device, model) -> bool:
    """Same spec + seed => identical fault trace, retries, and QoS."""
    heaviest = config["crash_mtbfs_s"][-1]

    def run_once():
        engine = ClusterEngine(device, model, _limits(config),
                               replicas=config["replicas"],
                               router="least-outstanding",
                               faults=_fault_spec(config, heaviest))
        result = engine.run(_stream(config, config["seeds"][0]),
                            max_sim_seconds=600.0)
        trace = result.faults
        return (trace.records, trace.retries,
                tuple(sorted(r.request_id for r in trace.failed)),
                trace.downtime_by_replica, result.qos())

    return run_once() == run_once()


def run_resilience(quick: bool = False) -> dict:
    config = QUICK if quick else FULL
    model = get_model("llama3-8b")
    device = CachedDeviceModel(device_model_for(get_chip("ador")))
    runs = [_run_degradation(config, device, model, seed, mtbf)
            for mtbf in config["crash_mtbfs_s"]
            for seed in config["seeds"]]
    by_mtbf = []
    for mtbf in config["crash_mtbfs_s"]:
        rows = [r for r in runs if r["crash_mtbf_s"] == mtbf]
        by_mtbf.append({
            "crash_mtbf_s": mtbf,
            "goodput_req_s": float(np.mean(
                [r["goodput_req_s"] for r in rows])),
            "throughput_req_s": float(np.mean(
                [r["throughput_req_s"] for r in rows])),
            "p99_ttft_s": float(np.mean(
                [r["p99_ttft_s"] for r in rows])),
            "crashes": int(np.sum([r["crashes"] for r in rows])),
            "retries": int(np.sum([r["retries"] for r in rows])),
            "failed": int(np.sum([r["failed"] for r in rows])),
        })
    recovery = _run_recovery(config, device, model)
    clean_goodput = by_mtbf[0]["goodput_req_s"]
    worst_goodput = by_mtbf[-1]["goodput_req_s"]
    return {
        "benchmark": "resilience",
        "mode": "quick" if quick else "full",
        "config": {key: (list(value) if isinstance(value, tuple)
                         else value)
                   for key, value in config.items()},
        "runs": runs,
        "by_mtbf": by_mtbf,
        "recovery": recovery,
        "summary": {
            "clean_goodput_req_s": clean_goodput,
            "worst_goodput_req_s": worst_goodput,
            "goodput_retained": worst_goodput / clean_goodput,
            "clean_p99_ttft_s": by_mtbf[0]["p99_ttft_s"],
            "worst_p99_ttft_s": by_mtbf[-1]["p99_ttft_s"],
            "fixed_recovery_s": recovery["fixed_recovery_s"],
            "elastic_recovery_s": recovery["elastic_recovery_s"],
            "deterministic": _determinism_probe(config, device, model),
        },
    }


def render(payload: dict) -> str:
    config = payload["config"]
    rows = [["never" if r["crash_mtbf_s"] is None
             else f"{r['crash_mtbf_s']:g}",
             r["goodput_req_s"],
             r["throughput_req_s"],
             r["p99_ttft_s"] * 1e3,
             r["crashes"], r["retries"], r["failed"]]
            for r in payload["by_mtbf"]]
    summary = payload["summary"]
    recovery = payload["recovery"]
    return "\n\n".join([
        format_table(
            ["crash MTBF (s)", "goodput (req/s)", "throughput (req/s)",
             "p99 TTFT (ms)", "crashes", "retries", "failed"],
            rows,
            title=f"{config['replicas']}x ADOR under seeded crashes, "
                  f"steady ultrachat {config['rate_per_s']:g} req/s, "
                  f"TTFT SLO {config['slo_ttft_s'] * 1e3:g} ms "
                  f"(mean over {len(config['seeds'])} seed(s))"),
        f"recovery from one crash at t={recovery['crash_time_s']:g}s: "
        f"fixed fleet {recovery['fixed_recovery_s']:.1f} s (full restart "
        f"delay), warm elastic fleet "
        f"{recovery['elastic_recovery_s']:.1f} s "
        f"({recovery['elastic_warm_launches']} warm launch(es)); "
        f"goodput retained at the heaviest crash rate "
        f"{summary['goodput_retained']:.1%}, "
        f"deterministic={summary['deterministic']}",
    ])


def check(payload: dict) -> None:
    summary = payload["summary"]
    config = payload["config"]
    assert summary["deterministic"], \
        "faulty run diverged between identical replays"
    for r in payload["runs"]:
        assert r["finished"] + r["failed"] == config["num_requests"], \
            f"seed {r['seed']} mtbf {r['crash_mtbf_s']}: requests lost " \
            f"without accounting"
        if r["crash_mtbf_s"] is None:
            assert r["crashes"] == 0 and r["retries"] == 0
    heaviest = payload["by_mtbf"][-1]
    assert heaviest["crashes"] >= 1, \
        "heaviest crash rate produced no crashes — sweep is vacuous"
    assert summary["worst_goodput_req_s"] \
        < summary["clean_goodput_req_s"], \
        "crashes did not degrade goodput"
    assert summary["worst_p99_ttft_s"] >= summary["clean_p99_ttft_s"], \
        "crashes did not degrade the TTFT tail"
    recovery = payload["recovery"]
    assert recovery["elastic_recovery_s"] \
        < recovery["fixed_recovery_s"], \
        f"warm elastic fleet recovered in " \
        f"{recovery['elastic_recovery_s']:.1f} s, not faster than the " \
        f"fixed fleet's {recovery['fixed_recovery_s']:.1f} s restart"
    assert recovery["fixed_finished"] + recovery["fixed_failed"] \
        == config["num_requests"]
    assert recovery["elastic_finished"] + recovery["elastic_failed"] \
        == config["num_requests"]


def test_resilience(benchmark, report):
    # imported lazily: the CI smoke runs this file standalone in an
    # environment without pytest
    from conftest import run_once

    payload = run_once(benchmark, lambda: run_resilience(quick=False))
    report("resilience", render(payload))
    DEFAULT_OUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {DEFAULT_OUT}]")
    check(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small config for CI smoke")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    payload = run_resilience(quick=args.quick)
    print(render(payload))
    args.out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {args.out}]")
    check(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
