"""Ablation — batching disciplines (paper Fig. 2b, quantified).

Runs the same request stream through no-batching, static batching and
continuous batching on the ADOR design and reports the QoS/throughput
trade each discipline makes.
"""

import copy

import numpy as np
from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.scheduling import AdorDeviceModel
from repro.hardware.presets import ador_table3
from repro.models.zoo import get_model
from repro.serving.dataset import ULTRACHAT_LIKE
from repro.serving.generator import PoissonRequestGenerator
from repro.serving.policies import BatchingPolicy, simulate_policy
from repro.serving.qos import compute_qos

RATE = 6.0
COUNT = 48


def _compare():
    model = get_model("llama3-8b")
    device = AdorDeviceModel(ador_table3())
    rng = np.random.default_rng(23)
    requests = PoissonRequestGenerator(ULTRACHAT_LIKE, RATE, rng).generate(COUNT)
    rows = []
    outcomes = {}
    for policy in BatchingPolicy:
        result = simulate_policy(policy, device, model,
                                 copy.deepcopy(requests), batch_size=32)
        qos = compute_qos(result.finished, result.total_time_s)
        rows.append([
            policy.value,
            qos.ttft_p95_s * 1e3,
            qos.tbt_mean_s * 1e3,
            qos.tokens_per_s,
            result.total_time_s,
        ])
        outcomes[policy] = qos
    return rows, outcomes


def test_ablation_batching_policies(benchmark, report):
    rows, outcomes = run_once(benchmark, _compare)
    report("ablation_batching", format_table(
        ["policy", "TTFT p95 (ms)", "TBT mean (ms)", "tokens/s",
         "makespan (s)"],
        rows,
        title=f"Ablation (Fig. 2b): batching disciplines, LLaMA3-8B on "
              f"ADOR, {RATE} req/s",
    ))
    no_batch = outcomes[BatchingPolicy.NO_BATCHING]
    static = outcomes[BatchingPolicy.STATIC]
    continuous = outcomes[BatchingPolicy.CONTINUOUS]
    # continuous batching: highest throughput, best tail TTFT
    assert continuous.tokens_per_s >= 0.95 * max(
        no_batch.tokens_per_s, static.tokens_per_s)
    assert continuous.ttft_p95_s <= static.ttft_p95_s
    # no batching queues: far worse tail TTFT than continuous
    assert no_batch.ttft_p95_s > 2 * continuous.ttft_p95_s
