"""Ablation — batching disciplines (paper Fig. 2b, quantified).

Runs the same request stream through no-batching, static batching and
continuous batching on the ADOR design and reports the QoS/throughput
trade each discipline makes.  Each run is one ``repro.api.simulate()``
call; the shared workload seed guarantees every policy replays the
identical request stream.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.api import DeploymentSpec, WorkloadSpec, simulate

RATE = 6.0
COUNT = 48
POLICIES = ("no-batching", "static", "continuous")


def _compare():
    workload = WorkloadSpec(trace="ultrachat", rate_per_s=RATE,
                            num_requests=COUNT, seed=23)
    rows = []
    outcomes = {}
    for policy in POLICIES:
        deployment = DeploymentSpec(chip="ador", model="llama3-8b",
                                    max_batch=32, batching=policy)
        report = simulate(deployment, workload, max_sim_seconds=3600.0)
        qos = report.qos
        rows.append([
            policy,
            qos.ttft_p95_s * 1e3,
            qos.tbt_mean_s * 1e3,
            qos.tokens_per_s,
            report.result.total_time_s,
        ])
        outcomes[policy] = qos
    return rows, outcomes


def test_ablation_batching_policies(benchmark, report):
    rows, outcomes = run_once(benchmark, _compare)
    report("ablation_batching", format_table(
        ["policy", "TTFT p95 (ms)", "TBT mean (ms)", "tokens/s",
         "makespan (s)"],
        rows,
        title=f"Ablation (Fig. 2b): batching disciplines, LLaMA3-8B on "
              f"ADOR, {RATE} req/s",
    ))
    no_batch = outcomes["no-batching"]
    static = outcomes["static"]
    continuous = outcomes["continuous"]
    # continuous batching: highest throughput, best tail TTFT
    assert continuous.tokens_per_s >= 0.95 * max(
        no_batch.tokens_per_s, static.tokens_per_s)
    assert continuous.ttft_p95_s <= static.ttft_p95_s
    # no batching queues: far worse tail TTFT than continuous
    assert no_batch.ttft_p95_s > 2 * continuous.ttft_p95_s
