"""Simulator speed — the fast path vs the reference loop.

Not a paper figure: this bench measures the *simulator itself*, in
wall-clock simulated-tokens-per-second, and seeds the repo's recorded
perf trajectory (``BENCH_sim_speed.json``).  Two workloads:

1. **single-engine** — one continuous-batching ADOR endpoint under a
   Poisson ultrachat load;
2. **cluster-4x** — four replicas behind a join-shortest-queue router at
   a saturating arrival rate, the shape of a real capacity sweep.

Each runs twice: the fast path (device-model memoization via
:class:`~repro.perf.cache.CachedDeviceModel`, compiled decode plans,
multi-step decode fast-forward) and the reference path
(``sim_cache=False`` — the original one-iteration-at-a-time loop with
uncompiled device models).  With ``context_bucket=1`` the two must be
bit-identical; the bench asserts that before reporting any speedup.

A second table quantizes the decode context (``context_bucket > 1``) and
reports the measured QoS error against the exact run — the number to
consult before enabling bucketing in a coarse design sweep.

Run standalone for CI smoke: ``python benchmarks/bench_sim_speed.py
--quick`` (tiny config, asserts fast >= reference, still writes the
JSON).
"""

import argparse
import functools
import json
import pathlib
import sys
import time

from repro.analysis.sweep import sweep
from repro.analysis.tables import format_table
from repro.api import DeploymentSpec, WorkloadSpec, simulate
from repro.cluster.engine import ClusterEngine
from repro.core.scheduling import device_model_for
from repro.models.zoo import get_model
from repro.perf.cache import CachedDeviceModel

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sim_speed.json"

#: The measured operating points.  max_batch=32 is a deliberately
#: realistic admission cap (the bursty-routing bench uses 12): batch
#: pins at the cap under load, which is also what makes memoization
#: effective.  The cluster rate saturates four replicas.
SINGLE = ("single-engine",
          DeploymentSpec(chip="ador", max_batch=32),
          WorkloadSpec(rate_per_s=12.0, num_requests=400, seed=7))
CLUSTER = ("cluster-4x",
           DeploymentSpec(chip="ador", replicas=4,
                          router="least-outstanding", max_batch=32),
           WorkloadSpec(rate_per_s=60.0, num_requests=2000, seed=7))
QUICK_SINGLE = ("single-engine",
                DeploymentSpec(chip="ador", max_batch=16),
                WorkloadSpec(rate_per_s=10.0, num_requests=120, seed=7))
QUICK_CLUSTER = ("cluster-2x",
                 DeploymentSpec(chip="ador", replicas=2,
                                router="least-outstanding", max_batch=16),
                 WorkloadSpec(rate_per_s=25.0, num_requests=300, seed=7))

BUCKETS = (32, 128)

#: QoS fields the bucket-error study compares (headline metrics).
_QOS_FIELDS = ("ttft_mean_s", "ttft_p95_s", "ttft_p99_s", "tbt_mean_s",
               "tbt_p95_s", "e2e_mean_s", "tokens_per_s")


def _qos_key(report):
    qos = report.qos
    result = report.result
    return tuple(getattr(qos, f) for f in _QOS_FIELDS) + (
        qos.ttft_p50_s, qos.tbt_p50_s, qos.tbt_p99_s, qos.e2e_p95_s,
        qos.requests_per_s, result.total_time_s, result.iterations,
        result.decode_steps, result.busy_time_s, result.decode_time_s,
        result.prefill_time_s)


def _measure(name, deployment, workload):
    """Fast vs reference wall-clock for one workload; asserts parity."""
    start = time.perf_counter()
    fast = simulate(deployment, workload)
    fast_s = time.perf_counter() - start
    start = time.perf_counter()
    reference = simulate(deployment, workload, sim_cache=False)
    ref_s = time.perf_counter() - start
    identical = _qos_key(fast) == _qos_key(reference)
    tokens = fast.result.generated_tokens
    return {
        "workload": name,
        "replicas": deployment.replicas,
        "max_batch": deployment.max_batch,
        "rate_per_s": workload.rate_per_s,
        "num_requests": workload.num_requests,
        "simulated_tokens": tokens,
        "fast_wall_s": fast_s,
        "reference_wall_s": ref_s,
        "fast_tokens_per_wall_s": tokens / fast_s,
        "reference_tokens_per_wall_s": tokens / ref_s,
        "speedup": ref_s / fast_s,
        "bit_identical": identical,
    }


def _cache_stats(deployment, workload):
    """Hit rates of the shared device-model cache on one cluster run."""
    model = get_model(deployment.model)
    device = CachedDeviceModel(device_model_for(deployment.chip_spec()))
    engine = ClusterEngine(device, model, deployment.scheduler_limits(),
                           num_devices=deployment.num_devices,
                           replicas=deployment.replicas,
                           router=deployment.router)
    engine.run(workload.build_requests())
    return device.cache_info()


# module-level (and case passed via partial) so ProcessPoolExecutor
# workers can pickle it under any start method, spawn included
def _bucket_point(case, bucket):
    _, deployment, workload = case
    report = simulate(deployment, workload, context_bucket=bucket)
    return {field: getattr(report.qos, field) for field in _QOS_FIELDS}


def _bucket_error_rows(case, workers):
    """Measured QoS error of context bucketing vs the exact fast path."""
    _, deployment, workload = case
    exact = {field: getattr(simulate(deployment, workload).qos, field)
             for field in _QOS_FIELDS}
    rows = []
    point = functools.partial(_bucket_point, case)
    for bucket, metrics in sweep(BUCKETS, point, workers=workers):
        errors = {field: abs(metrics[field] - exact[field])
                  / abs(exact[field])
                  for field in _QOS_FIELDS if exact[field] != 0}
        worst = max(errors, key=errors.get)
        rows.append({
            "context_bucket": bucket,
            "max_rel_error": errors[worst],
            "max_rel_error_field": worst,
            "tbt_mean_rel_error": errors["tbt_mean_s"],
            "ttft_p95_rel_error": errors["ttft_p95_s"],
        })
    return rows


def run_sim_speed(quick: bool = False, workers: int | None = 2) -> dict:
    cases = [QUICK_SINGLE, QUICK_CLUSTER] if quick else [SINGLE, CLUSTER]
    measurements = [_measure(*case) for case in cases]
    cluster_case = cases[-1]
    payload = {
        "benchmark": "sim_speed",
        "mode": "quick" if quick else "full",
        "workloads": measurements,
        "cluster_cache": _cache_stats(cluster_case[1], cluster_case[2]),
        "context_bucket_error": _bucket_error_rows(cluster_case, workers),
    }
    return payload


def render(payload: dict) -> str:
    speed_rows = [[m["workload"], m["simulated_tokens"],
                   m["reference_wall_s"], m["fast_wall_s"],
                   m["fast_tokens_per_wall_s"], m["speedup"],
                   str(m["bit_identical"])]
                  for m in payload["workloads"]]
    bucket_rows = [[row["context_bucket"],
                    row["max_rel_error"] * 100,
                    row["max_rel_error_field"],
                    row["tbt_mean_rel_error"] * 100]
                   for row in payload["context_bucket_error"]]
    cache = payload["cluster_cache"]
    return "\n\n".join([
        format_table(
            ["workload", "sim tokens", "ref wall (s)", "fast wall (s)",
             "fast tok/s", "speedup", "bit-identical"],
            speed_rows,
            title="Simulator speed: fast path (cache + compiled decode + "
                  "fast-forward) vs reference loop"),
        format_table(
            ["context bucket", "max QoS err (%)", "worst field",
             "TBT mean err (%)"],
            bucket_rows,
            title="Context-bucket quantization error (cluster workload, "
                  "vs exact)"),
        f"cluster cache: decode hit rate {cache['decode_hit_rate']:.3f} "
        f"({cache['decode_entries']} entries), prefill hit rate "
        f"{cache['prefill_hit_rate']:.3f} ({cache['prefill_entries']} "
        f"entries)",
    ])


def check(payload: dict, min_cluster_speedup: float) -> None:
    for measurement in payload["workloads"]:
        assert measurement["bit_identical"], \
            f"{measurement['workload']}: fast path diverged from reference"
        assert measurement["speedup"] >= 1.0, \
            f"{measurement['workload']}: fast path slower than reference " \
            f"({measurement['speedup']:.2f}x)"
    cluster = payload["workloads"][-1]
    assert cluster["speedup"] >= min_cluster_speedup, \
        f"cluster speedup {cluster['speedup']:.2f}x < " \
        f"{min_cluster_speedup:.1f}x"
    for row in payload["context_bucket_error"]:
        assert row["max_rel_error"] < 0.25, \
            f"bucket {row['context_bucket']} error unexpectedly large"


def test_sim_speed(benchmark, report):
    # imported lazily: the CI smoke runs this file standalone in an
    # environment without pytest
    from conftest import run_once

    payload = run_once(benchmark, lambda: run_sim_speed(quick=False))
    report("sim_speed", render(payload))
    DEFAULT_OUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {DEFAULT_OUT}]")
    check(payload, min_cluster_speedup=5.0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny config for CI smoke")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--workers", type=int, default=2,
                        help="process-pool workers for the bucket sweep")
    parser.add_argument("--min-cluster-speedup", type=float, default=None,
                        help="fail below this cluster speedup "
                             "(default: 5.0 full, 1.0 quick)")
    args = parser.parse_args(argv)
    payload = run_sim_speed(quick=args.quick, workers=args.workers)
    print(render(payload))
    args.out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"[written to {args.out}]")
    minimum = args.min_cluster_speedup
    if minimum is None:
        minimum = 1.0 if args.quick else 5.0
    check(payload, min_cluster_speedup=minimum)
    return 0


if __name__ == "__main__":
    sys.exit(main())
