"""Fig. 1 — the motivation: QoS vs. batch size on GPUs, and the
latency/throughput design space.

Panel 1: TTFT and TBT for Mixtral-8x7B on 8x A100 as batch grows — the
paper's illustration that batching erodes QoS.  Panel 2: the design
space scatter (query latency vs. per-device throughput) locating the
throughput-oriented (TPU), latency-oriented (TSP) and balanced (ADOR)
regions.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.scheduling import device_model_for
from repro.hardware.area import AreaModel
from repro.hardware.presets import (
    a100,
    ador_table3,
    groq_tsp,
    h100,
    tpu_v4,
)
from repro.models.zoo import get_model

BATCHES = (1, 16, 32, 64, 128, 256)
SEQ = 1024


def _mixtral_qos():
    model = get_model("mixtral-8x7b")
    gpu = device_model_for(a100())
    rows = []
    for batch in BATCHES:
        prefill = gpu.prefill_time(model, batch, SEQ, num_devices=8)
        decode = gpu.decode_step_time(model, batch, SEQ, num_devices=8)
        rows.append([batch, prefill.seconds * 1e3, 1.0 / decode.seconds,
                     decode.seconds * 1e3])
    return rows


def test_fig1_mixtral_batching_qos(benchmark, report):
    rows = run_once(benchmark, _mixtral_qos)
    report("fig01_mixtral_qos", format_table(
        ["batch", "TTFT (ms)", "TBT (tok/s)", "decode step (ms)"],
        rows,
        title="Fig. 1 (left): Mixtral-8x7B on 8x A100, seq 1024 — "
              "batching degrades TTFT and TBT",
    ))
    ttfts = [row[1] for row in rows]
    tbts = [row[2] for row in rows]
    assert ttfts == sorted(ttfts), "TTFT must grow with batch"
    assert tbts == sorted(tbts, reverse=True), "TBT must degrade with batch"


def _design_space():
    model = get_model("llama3-8b")
    points = []
    for chip, devices in ((a100(), 1), (h100(), 1), (tpu_v4(), 1),
                          (groq_tsp(), 88), (ador_table3(), 1)):
        device = device_model_for(chip)
        latency = device.decode_step_time(model, 1, SEQ, devices).seconds
        batch = 128
        if hasattr(device, "max_kv_batch"):
            # the TSP's SRAM caps how many requests' KV it can hold
            batch = min(batch, device.max_kv_batch(model, SEQ, devices))
        batched = device.decode_step_time(model, batch, SEQ, devices).seconds
        throughput = batch / batched / devices
        area = AreaModel().die_area_mm2(chip)
        points.append([chip.name, latency * 1e3, throughput,
                       throughput / area])
    return points


def test_fig1_design_space(benchmark, report):
    points = run_once(benchmark, _design_space)
    report("fig01_design_space", format_table(
        ["device", "query latency (ms/token)", "throughput (tok/s/device)",
         "tok/s/mm2"],
        points,
        title="Fig. 1 (right): the serving design space — LLaMA3-8B",
    ))
    by_name = {p[0]: p for p in points}
    # TSP: the latency-oriented corner — best latency, worst economics
    assert by_name["Groq TSP"][1] == min(p[1] for p in points)
    assert by_name["Groq TSP"][3] == min(p[3] for p in points)
    # ADOR: strictly better than the A100 on both axes, and the best
    # throughput per device — the "optimal point for GenAI serving"
    assert by_name["ADOR Design"][1] < by_name["NVIDIA A100"][1]
    assert by_name["ADOR Design"][2] == max(p[2] for p in points)
