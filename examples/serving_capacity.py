#!/usr/bin/env python
"""Chatbot capacity planning with the serving simulator (paper Fig. 16).

Simulates a chatbot endpoint on one ADOR device through the declarative
``repro.api`` facade: Poisson arrivals with an ultrachat-like
token-length trace, continuous batching with chunked prefill, then a
binary search for the highest request rate that still meets a
time-between-tokens SLO.

Run:  python examples/serving_capacity.py
"""

from repro.analysis.tables import format_table
from repro.api import (
    DeploymentSpec,
    WorkloadSpec,
    device_model_for,
    get_chip,
    get_model,
    get_trace,
    simulate,
)
from repro.serving import max_capacity_under_slo


def main() -> None:
    # 1) one simulation at a fixed load, with full QoS + utilization —
    #    two spec objects replace the old six-object hand-wired chain
    deployment = DeploymentSpec(chip="ador", model="llama3-8b",
                                max_batch=256)
    workload = WorkloadSpec(trace="ultrachat", rate_per_s=15.0,
                            num_requests=200, seed=7)
    report = simulate(deployment, workload)
    qos = report.qos

    print(f"serving LLaMA3-8B at {workload.rate_per_s:.0f} req/s "
          f"({len(report.result.finished)} requests simulated):")
    print(f"  TTFT   mean {qos.ttft_mean_s * 1e3:6.1f} ms   "
          f"p95 {qos.ttft_p95_s * 1e3:6.1f} ms")
    print(f"  TBT    mean {qos.tbt_mean_s * 1e3:6.2f} ms   "
          f"p95 {qos.tbt_p95_s * 1e3:6.2f} ms")
    print(f"  E2E    mean {qos.e2e_mean_s:6.2f} s")
    print(f"  tokens/s {qos.tokens_per_s:,.0f}")
    for key, value in report.utilization.as_dict().items():
        print(f"  {key}: {value:.2f}")

    # 2) the Fig. 16 experiment: capacity under strict/relaxed SLOs —
    #    the fast search caches probes, reuses one rescaled arrival
    #    template and aborts clearly saturated probes early, so the two
    #    searches below finish in about a second
    print("\nsearching max capacity under TBT SLOs...")
    device = device_model_for(get_chip("ador"))
    model = get_model("llama3-8b")
    trace = get_trace("ultrachat")
    rows = []
    for label, slo in (("strict", 0.025), ("relaxed", 0.050)):
        outcome = max_capacity_under_slo(
            device, model, trace, slo_tbt_s=slo,
            request_count=250, iterations=6)
        rows.append([label, slo * 1e3, outcome.max_requests_per_s,
                     outcome.qos_at_max.tbt_p95_s * 1e3])
    print(format_table(
        ["SLO", "TBT SLO (ms)", "max capacity (req/s)", "TBT p95 at max (ms)"],
        rows,
        title="Max sustainable request rate (paper: ~23.3 req/s relaxed)",
    ))


if __name__ == "__main__":
    main()
