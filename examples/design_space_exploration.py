#!/usr/bin/env python
"""Run the ADOR architecture search end to end (paper Section V, Fig. 9).

You play the vendor: give the framework an area budget, a memory system
and QoS targets; it sizes the MAC tree from the bandwidth rule, sweeps
systolic-array geometries, splits the SRAM budget and proposes a design
— rediscovering the paper's Table III configuration under A100-class
constraints.

Run:  python examples/design_space_exploration.py
"""

from repro.analysis.tables import format_table
from repro.core import AdorSearch
from repro.core.requirements import (
    SearchRequest,
    ServiceLevelObjectives,
    VendorConstraints,
)

KIB = 1024
MIB = 1024 * 1024


def main() -> None:
    request = SearchRequest(
        model_names=("llama3-8b",),
        slos=ServiceLevelObjectives(
            ttft_slo_s=0.050,       # first token within 50 ms
            tbt_slo_s=0.030,        # >= 33 tokens/s per request
            batch_size=128,         # at this serving batch
            seq_len=1024,
        ),
        vendor=VendorConstraints(
            area_budget_mm2=550.0,  # A100-class silicon budget
            dram_bandwidth=2e12,    # 2 TB/s HBM
            sram_budget_bytes=80 * MIB,
        ),
    )

    print("searching the ADOR template design space...\n")
    result = AdorSearch(request).run()

    rows = []
    for point in sorted(result.candidates, key=lambda p: p.area_mm2):
        evaluation = point.evaluations[0]
        rows.append([
            point.chip.name,
            point.area_mm2,
            evaluation.ttft_s * 1e3,
            evaluation.tbt_s * 1e3,
            evaluation.decode_bandwidth_utilization,
        ])
    print(format_table(
        ["candidate", "area (mm2)", "TTFT (ms)", "TBT (ms)", "bw util"],
        rows,
        title="Candidates evaluated (one iteration of Fig. 9's loop)",
    ))

    chip = result.best.chip
    verdict = "requirements met" if result.requirements_met \
        else "best effort"
    print(f"\nproposed design ({verdict}):")
    print(f"  {chip}")
    print(f"  systolic array : {chip.systolic_array}")
    print(f"  MAC tree       : {chip.mac_tree}")
    print(f"  local memory   : {chip.local_memory.size_bytes / KIB:.0f} KiB/core")
    print(f"  global memory  : {chip.global_memory.size_bytes / MIB:.0f} MiB")
    print(f"  NoC bandwidth  : {chip.noc.bandwidth_bytes_per_s / 1e9:.0f} GB/s")
    print(f"  P2P bandwidth  : {chip.p2p.bandwidth_bytes_per_s / 1e9:.0f} GB/s")
    print(f"  die area       : {result.best.area_mm2:.0f} mm^2 "
          f"(paper's Table III: 516 mm^2)")
    if result.notes:
        print(f"  notes          : {result.notes}")


if __name__ == "__main__":
    main()
