#!/usr/bin/env python
"""Quickstart: evaluate the paper's ADOR design on LLaMA3-8B.

Loads the Table III chip, asks the HDA scheduler for prefill/decode
latencies across batch sizes, and compares against an A100 — the
essence of the paper's Fig. 15 in a dozen lines of API.

Run:  python examples/quickstart.py
"""

from repro.analysis.tables import format_table
from repro.api import device_model_for, get_chip, get_model
from repro.hardware.area import AreaModel


def main() -> None:
    model = get_model("llama3-8b")
    ador = device_model_for(get_chip("ador"))
    gpu = device_model_for(get_chip("a100"))
    area = AreaModel()

    print(f"model: {model}")
    print(f"ADOR design: {ador.chip}")
    print(f"  die area: {area.die_area_mm2(ador.chip):.0f} mm^2 "
          f"(A100: {area.die_area_mm2(gpu.chip):.0f} mm^2)\n")

    rows = []
    for batch in (1, 16, 64, 128, 150):
        ours = ador.decode_step_time(model, batch, context_len=1024)
        theirs = gpu.decode_step_time(model, batch, context_len=1024)
        rows.append([
            batch,
            1.0 / ours.seconds,
            1.0 / theirs.seconds,
            theirs.seconds / ours.seconds,
        ])
    print(format_table(
        ["batch", "ADOR TBT (tok/s)", "A100 TBT (tok/s)", "ADOR gain (x)"],
        rows,
        title="Decode-step rate vs. batch size, LLaMA3-8B, seq 1024",
    ))

    ttft_ador = ador.prefill_time(model, 1, 1024).seconds
    ttft_gpu = gpu.prefill_time(model, 1, 1024).seconds
    print(f"\nprefill (1 request, 1024 tokens): "
          f"ADOR {ttft_ador * 1e3:.1f} ms vs A100 {ttft_gpu * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
