#!/usr/bin/env python
"""Multimodal GenAI serving on the ADOR design (paper Figs. 2a, 9).

ADOR's inputs cover LMMs and diffusion transformers, not just LLMs.
This example times the LLaVA-style pipeline (ViT-L image encode, then
LLaMA3-8B prefill whose prompt carries the 576 image tokens) and a
DiT-XL image generation, comparing the ADOR design with an A100.

Run:  python examples/multimodal_serving.py
"""

from repro.analysis.tables import format_table
from repro.api import device_model_for, get_chip
from repro.models.multimodal import DitWorkload, LmmWorkload


def main() -> None:
    lmm = LmmWorkload.default()
    dit = DitWorkload.default()
    text_tokens = 128

    print(f"LMM pipeline: {lmm.encoder_workload.encoder.name} -> "
          f"{lmm.llm.name}")
    print(f"  image tokens per picture: {lmm.encoder_workload.num_tokens}")
    print(f"  encoder FLOPs per image:  "
          f"{lmm.encoder_flops() / 1e12:.2f} TFLOP\n")

    rows = []
    for chip in (get_chip("ador"), get_chip("a100")):
        device = device_model_for(chip)
        encode = device.prefill_time(
            lmm.encoder_workload.encoder, 1,
            lmm.encoder_workload.num_tokens).seconds
        for images in (0, 1, 4):
            prompt = lmm.effective_input_tokens(text_tokens, images)
            prefill = device.prefill_time(lmm.llm, 1, prompt).seconds
            ttft = images * encode + prefill
            rows.append([chip.name, images, prompt, ttft * 1e3])
    print(format_table(
        ["device", "images", "prompt tokens", "TTFT (ms)"],
        rows,
        title=f"LMM time-to-first-token, {text_tokens} text tokens",
    ))

    print()
    rows = []
    for chip in (get_chip("ador"), get_chip("a100")):
        device = device_model_for(chip)
        step = device.prefill_time(dit.dit, 1, dit.latent_tokens).seconds
        rows.append([chip.name, step * 1e3, dit.sampling_steps,
                     step * dit.sampling_steps * 1e3])
    print(format_table(
        ["device", "denoise step (ms)", "steps", "image gen (ms)"],
        rows,
        title=f"DiT-XL/2 image generation, {dit.latent_tokens} latent tokens",
    ))
    print("\nNote: DiT's narrow 1152-wide layers underutilize the 64x64 "
          "systolic arrays, so the LLM-tuned ADOR geometry is merely "
          "competitive there — a workload the DSE could re-target.")


if __name__ == "__main__":
    main()
