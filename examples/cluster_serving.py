#!/usr/bin/env python
"""Multi-replica cluster serving with routing policies.

Scales the single-endpoint serving simulation to a fleet: four ADOR
replicas behind a router, the deployment shape of a Ray-Serve-style LLM
endpoint.  Three things are shown:

1. one declarative call — ``simulate()`` dispatches to the cluster
   engine as soon as ``DeploymentSpec.replicas > 1``;
2. a router-policy shootout on the same workload (round-robin vs
   join-shortest-queue vs session-affinity vs slo-aware);
3. sticky sessions: with a multi-turn workload the session-affinity
   router keeps every turn of a conversation on one replica.

Run:  python examples/cluster_serving.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.api import (
    DeploymentSpec,
    WorkloadSpec,
    device_model_for,
    get_chip,
    get_model,
    list_routers,
    simulate,
)
from repro.cluster import ClusterEngine
from repro.serving import (
    MultiTurnSessionGenerator,
    SchedulerLimits,
    SessionConfig,
)


def main() -> None:
    # 1) one cluster simulation through the declarative facade
    deployment = DeploymentSpec(chip="ador", model="llama3-8b",
                                replicas=4, router="least-outstanding")
    workload = WorkloadSpec(trace="ultrachat", rate_per_s=40.0,
                            num_requests=400, seed=7)
    report = simulate(deployment, workload)
    print(report.summary())

    # 2) router shootout on the identical request stream
    print(f"\nrouter policies registered: {', '.join(list_routers())}")
    rows = []
    for router in list_routers():
        r = simulate(
            DeploymentSpec(chip="ador", replicas=4, router=router),
            workload)
        rows.append([
            router,
            r.qos.ttft_p95_s * 1e3,
            r.qos.ttft_p99_s * 1e3,
            r.qos.tokens_per_s,
            r.load.request_imbalance,
        ])
    print(format_table(
        ["router", "p95 TTFT (ms)", "p99 TTFT (ms)", "tokens/s",
         "req imbalance"],
        rows, title="4x ADOR, ultrachat at 40 req/s"))

    # 3) sticky sessions on a multi-turn chat workload
    rng = np.random.default_rng(11)
    generator = MultiTurnSessionGenerator(SessionConfig(), rng)
    requests = generator.generate_stream(sessions=120,
                                         session_rate_per_s=6.0)
    model = get_model("llama3-8b")
    device = device_model_for(get_chip("ador"))
    engine = ClusterEngine(device, model, SchedulerLimits(max_batch=256),
                           replicas=4, router="session-affinity")
    result = engine.run(requests, max_sim_seconds=600.0)
    homes: dict[int, set[int]] = {}
    for index, replica_result in enumerate(result.replica_results):
        for request in replica_result.finished + replica_result.unfinished:
            if request.session_id is not None:
                homes.setdefault(request.session_id, set()).add(index)
    sticky = sum(1 for replicas in homes.values() if len(replicas) == 1)
    print(f"\nsession-affinity over {len(homes)} multi-turn sessions: "
          f"{sticky}/{len(homes)} sessions served entirely by one replica")


if __name__ == "__main__":
    main()
