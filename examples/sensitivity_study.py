#!/usr/bin/env python
"""Which knobs actually matter?  Sensitivity around the Table III design.

Perturbs each template knob of the proposed ADOR chip and prints the
TTFT / TBT / area response — confirming the paper's thesis that decode
QoS is a memory-bandwidth story, while NoC and (single-device) P2P have
slack.

Run:  python examples/sensitivity_study.py
"""

from repro.analysis.tables import format_table
from repro.api import get_chip, get_model
from repro.core.sensitivity import most_sensitive_knob, sensitivity_table


def main() -> None:
    model = get_model("llama3-8b")
    chip = get_chip("ador")
    print(f"reference design: {chip}\n")

    rows = sensitivity_table(chip, model, batch=128, seq_len=1024)
    print(format_table(
        ["knob", "change", "TTFT (%)", "TBT (%)", "area (%)"],
        [row.as_list() for row in rows],
        title="One-knob perturbations (positive = worse / bigger)",
    ))

    print(f"\nmost sensitive knob for TBT : "
          f"{most_sensitive_knob(rows, 'tbt')}")
    print(f"most sensitive knob for TTFT: "
          f"{most_sensitive_knob(rows, 'ttft')}")
    print(f"most sensitive knob for area: "
          f"{most_sensitive_knob(rows, 'area')}")
    print("\n-> decode (TBT) is a bandwidth story; prefill (TTFT) follows "
          "compute; NoC and single-device P2P carry slack — exactly the "
          "paper's architectural argument.")


if __name__ == "__main__":
    main()
