#!/usr/bin/env python
"""Compiler stack walkthrough (paper Fig. 14a).

Lowers LLaMA3-8B to the ADOR instruction stream for both stages, prints
the memory map and per-unit work split — showing how decode work lands
on the MAC tree while prefill work lands on the systolic array.

Run:  python examples/compiler_walkthrough.py
"""

from repro.analysis.tables import format_table
from repro.api import get_chip, get_model
from repro.compiler import InstructionGenerator
from repro.models.layers import Phase


def main() -> None:
    chip = get_chip("ador")
    model = get_model("llama3-8b")
    generator = InstructionGenerator(chip)

    for phase, batch, q, ctx in ((Phase.PREFILL, 1, 1024, 1024),
                                 (Phase.DECODE, 32, 1, 1024)):
        program = generator.compile(model, phase, batch, q, ctx)
        print(f"== {phase.value}: {program.instruction_count} instructions ==")
        for inst in program.instructions[:6]:
            print(f"   {inst}")
        print("   ...")
        rows = [[unit.value, flops / 1e12]
                for unit, flops in sorted(program.per_unit_flops().items(),
                                          key=lambda kv: -kv[1])]
        print(format_table(["unit", "TFLOP"], rows,
                           title="work per compute unit"))
        print()

    binary = generator.compile(model, Phase.DECODE, 1, 1, 1).binary
    binary.validate_against(chip)
    print(f"model binary: {binary.total_bytes / 2**30:.2f} GiB across "
          f"{chip.dram.modules} DRAM modules")
    rows = [[f"module {m}",
             sum(r.size for r in binary.regions if r.dram_module == m) / 2**30]
            for m in range(chip.dram.modules)]
    print(format_table(["DRAM module", "weights (GiB)"], rows))


if __name__ == "__main__":
    main()
