#!/usr/bin/env python
"""Simulated cluster autoscaling: an elastic fleet that tracks load.

ADOR's serving analysis assumes a fixed device count; this example
grows and shrinks the fleet instead.  Three things are shown:

1. one declarative call — ``DeploymentSpec(autoscale=AutoscaleSpec(...))``
   makes ``simulate()`` run the cluster engine with an elastic fleet,
   even when the deployment starts at a single replica;
2. the scaling history — the report carries the scale-event log and the
   per-decision fleet-size / utilization timeline;
3. elasticity vs a fixed fleet on bursty on/off traffic — same p99-ish
   tail (the bursts saturate both), materially fewer replica-seconds
   (the autoscaler drains the fleet through every lull; see
   ``benchmarks/bench_autoscale.py`` for the committed comparison).

Run:  python examples/autoscale_serving.py
"""

import numpy as np

from repro.api import (
    AutoscaleSpec,
    DeploymentSpec,
    WorkloadSpec,
    device_model_for,
    get_chip,
    get_model,
    simulate,
)
from repro.cluster import ClusterEngine, list_autoscalers
from repro.serving import SchedulerLimits
from repro.serving.dataset import ULTRACHAT_LIKE
from repro.serving.generator import OnOffRequestGenerator


def main() -> None:
    # 1) declarative autoscaling: start at 1 replica, let queue depth
    #    grow the fleet to meet a 40 req/s Poisson load
    print(f"autoscaler policies registered: "
          f"{', '.join(list_autoscalers())}\n")
    deployment = DeploymentSpec(
        chip="ador", model="llama3-8b", max_batch=32,
        replicas=1, router="least-outstanding",
        autoscale=AutoscaleSpec(policy="queue-depth", min_replicas=1,
                                max_replicas=6, decision_interval_s=1.0,
                                provision_latency_s=3.0,
                                warm_pool_size=2, warm_provision_s=0.5))
    workload = WorkloadSpec(trace="ultrachat", rate_per_s=40.0,
                            num_requests=400, seed=7)
    report = simulate(deployment, workload)
    print(report.summary())

    # 2) the scaling history behind that summary
    trace = report.autoscale
    print("\nscale events:")
    for event in trace.events:
        print(f"  t={event.clock_s:6.1f} s  {event.kind:>4}  "
              f"{event.delta:+d} -> {event.replicas_after} replicas "
              f"(ids {list(event.replica_ids)}"
              f"{', warm' if event.warm_used else ''})")
    print("\nfleet timeline (every 4th decision):")
    for sample in trace.timeline[::4]:
        bar = "#" * (sample.ready + sample.provisioning)
        print(f"  t={sample.clock_s:6.1f} s  ready={sample.ready} "
              f"provisioning={sample.provisioning} "
              f"draining={sample.draining} "
              f"queue={sample.outstanding_requests:3d} "
              f"util={sample.utilization:4.2f}  {bar}")

    # 3) elastic vs fixed fleet on bursty on/off traffic
    model = get_model("llama3-8b")
    device = device_model_for(get_chip("ador"))
    limits = SchedulerLimits(max_batch=12, prefill_chunk_tokens=512)

    def bursty_stream():
        rng = np.random.default_rng(3)
        return OnOffRequestGenerator(
            ULTRACHAT_LIKE, on_rate_per_s=45.0, off_rate_per_s=0.25,
            phase_seconds=20.0, rng=rng).generate(500)

    fixed = ClusterEngine(device, model, limits, replicas=6,
                          router="least-outstanding").run(bursty_stream())
    spec = AutoscaleSpec(policy="queue-depth", min_replicas=1,
                         max_replicas=6, decision_interval_s=0.25,
                         provision_latency_s=10.0, warm_pool_size=6,
                         warm_provision_s=0.1)
    elastic = ClusterEngine(device, model, limits, replicas=1,
                            router="least-outstanding",
                            autoscale=spec).run(bursty_stream())
    fixed_rs = 6 * fixed.merged.total_time_s
    elastic_rs = elastic.autoscale.replica_seconds
    print(f"\nbursty on/off traffic, fixed 6x vs autoscaled [1, 6]:")
    print(f"  p99 TTFT      : fixed {fixed.qos().ttft_p99_s:6.2f} s, "
          f"autoscaled {elastic.qos().ttft_p99_s:6.2f} s")
    print(f"  replica-seconds: fixed {fixed_rs:6.1f}, "
          f"autoscaled {elastic_rs:6.1f} "
          f"({1 - elastic_rs / fixed_rs:.0%} saved)")


if __name__ == "__main__":
    main()
