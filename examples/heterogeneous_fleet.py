#!/usr/bin/env python
"""Heterogeneous fleets: mixing chips behind one router.

A deployment need not be N copies of one chip: an explicit
:class:`FleetSpec` of weighted :class:`ReplicaGroupSpec` groups mixes
an ADOR pool with a GPU pool in one cluster.  Four things are shown:

1. a mixed ADOR + A100 fleet through the declarative facade, with the
   per-group breakdown (replicas, finished work, replica-seconds,
   cost, QoS) the report grows for mixed fleets;
2. capability-aware routing — ``hetero-aware`` probes each group's
   prefill/decode rates and sends prefill-heavy prompts to
   prefill-fast groups, vs the group-blind ``slo-aware`` baseline;
3. per-group autoscaling: scale-ups land on the cheapest group with
   headroom, scale-downs retire the most expensive group first;
4. the mixed-fleet capacity search: the cheapest group mix that meets
   the SLO at a fixed demand (``find_fleet_capacity``).

Run:  python examples/heterogeneous_fleet.py
"""

from repro.analysis.tables import format_table
from repro.api import (
    AutoscaleSpec,
    DeploymentSpec,
    FleetSpec,
    ReplicaGroupSpec,
    WorkloadSpec,
    find_fleet_capacity,
    simulate,
)

MIXED = FleetSpec(groups=(
    ReplicaGroupSpec(chip="ador", count=2, max_batch=32,
                     cost_per_replica_s=1.0, min_count=1, max_count=4,
                     name="ador-pool"),
    ReplicaGroupSpec(chip="a100", count=1, max_batch=32,
                     cost_per_replica_s=1.4, min_count=0, max_count=2,
                     name="gpu-pool"),
))

WORKLOAD = WorkloadSpec(trace="ultrachat", rate_per_s=8.0,
                        num_requests=240, seed=7)


def main() -> None:
    # 1) a mixed fleet through the declarative facade
    deployment = DeploymentSpec(fleet=MIXED, router="hetero-aware")
    report = simulate(deployment, WORKLOAD)
    print(report.summary())

    # 2) capability-aware vs group-blind routing on the same workload
    rows = []
    for router in ("round-robin", "least-outstanding", "slo-aware",
                   "hetero-aware"):
        r = simulate(DeploymentSpec(fleet=MIXED, router=router), WORKLOAD)
        rows.append([router, r.qos.ttft_p95_s * 1e3,
                     r.qos.ttft_p99_s * 1e3, r.qos.tokens_per_s])
    print()
    print(format_table(
        ["router", "p95 TTFT (ms)", "p99 TTFT (ms)", "tokens/s"],
        rows, title="2x ador + 1x a100, ultrachat at 8 req/s"))

    # 3) per-group autoscaling: growth is cheapest-first
    scaled = simulate(
        DeploymentSpec(
            fleet=MIXED, router="least-outstanding",
            autoscale=AutoscaleSpec(policy="queue-depth", min_replicas=2,
                                    max_replicas=6,
                                    decision_interval_s=1.0,
                                    provision_latency_s=2.0)),
        WorkloadSpec(trace="ultrachat", rate_per_s=20.0,
                     num_requests=300, seed=7))
    trace = scaled.autoscale
    print(f"\nautoscaled mixed fleet: {trace.scale_ups} up / "
          f"{trace.scale_downs} down, peak {trace.peak_replicas}")
    for group in scaled.groups:
        print(f"  {group.name}: {group.replica_count} replica(s) served, "
              f"{group.replica_seconds:.1f} replica-s "
              f"(cost {group.cost:.1f})")

    # 4) the cheapest mix meeting the SLO at a fixed demand
    capacity = find_fleet_capacity(
        DeploymentSpec(fleet=MIXED, router="hetero-aware"),
        WorkloadSpec(trace="ultrachat", rate_per_s=6.0,
                     num_requests=120, seed=7),
        slo_tbt_s=0.05)
    print()
    print(capacity.summary())


if __name__ == "__main__":
    main()
