#!/usr/bin/env python
"""Deterministic trace replay: save a workload, rerun it anywhere.

Generates a multi-turn chat workload (sessions with accumulated
context), saves it as JSON, replays it twice through the serving engine
and shows the runs are bit-identical — then exports the per-request
timeline for offline analysis.

Run:  python examples/trace_replay.py
"""

import pathlib
import tempfile

import numpy as np

from repro.api import device_model_for, get_chip, get_model
from repro.serving import SchedulerLimits, ServingEngine, compute_qos
from repro.serving.sessions import MultiTurnSessionGenerator, SessionConfig
from repro.serving.trace_io import (
    export_timeline,
    load_requests,
    save_requests,
)


def main() -> None:
    model = get_model("llama3-8b")
    device = device_model_for(get_chip("ador"))
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="ador-trace-"))
    trace_path = workdir / "sessions.json"

    generator = MultiTurnSessionGenerator(SessionConfig(),
                                          np.random.default_rng(11))
    stream = generator.generate_stream(sessions=40, session_rate_per_s=2.0)
    save_requests(stream, trace_path)
    print(f"saved {len(stream)} requests "
          f"({len(stream) / 40:.1f} turns/session) to {trace_path}")

    def replay():
        engine = ServingEngine(device, model, SchedulerLimits(max_batch=128))
        requests = load_requests(trace_path)
        for request in requests:
            # opt into full per-token timelines (slim tracking is the
            # default); the timeline comparison below needs them
            request.record_token_times = True
        return engine.run(requests)

    first, second = replay(), replay()
    identical = all(a.token_times == b.token_times
                    for a, b in zip(first.finished, second.finished))
    print(f"replayed twice: identical timelines = {identical}")

    qos = compute_qos(first.finished, first.total_time_s)
    print(f"QoS: TTFT p95 {qos.ttft_p95_s * 1e3:.1f} ms, "
          f"TBT p95 {qos.tbt_p95_s * 1e3:.2f} ms, "
          f"{qos.tokens_per_s:,.0f} tokens/s")

    timeline_path = workdir / "timeline.json"
    export_timeline(first.finished, timeline_path)
    print(f"per-request timeline exported to {timeline_path}")


if __name__ == "__main__":
    main()
