#!/usr/bin/env python
"""Multi-device serving study: TP methods, P2P sizing, and a 70B model.

Walks the paper's Section IV-D / V-C analysis: compares all-gather,
all-reduce and Megatron synchronization over 1-16 devices, finds the
minimum PCIe-class P2P bandwidth that still overlaps, and serves
LLaMA3-70B on 8 ADOR devices.

Run:  python examples/multi_device_scaling.py
"""

from repro.analysis.tables import format_table
from repro.api import device_model_for, get_chip, get_model
from repro.hardware.interconnect import P2pSpec
from repro.parallel import (
    SyncMethod,
    tp_scalability_curve,
)
from repro.parallel.overlap import (
    OverlapModel,
    WorkloadPhase,
    minimum_p2p_bandwidth,
)

DEVICES = [1, 2, 4, 8, 16]


def main() -> None:
    model = get_model("llama3-8b")

    # 1) Fig. 13(a): which collective scales?
    rows = []
    for method in SyncMethod:
        curve = tp_scalability_curve(model, 32, 1024, DEVICES, 2e12,
                                     P2pSpec(128e9), method)
        rows.append([method.value] + [f"{s:.2f}x" for s in curve])
    print(format_table(
        ["method"] + [f"{d} dev" for d in DEVICES], rows,
        title="TP latency scalability (decode, 2 TB/s, 128 GB/s P2P)",
    ))
    print("-> Megatron wins at 2 devices; all-gather wins at 4+.\n")

    # 2) Fig. 7(a): how little P2P bandwidth can we get away with?
    overlap = OverlapModel(model, 2e12, 417e12, WorkloadPhase.DECODE,
                           batch=32, seq_len=1024)
    for devices in (2, 4, 8):
        needed = minimum_p2p_bandwidth(overlap, devices,
                                       efficiency_target=0.95)
        print(f"minimum P2P bandwidth for full decode overlap at "
              f"{devices} devices: {needed / 1e9:.0f} GB/s")
    print("-> PCIe-class links suffice; no NVLink needed.\n")

    # 3) LLaMA3-70B on 8 devices: ADOR vs A100 (Fig. 15b)
    llama70 = get_model("llama3-70b")
    ador = device_model_for(get_chip("ador"))
    gpu = device_model_for(get_chip("a100"))
    rows = []
    for batch in (16, 64, 128, 150):
        ours = ador.decode_step_time(llama70, batch, 1024, num_devices=8)
        theirs = gpu.decode_step_time(llama70, batch, 1024, num_devices=8)
        rows.append([batch, 1.0 / ours.seconds, 1.0 / theirs.seconds,
                     theirs.seconds / ours.seconds])
    print(format_table(
        ["batch", "ADOR (tok/s)", "A100 (tok/s)", "gain (x)"],
        rows,
        title="LLaMA3-70B decode on 8 devices (paper: 2.51x at batch 150)",
    ))


if __name__ == "__main__":
    main()
