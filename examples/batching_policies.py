#!/usr/bin/env python
"""Batching-policy comparison (paper Fig. 2b, quantified).

Replays one Poisson request stream through three serving disciplines —
no batching, static batching and continuous batching — on the ADOR
design, and prints the QoS/throughput trade each makes.

Run:  python examples/batching_policies.py
"""

import copy

import numpy as np

from repro.analysis.tables import format_table
from repro.core.scheduling import AdorDeviceModel
from repro.hardware.presets import ador_table3
from repro.models import get_model
from repro.serving.dataset import ULTRACHAT_LIKE
from repro.serving.generator import PoissonRequestGenerator
from repro.serving.policies import BatchingPolicy, simulate_policy
from repro.serving.qos import compute_qos


def main() -> None:
    model = get_model("llama3-8b")
    device = AdorDeviceModel(ador_table3())
    rng = np.random.default_rng(23)
    requests = PoissonRequestGenerator(ULTRACHAT_LIKE, 6.0, rng).generate(48)

    rows = []
    for policy in BatchingPolicy:
        result = simulate_policy(policy, device, model,
                                 copy.deepcopy(requests), batch_size=32)
        qos = compute_qos(result.finished, result.total_time_s)
        rows.append([
            policy.value,
            qos.ttft_p50_s * 1e3,
            qos.ttft_p95_s * 1e3,
            qos.tbt_mean_s * 1e3,
            qos.tokens_per_s,
            result.total_time_s,
        ])
    print(format_table(
        ["policy", "TTFT p50 (ms)", "TTFT p95 (ms)", "TBT (ms)",
         "tokens/s", "makespan (s)"],
        rows,
        title="48 ultrachat-like requests at 6 req/s, LLaMA3-8B on ADOR",
    ))
    print(
        "\nno batching  : great TBT, but the queue murders tail TTFT\n"
        "static       : throughput recovers, stragglers hold every batch\n"
        "continuous   : iteration-level admission wins on both axes —\n"
        "               the paper's (and vLLM's) default for good reason"
    )


if __name__ == "__main__":
    main()
