#!/usr/bin/env python
"""Batching-policy comparison (paper Fig. 2b, quantified).

Replays one Poisson request stream through the three registered serving
disciplines — no batching, static batching and continuous batching — on
the ADOR design, and prints the QoS/throughput trade each makes.  Each
run is one ``simulate()`` call over the same :class:`WorkloadSpec`; the
shared seed guarantees every policy sees the identical request stream.

Run:  python examples/batching_policies.py
"""

from repro.analysis.tables import format_table
from repro.api import DeploymentSpec, WorkloadSpec, list_policies, simulate


def main() -> None:
    workload = WorkloadSpec(trace="ultrachat", rate_per_s=6.0,
                            num_requests=48, seed=23)

    rows = []
    for policy in list_policies():
        deployment = DeploymentSpec(chip="ador", model="llama3-8b",
                                    max_batch=32, batching=policy)
        report = simulate(deployment, workload, max_sim_seconds=3600.0)
        qos = report.qos
        rows.append([
            policy,
            qos.ttft_p50_s * 1e3,
            qos.ttft_p95_s * 1e3,
            qos.tbt_mean_s * 1e3,
            qos.tokens_per_s,
            report.result.total_time_s,
        ])
    print(format_table(
        ["policy", "TTFT p50 (ms)", "TTFT p95 (ms)", "TBT (ms)",
         "tokens/s", "makespan (s)"],
        rows,
        title="48 ultrachat-like requests at 6 req/s, LLaMA3-8B on ADOR",
    ))
    print(
        "\nno batching  : great TBT, but the queue murders tail TTFT\n"
        "static       : throughput recovers, stragglers hold every batch\n"
        "continuous   : iteration-level admission wins on both axes —\n"
        "               the paper's (and vLLM's) default for good reason"
    )


if __name__ == "__main__":
    main()
