"""Unit tests for GPU / NPU / TSP baseline device models."""

import pytest

from repro.hardware.presets import (
    a100,
    ador_table3,
    groq_tsp,
    h100,
    llmcompass_latency,
    llmcompass_throughput,
    tpu_v4,
)
from repro.models.zoo import get_model
from repro.perf.baselines import (
    GpuModel,
    SystolicNpuModel,
    TspModel,
    baseline_for,
)


@pytest.fixture
def llama3():
    return get_model("llama3-8b")


class TestDispatch:
    def test_kinds_route_correctly(self):
        assert isinstance(baseline_for(a100()), GpuModel)
        assert isinstance(baseline_for(tpu_v4()), SystolicNpuModel)
        assert isinstance(baseline_for(groq_tsp()), TspModel)

    def test_hda_rejected_with_pointer(self):
        with pytest.raises(ValueError, match="device_model_for"):
            baseline_for(ador_table3())

    def test_wrong_kind_constructor_rejected(self):
        with pytest.raises(ValueError):
            GpuModel(tpu_v4())
        with pytest.raises(ValueError):
            SystolicNpuModel(a100())
        with pytest.raises(ValueError):
            TspModel(a100())


class TestGpuDecode:
    """The paper's GPU criticisms, quantified."""

    def test_tbt_degrades_superlinearly_with_batch(self, llama3):
        gpu = baseline_for(a100())
        t16 = gpu.decode_step_time(llama3, 16, 1024).seconds
        t150 = gpu.decode_step_time(llama3, 150, 1024).seconds
        # KV bytes grow ~9.4x but time grows >4x — attention degradation
        assert t150 > 4 * t16

    def test_decode_bandwidth_under_60_percent_at_batch_64(self, llama3):
        """Fig. 4(b): GPUs achieve <60 % of spec bandwidth in decode."""
        gpu = baseline_for(a100())
        util = gpu.decode_bandwidth_utilization(llama3, 64, 1024)
        assert util < 0.60

    def test_tpu_bandwidth_worse_than_gpu(self, llama3):
        """Fig. 4(b): TPU memory utilization is worse than the GPU's."""
        gpu = baseline_for(a100())
        tpu = baseline_for(tpu_v4())
        assert tpu.decode_bandwidth_utilization(llama3, 64, 1024) \
            < gpu.decode_bandwidth_utilization(llama3, 64, 1024)

    def test_tp_sharding_reduces_step_time(self):
        llama70 = get_model("llama3-70b")
        gpu = baseline_for(a100())
        one = gpu.decode_step_time(llama70, 64, 1024, num_devices=8).seconds
        # compare against a hypothetical single device (weights don't fit,
        # but the model is analytical)
        eight = gpu.decode_step_time(llama70, 64, 1024, num_devices=1).seconds
        assert one < eight

    def test_tp_efficiency_derates(self, llama3):
        gpu = baseline_for(a100())
        # same per-device work, more devices -> slower due to TP derate
        t1 = gpu.decode_step_time(llama3, 64, 1024, 1).seconds
        t4 = gpu.decode_step_time(llama3, 64, 1024, 4).seconds
        assert t4 > t1 / 4

    def test_h100_faster_than_a100(self, llama3):
        a = baseline_for(a100())
        h = baseline_for(h100())
        assert h.decode_step_time(llama3, 64, 1024).seconds \
            < a.decode_step_time(llama3, 64, 1024).seconds


class TestPrefillOrdering:
    """Fig. 15 TTFT ordering: LLMCompass-T best, then A100, LLMCompass-L
    worst among the baselines (ADOR sits between T and A100)."""

    def test_ttft_ordering(self, llama3):
        t = baseline_for(llmcompass_throughput()).prefill_time(llama3, 1, 1024)
        a = baseline_for(a100()).prefill_time(llama3, 1, 1024)
        latency = baseline_for(llmcompass_latency()).prefill_time(llama3, 1, 1024)
        assert t.seconds < a.seconds < latency.seconds

    def test_prefill_throughput_positive(self, llama3):
        for chip in (a100(), tpu_v4(), llmcompass_latency()):
            dev = baseline_for(chip)
            assert dev.prefill_throughput_flops(llama3, 1, 1024) > 0


class TestLlmCompassDecode:
    def test_latency_design_beats_throughput_design(self, llama3):
        """Fig. 15 TBT: L (2 TB/s, small arrays) beats T (1 TB/s)."""
        latency = baseline_for(llmcompass_latency())
        throughput = baseline_for(llmcompass_throughput())
        assert latency.decode_step_time(llama3, 128, 1024).seconds \
            < throughput.decode_step_time(llama3, 128, 1024).seconds

    def test_latency_design_beats_a100_at_high_batch(self, llama3):
        latency = baseline_for(llmcompass_latency())
        gpu = baseline_for(a100())
        assert latency.decode_step_time(llama3, 150, 1024).seconds \
            < gpu.decode_step_time(llama3, 150, 1024).seconds


class TestTsp:
    def test_needs_many_devices(self, llama3):
        tsp = baseline_for(groq_tsp())
        # 16 GiB of weights over ~176 MiB usable SRAM per chip
        assert tsp.devices_required(llama3) >= 80

    def test_decode_latency_is_excellent(self, llama3):
        tsp = baseline_for(groq_tsp())
        gpu = baseline_for(a100())
        assert tsp.decode_step_time(llama3, 1, 1024).seconds \
            < gpu.decode_step_time(llama3, 1, 1024).seconds / 10

    def test_breakdown_parts_non_negative(self, llama3):
        tsp = baseline_for(groq_tsp())
        step = tsp.decode_step_time(llama3, 4, 512)
        for name, value in step.as_dict().items():
            assert value >= 0, name
