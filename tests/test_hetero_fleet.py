"""Heterogeneous-fleet suite: specs, routing, scaling, capacity.

The refactor's contract has two halves and each gets its own teeth:

* **Homogeneous parity** — a one-group :class:`FleetSpec` is the legacy
  ``replicas=N`` deployment spelled explicitly, so both must drive the
  cluster engine to the same bits (a Hypothesis property across trace
  shapes, fleet sizes, and the elastic features), and the legacy JSON
  shape must round-trip untouched.
* **Mixed fleets do something** — groups carry their own chip / knobs,
  the ``hetero-aware`` router places by probed capability, autoscaling
  grows the cheapest group first, reports break QoS and cost out per
  group, and the capacity search returns the cheapest mix meeting the
  SLO.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    DeploymentSpec,
    Experiment,
    FleetSpec,
    ReplicaGroupSpec,
    WorkloadSpec,
    build_cluster_engine,
    find_capacity,
    find_fleet_capacity,
    simulate,
)
from repro.cluster.autoscaler import AutoscaleSpec
from repro.cluster.faults import FaultSpec
from repro.cluster.router import ReplicaSnapshot, make_router
from repro.serving.capacity import EndpointUnservable, cost_optimal_fleet
from repro.serving.dataset import ULTRACHAT_LIKE, ChatTraceConfig
from repro.serving.generator import (
    OnOffRequestGenerator,
    PoissonRequestGenerator,
)
from repro.serving.request import Request
from repro.serving.sessions import MultiTurnSessionGenerator, SessionConfig

BURSTY = ChatTraceConfig(
    name="bursty-hetero",
    input_median=300.0,
    input_sigma=0.6,
    output_median=60.0,
    output_sigma=0.9,
)


def request_fingerprints(requests):
    return sorted(
        (r.request_id, r.generated_tokens, r.prefilled_tokens,
         r.first_token_time, r.last_token_time, r.finish_time,
         r.state.value)
        for r in requests)


def cluster_fingerprint(result):
    return tuple(
        (rep.total_time_s, rep.iterations, rep.decode_steps,
         request_fingerprints(rep.finished),
         request_fingerprints(rep.unfinished))
        for rep in result.replica_results)


# --------------------------------------------------------------------- #
# Specs: validation and strict JSON round-trips                          #
# --------------------------------------------------------------------- #

class TestSpecs:
    def test_group_round_trip(self):
        group = ReplicaGroupSpec(chip="a100", model="llama3-8b", count=3,
                                 num_devices=2, max_batch=64,
                                 cost_per_replica_s=2.5, min_count=1,
                                 max_count=5, provision_latency_s=4.0,
                                 name="gpu-pool")
        data = json.loads(json.dumps(group.to_dict()))
        assert ReplicaGroupSpec.from_dict(data) == group

    def test_fleet_round_trip(self):
        fleet = FleetSpec(groups=(
            ReplicaGroupSpec(chip="ador", count=2),
            ReplicaGroupSpec(chip="a100", count=1, cost_per_replica_s=0.8),
        ))
        data = json.loads(json.dumps(fleet.to_dict()))
        assert FleetSpec.from_dict(data) == fleet

    def test_deployment_with_fleet_round_trips_via_experiment(self):
        experiment = Experiment(
            name="hetero-rt",
            deployment=DeploymentSpec(fleet=FleetSpec(groups=(
                ReplicaGroupSpec(chip="ador", count=2),
                ReplicaGroupSpec(chip="a100", count=1),
            )), router="hetero-aware"),
            workload=WorkloadSpec(rate_per_s=5.0, num_requests=50, seed=1),
        )
        data = json.loads(json.dumps(experiment.to_dict()))
        assert Experiment.from_dict(data) == experiment

    def test_legacy_json_without_fleet_still_loads(self):
        # the refactor's compatibility bar: existing experiment files
        # carry no "fleet" key and must parse to fleet=None
        spec = DeploymentSpec.from_dict(
            {"chip": "ador", "replicas": 4, "router": "round-robin"})
        assert spec.fleet is None
        assert spec.replicas == 4
        assert "fleet" in spec.to_dict()

    def test_unknown_group_key_rejected(self):
        with pytest.raises(ValueError, match="cheap"):
            ReplicaGroupSpec.from_dict({"chip": "ador", "cheap": True})

    def test_fleet_needs_groups(self):
        with pytest.raises(ValueError, match="group"):
            FleetSpec(groups=())
        with pytest.raises(ValueError, match="group"):
            FleetSpec.from_dict({"groups": []})

    def test_fleet_conflicts_with_replicas(self):
        with pytest.raises(ValueError, match="replicas"):
            DeploymentSpec(replicas=2, fleet=FleetSpec())

    def test_group_count_bounds_validated(self):
        with pytest.raises(ValueError, match="min_count"):
            ReplicaGroupSpec(min_count=2, max_count=1)
        with pytest.raises(ValueError, match="count"):
            ReplicaGroupSpec(count=-1)

    def test_legacy_fields_fold_to_one_group(self):
        spec = DeploymentSpec(chip="a100", replicas=3, max_batch=64)
        groups = spec.fleet_groups()
        assert len(groups) == 1
        assert groups[0].chip == "a100"
        assert groups[0].count == 3
        assert groups[0].max_batch == 64
        assert spec.total_replicas == 3

    def test_explicit_fleet_total(self):
        spec = DeploymentSpec(fleet=FleetSpec(groups=(
            ReplicaGroupSpec(count=2), ReplicaGroupSpec(chip="a100"))))
        assert spec.total_replicas == 3
        assert [g.count for g in spec.fleet_groups()] == [2, 1]


# --------------------------------------------------------------------- #
# The parity property: one-group fleet == legacy replicas=N, bit for bit #
# --------------------------------------------------------------------- #

ELASTIC = {
    "none": {},
    "autoscale": {"autoscale": AutoscaleSpec(
        policy="queue-depth", min_replicas=1, max_replicas=4,
        provision_latency_s=3.0)},
    "faults": {"faults": FaultSpec(enabled=True, seed=3,
                                   crash_mtbf_s=40.0,
                                   restart_delay_s=2.0)},
}


def _trace_requests(kind, seed, count):
    rng = np.random.default_rng(seed)
    if kind == "steady":
        return PoissonRequestGenerator(
            ULTRACHAT_LIKE, 10.0, rng).generate(count)
    if kind == "bursty":
        return OnOffRequestGenerator(
            BURSTY, on_rate_per_s=30.0, off_rate_per_s=2.0,
            phase_seconds=2.0, rng=rng).generate(count)
    return list(MultiTurnSessionGenerator(config=SessionConfig(), rng=rng)
                .generate_stream(max(1, count // 3), 3.0))


@settings(max_examples=12, deadline=None)
@given(
    kind=st.sampled_from(["steady", "bursty", "sessions"]),
    replicas=st.sampled_from([1, 4]),
    elastic=st.sampled_from(sorted(ELASTIC)),
    seed=st.integers(0, 2**16),
    count=st.integers(3, 20),
)
def test_one_group_fleet_bit_identical_to_legacy(kind, replicas, elastic,
                                                 seed, count):
    """The refactor's homogeneous-parity bar: spelling the fleet as one
    explicit group must not move a single bit anywhere in the engine —
    across trace shapes, fleet sizes, and the elastic features."""
    def run(spelling):
        if spelling == "fleet":
            deployment = DeploymentSpec(
                fleet=FleetSpec(groups=(
                    ReplicaGroupSpec(chip="ador", count=replicas,
                                     max_batch=8),)),
                **ELASTIC[elastic])
        else:
            deployment = DeploymentSpec(replicas=replicas, max_batch=8,
                                        **ELASTIC[elastic])
        engine = build_cluster_engine(deployment)
        return engine.run(_trace_requests(kind, seed, count),
                          max_sim_seconds=120.0)

    legacy, fleet = run("legacy"), run("fleet")
    assert cluster_fingerprint(legacy) == cluster_fingerprint(fleet)
    assert legacy.merged.total_time_s == fleet.merged.total_time_s
    if legacy.autoscale is not None:
        assert legacy.autoscale.events == fleet.autoscale.events
    # the one-group path must also keep the legacy report shape: no
    # per-group breakdown appears until a fleet actually mixes groups
    assert fleet.groups is None


def test_slo_aware_default_threshold_is_the_knob_default():
    # satellite contract: exposing the threshold must not move the
    # default behavior — "slo-aware" and "slo-aware:256" are the same
    # policy, decision for decision
    rng = np.random.default_rng(11)
    requests = PoissonRequestGenerator(
        ULTRACHAT_LIKE, 10.0, rng).generate(80)
    snapshots = tuple(
        ReplicaSnapshot(replica_id=i, clock_s=0.0,
                        outstanding_requests=int(pick[0]),
                        outstanding_tokens=int(pick[1]),
                        queued_requests=0, active_requests=0,
                        assigned_requests=0, assigned_tokens=0)
        for i, pick in enumerate(
            np.random.default_rng(12).integers(0, 500, size=(4, 2))))
    default = make_router("slo-aware")
    parametric = make_router("slo-aware:256")
    assert default.short_input_tokens == parametric.short_input_tokens
    for request in requests:
        assert default.route(request, snapshots) \
            == parametric.route(request, snapshots)


def test_parametric_router_name_errors():
    with pytest.raises(ValueError, match="integer token"):
        make_router("slo-aware:fast")
    with pytest.raises(ValueError, match="short_input_tokens"):
        make_router("hetero-aware:0")
    with pytest.raises(KeyError):
        make_router("round-robin:3")   # not a threshold router


# --------------------------------------------------------------------- #
# Capability-aware routing                                               #
# --------------------------------------------------------------------- #

def _snapshot(replica_id, outstanding, tokens, prefill=0.0, decode=0.0,
              group=0):
    return ReplicaSnapshot(
        replica_id=replica_id, clock_s=0.0,
        outstanding_requests=outstanding, outstanding_tokens=tokens,
        queued_requests=0, active_requests=0, assigned_requests=0,
        assigned_tokens=0, chip="", group=group,
        prefill_tokens_per_s=prefill, decode_tokens_per_s=decode)


def _request(request_id, input_tokens):
    return Request(request_id=request_id, arrival_time=0.0,
                   input_tokens=input_tokens, output_tokens=8)


class TestHeteroAwareRouter:
    def test_long_prompts_prefer_prefill_fast_groups(self):
        # replica 0 is less loaded, but replica 1 prefills 8x faster:
        # the normalized backlog (tokens / rate) favors the fast group
        replicas = (_snapshot(0, 1, 1000, prefill=1000.0, decode=100.0),
                    _snapshot(1, 2, 2000, prefill=8000.0, decode=100.0,
                              group=1))
        router = make_router("hetero-aware")
        assert router.route(_request(0, 2048), replicas) == 1

    def test_short_prompts_prefer_decode_fast_queues(self):
        replicas = (_snapshot(0, 2, 500, prefill=1000.0, decode=50.0),
                    _snapshot(1, 3, 500, prefill=1000.0, decode=400.0,
                              group=1))
        router = make_router("hetero-aware")
        assert router.route(_request(0, 64), replicas) == 1

    def test_without_capability_falls_back_to_slo_aware(self):
        # the homogeneous path leaves the rates at 0.0; every decision
        # must then match slo-aware exactly (group-blindness contract)
        rng = np.random.default_rng(21)
        loads = rng.integers(0, 300, size=(5, 2))
        replicas = tuple(_snapshot(i, int(a), int(b))
                         for i, (a, b) in enumerate(loads))
        hetero = make_router("hetero-aware")
        slo = make_router("slo-aware")
        for request_id, tokens in enumerate([16, 256, 257, 4096]):
            request = _request(request_id, tokens)
            assert hetero.route(request, replicas) \
                == slo.route(request, replicas)

    def test_mixed_known_unknown_prefers_probed_groups(self):
        replicas = (_snapshot(0, 0, 0),                       # unknown
                    _snapshot(1, 5, 5000, prefill=4000.0,
                              decode=200.0, group=1))
        router = make_router("hetero-aware")
        # unknown capability compares as an infinite drain, so the
        # probed replica wins despite its deeper queue
        assert router.route(_request(0, 1024), replicas) == 1


# --------------------------------------------------------------------- #
# Mixed fleets end to end: reports, scaling, capacity                    #
# --------------------------------------------------------------------- #

MIXED = FleetSpec(groups=(
    ReplicaGroupSpec(chip="ador", count=2, cost_per_replica_s=1.0),
    ReplicaGroupSpec(chip="a100", count=1, cost_per_replica_s=0.8),
))
WORKLOAD = WorkloadSpec(rate_per_s=6.0, num_requests=90, seed=5)


class TestMixedFleet:
    def test_group_breakdowns_in_report(self):
        report = simulate(DeploymentSpec(fleet=MIXED,
                                         router="hetero-aware"), WORKLOAD)
        groups = report.groups
        assert [g.name for g in groups] == ["ador", "a100"]
        assert [g.replica_count for g in groups] == [2, 1]
        assert sum(g.finished_requests for g in groups) \
            == len(report.result.finished)
        wall = report.result.total_time_s
        assert groups[0].replica_seconds == pytest.approx(2 * wall)
        assert groups[1].cost == pytest.approx(0.8 * wall)
        assert len(report.load.requests_per_group) == 2
        assert sum(report.load.requests_per_group) \
            == sum(report.load.requests_per_replica)
        text = report.summary()
        assert "2xador+1xa100" in text
        assert "group 0 [ador]" in text and "group 1 [a100]" in text

    def test_mixed_fleet_is_deterministic(self):
        deployment = DeploymentSpec(fleet=MIXED, router="hetero-aware")
        first = simulate(deployment, WORKLOAD)
        second = simulate(deployment, WORKLOAD)
        assert cluster_fingerprint(first.cluster) \
            == cluster_fingerprint(second.cluster)

    def test_autoscale_grows_cheapest_group_first(self):
        fleet = FleetSpec(groups=(
            ReplicaGroupSpec(chip="ador", count=1, cost_per_replica_s=1.0,
                             max_count=4),
            ReplicaGroupSpec(chip="a100", count=1, cost_per_replica_s=3.0,
                             max_count=4),
        ))
        deployment = DeploymentSpec(
            fleet=fleet, router="least-outstanding",
            autoscale=AutoscaleSpec(policy="queue-depth", min_replicas=2,
                                    max_replicas=4,
                                    provision_latency_s=1.0,
                                    decision_interval_s=1.0))
        report = simulate(
            deployment,
            WorkloadSpec(rate_per_s=25.0, num_requests=150, seed=9))
        trace = report.autoscale
        assert trace.scale_ups > 0
        groups = {g.name: g for g in report.groups}
        # the fleet cap (4) leaves headroom inside the cheap ador group
        # (max_count=4), so every scale-up must land there; the
        # expensive a100 group never grows beyond its spec'd single
        # replica
        assert groups["ador"].replica_count > 1
        assert groups["a100"].replica_count == 1

    def test_scale_down_retires_most_expensive_group(self):
        fleet = FleetSpec(groups=(
            ReplicaGroupSpec(chip="ador", count=2, cost_per_replica_s=1.0,
                             min_count=1),
            ReplicaGroupSpec(chip="a100", count=2, cost_per_replica_s=3.0,
                             min_count=0),
        ))
        deployment = DeploymentSpec(
            fleet=fleet, router="least-outstanding",
            autoscale=AutoscaleSpec(policy="queue-depth", min_replicas=1,
                                    max_replicas=4,
                                    decision_interval_s=1.0))
        # a trickle load: the fleet should shrink, shedding the
        # expensive a100 replicas before any cheap ador one
        report = simulate(
            deployment,
            WorkloadSpec(rate_per_s=1.0, num_requests=40, seed=3))
        assert report.autoscale.scale_downs > 0
        groups = {g.name: g for g in report.groups}
        assert groups["a100"].replica_seconds \
            < groups["ador"].replica_seconds

    def test_fleet_capacity_returns_cheapest_feasible_mix(self):
        fleet = FleetSpec(groups=(
            ReplicaGroupSpec(chip="ador", count=2, max_count=3,
                             cost_per_replica_s=1.0),
            ReplicaGroupSpec(chip="a100", count=1, max_count=1,
                             cost_per_replica_s=0.8),
        ))
        deployment = DeploymentSpec(fleet=fleet, router="hetero-aware")
        workload = WorkloadSpec(rate_per_s=5.0, num_requests=60, seed=3)
        report = find_fleet_capacity(deployment, workload,
                                     slo_tbt_s=0.05)
        result = report.fleet
        lo_hi = [(0, 3), (0, 1)]
        for count, (lo, hi) in zip(result.counts, lo_hi):
            assert lo <= count <= hi
        # optimality within the probe log: no feasible probe is cheaper
        feasible = [p for p in result.probes if p.feasible]
        assert result.counts in [p.counts for p in feasible]
        assert result.cost_rate == min(p.cost_rate for p in feasible)
        # the winning mix re-probes from cache: simulations < probes
        assert result.simulations <= len(result.probes)
        assert report.mix_label().count("x") == 2

    def test_find_capacity_dispatches_on_fleet(self):
        deployment = DeploymentSpec(fleet=MIXED, router="hetero-aware")
        report = find_capacity(deployment, WORKLOAD, slo_tbt_s=0.06)
        assert hasattr(report, "fleet")
        assert report.counts == report.fleet.counts

    def test_fleet_capacity_unservable_when_slo_impossible(self):
        deployment = DeploymentSpec(fleet=FleetSpec(groups=(
            ReplicaGroupSpec(chip="ador", count=1, max_count=1),)))
        from repro.api.specs import CapacitySpec

        with pytest.raises(EndpointUnservable):
            cost_optimal_fleet(
                deployment,
                WorkloadSpec(rate_per_s=50.0, num_requests=60, seed=1),
                CapacitySpec(slo_tbt_s=1e-6),
                max_sim_seconds=30.0)

    def test_fleet_capacity_rejects_autoscale_and_lattice_blowup(self):
        deployment = DeploymentSpec(
            fleet=MIXED, autoscale=AutoscaleSpec(policy="queue-depth"))
        with pytest.raises(ValueError, match="autoscale"):
            cost_optimal_fleet(deployment, WORKLOAD)
        wide = DeploymentSpec(fleet=FleetSpec(groups=(
            ReplicaGroupSpec(chip="ador", count=1),
            ReplicaGroupSpec(chip="a100", count=1, max_count=9),
        )))
        with pytest.raises(ValueError, match="lattice"):
            cost_optimal_fleet(wide, WORKLOAD, max_columns=4)
        legacy = DeploymentSpec(replicas=1)
        with pytest.raises(ValueError, match="fleet"):
            cost_optimal_fleet(legacy, WORKLOAD)
